//! Masstree (§2.1, Figure 2.1) and Compact Masstree (§2.3, Figure 2.4).
//!
//! Masstree is a trie with 8-byte keyslices where every trie node is a
//! B+tree. A key is consumed one 8-byte slice per layer; a slice's entry is
//! either a value with the remaining key suffix stored in the layer's
//! *keybag*, or a pointer to a lower-layer B+tree when several keys share
//! the slice. Entries are identified by `(slice, slice_len)` — the
//! zero-padded big-endian slice plus the number of real bytes in it — whose
//! tuple order equals byte-string order.
//!
//! [`CompactMasstree`] applies the D-to-S rules exactly as Figure 2.4: each
//! trie node's B+tree is flattened into sorted slice arrays searched by
//! binary search, and all key suffixes of a trie node are concatenated into
//! a single byte array with an offset array marking starts.

#![warn(missing_docs)]

use memtree_common::key::keyslice;
use memtree_common::mem::vec_bytes;
use memtree_common::probe::ProbeStats;
use memtree_common::traits::{BatchProbe, OrderedIndex, StaticIndex, Value};

mod slicetree;
use slicetree::SliceTree;

/// An entry of one trie layer.
#[derive(Debug)]
enum Entry {
    /// A single key owns this slice; `suffix` holds its bytes beyond the
    /// slice (always empty when the slice length is < 8).
    Value { suffix: Box<[u8]>, value: Value },
    /// Multiple keys share this full 8-byte slice; their suffixes live in
    /// a lower layer.
    SubLayer(Box<Layer>),
}

/// One trie node: a B+tree over `(slice, len)` keys.
#[derive(Debug, Default)]
struct Layer {
    tree: SliceTree<Entry>,
}

impl Layer {
    fn insert(&mut self, key: &[u8], depth: usize, value: Value) -> bool {
        let (slice, len) = keyslice(key, depth);
        let len = len as u8;
        match self.tree.get_mut(&(slice, len)) {
            None => {
                let suffix: Box<[u8]> = if len == 8 {
                    key[(depth + 1) * 8..].into()
                } else {
                    Box::from(&[][..])
                };
                self.tree.insert((slice, len), Entry::Value { suffix, value });
                true
            }
            Some(entry) => match entry {
                Entry::Value { suffix, value: old } => {
                    if len < 8 {
                        return false; // identical short key
                    }
                    let new_suffix = &key[(depth + 1) * 8..];
                    if suffix.as_ref() == new_suffix {
                        return false; // identical key
                    }
                    // Convert to a sub-layer holding both suffixes.
                    let old_suffix = std::mem::replace(suffix, Box::from(&[][..]));
                    let old_value = *old;
                    let mut sub = Box::new(Layer::default());
                    sub.insert(&old_suffix, 0, old_value);
                    sub.insert(new_suffix, 0, value);
                    *entry = Entry::SubLayer(sub);
                    true
                }
                Entry::SubLayer(sub) => sub.insert(&key[(depth + 1) * 8..], 0, value),
            },
        }
    }

    fn get(&self, key: &[u8], depth: usize) -> Option<Value> {
        let (slice, len) = keyslice(key, depth);
        match self.tree.get(&(slice, len as u8))? {
            Entry::Value { suffix, value } => {
                let rest: &[u8] = if len == 8 { &key[(depth + 1) * 8..] } else { &[] };
                (suffix.as_ref() == rest).then_some(*value)
            }
            Entry::SubLayer(sub) => {
                if len < 8 {
                    return None;
                }
                sub.get(&key[(depth + 1) * 8..], 0)
            }
        }
    }

    fn get_profiled(&self, key: &[u8], depth: usize, stats: &mut ProbeStats) -> Option<Value> {
        let (slice, len) = keyslice(key, depth);
        let entry = self.tree.get_profiled(&(slice, len as u8), stats)?;
        match entry {
            Entry::Value { suffix, value } => {
                let rest: &[u8] = if len == 8 { &key[(depth + 1) * 8..] } else { &[] };
                stats.key_bytes_compared += suffix.len().min(rest.len()) as u64 + 1;
                (suffix.as_ref() == rest).then_some(*value)
            }
            Entry::SubLayer(sub) => {
                if len < 8 {
                    return None;
                }
                stats.pointer_derefs += 1;
                sub.get_profiled(&key[(depth + 1) * 8..], 0, stats)
            }
        }
    }

    fn update(&mut self, key: &[u8], depth: usize, value: Value) -> bool {
        let (slice, len) = keyslice(key, depth);
        match self.tree.get_mut(&(slice, len as u8)) {
            None => false,
            Some(Entry::Value { suffix, value: v }) => {
                let rest: &[u8] = if len == 8 { &key[(depth + 1) * 8..] } else { &[] };
                if suffix.as_ref() == rest {
                    *v = value;
                    true
                } else {
                    false
                }
            }
            Some(Entry::SubLayer(sub)) => {
                len == 8 && sub.update(&key[(depth + 1) * 8..], 0, value)
            }
        }
    }

    /// Removes `key`. Sub-layers are not collapsed back into values (the
    /// thesis compacts via rebuild, not via online shrinking).
    fn remove(&mut self, key: &[u8], depth: usize) -> bool {
        let (slice, len) = keyslice(key, depth);
        let len = len as u8;
        match self.tree.get_mut(&(slice, len)) {
            None => false,
            Some(Entry::Value { suffix, .. }) => {
                let rest: &[u8] = if len == 8 { &key[(depth + 1) * 8..] } else { &[] };
                if suffix.as_ref() == rest {
                    self.tree.remove(&(slice, len));
                    true
                } else {
                    false
                }
            }
            Some(Entry::SubLayer(sub)) => {
                if len < 8 {
                    return false;
                }
                let removed = sub.remove(&key[(depth + 1) * 8..], 0);
                if removed && sub.tree.is_empty() {
                    self.tree.remove(&(slice, len));
                }
                removed
            }
        }
    }

    /// In-order traversal from the first key `>= low` (relative to this
    /// layer), with `path` holding the bytes consumed by outer layers.
    fn walk_from(
        &self,
        path: &mut Vec<u8>,
        low: &[u8],
        restricted: bool,
        f: &mut dyn FnMut(&[u8], Value) -> bool,
    ) -> bool {
        let (lslice, llen) = if restricted {
            let (s, l) = keyslice(low, 0);
            (s, l as u8)
        } else {
            (0, 0)
        };
        let mut cont = true;
        self.tree.range_from(&(lslice, llen), &mut |&(s, l), entry| {
            let exact = restricted && s == lslice && l == llen;
            let depth = path.len();
            path.extend_from_slice(&s.to_be_bytes()[..l as usize]);
            match entry {
                Entry::Value { suffix, value } => {
                    let emit = if exact {
                        if l == 8 {
                            suffix.as_ref() >= &low[8.min(low.len())..]
                        } else {
                            // Key equals low's prefix; it qualifies only if
                            // low ends exactly here.
                            low.len() <= l as usize
                        }
                    } else {
                        true
                    };
                    if emit {
                        path.extend_from_slice(suffix);
                        cont = f(path, *value);
                    }
                }
                Entry::SubLayer(sub) => {
                    let sub_low: &[u8] = if exact { &low[8.min(low.len())..] } else { &[] };
                    cont = sub.walk_from(path, sub_low, exact && !sub_low.is_empty(), f);
                }
            }
            path.truncate(depth);
            cont
        });
        cont
    }

    fn mem_usage(&self) -> usize {
        let mut total = self.tree.mem_usage();
        self.tree.for_each(&mut |_k, e| {
            match e {
                Entry::Value { suffix, .. } => total += suffix.len(),
                Entry::SubLayer(sub) => {
                    total += std::mem::size_of::<Layer>() + sub.mem_usage();
                }
            }
            true
        });
        total
    }

}

/// The dynamic Masstree.
#[derive(Debug, Default)]
pub struct Masstree {
    root: Layer,
    len: usize,
}

impl Masstree {
    /// Creates an empty Masstree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates `(key, value)` in order from the first key `>= low` until
    /// `f` returns `false`.
    pub fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        let mut path = Vec::new();
        self.root.walk_from(&mut path, low, !low.is_empty(), f);
    }

    /// Instrumented point query for the Table 2.2 reproduction.
    pub fn get_profiled(&self, key: &[u8]) -> (Option<Value>, ProbeStats) {
        let mut stats = ProbeStats::default();
        let v = self.root.get_profiled(key, 0, &mut stats);
        (v, stats)
    }
}

impl OrderedIndex for Masstree {
    fn insert(&mut self, key: &[u8], value: Value) -> bool {
        if self.root.insert(key, 0, value) {
            self.len += 1;
            true
        } else {
            false
        }
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        self.root.get(key, 0)
    }

    fn update(&mut self, key: &[u8], value: Value) -> bool {
        self.root.update(key, 0, value)
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        if self.root.remove(key, 0) {
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let before = out.len();
        self.range_from(low, &mut |_k, v| {
            if out.len() - before == n {
                return false;
            }
            out.push(v);
            out.len() - before < n
        });
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_usage(&self) -> usize {
        std::mem::size_of::<Layer>() + self.root.mem_usage()
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        Masstree::range_from(self, &[], &mut |k, v| {
            f(k, v);
            true
        });
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        Masstree::range_from(self, low, f);
    }

    fn clear(&mut self) {
        self.root = Layer::default();
        self.len = 0;
    }
}
/// Per-key fallback `multi_get`; no batched descent for this structure.
impl BatchProbe for Masstree {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }
}


// ---------------------------------------------------------------------------
// Compact Masstree
// ---------------------------------------------------------------------------

const KIND_VALUE: u8 = 1;
const KIND_SUBLAYER: u8 = 2;

/// One flattened trie node (Figure 2.4): sorted slice arrays + a single
/// concatenated suffix byte array with offsets.
#[derive(Debug, Default)]
struct CompactLayer {
    slices: Vec<u64>,
    lens: Vec<u8>,
    kinds: Vec<u8>,
    /// `KIND_VALUE`: index into `vals`; `KIND_SUBLAYER`: layer arena index.
    payload: Vec<u32>,
    /// Suffix `i` (only for value entries) is
    /// `suffix_bytes[suffix_offsets[i]..suffix_offsets[i+1]]`; sub-layer
    /// entries have empty ranges.
    suffix_offsets: Vec<u32>,
    suffix_bytes: Vec<u8>,
    vals: Vec<Value>,
}

impl CompactLayer {
    fn suffix(&self, i: usize) -> &[u8] {
        &self.suffix_bytes[self.suffix_offsets[i] as usize..self.suffix_offsets[i + 1] as usize]
    }

    fn mem_usage(&self) -> usize {
        vec_bytes(&self.slices)
            + vec_bytes(&self.lens)
            + vec_bytes(&self.kinds)
            + vec_bytes(&self.payload)
            + vec_bytes(&self.suffix_offsets)
            + vec_bytes(&self.suffix_bytes)
            + vec_bytes(&self.vals)
    }
}

/// The static Compact Masstree.
#[derive(Debug)]
pub struct CompactMasstree {
    layers: Vec<CompactLayer>,
    root: u32,
    len: usize,
}

impl CompactMasstree {
    /// Builds one layer from entries whose keys are the *remaining* bytes at
    /// this layer. Returns the arena index.
    fn build_layer(layers: &mut Vec<CompactLayer>, entries: &[(&[u8], Value)]) -> u32 {
        let mut layer = CompactLayer::default();
        layer.suffix_offsets.push(0);
        let id = layers.len();
        layers.push(CompactLayer::default());

        let mut i = 0usize;
        while i < entries.len() {
            let (key, val) = entries[i];
            let (slice, len) = keyslice(key, 0);
            let len = len as u8;
            // Group keys sharing this full (slice, len) pair. Only len == 8
            // groups can exceed one entry (shorter keys are unique).
            let mut j = i + 1;
            if len == 8 {
                while j < entries.len() {
                    let (s2, l2) = keyslice(entries[j].0, 0);
                    if s2 == slice && l2 == 8 {
                        j += 1;
                    } else {
                        break;
                    }
                }
            }
            layer.slices.push(slice);
            layer.lens.push(len);
            if j - i == 1 {
                layer.kinds.push(KIND_VALUE);
                layer.payload.push(layer.vals.len() as u32);
                layer.vals.push(val);
                let suffix: &[u8] = if len == 8 { &key[8..] } else { &[] };
                layer.suffix_bytes.extend_from_slice(suffix);
            } else {
                let sub: Vec<(&[u8], Value)> =
                    entries[i..j].iter().map(|(k, v)| (&k[8..], *v)).collect();
                let child = Self::build_layer(layers, &sub);
                layer.kinds.push(KIND_SUBLAYER);
                layer.payload.push(child);
            }
            layer.suffix_offsets.push(layer.suffix_bytes.len() as u32);
            i = j;
        }
        layer.slices.shrink_to_fit();
        layer.lens.shrink_to_fit();
        layer.kinds.shrink_to_fit();
        layer.payload.shrink_to_fit();
        layer.suffix_bytes.shrink_to_fit();
        layer.suffix_offsets.shrink_to_fit();
        layer.vals.shrink_to_fit();
        layers[id] = layer;
        id as u32
    }

    fn layer_walk(
        &self,
        layer: u32,
        path: &mut Vec<u8>,
        low: &[u8],
        restricted: bool,
        f: &mut dyn FnMut(&[u8], Value) -> bool,
    ) -> bool {
        let l = &self.layers[layer as usize];
        let (lslice, llen) = if restricted {
            let (s, ln) = keyslice(low, 0);
            (s, ln as u8)
        } else {
            (0, 0)
        };
        let start = {
            let mut lo = 0usize;
            let mut hi = l.slices.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                if (l.slices[mid], l.lens[mid]) < (lslice, llen) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        for idx in start..l.slices.len() {
            let (s, ln) = (l.slices[idx], l.lens[idx]);
            let exact = restricted && s == lslice && ln == llen;
            let depth = path.len();
            path.extend_from_slice(&s.to_be_bytes()[..ln as usize]);
            let mut cont = true;
            if l.kinds[idx] == KIND_VALUE {
                let suffix = l.suffix(idx);
                let emit = if exact {
                    if ln == 8 {
                        suffix >= &low[8.min(low.len())..]
                    } else {
                        low.len() <= ln as usize
                    }
                } else {
                    true
                };
                if emit {
                    path.extend_from_slice(suffix);
                    cont = f(path, l.vals[l.payload[idx] as usize]);
                }
            } else {
                let sub_low: &[u8] = if exact { &low[8.min(low.len())..] } else { &[] };
                cont = self.layer_walk(
                    l.payload[idx],
                    path,
                    sub_low,
                    exact && !sub_low.is_empty(),
                    f,
                );
            }
            path.truncate(depth);
            if !cont {
                return false;
            }
        }
        true
    }

    /// Iterates `(key, value)` in order from the first key `>= low`.
    pub fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        if !self.layers.is_empty() {
            let mut path = Vec::new();
            self.layer_walk(self.root, &mut path, low, !low.is_empty(), f);
        }
    }
}

impl StaticIndex for CompactMasstree {
    fn build(entries: &[(Vec<u8>, Value)]) -> Self {
        let mut layers = Vec::new();
        let root = if entries.is_empty() {
            0
        } else {
            let refs: Vec<(&[u8], Value)> =
                entries.iter().map(|(k, v)| (k.as_slice(), *v)).collect();
            Self::build_layer(&mut layers, &refs)
        };
        Self {
            layers,
            root,
            len: entries.len(),
        }
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        if self.layers.is_empty() {
            return None;
        }
        let mut layer = &self.layers[self.root as usize];
        let mut depth = 0usize;
        loop {
            let (slice, len) = keyslice(key, depth);
            let len = len as u8;
            let idx = {
                let mut lo = 0usize;
                let mut hi = layer.slices.len();
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if (layer.slices[mid], layer.lens[mid]) < (slice, len) {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                if lo >= layer.slices.len()
                    || layer.slices[lo] != slice
                    || layer.lens[lo] != len
                {
                    return None;
                }
                lo
            };
            if layer.kinds[idx] == KIND_VALUE {
                let rest: &[u8] = if len == 8 { &key[(depth + 1) * 8..] } else { &[] };
                return (layer.suffix(idx) == rest)
                    .then(|| layer.vals[layer.payload[idx] as usize]);
            }
            if len < 8 {
                return None;
            }
            layer = &self.layers[layer.payload[idx] as usize];
            depth += 1;
        }
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let before = out.len();
        self.range_from(low, &mut |_k, v| {
            if out.len() - before == n {
                return false;
            }
            out.push(v);
            out.len() - before < n
        });
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_usage(&self) -> usize {
        vec_bytes(&self.layers) + self.layers.iter().map(|l| l.mem_usage()).sum::<usize>()
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        CompactMasstree::range_from(self, &[], &mut |k, v| {
            f(k, v);
            true
        });
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        CompactMasstree::range_from(self, low, f);
    }
}
/// Per-key fallback `multi_get`; no batched descent for this structure.
impl BatchProbe for CompactMasstree {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    #[test]
    fn short_and_long_keys() {
        let mut t = Masstree::new();
        let keys: Vec<&[u8]> = vec![
            b"a",
            b"ab",
            b"abcdefgh",          // exactly one slice
            b"abcdefghi",         // slice + 1
            b"abcdefghijklmnopq", // three slices
            b"abcdefgz",
            b"",
        ];
        for (i, k) in keys.iter().enumerate() {
            assert!(t.insert(k, i as u64), "insert {i}");
        }
        assert_eq!(t.len(), keys.len());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "get {i}");
        }
        assert_eq!(t.get(b"abcdefg"), None);
        assert_eq!(t.get(b"abcdefghij"), None);
        // Duplicates rejected.
        assert!(!t.insert(b"ab", 99));
        assert!(!t.insert(b"abcdefghijklmnopq", 99));
    }

    #[test]
    fn slice_collision_creates_sublayer() {
        let mut t = Masstree::new();
        // Same first slice, different suffixes.
        assert!(t.insert(b"12345678AAAA", 1));
        assert!(t.insert(b"12345678BBBB", 2));
        assert!(t.insert(b"12345678", 3)); // ends exactly at the slice
        assert_eq!(t.get(b"12345678AAAA"), Some(1));
        assert_eq!(t.get(b"12345678BBBB"), Some(2));
        assert_eq!(t.get(b"12345678"), Some(3));
        assert_eq!(t.get(b"12345678CCCC"), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn random_u64_keys() {
        let mut t = Masstree::new();
        let mut state = 77u64;
        let mut keys = Vec::new();
        for _ in 0..5000 {
            let k = memtree_common::hash::splitmix64(&mut state);
            if t.insert(&encode_u64(k), k) {
                keys.push(k);
            }
        }
        for &k in &keys {
            assert_eq!(t.get(&encode_u64(k)), Some(k));
        }
        keys.sort_unstable();
        let mut got = Vec::new();
        t.for_each_sorted(&mut |_k, v| got.push(v));
        assert_eq!(got, keys);
    }

    #[test]
    fn update_remove() {
        let mut t = Masstree::new();
        t.insert(b"hello world foo", 1);
        t.insert(b"hello world bar", 2);
        assert!(t.update(b"hello world foo", 10));
        assert_eq!(t.get(b"hello world foo"), Some(10));
        assert!(!t.update(b"hello world baz", 1));
        assert!(t.remove(b"hello world foo"));
        assert_eq!(t.get(b"hello world foo"), None);
        assert_eq!(t.get(b"hello world bar"), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sorted_iteration_emails() {
        let mut t = Masstree::new();
        let mut keys: Vec<Vec<u8>> = (0..3000u64)
            .map(|i| format!("com.test{}@u{:06}", i % 5, (i * 2654435761) % 1_000_000).into_bytes())
            .collect();
        keys.sort();
        keys.dedup();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64);
        }
        let mut got = Vec::new();
        t.for_each_sorted(&mut |k, _| got.push(k.to_vec()));
        assert_eq!(got, keys);
        // scan from lower bound
        let mut out = Vec::new();
        t.scan(b"com.test3@", 7, &mut out);
        let expect: Vec<Value> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| k.as_slice() >= b"com.test3@".as_slice())
            .take(7)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn compact_matches_dynamic() {
        let mut t = Masstree::new();
        let mut state = 5u64;
        for _ in 0..4000 {
            let k = memtree_common::hash::splitmix64(&mut state) % 1_000_000;
            let key = format!("prefix/{k:09}/suffix-data");
            t.insert(key.as_bytes(), k);
        }
        let mut entries = Vec::new();
        t.for_each_sorted(&mut |k, v| entries.push((k.to_vec(), v)));
        let c = CompactMasstree::build(&entries);
        assert_eq!(c.len(), entries.len());
        for (k, v) in &entries {
            assert_eq!(c.get(k), Some(*v));
        }
        assert_eq!(c.get(b"prefix/xxx"), None);
        let mut a = Vec::new();
        let mut b = Vec::new();
        t.for_each_sorted(&mut |k, v| a.push((k.to_vec(), v)));
        c.for_each_sorted(&mut |k, v| b.push((k.to_vec(), v)));
        assert_eq!(a, b);
        // Scans agree from arbitrary probes.
        for probe in [&b"prefix/0005"[..], b"prefix/9", b"a", b"zzz"] {
            let (mut oa, mut ob) = (Vec::new(), Vec::new());
            t.scan(probe, 11, &mut oa);
            c.scan(probe, 11, &mut ob);
            assert_eq!(oa, ob, "probe {probe:?}");
        }
    }

    #[test]
    fn compact_is_much_smaller() {
        let mut t = Masstree::new();
        for i in 0..50_000u64 {
            t.insert(&encode_u64(i), i);
        }
        let mut entries = Vec::new();
        t.for_each_sorted(&mut |k, v| entries.push((k.to_vec(), v)));
        let c = CompactMasstree::build(&entries);
        assert!(
            (c.mem_usage() as f64) < 0.5 * t.mem_usage() as f64,
            "compact {} dynamic {}",
            c.mem_usage(),
            t.mem_usage()
        );
        for i in (0..50_000u64).step_by(613) {
            assert_eq!(c.get(&encode_u64(i)), Some(i));
        }
    }

    #[test]
    fn compact_empty() {
        let c = CompactMasstree::build(&[]);
        assert_eq!(c.get(b"x"), None);
        let mut out = Vec::new();
        assert_eq!(c.scan(b"", 5, &mut out), 0);
    }

    #[test]
    fn profiled_get() {
        let mut t = Masstree::new();
        for i in 0..10_000u64 {
            t.insert(&encode_u64(i), i);
        }
        let (v, stats) = t.get_profiled(&encode_u64(4321));
        assert_eq!(v, Some(4321));
        assert!(stats.nodes_visited > 0);
    }
}
