//! The per-trie-node B+tree of Masstree: fixed `(slice, len)` keys.
//!
//! Masstree's speed comes from comparing fixed 8-byte slices instead of
//! byte strings; this internal B+tree does exactly that. The thesis's
//! Masstree uses fanout-15 B+tree nodes; we use 16.

use memtree_common::mem::vec_bytes;
use memtree_common::probe::ProbeStats;

type NodeId = u32;
const NIL: NodeId = u32::MAX;

/// Max keys per node.
const FANOUT: usize = 16;

/// A `(keyslice, slice_len)` pair; tuple order equals byte-string order for
/// zero-padded big-endian slices.
pub type SliceKey = (u64, u8);

#[derive(Debug)]
enum SNode<V> {
    Leaf {
        keys: Vec<SliceKey>,
        vals: Vec<V>,
        next: NodeId,
    },
    Inner {
        keys: Vec<SliceKey>,
        children: Vec<NodeId>,
    },
}

/// A B+tree over fixed-size slice keys.
#[derive(Debug)]
pub struct SliceTree<V> {
    nodes: Vec<SNode<V>>,
    root: NodeId,
    len: usize,
}

impl<V> Default for SliceTree<V> {
    fn default() -> Self {
        Self {
            nodes: vec![SNode::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: NIL,
            }],
            root: 0,
            len: 0,
        }
    }
}

enum Up {
    Done,
    Split(SliceKey, NodeId),
}

impl<V> SliceTree<V> {
    /// Number of entries.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn find_leaf(&self, key: &SliceKey) -> NodeId {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                SNode::Leaf { .. } => return id,
                SNode::Inner { keys, children } => {
                    let ci = keys.partition_point(|k| k <= key);
                    id = children[ci];
                }
            }
        }
    }

    /// Reference to the value for `key`.
    pub fn get(&self, key: &SliceKey) -> Option<&V> {
        let SNode::Leaf { keys, vals, .. } = &self.nodes[self.find_leaf(key) as usize] else {
            unreachable!()
        };
        keys.binary_search(key).ok().map(|i| &vals[i])
    }

    /// Mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: &SliceKey) -> Option<&mut V> {
        let leaf = self.find_leaf(key);
        let SNode::Leaf { keys, vals, .. } = &mut self.nodes[leaf as usize] else {
            unreachable!()
        };
        keys.binary_search(key).ok().map(|i| &mut vals[i])
    }

    /// Instrumented lookup counting B+tree-walk events into `stats`.
    pub fn get_profiled(&self, key: &SliceKey, stats: &mut ProbeStats) -> Option<&V> {
        let mut id = self.root;
        loop {
            stats.nodes_visited += 1;
            match &self.nodes[id as usize] {
                SNode::Inner { keys, children } => {
                    stats.key_bytes_compared += 8 * (keys.len().ilog2() as u64 + 1);
                    let ci = keys.partition_point(|k| k <= key);
                    stats.pointer_derefs += 1;
                    id = children[ci];
                }
                SNode::Leaf { keys, vals, .. } => {
                    stats.key_bytes_compared +=
                        8 * (keys.len().max(1).ilog2() as u64 + 1);
                    return keys.binary_search(key).ok().map(|i| &vals[i]);
                }
            }
        }
    }

    /// Inserts `key -> value`. The key must not already be present (callers
    /// check with [`Self::get_mut`] first).
    pub fn insert(&mut self, key: SliceKey, value: V) {
        match self.insert_rec(self.root, key, value) {
            Up::Done => {}
            Up::Split(sep, rid) => {
                let new_root = SNode::Inner {
                    keys: vec![sep],
                    children: vec![self.root, rid],
                };
                self.nodes.push(new_root);
                self.root = (self.nodes.len() - 1) as NodeId;
            }
        }
        self.len += 1;
    }

    fn insert_rec(&mut self, id: NodeId, key: SliceKey, value: V) -> Up {
        let child_slot = match &self.nodes[id as usize] {
            SNode::Leaf { .. } => None,
            SNode::Inner { keys, children } => {
                let ci = keys.partition_point(|k| k <= &key);
                Some((ci, children[ci]))
            }
        };
        match child_slot {
            None => {
                let SNode::Leaf { keys, vals, next } = &mut self.nodes[id as usize] else {
                    unreachable!()
                };
                let pos = keys.partition_point(|k| k < &key);
                debug_assert!(pos >= keys.len() || keys[pos] != key, "duplicate slice key");
                keys.insert(pos, key);
                vals.insert(pos, value);
                if keys.len() <= FANOUT {
                    return Up::Done;
                }
                let mid = keys.len() / 2;
                let r_keys = keys.split_off(mid);
                let r_vals = vals.split_off(mid);
                let sep = r_keys[0];
                let old_next = *next;
                self.nodes.push(SNode::Leaf {
                    keys: r_keys,
                    vals: r_vals,
                    next: old_next,
                });
                let rid = (self.nodes.len() - 1) as NodeId;
                let SNode::Leaf { next, .. } = &mut self.nodes[id as usize] else {
                    unreachable!()
                };
                *next = rid;
                Up::Split(sep, rid)
            }
            Some((ci, child)) => match self.insert_rec(child, key, value) {
                Up::Done => Up::Done,
                Up::Split(sep, new_child) => {
                    let SNode::Inner { keys, children } = &mut self.nodes[id as usize] else {
                        unreachable!()
                    };
                    keys.insert(ci, sep);
                    children.insert(ci + 1, new_child);
                    if children.len() <= FANOUT {
                        return Up::Done;
                    }
                    let mid = keys.len() / 2;
                    let up = keys[mid];
                    let r_keys = keys.split_off(mid + 1);
                    keys.pop();
                    let r_children = children.split_off(mid + 1);
                    self.nodes.push(SNode::Inner {
                        keys: r_keys,
                        children: r_children,
                    });
                    Up::Split(up, (self.nodes.len() - 1) as NodeId)
                }
            },
        }
    }

    /// Removes `key` (no page rebalancing; Masstree compacts via rebuild).
    pub fn remove(&mut self, key: &SliceKey) -> Option<V> {
        let leaf = self.find_leaf(key);
        let SNode::Leaf { keys, vals, .. } = &mut self.nodes[leaf as usize] else {
            unreachable!()
        };
        match keys.binary_search(key) {
            Ok(i) => {
                keys.remove(i);
                self.len -= 1;
                Some(vals.remove(i))
            }
            Err(_) => None,
        }
    }

    /// Visits entries in key order starting at the first key `>= low`,
    /// until `f` returns `false`.
    pub fn range_from(&self, low: &SliceKey, f: &mut dyn FnMut(&SliceKey, &V) -> bool) {
        let mut id = self.find_leaf(low);
        let mut start = {
            let SNode::Leaf { keys, .. } = &self.nodes[id as usize] else {
                unreachable!()
            };
            keys.partition_point(|k| k < low)
        };
        loop {
            let SNode::Leaf { keys, vals, next } = &self.nodes[id as usize] else {
                unreachable!()
            };
            for i in start..keys.len() {
                if !f(&keys[i], &vals[i]) {
                    return;
                }
            }
            if *next == NIL {
                return;
            }
            id = *next;
            start = 0;
        }
    }

    /// Visits all entries in key order.
    pub fn for_each(&self, f: &mut dyn FnMut(&SliceKey, &V) -> bool) {
        self.range_from(&(0, 0), f);
    }

    /// Heap bytes of the tree structure (excluding heap data owned by `V`s,
    /// which callers account for via [`Self::for_each`]).
    pub fn mem_usage(&self) -> usize {
        let mut total = vec_bytes(&self.nodes);
        for n in &self.nodes {
            match n {
                SNode::Leaf { keys, vals, .. } => {
                    total += vec_bytes(keys) + vec_bytes(vals);
                }
                SNode::Inner { keys, children } => {
                    total += vec_bytes(keys) + vec_bytes(children);
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t: SliceTree<u64> = SliceTree::default();
        for i in 0..1000u64 {
            t.insert((i * 3, 8), i);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(t.get(&(i * 3, 8)), Some(&i));
            assert_eq!(t.get(&(i * 3 + 1, 8)), None);
        }
        assert_eq!(t.remove(&(30, 8)), Some(10));
        assert_eq!(t.get(&(30, 8)), None);
        assert_eq!(t.len(), 999);
    }

    #[test]
    fn len_distinguishes_keys() {
        let mut t: SliceTree<u64> = SliceTree::default();
        t.insert((42, 2), 1);
        t.insert((42, 8), 2);
        assert_eq!(t.get(&(42, 2)), Some(&1));
        assert_eq!(t.get(&(42, 8)), Some(&2));
        assert_eq!(t.get(&(42, 5)), None);
    }

    #[test]
    fn range_from_ordering() {
        let mut t: SliceTree<u64> = SliceTree::default();
        for i in (0..500u64).rev() {
            t.insert((i * 2, 8), i);
        }
        let mut got = Vec::new();
        t.range_from(&(100, 0), &mut |k, _v| {
            got.push(k.0);
            got.len() < 5
        });
        assert_eq!(got, vec![100, 102, 104, 106, 108]);
    }
}
