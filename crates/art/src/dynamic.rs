//! Dynamic Adaptive Radix Tree.

use memtree_common::key::common_prefix_len;
use memtree_common::probe::ProbeStats;
use memtree_common::traits::{BatchProbe, OrderedIndex, Value};

type Child = Option<Box<Node>>;

#[derive(Debug)]
enum Node {
    Leaf {
        /// Full key (lazy expansion keeps single-key paths collapsed).
        key: Box<[u8]>,
        value: Value,
    },
    Inner(Box<Inner>),
}

#[derive(Debug)]
struct Inner {
    /// Compressed path below the parent edge (may be empty).
    prefix: Vec<u8>,
    /// Value for the key that ends exactly at this node.
    terminal: Option<Value>,
    children: Children,
}

#[derive(Debug)]
enum Children {
    N4 {
        keys: [u8; 4],
        ptrs: [Child; 4],
        len: u8,
    },
    N16(Box<N16>),
    N48 {
        /// 256-entry indirection; `INVALID48` marks an absent branch.
        index: Box<[u8; 256]>,
        ptrs: Box<[Child; 48]>,
        len: u8,
    },
    N256 {
        ptrs: Box<[Child; 256]>,
        len: u16,
    },
}

const INVALID48: u8 = 0xFF;

/// Boxed Node16 payload (keeps the `Children` enum small: Node4 inline).
#[derive(Debug)]
struct N16 {
    keys: [u8; 16],
    ptrs: [Child; 16],
    len: u8,
}

impl Children {
    fn new4() -> Self {
        Children::N4 {
            keys: [0; 4],
            ptrs: Default::default(),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        match self {
            Children::N4 { len, .. } | Children::N48 { len, .. } => *len as usize,
            Children::N16(n) => n.len as usize,
            Children::N256 { len, .. } => *len as usize,
        }
    }

    fn get(&self, byte: u8) -> Option<&Node> {
        match self {
            Children::N4 { keys, ptrs, len } => keys[..*len as usize]
                .iter()
                .position(|&k| k == byte)
                .and_then(|i| ptrs[i].as_deref()),
            Children::N16(n) => n.keys[..n.len as usize]
                .binary_search(&byte)
                .ok()
                .and_then(|i| n.ptrs[i].as_deref()),
            Children::N48 { index, ptrs, .. } => {
                let slot = index[byte as usize];
                if slot == INVALID48 {
                    None
                } else {
                    ptrs[slot as usize].as_deref()
                }
            }
            Children::N256 { ptrs, .. } => ptrs[byte as usize].as_deref(),
        }
    }

    fn get_mut(&mut self, byte: u8) -> Option<&mut Box<Node>> {
        match self {
            Children::N4 { keys, ptrs, len } => keys[..*len as usize]
                .iter()
                .position(|&k| k == byte)
                .and_then(|i| ptrs[i].as_mut()),
            Children::N16(n) => n.keys[..n.len as usize]
                .binary_search(&byte)
                .ok()
                .and_then(|i| n.ptrs[i].as_mut()),
            Children::N48 { index, ptrs, .. } => {
                let slot = index[byte as usize];
                if slot == INVALID48 {
                    None
                } else {
                    ptrs[slot as usize].as_mut()
                }
            }
            Children::N256 { ptrs, .. } => ptrs[byte as usize].as_mut(),
        }
    }

    /// Adds a branch, growing the layout when full. `byte` must be absent.
    fn add(&mut self, byte: u8, node: Box<Node>) {
        match self {
            Children::N4 { keys, ptrs, len } => {
                let n = *len as usize;
                if n < 4 {
                    let pos = keys[..n].partition_point(|&k| k < byte);
                    keys[pos..n + 1].rotate_right(1);
                    keys[pos] = byte;
                    ptrs[pos..n + 1].rotate_right(1);
                    ptrs[pos] = Some(node);
                    *len += 1;
                    return;
                }
                self.grow();
                self.add(byte, node);
            }
            Children::N16(n16) => {
                let n = n16.len as usize;
                if n < 16 {
                    let pos = n16.keys[..n].partition_point(|&k| k < byte);
                    n16.keys[pos..n + 1].rotate_right(1);
                    n16.keys[pos] = byte;
                    n16.ptrs[pos..n + 1].rotate_right(1);
                    n16.ptrs[pos] = Some(node);
                    n16.len += 1;
                    return;
                }
                self.grow();
                self.add(byte, node);
            }
            Children::N48 { index, ptrs, len } => {
                let n = *len as usize;
                if n < 48 {
                    index[byte as usize] = n as u8;
                    ptrs[n] = Some(node);
                    *len += 1;
                    return;
                }
                self.grow();
                self.add(byte, node);
            }
            Children::N256 { ptrs, len } => {
                debug_assert!(ptrs[byte as usize].is_none());
                ptrs[byte as usize] = Some(node);
                *len += 1;
            }
        }
    }

    /// Grows to the next larger layout.
    fn grow(&mut self) {
        *self = match std::mem::replace(self, Children::new4()) {
            Children::N4 { keys, mut ptrs, len } => {
                let mut n16 = Box::new(N16 {
                    keys: [0; 16],
                    ptrs: Default::default(),
                    len,
                });
                n16.keys[..4].copy_from_slice(&keys);
                for (i, p) in ptrs.iter_mut().enumerate() {
                    n16.ptrs[i] = p.take();
                }
                Children::N16(n16)
            }
            Children::N16(mut n16) => {
                let mut index = Box::new([INVALID48; 256]);
                let mut nptrs: Box<[Child; 48]> = Box::new(std::array::from_fn(|_| None));
                for i in 0..n16.len as usize {
                    index[n16.keys[i] as usize] = i as u8;
                    nptrs[i] = n16.ptrs[i].take();
                }
                Children::N48 {
                    index,
                    ptrs: nptrs,
                    len: n16.len,
                }
            }
            Children::N48 {
                index, mut ptrs, len, ..
            } => {
                let mut nptrs: Box<[Child; 256]> = Box::new(std::array::from_fn(|_| None));
                for b in 0..256 {
                    let slot = index[b];
                    if slot != INVALID48 {
                        nptrs[b] = ptrs[slot as usize].take();
                    }
                }
                Children::N256 {
                    ptrs: nptrs,
                    len: len as u16,
                }
            }
            n256 => n256,
        };
    }

    /// Removes the branch for `byte`, returning the child. Layouts are not
    /// shrunk (the thesis's ART shrinks only on rebuild via C-ART).
    fn remove(&mut self, byte: u8) -> Option<Box<Node>> {
        match self {
            Children::N4 { keys, ptrs, len } => {
                let n = *len as usize;
                let pos = keys[..n].iter().position(|&k| k == byte)?;
                let node = ptrs[pos].take();
                keys[pos..n].rotate_left(1);
                ptrs[pos..n].rotate_left(1);
                *len -= 1;
                node
            }
            Children::N16(n16) => {
                let n = n16.len as usize;
                let pos = n16.keys[..n].binary_search(&byte).ok()?;
                let node = n16.ptrs[pos].take();
                n16.keys[pos..n].rotate_left(1);
                n16.ptrs[pos..n].rotate_left(1);
                n16.len -= 1;
                node
            }
            Children::N48 { index, ptrs, len } => {
                let slot = index[byte as usize];
                if slot == INVALID48 {
                    return None;
                }
                index[byte as usize] = INVALID48;
                let node = ptrs[slot as usize].take();
                *len -= 1;
                node
            }
            Children::N256 { ptrs, len } => {
                let node = ptrs[byte as usize].take()?;
                *len -= 1;
                Some(node)
            }
        }
    }

    /// Iterates branches in ascending byte order.
    fn for_each(&self, f: &mut dyn FnMut(u8, &Node) -> bool) -> bool {
        match self {
            Children::N4 { keys, ptrs, len } => {
                for i in 0..*len as usize {
                    if !f(keys[i], ptrs[i].as_deref().unwrap()) {
                        return false;
                    }
                }
            }
            Children::N16(n16) => {
                for i in 0..n16.len as usize {
                    if !f(n16.keys[i], n16.ptrs[i].as_deref().unwrap()) {
                        return false;
                    }
                }
            }
            Children::N48 { index, ptrs, .. } => {
                for b in 0..256usize {
                    let slot = index[b];
                    if slot != INVALID48
                        && !f(b as u8, ptrs[slot as usize].as_deref().unwrap())
                    {
                        return false;
                    }
                }
            }
            Children::N256 { ptrs, .. } => {
                for (b, p) in ptrs.iter().enumerate() {
                    if let Some(node) = p {
                        if !f(b as u8, node) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// The single remaining (byte, child), if exactly one branch remains.
    fn only_child(&mut self) -> Option<(u8, Box<Node>)> {
        if self.len() != 1 {
            return None;
        }
        let mut found = None;
        match self {
            Children::N4 { keys, ptrs, len } => {
                found = Some((keys[0], ptrs[0].take().unwrap()));
                *len = 0;
            }
            Children::N16(n16) => {
                found = Some((n16.keys[0], n16.ptrs[0].take().unwrap()));
                n16.len = 0;
            }
            Children::N48 { index, ptrs, len } => {
                for b in 0..256usize {
                    if index[b] != INVALID48 {
                        found = Some((b as u8, ptrs[index[b] as usize].take().unwrap()));
                        index[b] = INVALID48;
                        *len = 0;
                        break;
                    }
                }
            }
            Children::N256 { ptrs, len } => {
                for (b, p) in ptrs.iter_mut().enumerate() {
                    if p.is_some() {
                        found = Some((b as u8, p.take().unwrap()));
                        *len = 0;
                        break;
                    }
                }
            }
        }
        found
    }

    /// Heap bytes owned by this layout (excluding the children themselves).
    fn heap_bytes(&self) -> usize {
        match self {
            Children::N4 { .. } => 0,
            Children::N16(_) => std::mem::size_of::<N16>(),
            Children::N48 { .. } => 256 + 48 * std::mem::size_of::<Child>(),
            Children::N256 { .. } => 256 * std::mem::size_of::<Child>(),
        }
    }
}

/// The dynamic Adaptive Radix Tree.
#[derive(Debug, Default)]
pub struct Art {
    root: Child,
    len: usize,
}

impl Art {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert_rec(node: &mut Box<Node>, key: &[u8], depth: usize, val: Value) -> bool {
        match node.as_mut() {
            Node::Leaf { key: lkey, .. } => {
                if lkey.as_ref() == key {
                    return false; // duplicate
                }
                // Split the collapsed path: new inner node over the common
                // prefix of both suffixes.
                let lsuf: Box<[u8]> = lkey[depth..].into();
                let ksuf = &key[depth..];
                let cp = common_prefix_len(&lsuf, ksuf);
                let mut inner = Inner {
                    prefix: ksuf[..cp].to_vec(),
                    terminal: None,
                    children: Children::new4(),
                };
                let old_leaf = std::mem::replace(
                    node,
                    Box::new(Node::Leaf {
                        key: Box::from(&[][..]),
                        value: 0,
                    }),
                );
                let Node::Leaf {
                    key: okey,
                    value: oval,
                } = *old_leaf
                else {
                    unreachable!()
                };
                if lsuf.len() == cp {
                    inner.terminal = Some(oval);
                } else {
                    inner.children.add(
                        lsuf[cp],
                        Box::new(Node::Leaf {
                            key: okey,
                            value: oval,
                        }),
                    );
                }
                if ksuf.len() == cp {
                    inner.terminal = Some(val);
                } else {
                    inner.children.add(
                        ksuf[cp],
                        Box::new(Node::Leaf {
                            key: key.into(),
                            value: val,
                        }),
                    );
                }
                **node = Node::Inner(Box::new(inner));
                true
            }
            Node::Inner(inner) => {
                let ksuf = &key[depth..];
                let cp = common_prefix_len(&inner.prefix, ksuf);
                if cp < inner.prefix.len() {
                    // Prefix mismatch: split this node at cp.
                    let mut new_inner = Inner {
                        prefix: inner.prefix[..cp].to_vec(),
                        terminal: None,
                        children: Children::new4(),
                    };
                    let old_branch_byte = inner.prefix[cp];
                    inner.prefix.drain(..cp + 1);
                    let old_node = std::mem::replace(
                        node,
                        Box::new(Node::Leaf {
                            key: Box::from(&[][..]),
                            value: 0,
                        }),
                    );
                    new_inner.children.add(old_branch_byte, old_node);
                    if ksuf.len() == cp {
                        new_inner.terminal = Some(val);
                    } else {
                        new_inner.children.add(
                            ksuf[cp],
                            Box::new(Node::Leaf {
                                key: key.into(),
                                value: val,
                            }),
                        );
                    }
                    **node = Node::Inner(Box::new(new_inner));
                    return true;
                }
                let depth = depth + inner.prefix.len();
                if depth == key.len() {
                    if inner.terminal.is_some() {
                        return false;
                    }
                    inner.terminal = Some(val);
                    return true;
                }
                let b = key[depth];
                match inner.children.get_mut(b) {
                    Some(child) => Self::insert_rec(child, key, depth + 1, val),
                    None => {
                        inner.children.add(
                            b,
                            Box::new(Node::Leaf {
                                key: key.into(),
                                value: val,
                            }),
                        );
                        true
                    }
                }
            }
        }
    }

    fn find<'a>(&'a self, key: &[u8]) -> Option<&'a Value> {
        let mut node = self.root.as_deref()?;
        let mut depth = 0usize;
        loop {
            match node {
                Node::Leaf { key: lkey, value } => {
                    return (lkey.as_ref() == key).then_some(value);
                }
                Node::Inner(inner) => {
                    let ksuf = &key[depth..];
                    if !ksuf.starts_with(&inner.prefix) {
                        return None;
                    }
                    depth += inner.prefix.len();
                    if depth == key.len() {
                        return inner.terminal.as_ref();
                    }
                    node = inner.children.get(key[depth])?;
                    depth += 1;
                }
            }
        }
    }

    /// Removes `key`; returns true when the node subtree became empty and
    /// the parent should drop the edge. Collapses single-branch nodes.
    fn remove_rec(node: &mut Box<Node>, key: &[u8], depth: usize, removed: &mut bool) -> bool {
        match node.as_mut() {
            Node::Leaf { key: lkey, .. } => {
                if lkey.as_ref() == key {
                    *removed = true;
                    true // drop me
                } else {
                    false
                }
            }
            Node::Inner(inner) => {
                let ksuf = &key[depth..];
                if !ksuf.starts_with(&inner.prefix) {
                    return false;
                }
                let ndepth = depth + inner.prefix.len();
                if ndepth == key.len() {
                    if inner.terminal.take().is_some() {
                        *removed = true;
                    }
                } else if let Some(child) = inner.children.get_mut(key[ndepth]) {
                    if Self::remove_rec(child, key, ndepth + 1, removed) {
                        inner.children.remove(key[ndepth]);
                    }
                }
                if !*removed {
                    return false;
                }
                // Collapse or drop this node if it lost its purpose.
                match (inner.children.len(), inner.terminal.is_some()) {
                    (0, false) => true,
                    (1, false) => {
                        let (byte, child) = inner.children.only_child().unwrap();
                        match *child {
                            Node::Leaf { key, value } => {
                                **node = Node::Leaf { key, value };
                            }
                            Node::Inner(mut cin) => {
                                let mut new_prefix = std::mem::take(&mut inner.prefix);
                                new_prefix.push(byte);
                                new_prefix.extend_from_slice(&cin.prefix);
                                cin.prefix = new_prefix;
                                **node = Node::Inner(cin);
                            }
                        }
                        false
                    }
                    _ => false,
                }
            }
        }
    }

    /// In-order traversal from the first key `>= low`; stops when `f`
    /// returns `false`. `path` carries the bytes leading to `node`.
    fn walk_from(
        node: &Node,
        path: &mut Vec<u8>,
        low: &[u8],
        restricted: bool,
        f: &mut dyn FnMut(&[u8], Value) -> bool,
    ) -> bool {
        match node {
            Node::Leaf { key, value } => {
                if !restricted || key.as_ref() >= low {
                    return f(key, *value);
                }
                true
            }
            Node::Inner(inner) => {
                let depth = path.len();
                let mut restricted = restricted;
                if restricted {
                    // Compare the compressed prefix against low[depth..].
                    let seg_end = (depth + inner.prefix.len()).min(low.len());
                    let seg = &low[depth.min(low.len())..seg_end];
                    match inner.prefix[..seg.len()].cmp(seg) {
                        std::cmp::Ordering::Less => return true, // whole subtree < low
                        std::cmp::Ordering::Greater => restricted = false,
                        std::cmp::Ordering::Equal => {
                            if low.len() <= depth + inner.prefix.len() {
                                // low is exhausted inside/at this prefix.
                                restricted = false;
                            }
                        }
                    }
                }
                path.extend_from_slice(&inner.prefix);
                let ndepth = path.len();
                if !restricted {
                    if let Some(v) = inner.terminal {
                        if !f(path, v) {
                            path.truncate(depth);
                            return false;
                        }
                    }
                }
                let pivot = if restricted { low[ndepth] } else { 0 };
                let cont = inner.children.for_each(&mut |b, child| {
                    if restricted && b < pivot {
                        return true;
                    }
                    path.push(b);
                    let r = Self::walk_from(child, path, low, restricted && b == pivot, f);
                    path.pop();
                    r
                });
                path.truncate(depth);
                cont
            }
        }
    }

    /// Iterates `(key, value)` in order from the first key `>= low` until
    /// `f` returns `false`.
    pub fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        if let Some(root) = self.root.as_deref() {
            let mut path = Vec::new();
            Self::walk_from(root, &mut path, low, !low.is_empty(), f);
        }
    }

    /// Instrumented point query for the Table 2.2 reproduction.
    pub fn get_profiled(&self, key: &[u8]) -> (Option<Value>, ProbeStats) {
        let mut stats = ProbeStats::default();
        let Some(mut node) = self.root.as_deref() else {
            return (None, stats);
        };
        let mut depth = 0usize;
        loop {
            stats.nodes_visited += 1;
            match node {
                Node::Leaf { key: lkey, value } => {
                    stats.key_bytes_compared += lkey.len().min(key.len()) as u64;
                    return ((lkey.as_ref() == key).then_some(*value), stats);
                }
                Node::Inner(inner) => {
                    stats.key_bytes_compared += inner.prefix.len() as u64;
                    let ksuf = &key[depth..];
                    if !ksuf.starts_with(&inner.prefix) {
                        return (None, stats);
                    }
                    depth += inner.prefix.len();
                    if depth == key.len() {
                        return (inner.terminal, stats);
                    }
                    stats.key_bytes_compared += 1;
                    match inner.children.get(key[depth]) {
                        Some(child) => {
                            stats.pointer_derefs += 1;
                            node = child;
                            depth += 1;
                        }
                        None => return (None, stats),
                    }
                }
            }
        }
    }

    fn node_mem(node: &Node) -> usize {
        match node {
            Node::Leaf { key, .. } => std::mem::size_of::<Node>() + key.len(),
            Node::Inner(inner) => {
                let mut total = std::mem::size_of::<Node>()
                    + std::mem::size_of::<Inner>()
                    + inner.prefix.capacity()
                    + inner.children.heap_bytes();
                inner.children.for_each(&mut |_b, child| {
                    total += Self::node_mem(child);
                    true
                });
                total
            }
        }
    }
}

impl OrderedIndex for Art {
    fn insert(&mut self, key: &[u8], value: Value) -> bool {
        match &mut self.root {
            None => {
                self.root = Some(Box::new(Node::Leaf {
                    key: key.into(),
                    value,
                }));
                self.len += 1;
                true
            }
            Some(root) => {
                if Self::insert_rec(root, key, 0, value) {
                    self.len += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        self.find(key).copied()
    }

    fn update(&mut self, key: &[u8], value: Value) -> bool {
        // Dedicated mutable descent (cheap, no structural changes).
        let Some(mut node) = self.root.as_deref_mut() else {
            return false;
        };
        let mut depth = 0usize;
        loop {
            match node {
                Node::Leaf { key: lkey, value: v } => {
                    if lkey.as_ref() == key {
                        *v = value;
                        return true;
                    }
                    return false;
                }
                Node::Inner(inner) => {
                    let ksuf = &key[depth..];
                    if !ksuf.starts_with(&inner.prefix) {
                        return false;
                    }
                    depth += inner.prefix.len();
                    if depth == key.len() {
                        return match &mut inner.terminal {
                            Some(t) => {
                                *t = value;
                                true
                            }
                            None => false,
                        };
                    }
                    match inner.children.get_mut(key[depth]) {
                        Some(child) => {
                            node = child.as_mut();
                            depth += 1;
                        }
                        None => return false,
                    }
                }
            }
        }
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        let Some(root) = &mut self.root else {
            return false;
        };
        let mut removed = false;
        if Self::remove_rec(root, key, 0, &mut removed) {
            self.root = None;
        }
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let before = out.len();
        self.range_from(low, &mut |_k, v| {
            if out.len() - before == n {
                return false;
            }
            out.push(v);
            out.len() - before < n
        });
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_usage(&self) -> usize {
        self.root.as_deref().map_or(0, Self::node_mem)
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        Art::range_from(self, &[], &mut |k, v| {
            f(k, v);
            true
        });
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        Art::range_from(self, low, f);
    }

    fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }
}
/// Per-key fallback `multi_get`; no batched descent for this structure.
impl BatchProbe for Art {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    #[test]
    fn insert_get_random_u64() {
        let mut t = Art::new();
        let mut state = 1u64;
        let mut keys = Vec::new();
        for _ in 0..5000 {
            let k = memtree_common::hash::splitmix64(&mut state);
            if t.insert(&encode_u64(k), k) {
                keys.push(k);
            }
        }
        assert_eq!(t.len(), keys.len());
        for &k in &keys {
            assert_eq!(t.get(&encode_u64(k)), Some(k));
        }
        assert_eq!(t.get(&encode_u64(keys[0] ^ 1)), None);
    }

    #[test]
    fn node_growth_through_all_layouts() {
        // Root fanout 256 forces N4 -> N16 -> N48 -> N256 growth.
        let mut t = Art::new();
        for b in 0..=255u8 {
            assert!(t.insert(&[b, 1, 2], b as u64));
        }
        for b in 0..=255u8 {
            assert_eq!(t.get(&[b, 1, 2]), Some(b as u64), "byte {b}");
        }
        assert_eq!(t.get(&[0, 1]), None);
    }

    #[test]
    fn prefix_keys_coexist() {
        let mut t = Art::new();
        assert!(t.insert(b"f", 1));
        assert!(t.insert(b"fa", 2));
        assert!(t.insert(b"fas", 3));
        assert!(t.insert(b"fast", 4));
        assert!(t.insert(b"fat", 5));
        for (k, v) in [
            (&b"f"[..], 1),
            (b"fa", 2),
            (b"fas", 3),
            (b"fast", 4),
            (b"fat", 5),
        ] {
            assert_eq!(t.get(k), Some(v));
        }
        assert_eq!(t.get(b"fas_"), None);
        assert_eq!(t.get(b""), None);
        // Duplicate of a terminal value.
        assert!(!t.insert(b"fa", 9));
        assert_eq!(t.get(b"fa"), Some(2));
    }

    #[test]
    fn path_compression_split() {
        let mut t = Art::new();
        assert!(t.insert(b"abcdefgh1", 1));
        assert!(t.insert(b"abcdefgh2", 2)); // shares 8-byte prefix
        assert!(t.insert(b"abcdXYZ", 3)); // splits the compressed prefix
        assert_eq!(t.get(b"abcdefgh1"), Some(1));
        assert_eq!(t.get(b"abcdefgh2"), Some(2));
        assert_eq!(t.get(b"abcdXYZ"), Some(3));
        assert_eq!(t.get(b"abcd"), None);
    }

    #[test]
    fn update_and_remove_with_collapse() {
        let mut t = Art::new();
        for (i, k) in [&b"romane"[..], b"romanus", b"romulus", b"rubens", b"ruber"]
            .iter()
            .enumerate()
        {
            t.insert(k, i as u64);
        }
        assert!(t.update(b"romanus", 99));
        assert_eq!(t.get(b"romanus"), Some(99));
        assert!(t.remove(b"romanus"));
        assert_eq!(t.get(b"romanus"), None);
        assert_eq!(t.get(b"romane"), Some(0));
        assert!(t.remove(b"romane"));
        assert!(t.remove(b"romulus"));
        assert_eq!(t.get(b"rubens"), Some(3));
        assert_eq!(t.get(b"ruber"), Some(4));
        assert_eq!(t.len(), 2);
        assert!(t.remove(b"rubens"));
        assert!(t.remove(b"ruber"));
        assert_eq!(t.len(), 0);
        assert!(!t.remove(b"ruber"));
        // Tree usable after emptying.
        assert!(t.insert(b"x", 1));
        assert_eq!(t.get(b"x"), Some(1));
    }

    #[test]
    fn remove_terminal_keeps_subtree() {
        let mut t = Art::new();
        t.insert(b"ab", 1);
        t.insert(b"abc", 2);
        t.insert(b"abd", 3);
        assert!(t.remove(b"ab"));
        assert_eq!(t.get(b"abc"), Some(2));
        assert_eq!(t.get(b"abd"), Some(3));
        assert_eq!(t.get(b"ab"), None);
    }

    #[test]
    fn sorted_iteration_and_scan() {
        let mut t = Art::new();
        let mut state = 9u64;
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for _ in 0..2000 {
            let k = memtree_common::hash::splitmix64(&mut state) % 50_000;
            let key = encode_u64(k).to_vec();
            if t.insert(&key, k) {
                keys.push(key);
            }
        }
        keys.sort();
        let mut got = Vec::new();
        t.for_each_sorted(&mut |k, _| got.push(k.to_vec()));
        assert_eq!(got, keys);

        // Scan from an arbitrary point matches the sorted list.
        let low = encode_u64(25_000);
        let expect: Vec<Value> = keys
            .iter()
            .filter(|k| k.as_slice() >= low.as_slice())
            .take(10)
            .map(|k| memtree_common::key::decode_u64(k))
            .collect();
        let mut out = Vec::new();
        t.scan(&low, 10, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn scan_with_prefix_keys() {
        let mut t = Art::new();
        for (i, k) in [&b"a"[..], b"ab", b"abc", b"b", b"ba"].iter().enumerate() {
            t.insert(k, i as u64);
        }
        let mut out = Vec::new();
        t.scan(b"ab", 10, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4]);
        out.clear();
        t.scan(b"aa", 2, &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn profiled_get_fewer_nodes_than_btree_depth() {
        let mut t = Art::new();
        for i in 0..10_000u64 {
            t.insert(&encode_u64(i), i);
        }
        let (v, stats) = t.get_profiled(&encode_u64(7777));
        assert_eq!(v, Some(7777));
        // 8-byte keys bound the trie depth.
        assert!(stats.nodes_visited <= 9);
    }

    #[test]
    fn mem_usage_reflects_node_types() {
        let mut sparse = Art::new();
        let mut dense = Art::new();
        for i in 0..256u64 {
            // sparse: unique high bytes -> big fanout at root
            sparse.insert(&encode_u64(i << 56), i);
            // dense: sequential -> shared prefix, small fanout
            dense.insert(&encode_u64(i), i);
        }
        assert!(sparse.mem_usage() > 0 && dense.mem_usage() > 0);
    }
}
