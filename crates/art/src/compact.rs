//! Compact ART (C-ART): the static, D-to-S-transformed ART (§2.2).
//!
//! Node layouts are customized to the exact fanout `n` of each node: the
//! sorted key/child arrays of Layout 1 when `n <= 227`, the 256-slot direct
//! child array of Layout 3 otherwise (the break-even point from Figure 2.2).
//! All per-node storage is flattened into shared arenas — there are no
//! per-node allocations and no stored sibling pointers.

use memtree_common::mem::vec_bytes;
use memtree_common::traits::{BatchProbe, StaticIndex, Value};

/// Fanout above which Layout 3 (direct 256-slot array) is smaller than
/// Layout 1 (key byte + 4-byte child ref per branch): `256*4 < n*(1+4)`.
pub const LAYOUT3_THRESHOLD: usize = 227;

const NONE: u32 = u32::MAX;
const LEAF_BIT: u32 = 0x8000_0000;
const LAYOUT3: u16 = u16::MAX;

#[derive(Debug, Clone, Copy)]
struct NodeMeta {
    prefix_start: u32,
    prefix_len: u16,
    /// Number of Layout-1 edges, or [`LAYOUT3`].
    edges_len: u16,
    /// Start into `edge_keys`/`edge_children` (Layout 1) or into `child256`
    /// (Layout 3, always a multiple of 256).
    edges_start: u32,
    /// `0` = no terminal value; otherwise `terminal_vals[terminal - 1]`.
    terminal: u32,
}

/// The static Compact ART.
#[derive(Debug)]
pub struct CompactArt {
    meta: Vec<NodeMeta>,
    prefix_bytes: Vec<u8>,
    edge_keys: Vec<u8>,
    edge_children: Vec<u32>,
    child256: Vec<u32>,
    leaf_bytes: Vec<u8>,
    leaf_offsets: Vec<u32>,
    leaf_vals: Vec<Value>,
    terminal_vals: Vec<Value>,
    root: u32,
    len: usize,
}

impl CompactArt {
    #[inline]
    fn leaf_suffix(&self, leaf: usize) -> &[u8] {
        &self.leaf_bytes[self.leaf_offsets[leaf] as usize..self.leaf_offsets[leaf + 1] as usize]
    }

    #[inline]
    fn prefix(&self, m: &NodeMeta) -> &[u8] {
        &self.prefix_bytes[m.prefix_start as usize..m.prefix_start as usize + m.prefix_len as usize]
    }

    /// Child reference for `byte` under node `m`, or `NONE`.
    fn child(&self, m: &NodeMeta, byte: u8) -> u32 {
        if m.edges_len == LAYOUT3 {
            self.child256[m.edges_start as usize + byte as usize]
        } else {
            let s = m.edges_start as usize;
            let e = s + m.edges_len as usize;
            match self.edge_keys[s..e].binary_search(&byte) {
                Ok(i) => self.edge_children[s + i],
                Err(_) => NONE,
            }
        }
    }

    fn add_leaf(&mut self, key: &[u8], depth: usize, val: Value) -> u32 {
        let idx = self.leaf_vals.len();
        self.leaf_bytes.extend_from_slice(&key[depth..]);
        self.leaf_offsets.push(self.leaf_bytes.len() as u32);
        self.leaf_vals.push(val);
        LEAF_BIT | idx as u32
    }

    /// Builds the subtree for the sorted, unique `entries` slice, whose keys
    /// all share `depth` leading bytes with each other. Returns a child ref.
    fn build_node(&mut self, entries: &[(Vec<u8>, Value)], depth: usize) -> u32 {
        debug_assert!(!entries.is_empty());
        if entries.len() == 1 {
            return self.add_leaf(&entries[0].0, depth, entries[0].1);
        }
        // Common prefix of the whole range = cp(first, last).
        let first = &entries[0].0;
        let last = &entries[entries.len() - 1].0;
        let cp = first[depth..]
            .iter()
            .zip(&last[depth..])
            .take_while(|(a, b)| a == b)
            .count();
        let ndepth = depth + cp;
        let prefix_start = self.prefix_bytes.len() as u32;
        self.prefix_bytes.extend_from_slice(&first[depth..ndepth]);

        let mut terminal = 0u32;
        let mut rest = entries;
        if first.len() == ndepth {
            self.terminal_vals.push(entries[0].1);
            terminal = self.terminal_vals.len() as u32;
            rest = &entries[1..];
        }
        // Partition by the branch byte at ndepth and build children.
        let mut edges: Vec<(u8, u32)> = Vec::new();
        let mut i = 0usize;
        while i < rest.len() {
            let b = rest[i].0[ndepth];
            let mut j = i + 1;
            while j < rest.len() && rest[j].0[ndepth] == b {
                j += 1;
            }
            let child = self.build_node(&rest[i..j], ndepth + 1);
            edges.push((b, child));
            i = j;
        }
        // Emit the node with a size-customized layout.
        let (edges_start, edges_len) = if edges.len() > LAYOUT3_THRESHOLD {
            let start = self.child256.len() as u32;
            self.child256.resize(self.child256.len() + 256, NONE);
            for (b, c) in &edges {
                self.child256[start as usize + *b as usize] = *c;
            }
            (start, LAYOUT3)
        } else {
            let start = self.edge_keys.len() as u32;
            for (b, c) in &edges {
                self.edge_keys.push(*b);
                self.edge_children.push(*c);
            }
            (start, edges.len() as u16)
        };
        self.meta.push(NodeMeta {
            prefix_start,
            prefix_len: cp as u16,
            edges_len,
            edges_start,
            terminal,
        });
        (self.meta.len() - 1) as u32
    }

    /// Sorted-batch descent for [`BatchProbe::multi_get`]: every probe in
    /// `group` (ascending key order) has already matched the path leading
    /// to `child` and consumed `depth` key bytes. Runs of keys sharing the
    /// next branch byte descend together, so each node's prefix bytes and
    /// edge array are resolved once per run instead of once per key.
    fn batch_descend(
        &self,
        child: u32,
        keys: &[&[u8]],
        group: &[u32],
        depth: usize,
        base: usize,
        out: &mut [Option<Value>],
    ) {
        if child == NONE {
            return;
        }
        if child & LEAF_BIT != 0 {
            let leaf = (child & !LEAF_BIT) as usize;
            let suffix = self.leaf_suffix(leaf);
            for &gi in group {
                if &keys[gi as usize][depth..] == suffix {
                    out[base + gi as usize] = Some(self.leaf_vals[leaf]);
                }
            }
            return;
        }
        let m = self.meta[child as usize];
        let prefix = self.prefix(&m);
        let ndepth = depth + prefix.len();
        let mut i = 0usize;
        while i < group.len() {
            let key = keys[group[i] as usize];
            if !key[depth..].starts_with(prefix) {
                i += 1; // prefix mismatch: stays a miss
                continue;
            }
            if key.len() == ndepth {
                if m.terminal != 0 {
                    out[base + group[i] as usize] =
                        Some(self.terminal_vals[m.terminal as usize - 1]);
                }
                i += 1;
                continue;
            }
            let b = key[ndepth];
            // Sorted order makes keys sharing this branch byte contiguous.
            let mut j = i + 1;
            while j < group.len() {
                let k2 = keys[group[j] as usize];
                if k2.len() > ndepth && k2[depth..].starts_with(prefix) && k2[ndepth] == b {
                    j += 1;
                } else {
                    break;
                }
            }
            self.batch_descend(self.child(&m, b), keys, &group[i..j], ndepth + 1, base, out);
            i = j;
        }
    }

    /// In-order traversal from the first key `>= low`.
    fn walk_from(
        &self,
        child: u32,
        path: &mut Vec<u8>,
        low: &[u8],
        restricted: bool,
        f: &mut dyn FnMut(&[u8], Value) -> bool,
    ) -> bool {
        if child == NONE {
            return true;
        }
        if child & LEAF_BIT != 0 {
            let leaf = (child & !LEAF_BIT) as usize;
            let suffix = self.leaf_suffix(leaf);
            if restricted {
                let tail = &low[path.len().min(low.len())..];
                if suffix < tail {
                    return true;
                }
            }
            let depth = path.len();
            path.extend_from_slice(suffix);
            let cont = f(path, self.leaf_vals[leaf]);
            path.truncate(depth);
            return cont;
        }
        let m = &self.meta[child as usize];
        let prefix = self.prefix(m);
        let depth = path.len();
        let mut restricted = restricted;
        if restricted {
            let seg_end = (depth + prefix.len()).min(low.len());
            let seg = &low[depth.min(low.len())..seg_end];
            match prefix[..seg.len()].cmp(seg) {
                std::cmp::Ordering::Less => return true,
                std::cmp::Ordering::Greater => restricted = false,
                std::cmp::Ordering::Equal => {
                    if low.len() <= depth + prefix.len() {
                        restricted = false;
                    }
                }
            }
        }
        path.extend_from_slice(prefix);
        let ndepth = path.len();
        if !restricted && m.terminal != 0
            && !f(path, self.terminal_vals[m.terminal as usize - 1]) {
                path.truncate(depth);
                return false;
            }
        let pivot = if restricted { low[ndepth] } else { 0 };
        let mut cont = true;
        if m.edges_len == LAYOUT3 {
            for b in pivot..=255 {
                let c = self.child256[m.edges_start as usize + b as usize];
                if c != NONE {
                    path.push(b);
                    cont = self.walk_from(c, path, low, restricted && b == pivot, f);
                    path.pop();
                    if !cont {
                        break;
                    }
                }
                if b == 255 {
                    break;
                }
            }
        } else {
            let s = m.edges_start as usize;
            for i in 0..m.edges_len as usize {
                let b = self.edge_keys[s + i];
                if restricted && b < pivot {
                    continue;
                }
                path.push(b);
                cont = self.walk_from(
                    self.edge_children[s + i],
                    path,
                    low,
                    restricted && b == pivot,
                    f,
                );
                path.pop();
                if !cont {
                    break;
                }
            }
        }
        path.truncate(depth);
        cont
    }

    /// Iterates `(key, value)` in order from the first key `>= low` until
    /// `f` returns `false`.
    pub fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        let mut path = Vec::new();
        self.walk_from(self.root, &mut path, low, !low.is_empty(), f);
    }
}

impl StaticIndex for CompactArt {
    fn build(entries: &[(Vec<u8>, Value)]) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "input must be sorted and duplicate-free"
        );
        let mut art = Self {
            meta: Vec::new(),
            prefix_bytes: Vec::new(),
            edge_keys: Vec::new(),
            edge_children: Vec::new(),
            child256: Vec::new(),
            leaf_bytes: Vec::new(),
            leaf_offsets: vec![0],
            leaf_vals: Vec::new(),
            terminal_vals: Vec::new(),
            root: NONE,
            len: entries.len(),
        };
        if !entries.is_empty() {
            art.root = art.build_node(entries, 0);
        }
        art.prefix_bytes.shrink_to_fit();
        art.edge_keys.shrink_to_fit();
        art.edge_children.shrink_to_fit();
        art.leaf_bytes.shrink_to_fit();
        art
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        let mut child = self.root;
        let mut depth = 0usize;
        loop {
            if child == NONE {
                return None;
            }
            if child & LEAF_BIT != 0 {
                let leaf = (child & !LEAF_BIT) as usize;
                return (self.leaf_suffix(leaf) == &key[depth..])
                    .then(|| self.leaf_vals[leaf]);
            }
            let m = &self.meta[child as usize];
            let prefix = self.prefix(m);
            if !key[depth..].starts_with(prefix) {
                return None;
            }
            depth += prefix.len();
            if depth == key.len() {
                return (m.terminal != 0).then(|| self.terminal_vals[m.terminal as usize - 1]);
            }
            child = self.child(m, key[depth]);
            depth += 1;
        }
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let before = out.len();
        self.range_from(low, &mut |_k, v| {
            if out.len() - before == n {
                return false;
            }
            out.push(v);
            out.len() - before < n
        });
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_usage(&self) -> usize {
        vec_bytes(&self.meta)
            + vec_bytes(&self.prefix_bytes)
            + vec_bytes(&self.edge_keys)
            + vec_bytes(&self.edge_children)
            + vec_bytes(&self.child256)
            + vec_bytes(&self.leaf_bytes)
            + vec_bytes(&self.leaf_offsets)
            + vec_bytes(&self.leaf_vals)
            + vec_bytes(&self.terminal_vals)
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        CompactArt::range_from(self, &[], &mut |k, v| {
            f(k, v);
            true
        });
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        CompactArt::range_from(self, low, f);
    }
}

/// Arena-size cutover for the sorted-batch descent: while the trie is
/// cache-resident the per-batch sort costs more than the cache misses it
/// saves — the PR 2 ablation showed ~0.5x at a 25 MB arena on a 260 MB
/// L3 (`compact_art_cutover` in BENCH_hotpath.json) — so `multi_get`
/// falls back to the per-key loop below a server-class LLC worth of
/// arena bytes. `multi_get_batched` stays public to force the batched
/// descent regardless.
pub const BATCH_MIN_ARENA_BYTES: usize = 64 << 20;

impl CompactArt {
    /// Sorted-batch multi-get, unconditionally: probes are sorted once,
    /// then runs of keys that share a branch descend each node together.
    /// Public as the ablation hook for the `bench_hotpath` cutover study;
    /// [`BatchProbe::multi_get`] routes here only when the arena exceeds
    /// [`BATCH_MIN_ARENA_BYTES`].
    pub fn multi_get_batched(&self, keys: &[&[u8]], out: &mut Vec<Option<Value>>) {
        let base = out.len();
        out.resize(base + keys.len(), None);
        if self.root == NONE || keys.is_empty() {
            return;
        }
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_unstable_by_key(|&i| keys[i as usize]);
        self.batch_descend(self.root, keys, &order, 0, base, out);
    }
}

impl BatchProbe for CompactArt {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    /// Adaptive multi-get: per-key loop while the arena is small enough to
    /// be cache-resident, sorted-batch descent
    /// ([`CompactArt::multi_get_batched`]) once it is not.
    fn multi_get(&self, keys: &[&[u8]], out: &mut Vec<Option<Value>>) {
        if self.mem_usage() < BATCH_MIN_ARENA_BYTES {
            out.extend(keys.iter().map(|k| self.get(k)));
        } else {
            self.multi_get_batched(keys, out);
        }
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }

    /// Merged-traversal multi-scan: sorted range starts share one in-order
    /// walk (`range_from`), so clustered ranges pay one descent per cluster
    /// instead of one per range.
    fn multi_scan(&self, ranges: &[(&[u8], usize)], out: &mut Vec<Vec<Value>>) {
        memtree_common::traits::multi_scan_merged(
            &|low, f| CompactArt::range_from(self, low, f),
            ranges,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::Art;
    use memtree_common::key::encode_u64;
    use memtree_common::traits::OrderedIndex;

    fn sorted_random(n: usize, seed: u64, modulo: u64) -> Vec<(Vec<u8>, Value)> {
        let mut state = seed;
        let mut keys: Vec<u64> = (0..n)
            .map(|_| memtree_common::hash::splitmix64(&mut state) % modulo)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter()
            .map(|k| (encode_u64(k).to_vec(), k))
            .collect()
    }

    #[test]
    fn get_hit_miss() {
        let entries = sorted_random(10_000, 3, u64::MAX);
        let t = CompactArt::build(&entries);
        assert_eq!(t.len(), entries.len());
        for (k, v) in &entries {
            assert_eq!(t.get(k), Some(*v));
        }
        assert_eq!(t.get(&encode_u64(1)), None);
    }

    #[test]
    fn layout3_nodes() {
        // Root with 256 branches must use Layout 3.
        let mut entries: Vec<(Vec<u8>, Value)> = (0..=255u8)
            .map(|b| (vec![b, b ^ 0x5A], b as Value))
            .collect();
        entries.sort();
        let t = CompactArt::build(&entries);
        assert!(!t.child256.is_empty(), "expected a Layout-3 node");
        for (k, v) in &entries {
            assert_eq!(t.get(k), Some(*v));
        }
        assert_eq!(t.get(&[0, 0, 0]), None);
    }

    #[test]
    fn terminals_and_prefix_keys() {
        let mut entries: Vec<(Vec<u8>, Value)> = vec![
            (b"f".to_vec(), 1),
            (b"fa".to_vec(), 2),
            (b"far".to_vec(), 3),
            (b"fas".to_vec(), 4),
            (b"fast".to_vec(), 5),
            (b"fat".to_vec(), 6),
            (b"s".to_vec(), 7),
            (b"top".to_vec(), 8),
            (b"toy".to_vec(), 9),
            (b"trie".to_vec(), 10),
            (b"trip".to_vec(), 11),
            (b"try".to_vec(), 12),
        ];
        entries.sort();
        let t = CompactArt::build(&entries);
        for (k, v) in &entries {
            assert_eq!(t.get(k), Some(*v), "{:?}", String::from_utf8_lossy(k));
        }
        assert_eq!(t.get(b"fa\x00"), None);
        assert_eq!(t.get(b"t"), None);
        assert_eq!(t.get(b""), None);
    }

    #[test]
    fn matches_dynamic_art_on_scans() {
        let entries = sorted_random(3000, 7, 100_000);
        let mut dyn_art = Art::new();
        for (k, v) in &entries {
            dyn_art.insert(k, *v);
        }
        let compact = CompactArt::build(&entries);
        for probe in [0u64, 1, 50_000, 99_999] {
            let low = encode_u64(probe);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            dyn_art.scan(&low, 25, &mut a);
            compact.scan(&low, 25, &mut b);
            assert_eq!(a, b, "probe {probe}");
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        dyn_art.for_each_sorted(&mut |k, v| a.push((k.to_vec(), v)));
        compact.for_each_sorted(&mut |k, v| b.push((k.to_vec(), v)));
        assert_eq!(a, b);
    }

    #[test]
    fn compact_is_smaller() {
        let entries = sorted_random(50_000, 13, u64::MAX);
        let mut dyn_art = Art::new();
        for (k, v) in &entries {
            dyn_art.insert(k, *v);
        }
        let compact = CompactArt::build(&entries);
        assert!(
            (compact.mem_usage() as f64) < 0.6 * dyn_art.mem_usage() as f64,
            "compact {} dynamic {}",
            compact.mem_usage(),
            dyn_art.mem_usage()
        );
    }

    #[test]
    fn empty_and_single() {
        let t = CompactArt::build(&[]);
        assert_eq!(t.get(b"anything"), None);
        let t = CompactArt::build(&[(b"solo".to_vec(), 42)]);
        assert_eq!(t.get(b"solo"), Some(42));
        assert_eq!(t.get(b"sol"), None);
        assert_eq!(t.get(b"solos"), None);
    }

    #[test]
    fn multi_get_matches_per_key_loop() {
        // String keys with heavy prefix sharing plus pure-random integers;
        // probes mix hits, extensions, truncations, and duplicates.
        let mut cases: Vec<Vec<(Vec<u8>, Value)>> = vec![
            sorted_random(6000, 31, u64::MAX),
            sorted_random(2000, 33, 50_000),
        ];
        let mut emails: Vec<(Vec<u8>, Value)> = (0..3000u64)
            .map(|i| {
                (
                    format!("com.domain{}@user{:05}", i % 13, i).into_bytes(),
                    i,
                )
            })
            .collect();
        emails.sort();
        cases.push(emails);
        for entries in cases {
            let t = CompactArt::build(&entries);
            let mut probes: Vec<Vec<u8>> = Vec::new();
            for (i, (k, _)) in entries.iter().enumerate() {
                probes.push(k.clone());
                if i % 2 == 0 {
                    let mut q = k.clone();
                    q.push(0xFF);
                    probes.push(q);
                }
                if i % 3 == 0 && !k.is_empty() {
                    probes.push(k[..k.len() - 1].to_vec());
                }
                if i % 7 == 0 {
                    probes.push(k.clone());
                }
            }
            probes.push(Vec::new());
            probes.reverse();
            let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            let expect: Vec<Option<Value>> = refs.iter().map(|k| t.get(k)).collect();
            for chunk in [1usize, 16, 200, refs.len()] {
                let mut got = Vec::new();
                let mut got_batched = Vec::new();
                for c in refs.chunks(chunk) {
                    t.multi_get(c, &mut got);
                    // The adaptive cutover sends small tries down the
                    // per-key path; probe the batched descent directly too
                    // so both sides of the cutover stay differential-equal.
                    t.multi_get_batched(c, &mut got_batched);
                }
                assert_eq!(got, expect, "chunk {chunk}");
                assert_eq!(got_batched, expect, "batched chunk {chunk}");
            }
        }
        let t = CompactArt::build(&[]);
        assert_eq!(t.multi_get_vec(&[b"x".as_slice()]), vec![None]);
    }

    #[test]
    fn multi_scan_matches_per_range_loop() {
        let mut state = 41u64;
        for entries in [
            Vec::new(),
            sorted_random(1, 39, u64::MAX),
            sorted_random(2500, 37, 80_000),
        ] {
            let t = CompactArt::build(&entries);
            let mut lows: Vec<Vec<u8>> = Vec::new();
            for _ in 0..150 {
                let r = memtree_common::hash::splitmix64(&mut state);
                lows.push(encode_u64(r % 100_000).to_vec());
            }
            lows.push(Vec::new());
            lows.push(encode_u64(u64::MAX).to_vec());
            let ranges: Vec<(&[u8], usize)> = lows
                .iter()
                .enumerate()
                .map(|(i, low)| (low.as_slice(), [0usize, 1, 9, 5000][i % 4]))
                .collect();
            let expect: Vec<Vec<Value>> = ranges
                .iter()
                .map(|&(low, cnt)| {
                    let mut one = Vec::new();
                    t.scan(low, cnt, &mut one);
                    one
                })
                .collect();
            assert_eq!(t.multi_scan_vec(&ranges), expect, "n={}", entries.len());
        }
    }

    #[test]
    fn email_keys() {
        let mut entries: Vec<(Vec<u8>, Value)> = (0..2000u64)
            .map(|i| {
                (
                    format!("com.domain{}@user{:05}", i % 13, i).into_bytes(),
                    i,
                )
            })
            .collect();
        entries.sort();
        let t = CompactArt::build(&entries);
        for (k, v) in &entries {
            assert_eq!(t.get(k), Some(*v));
        }
        let mut out = Vec::new();
        t.scan(b"com.domain3@", 5, &mut out);
        assert_eq!(out.len(), 5);
    }
}
