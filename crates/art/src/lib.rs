//! Adaptive Radix Tree (§2.1, Figure 2.2) and its Compact variant (§2.2).
//!
//! [`Art`] implements the dynamic ART of Leis et al. as the thesis uses it:
//! four adaptive node layouts (Node4/16/48/256), path compression (the full
//! compressed prefix is stored, so no optimistic re-checks are needed) and
//! lazy expansion (single-key subtrees stay collapsed leaves). Keys that
//! are prefixes of other keys are handled with an explicit per-node
//! terminal value rather than a key-terminator byte.
//!
//! [`CompactArt`] applies the Compaction + Structural Reduction rules:
//! every node's size is customized to its exact fanout `n` — the sorted
//! key/child arrays of Layout 1 when `n <= 227`, the 256-slot direct array
//! of Layout 3 otherwise — and all per-node storage is flattened into
//! shared arenas.

#![warn(missing_docs)]

pub mod compact;
pub mod dynamic;

pub use compact::{CompactArt, BATCH_MIN_ARENA_BYTES};
pub use dynamic::Art;
