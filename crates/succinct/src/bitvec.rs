//! A plain bit vector stored in `u64` words.

use memtree_common::mem::vec_bytes;

/// A growable bit vector. Bits are addressed from 0; storage is an array of
/// little-endian-within-word `u64`s (bit `i` lives in word `i / 64` at bit
/// `i % 64`).
#[derive(Debug, Clone, Default)]
pub struct BitVector {
    words: Vec<u64>,
    len: usize,
}

impl BitVector {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an empty bit vector with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Reconstructs a bit vector from its raw words (the inverse of
    /// [`BitVector::words`] + [`BitVector::len`], used by serialized
    /// images). Returns `None` when the word count doesn't match `len` or
    /// when bits past `len` in the last word are set — both indicate a
    /// damaged image rather than a usable vector.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        if !len.is_multiple_of(64) {
            let last = *words.last().unwrap_or(&0);
            if last >> (len % 64) != 0 {
                return None;
            }
        }
        Some(Self { words, len })
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let w = self.len / 64;
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends `n` copies of `bit`.
    pub fn push_n(&mut self, bit: bool, n: usize) {
        // Could be word-accelerated; builder-only path, clarity wins.
        for _ in 0..n {
            self.push(bit);
        }
    }

    /// Sets bit `pos` to 1. `pos` must be `< len`.
    #[inline]
    pub fn set(&mut self, pos: usize) {
        debug_assert!(pos < self.len);
        self.words[pos / 64] |= 1u64 << (pos % 64);
    }

    /// Reads bit `pos`. `pos` must be `< len`.
    #[inline]
    pub fn get(&self, pos: usize) -> bool {
        debug_assert!(pos < self.len, "bit index {pos} out of range {}", self.len);
        (self.words[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Underlying words (the last word's bits past `len` are zero).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in positions `[0, pos]` — a naive O(n) rank used
    /// by tests as ground truth.
    pub fn rank1_naive(&self, pos: usize) -> usize {
        (0..=pos).filter(|&i| self.get(i)).count()
    }

    /// Shrinks the backing storage to fit.
    pub fn shrink_to_fit(&mut self) {
        self.words.shrink_to_fit();
    }

    /// Heap bytes used.
    pub fn mem_usage(&self) -> usize {
        vec_bytes(&self.words)
    }
}

impl FromIterator<bool> for BitVector {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bv = BitVector::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut bv = BitVector::new();
        for i in 0..200 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 200);
        for i in 0..200 {
            assert_eq!(bv.get(i), i % 3 == 0, "bit {i}");
        }
        let mut z = BitVector::zeros(100);
        z.set(99);
        assert!(z.get(99));
        assert!(!z.get(98));
    }

    #[test]
    fn count_ones_and_words() {
        let bv: BitVector = (0..130).map(|i| i % 2 == 0).collect();
        assert_eq!(bv.count_ones(), 65);
        assert_eq!(bv.words().len(), 3);
    }

    #[test]
    fn from_words_roundtrips_and_rejects_damage() {
        let bv: BitVector = (0..130).map(|i| i % 7 == 0).collect();
        let back = BitVector::from_words(bv.words().to_vec(), bv.len()).unwrap();
        for i in 0..130 {
            assert_eq!(back.get(i), bv.get(i), "bit {i}");
        }
        // Word count must match the claimed length.
        assert!(BitVector::from_words(vec![0; 2], 130).is_none());
        assert!(BitVector::from_words(vec![0; 4], 130).is_none());
        // Set bits past `len` mean a damaged image.
        assert!(BitVector::from_words(vec![0, 0, 1 << 2], 130).is_none());
        // Empty and word-aligned lengths round-trip too.
        assert!(BitVector::from_words(Vec::new(), 0).unwrap().is_empty());
        let full: BitVector = (0..128).map(|_| true).collect();
        let back = BitVector::from_words(full.words().to_vec(), 128).unwrap();
        assert_eq!(back.count_ones(), 128);
    }

    #[test]
    fn push_n_runs() {
        let mut bv = BitVector::new();
        bv.push_n(true, 70);
        bv.push_n(false, 70);
        assert_eq!(bv.len(), 140);
        assert_eq!(bv.count_ones(), 70);
        assert!(bv.get(69) && !bv.get(70));
    }
}
