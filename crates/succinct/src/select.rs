//! Select-1 support (§3.6, Figure 3.3, right half).
//!
//! A sampled lookup table stores the precomputed position of every `S`-th
//! set bit. A query jumps to the nearest preceding sample and scans forward
//! with popcounts. The thesis's default `S = 64` costs 9–17 % space locally
//! (1–2 % of the whole trie) because the only select-supported bit vector,
//! `S-LOUDS`, is dense and evenly distributed.
//!
//! [`SelectSupport::select1_via_rank`] provides the slower, LUT-free
//! baseline (binary search over the rank LUT) used in the Figure 3.6
//! ablation.

use crate::bitvec::BitVector;
use crate::rank::RankSupport;
use crate::select_in_word;
use memtree_common::mem::vec_bytes;

/// Sampled select-1 support over an external [`BitVector`].
#[derive(Debug, Clone)]
pub struct SelectSupport {
    /// `lut[j]` = bit position of the `(j * sample + 1)`-th set bit.
    lut: Vec<u32>,
    sample: usize,
    ones: usize,
}

impl SelectSupport {
    /// Builds sampled select support with sampling rate `sample`.
    pub fn new(bv: &BitVector, sample: usize) -> Self {
        assert!(sample > 0);
        let mut lut = Vec::new();
        let mut count = 0usize;
        for (wi, &w) in bv.words().iter().enumerate() {
            let mut word = w;
            while word != 0 {
                let tz = word.trailing_zeros() as usize;
                if count.is_multiple_of(sample) {
                    lut.push((wi * 64 + tz) as u32);
                }
                count += 1;
                word &= word - 1;
            }
        }
        Self {
            lut,
            sample,
            ones: count,
        }
    }

    /// Total number of set bits.
    #[inline]
    pub fn ones(&self) -> usize {
        self.ones
    }

    /// Position of the `i`-th set bit (1-based). `i` must be in
    /// `[1, ones()]`.
    #[inline]
    pub fn select1(&self, bv: &BitVector, i: usize) -> usize {
        debug_assert!(i >= 1 && i <= self.ones, "select1({i}) of {} ones", self.ones);
        let j = (i - 1) / self.sample;
        let mut pos = self.lut[j] as usize;
        let mut remaining = (i - 1) - j * self.sample; // set bits still to skip after `pos`
        if remaining == 0 {
            return pos;
        }
        let words = bv.words();
        // Finish the word containing `pos`, excluding bits <= pos.
        let mut wi = pos / 64;
        let mut w = words[wi] & (u64::MAX << (pos % 64)) & !(1u64 << (pos % 64));
        loop {
            let cnt = w.count_ones() as usize;
            if cnt >= remaining {
                pos = wi * 64 + select_in_word(w, remaining as u32) as usize;
                return pos;
            }
            remaining -= cnt;
            wi += 1;
            w = words[wi];
        }
    }

    /// Heap bytes used by the sample LUT.
    pub fn mem_usage(&self) -> usize {
        vec_bytes(&self.lut)
    }

    /// Baseline select without the sample LUT: binary search over `rank`'s
    /// block LUT, then a linear popcount scan. Matches what a plain
    /// Poppy-style implementation does; used by the FST optimization
    /// ablation (Figure 3.6).
    pub fn select1_via_rank(bv: &BitVector, rank: &RankSupport, i: usize) -> usize {
        debug_assert!(i >= 1);
        // Find the first block whose prefix rank >= i, then step back one.
        let (mut lo, mut hi) = (0usize, rank.num_blocks());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if rank.block_rank(mid) < i {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let block = lo.saturating_sub(1);
        let mut remaining = i - rank.block_rank(block);
        let words = bv.words();
        let mut wi = block * (rank.block_bits() / 64);
        loop {
            let w = words[wi];
            let cnt = w.count_ones() as usize;
            if cnt >= remaining {
                return wi * 64 + select_in_word(w, remaining as u32) as usize;
            }
            remaining -= cnt;
            wi += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_selects(bv: &BitVector) -> Vec<usize> {
        (0..bv.len()).filter(|&i| bv.get(i)).collect()
    }

    fn check(bv: &BitVector, sample: usize) {
        let ss = SelectSupport::new(bv, sample);
        let rs = RankSupport::new(bv, 512);
        let naive = naive_selects(bv);
        assert_eq!(ss.ones(), naive.len());
        for (k, &pos) in naive.iter().enumerate() {
            assert_eq!(ss.select1(bv, k + 1), pos, "k={} sample={}", k + 1, sample);
            assert_eq!(
                SelectSupport::select1_via_rank(bv, &rs, k + 1),
                pos,
                "via-rank k={}",
                k + 1
            );
        }
    }

    #[test]
    fn select_matches_naive() {
        let patterns: Vec<BitVector> = vec![
            (0..2000).map(|i| i % 3 == 0).collect(),
            (0..2000).map(|_| true).collect(),
            (0..130).map(|i| i == 129).collect(),
            (0..4096).map(|i| i % 64 == 63).collect(),
        ];
        for bv in &patterns {
            check(bv, 64);
            check(bv, 3);
            check(bv, 1);
        }
    }

    #[test]
    fn select_random() {
        let mut state = 7u64;
        let bv: BitVector = (0..8192)
            .map(|_| memtree_common::hash::splitmix64(&mut state) % 4 == 0)
            .collect();
        check(&bv, 64);
    }

    #[test]
    fn select_rank_inverse() {
        let bv: BitVector = (0..5000).map(|i| i % 5 == 0).collect();
        let ss = SelectSupport::new(&bv, 64);
        let rs = RankSupport::new(&bv, 64);
        for i in 1..=ss.ones() {
            let pos = ss.select1(&bv, i);
            assert_eq!(rs.rank1(&bv, pos), i);
        }
    }
}
