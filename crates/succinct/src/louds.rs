//! Level-Ordered Unary Degree Sequence encoding of ordinal trees (§3.1).
//!
//! LOUDS traverses nodes breadth-first and writes each node's degree in
//! unary (`degree` ones followed by a zero). Navigation reduces to
//! rank/select:
//!
//! * position of the *i*-th node = `select0(i) + 1`
//! * *k*-th child of the node at `p` = `select0(rank1(p + k)) + 1`
//! * parent of the node at `p` = `select1(rank0(p))`
//!
//! This module is the textbook encoding used as background and as ground
//! truth in tests; FST's LOUDS-Sparse/Dense variants live in `memtree-fst`.

use crate::bitvec::BitVector;
use crate::rank::RankSupport;
use crate::select::SelectSupport;

/// An ordinal tree encoded with LOUDS. Node ids are BFS (level) order,
/// starting at 0 for the root.
#[derive(Debug)]
pub struct LoudsTree {
    bits: BitVector,
    rank: RankSupport,
    sel1: SelectSupport,
    sel0: SelectSupport,
    /// Complemented bits, so select-0 can reuse [`SelectSupport`].
    comp: BitVector,
    num_nodes: usize,
}

impl LoudsTree {
    /// Builds the encoding from a tree given as `children[node] = Vec<node>`
    /// with node 0 the root. Encodes a virtual super-root ("10") first, the
    /// standard trick that makes the identities uniform.
    pub fn from_children(children: &[Vec<usize>]) -> Self {
        let mut bits = BitVector::new();
        bits.push(true); // super-root degree 1
        bits.push(false);
        // BFS
        let mut queue = std::collections::VecDeque::from([0usize]);
        let mut order = Vec::with_capacity(children.len());
        while let Some(n) = queue.pop_front() {
            order.push(n);
            bits.push_n(true, children[n].len());
            bits.push(false);
            for &c in &children[n] {
                queue.push_back(c);
            }
        }
        let comp: BitVector = (0..bits.len()).map(|i| !bits.get(i)).collect();
        let rank = RankSupport::new(&bits, 512);
        let sel1 = SelectSupport::new(&bits, 64);
        let sel0 = SelectSupport::new(&comp, 64);
        Self {
            bits,
            rank,
            sel1,
            sel0,
            comp,
            num_nodes: children.len(),
        }
    }

    /// Number of encoded nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Bit position where node `i` (BFS order, 0-based) starts.
    pub fn node_pos(&self, i: usize) -> usize {
        // position of i-th node = select0(i) + 1 with 1-based select and the
        // super-root shifting everything by one zero.
        self.sel0.select1(&self.comp, i + 1) + 1
    }

    /// Degree (number of children) of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        let p = self.node_pos(i);
        let mut d = 0;
        while p + d < self.bits.len() && self.bits.get(p + d) {
            d += 1;
        }
        d
    }

    /// BFS id of the `k`-th (0-based) child of node `i`, if any.
    pub fn child(&self, i: usize, k: usize) -> Option<usize> {
        let p = self.node_pos(i);
        if k >= self.degree(i) {
            return None;
        }
        // Child's node id = rank1(p + k) - 1 (super-root's one discounted by
        // the node-id origin).
        Some(self.rank.rank1(&self.bits, p + k) - 1)
    }

    /// BFS id of the parent of node `i` (`None` for the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        if i == 0 {
            return None;
        }
        // The edge leading to node i is the (i+1)-th set bit (super-root
        // owns the first). Its position lies within the parent's unary run.
        let edge_pos = self.sel1.select1(&self.bits, i + 1);
        // Number of zeros before edge_pos = parent's node id + 1.
        let zeros = if edge_pos == 0 {
            0
        } else {
            self.rank.rank0(&self.bits, edge_pos - 1)
        };
        Some(zeros - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example tree from Figure 3.1-style diagrams: root with three
    /// children; second child has two children; etc.
    fn sample_tree() -> Vec<Vec<usize>> {
        // 0 -> 1,2,3 ; 2 -> 4,5 ; 3 -> 6 ; 5 -> 7,8,9
        vec![
            vec![1, 2, 3],
            vec![],
            vec![4, 5],
            vec![6],
            vec![],
            vec![7, 8, 9],
            vec![],
            vec![],
            vec![],
            vec![],
        ]
    }

    #[test]
    fn degrees_and_children() {
        let t = LoudsTree::from_children(&sample_tree());
        assert_eq!(t.num_nodes(), 10);
        assert_eq!(t.degree(0), 3);
        assert_eq!(t.degree(2), 2);
        assert_eq!(t.degree(5), 3);
        assert_eq!(t.degree(9), 0);
        assert_eq!(t.child(0, 0), Some(1));
        assert_eq!(t.child(0, 2), Some(3));
        assert_eq!(t.child(2, 1), Some(5));
        assert_eq!(t.child(5, 2), Some(9));
        assert_eq!(t.child(1, 0), None);
    }

    #[test]
    fn parents_invert_children() {
        let tree = sample_tree();
        let t = LoudsTree::from_children(&tree);
        assert_eq!(t.parent(0), None);
        for (p, kids) in tree.iter().enumerate() {
            for (k, &c) in kids.iter().enumerate() {
                assert_eq!(t.child(p, k), Some(c));
                assert_eq!(t.parent(c), Some(p), "child {c}");
            }
        }
    }

    #[test]
    fn linear_chain() {
        // 0 -> 1 -> 2 -> ... -> 9
        let chain: Vec<Vec<usize>> = (0..10)
            .map(|i| if i < 9 { vec![i + 1] } else { vec![] })
            .collect();
        let t = LoudsTree::from_children(&chain);
        for i in 0..9 {
            assert_eq!(t.child(i, 0), Some(i + 1));
            assert_eq!(t.parent(i + 1), Some(i));
        }
    }

    #[test]
    fn wide_root() {
        let mut tree = vec![Vec::new(); 257];
        tree[0] = (1..257).collect();
        let t = LoudsTree::from_children(&tree);
        assert_eq!(t.degree(0), 256);
        for k in 0..256 {
            assert_eq!(t.child(0, k), Some(k + 1));
            assert_eq!(t.parent(k + 1), Some(0));
        }
    }
}
