//! Hot-path bit and byte kernels (§3.6–3.7).
//!
//! The FST query path spends almost all of its time in three tiny loops:
//! in-word select (the tail of every sampled select), in-word rank (the
//! tail of every rank), and byte-label search over LOUDS-Sparse nodes.
//! This module provides branch-free/word-parallel implementations of each,
//! with a portable SWAR form and, on `x86_64`, a hardware form selected by
//! cached runtime CPU-feature detection:
//!
//! * [`select_in_word`] — BMI2 `PDEP` when available, otherwise Vigna's
//!   broadword select ([`select_in_word_swar`]). The byte-stepping loop the
//!   repo started with survives as [`select_in_word_scalar`] for the
//!   ablation harness.
//! * [`find_byte`] — SSE2 16-lane compare+movemask when available,
//!   otherwise the 8-byte SWAR zero-in-word trick ([`find_byte_swar`]);
//!   short slices fall through to the plain loop ([`find_byte_scalar`]).
//! * [`popcount_words`] — the block-scan inner loop of `rank1`/`rank1_excl`
//!   for basic blocks wider than 64 bits: `popcnt` instruction when
//!   available, SSE2 `psadbw` next, batched SWAR otherwise.
//!
//! All variants are exported so `bench_hotpath` can ablate scalar vs SWAR
//! vs SIMD and the differential test suite can cross-check them. Dispatch
//! honors the process-wide `MEMTREE_KERNELS` policy
//! ([`memtree_common::dispatch`]): `scalar` pins every kernel portable.

/// `SELECT_IN_BYTE[(k << 8) | b]` = position of the `(k+1)`-th set bit of
/// byte `b`, or 8 when `b` has at most `k` set bits.
static SELECT_IN_BYTE: [u8; 2048] = select_in_byte_table();

const fn select_in_byte_table() -> [u8; 2048] {
    let mut t = [8u8; 2048];
    let mut k = 0usize;
    while k < 8 {
        let mut b = 0usize;
        while b < 256 {
            let mut seen = 0usize;
            let mut i = 0usize;
            while i < 8 {
                if (b >> i) & 1 == 1 {
                    if seen == k {
                        t[(k << 8) | b] = i as u8;
                        break;
                    }
                    seen += 1;
                }
                i += 1;
            }
            b += 1;
        }
        k += 1;
    }
    t
}

/// Cached runtime CPU-feature detection. The first call per feature pays
/// for `cpuid`; every later call is one relaxed atomic load. A feature
/// only tests "present" when the process-wide `MEMTREE_KERNELS` policy
/// ([`memtree_common::dispatch`]) allows hardware tiers, so `scalar` mode
/// pins every dispatched kernel to its portable form.
#[cfg(target_arch = "x86_64")]
mod cpu {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNKNOWN: u8 = 0;
    const ABSENT: u8 = 1;
    const PRESENT: u8 = 2;

    macro_rules! cached {
        ($cache:ident, $feature:tt) => {{
            static $cache: AtomicU8 = AtomicU8::new(UNKNOWN);
            match $cache.load(Ordering::Relaxed) {
                UNKNOWN => {
                    let present = memtree_common::dispatch::hardware_allowed()
                        && std::arch::is_x86_feature_detected!($feature);
                    $cache.store(if present { PRESENT } else { ABSENT }, Ordering::Relaxed);
                    present
                }
                state => state == PRESENT,
            }
        }};
    }

    #[inline]
    pub(super) fn has_bmi2() -> bool {
        cached!(BMI2, "bmi2")
    }

    #[inline]
    pub(super) fn has_sse2() -> bool {
        cached!(SSE2, "sse2")
    }

    #[inline]
    pub(super) fn has_popcnt() -> bool {
        cached!(POPCNT, "popcnt")
    }
}

// ---------------------------------------------------------------------------
// In-word select
// ---------------------------------------------------------------------------

/// Position of the `k`-th (1-based) set bit within a 64-bit word, or 64 if
/// the word has fewer than `k` set bits.
///
/// Dispatches to BMI2 `PDEP` when the CPU has it, otherwise to the
/// broadword SWAR form — both are branch-free past the one dispatch test.
#[inline]
pub fn select_in_word(word: u64, k: u32) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if cpu::has_bmi2() {
        // SAFETY: BMI2 presence was verified at runtime just above.
        return unsafe { select_in_word_pdep(word, k) };
    }
    select_in_word_swar(word, k)
}

/// BMI2 form of [`select_in_word`]: deposit a single bit at rank `k` into
/// the word's set positions, then count trailing zeros. `PDEP` of an
/// out-of-range rank deposits nothing, so `trailing_zeros` of the zero
/// result yields the contractual 64.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
fn select_in_word_pdep(word: u64, k: u32) -> u32 {
    debug_assert!(k >= 1);
    if k > 64 {
        return 64;
    }
    core::arch::x86_64::_pdep_u64(1u64 << (k - 1), word).trailing_zeros()
}

/// Portable broadword form of [`select_in_word`] (Vigna's algorithm 2):
/// SWAR per-byte popcounts, a multiply to prefix-sum them, a lane-parallel
/// comparison against `k` to locate the byte, and one 2 KiB table probe to
/// finish inside it. No data-dependent branches.
#[inline]
pub fn select_in_word_swar(word: u64, k: u32) -> u32 {
    debug_assert!(k >= 1);
    if k > word.count_ones() {
        return 64;
    }
    const ONES: u64 = 0x0101_0101_0101_0101;
    const MSBS: u64 = 0x8080_8080_8080_8080;
    let k = (k - 1) as u64; // 0-based rank
    // Per-byte popcounts via the classic SWAR reduction.
    let mut s = word - ((word >> 1) & 0x5555_5555_5555_5555);
    s = (s & 0x3333_3333_3333_3333) + ((s >> 2) & 0x3333_3333_3333_3333);
    s = (s + (s >> 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    // Byte `j` of `sums` = popcount of bytes 0..=j (prefix sums).
    let sums = s.wrapping_mul(ONES);
    // Lane-parallel `prefix_sum <= k`: the MSB of each lane survives the
    // subtraction iff that byte's prefix popcount is <= k. The number of
    // such lanes is the index of the byte holding the target bit.
    let geq = (((k * ONES) | MSBS) - sums) & MSBS;
    let place = geq.count_ones() * 8; // <= 56: the guard above ensures the target byte exists
    let byte_rank = k - (((sums << 8) >> place) & 0xFF);
    place + SELECT_IN_BYTE[(byte_rank as usize) << 8 | ((word >> place) & 0xFF) as usize] as u32
}

/// The original byte-stepping select: at most 8 popcounts plus an in-byte
/// bit scan. Kept as the scalar baseline for the Figure 3.6-style kernel
/// ablation in `bench_hotpath`.
#[inline]
pub fn select_in_word_scalar(word: u64, mut k: u32) -> u32 {
    debug_assert!(k >= 1);
    let mut base = 0u32;
    let mut w = word;
    loop {
        let byte = (w & 0xFF) as u8;
        let cnt = byte.count_ones();
        if cnt >= k {
            let mut b = byte;
            for i in 0..8 {
                if b & 1 == 1 {
                    k -= 1;
                    if k == 0 {
                        return base + i;
                    }
                }
                b >>= 1;
            }
        }
        k -= cnt;
        base += 8;
        if base >= 64 {
            return 64;
        }
        w >>= 8;
    }
}

// ---------------------------------------------------------------------------
// Multi-word popcount (rank over blocks wider than 64 bits)
// ---------------------------------------------------------------------------

/// Popcount of a word slice — the inner loop of every `rank1`/`rank1_excl`
/// over basic blocks wider than 64 bits, and of rank-LUT construction.
///
/// Dispatches (cached, policy-gated): `popcnt`-instruction tier when the
/// CPU has it, SSE2 `psadbw` tier next, batched SWAR otherwise.
#[inline]
pub fn popcount_words(words: &[u64]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if cpu::has_popcnt() {
            // SAFETY: POPCNT presence was verified at runtime just above.
            return unsafe { popcount_words_popcnt_impl(words) };
        }
        if cpu::has_sse2() {
            // SAFETY: SSE2 presence was verified at runtime just above.
            return unsafe { popcount_words_sse2_impl(words) };
        }
    }
    popcount_words_swar(words)
}

/// One `count_ones` per word — the scalar baseline for the ablation.
#[inline]
pub fn popcount_words_scalar(words: &[u64]) -> u32 {
    words.iter().map(|w| w.count_ones()).sum()
}

/// Batched SWAR tier: each word is reduced to per-byte counts, up to 31
/// words of byte counts are accumulated lane-wise (8 · 31 = 248 < 256, so
/// no lane overflows), and one widening pairwise fold sums the lanes —
/// amortizing the horizontal sum that the per-word form pays every word.
#[inline]
pub fn popcount_words_swar(words: &[u64]) -> u32 {
    let mut total = 0u32;
    for group in words.chunks(31) {
        let mut acc = 0u64;
        for &w in group {
            let mut s = w - ((w >> 1) & 0x5555_5555_5555_5555);
            s = (s & 0x3333_3333_3333_3333) + ((s >> 2) & 0x3333_3333_3333_3333);
            s = (s + (s >> 4)) & 0x0F0F_0F0F_0F0F_0F0F;
            acc += s;
        }
        // Widening fold: byte lanes → u16 → u32 → u64 (group totals can
        // exceed one byte, so the multiply-fold trick doesn't apply).
        let s = (acc & 0x00FF_00FF_00FF_00FF) + ((acc >> 8) & 0x00FF_00FF_00FF_00FF);
        let s = (s & 0x0000_FFFF_0000_FFFF) + ((s >> 16) & 0x0000_FFFF_0000_FFFF);
        total += ((s + (s >> 32)) & 0xFFFF_FFFF) as u32;
    }
    total
}

/// SSE2 tier, when this CPU has it — `None` otherwise. Ignores the
/// `MEMTREE_KERNELS` policy so differential tests and the ablation bench
/// can cross-check tiers in any mode.
#[cfg(target_arch = "x86_64")]
pub fn popcount_words_sse2(words: &[u64]) -> Option<u32> {
    if std::arch::is_x86_feature_detected!("sse2") {
        // SAFETY: SSE2 presence was verified at runtime just above.
        Some(unsafe { popcount_words_sse2_impl(words) })
    } else {
        None
    }
}

/// `popcnt`-instruction tier, when this CPU has it — `None` otherwise.
#[cfg(target_arch = "x86_64")]
pub fn popcount_words_popcnt(words: &[u64]) -> Option<u32> {
    if std::arch::is_x86_feature_detected!("popcnt") {
        // SAFETY: POPCNT presence was verified at runtime just above.
        Some(unsafe { popcount_words_popcnt_impl(words) })
    } else {
        None
    }
}

/// SWAR byte-count reduction in 128-bit lanes, folded two words at a time
/// by `psadbw` (sum of absolute differences against zero = horizontal byte
/// sum per 64-bit half).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
fn popcount_words_sse2_impl(words: &[u64]) -> u32 {
    use core::arch::x86_64::*;
    // SAFETY: every load reads 16 in-bounds bytes (`i + 2 <= len` words).
    unsafe {
        let m1 = _mm_set1_epi8(0x55);
        let m2 = _mm_set1_epi8(0x33);
        let m4 = _mm_set1_epi8(0x0F);
        let zero = _mm_setzero_si128();
        let mut total = zero;
        let mut i = 0usize;
        while i + 2 <= words.len() {
            let v = _mm_loadu_si128(words.as_ptr().add(i) as *const __m128i);
            let v = _mm_sub_epi8(v, _mm_and_si128(_mm_srli_epi64::<1>(v), m1));
            let v = _mm_add_epi8(_mm_and_si128(v, m2), _mm_and_si128(_mm_srli_epi64::<2>(v), m2));
            let v = _mm_and_si128(_mm_add_epi8(v, _mm_srli_epi64::<4>(v)), m4);
            total = _mm_add_epi64(total, _mm_sad_epu8(v, zero));
            i += 2;
        }
        let lanes = (_mm_cvtsi128_si64(total) as u64)
            .wrapping_add(_mm_cvtsi128_si64(_mm_srli_si128::<8>(total)) as u64);
        let mut out = lanes as u32;
        if i < words.len() {
            out += words[i].count_ones();
        }
        out
    }
}

/// With `popcnt` enabled, `count_ones` compiles to the instruction; four
/// independent accumulators overlap its latency.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
fn popcount_words_popcnt_impl(words: &[u64]) -> u32 {
    let mut chunks = words.chunks_exact(4);
    let (mut a, mut b, mut c, mut d) = (0u32, 0u32, 0u32, 0u32);
    for q in &mut chunks {
        a += q[0].count_ones();
        b += q[1].count_ones();
        c += q[2].count_ones();
        d += q[3].count_ones();
    }
    a + b + c + d + chunks.remainder().iter().map(|w| w.count_ones()).sum::<u32>()
}

// ---------------------------------------------------------------------------
// Byte-label search
// ---------------------------------------------------------------------------

/// Position of the first occurrence of `needle` in `haystack`.
///
/// Word-parallel: SSE2 (16 labels per compare) when the CPU has it and the
/// slice spans at least one vector, 8-byte SWAR for medium slices, plain
/// loop for short ones — LOUDS-Sparse nodes are mostly small (§3.6), so
/// the dispatch thresholds matter as much as the kernels.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if haystack.len() >= 16 && cpu::has_sse2() {
        // SAFETY: SSE2 presence was verified at runtime just above.
        return unsafe { find_byte_sse2(haystack, needle) };
    }
    if haystack.len() >= 8 {
        return find_byte_swar(haystack, needle);
    }
    find_byte_scalar(haystack, needle)
}

/// Plain byte loop — the scalar baseline.
#[inline]
pub fn find_byte_scalar(haystack: &[u8], needle: u8) -> Option<usize> {
    haystack.iter().position(|&b| b == needle)
}

/// 8-byte SWAR form: XOR against a broadcast pattern turns matches into
/// zero bytes; the zero-in-word trick lights the MSB of each zero lane.
#[inline]
pub fn find_byte_swar(haystack: &[u8], needle: u8) -> Option<usize> {
    const LOWS: u64 = 0x0101_0101_0101_0101;
    const MSBS: u64 = 0x8080_8080_8080_8080;
    let pat = u64::from_ne_bytes([needle; 8]);
    let mut chunks = haystack.chunks_exact(8);
    let mut off = 0usize;
    for chunk in &mut chunks {
        let x = u64::from_ne_bytes(chunk.try_into().unwrap()) ^ pat;
        let hit = x.wrapping_sub(LOWS) & !x & MSBS;
        if hit != 0 {
            return Some(off + (hit.trailing_zeros() / 8) as usize);
        }
        off += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| off + i)
}

/// SSE2 form: one `pcmpeqb` + `pmovmskb` resolves 16 labels per iteration.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
fn find_byte_sse2(haystack: &[u8], needle: u8) -> Option<usize> {
    use core::arch::x86_64::*;
    // SAFETY: every load below reads 16 in-bounds bytes (`i + 16 <= len`).
    unsafe {
        let pat = _mm_set1_epi8(needle as i8);
        let mut i = 0usize;
        while i + 16 <= haystack.len() {
            let v = _mm_loadu_si128(haystack.as_ptr().add(i) as *const __m128i);
            let mask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, pat)) as u32;
            if mask != 0 {
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += 16;
        }
        find_byte_swar(&haystack[i..], needle).map(|p| i + p)
    }
}

/// Issues a best-effort L1 cache-line prefetch (no-op off `x86_64`).
///
/// Used by the batched query paths to overlap the misses of independent
/// probes; safe to call with any address.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: _mm_prefetch has no memory effects; any address is allowed.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_select(w: u64, k: u32) -> u32 {
        let mut seen = 0;
        for i in 0..64 {
            if w >> i & 1 == 1 {
                seen += 1;
                if seen == k {
                    return i;
                }
            }
        }
        64
    }

    #[test]
    fn select_variants_agree_on_fixed_words() {
        let words = [
            0u64,
            1,
            u64::MAX,
            0x8000_0000_0000_0000,
            0xAAAA_AAAA_AAAA_AAAA,
            0x0123_4567_89AB_CDEF,
            0x0000_0001_0000_0000,
        ];
        for &w in &words {
            for k in 1..=64u32 {
                let expect = naive_select(w, k);
                assert_eq!(select_in_word_scalar(w, k), expect, "scalar w={w:#x} k={k}");
                assert_eq!(select_in_word_swar(w, k), expect, "swar w={w:#x} k={k}");
                assert_eq!(select_in_word(w, k), expect, "dispatch w={w:#x} k={k}");
            }
        }
    }

    #[test]
    fn find_byte_variants_agree_on_fixed_patterns() {
        let mut hay = Vec::new();
        for i in 0..300u32 {
            hay.push((i.wrapping_mul(37) % 251) as u8);
        }
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 64, 255, 300] {
            let h = &hay[..len];
            for needle in [0u8, 1, 17, 37, 74, 255] {
                let expect = find_byte_scalar(h, needle);
                assert_eq!(find_byte_swar(h, needle), expect, "swar len={len} n={needle}");
                assert_eq!(find_byte(h, needle), expect, "dispatch len={len} n={needle}");
            }
        }
    }

    #[test]
    fn popcount_variants_agree_across_lengths() {
        let mut state = 7u64;
        let words: Vec<u64> = (0..200)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state
            })
            .collect();
        for len in [0usize, 1, 2, 3, 4, 7, 8, 15, 16, 30, 31, 32, 62, 63, 100, 200] {
            let w = &words[..len];
            let expect = popcount_words_scalar(w);
            assert_eq!(popcount_words_swar(w), expect, "swar len {len}");
            assert_eq!(popcount_words(w), expect, "dispatch len {len}");
            #[cfg(target_arch = "x86_64")]
            {
                if let Some(got) = popcount_words_sse2(w) {
                    assert_eq!(got, expect, "sse2 len {len}");
                }
                if let Some(got) = popcount_words_popcnt(w) {
                    assert_eq!(got, expect, "popcnt len {len}");
                }
            }
        }
        assert_eq!(popcount_words_swar(&vec![u64::MAX; 100]), 6400);
    }

    #[test]
    fn select_in_byte_table_spot_checks() {
        assert_eq!(SELECT_IN_BYTE[0xFF], 0); // 1st bit of 0xFF
        assert_eq!(SELECT_IN_BYTE[(7 << 8) | 0xFF], 7); // 8th bit of 0xFF
        assert_eq!(SELECT_IN_BYTE[0x80], 7); // 1st bit of 0x80
        assert_eq!(SELECT_IN_BYTE[(1 << 8) | 0x80], 8); // no 2nd bit
    }
}
