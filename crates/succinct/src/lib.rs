//! Succinct data-structure primitives for the Fast Succinct Trie.
//!
//! Implements from scratch the machinery Chapter 3 of the thesis builds on:
//!
//! * [`BitVector`] — a plain bit vector over `u64` words.
//! * [`rank`] — rank-1 support with a single-level lookup table whose basic
//!   block size is configurable: the FST design uses **B = 64** for
//!   LOUDS-Dense (one `popcount` per query) and **B = 512** for
//!   LOUDS-Sparse (one cache line per block, 6.25 % overhead), per §3.6.
//! * [`select`] — sampled select-1 support (default sampling rate S = 64)
//!   plus a slower LUT-free fallback used as the "Poppy baseline" in the
//!   Figure 3.6 ablation.
//! * [`louds`] — Level-Ordered Unary Degree Sequence encoding of ordinal
//!   trees (§3.1 background), used by tests and the `TxTrie` baseline.
//! * [`kernels`] — branch-free/word-parallel hot-path kernels (in-word
//!   select, byte-label search, software prefetch) with runtime CPU-feature
//!   dispatch, plus their scalar baselines for the kernel ablation.

#![warn(missing_docs)]

pub mod bitvec;
pub mod kernels;
pub mod louds;
pub mod rank;
pub mod select;

pub use bitvec::BitVector;
pub use kernels::{
    find_byte, find_byte_scalar, find_byte_swar, popcount_words, popcount_words_scalar,
    popcount_words_swar, prefetch_read, select_in_word, select_in_word_scalar,
    select_in_word_swar,
};
pub use rank::RankSupport;
pub use select::SelectSupport;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_in_word_matches_naive() {
        let words = [
            0u64,
            1,
            u64::MAX,
            0x8000_0000_0000_0000,
            0xAAAA_AAAA_AAAA_AAAA,
            0x0123_4567_89AB_CDEF,
        ];
        for &w in &words {
            let ones = w.count_ones();
            let mut naive = Vec::new();
            for i in 0..64 {
                if w >> i & 1 == 1 {
                    naive.push(i);
                }
            }
            for k in 1..=ones {
                assert_eq!(select_in_word(w, k), naive[(k - 1) as usize], "w={w:#x} k={k}");
            }
            if ones < 64 {
                assert_eq!(select_in_word(w, ones + 1), 64);
            }
        }
    }
}
