//! Rank-1 support with a single-level lookup table (§3.6, Figure 3.3).
//!
//! The bit vector is divided into fixed-size basic blocks of `B` bits; each
//! block owns a 32-bit precomputed rank of its start position. A query adds
//! the LUT entry and popcounts the remaining `< B` bits.
//!
//! FST instantiates this twice: `B = 64` over the LOUDS-Dense bitmaps (at
//! most one popcount per query, 50 % LUT overhead on a tiny structure) and
//! `B = 512` over LOUDS-Sparse (6.25 % overhead, one cache line of
//! popcounts worst case).

use crate::bitvec::BitVector;
use memtree_common::mem::vec_bytes;

/// Precomputed rank support over an external [`BitVector`].
///
/// The support does not own the bits; callers pass the same vector to
/// queries that they built the support from (FST bundles them in one
/// struct). Ranks are **inclusive**: `rank1(bv, i)` counts set bits in
/// `[0, i]`, matching the navigation formulas of §3.2–3.3.
#[derive(Debug, Clone)]
pub struct RankSupport {
    /// `lut[j]` = number of set bits strictly before block `j`.
    lut: Vec<u32>,
    /// Basic block size in bits; a multiple of 64.
    block_bits: usize,
}

impl RankSupport {
    /// Builds rank support with the given basic block size (must be a
    /// non-zero multiple of 64).
    pub fn new(bv: &BitVector, block_bits: usize) -> Self {
        assert!(block_bits > 0 && block_bits.is_multiple_of(64));
        let words_per_block = block_bits / 64;
        let nblocks = bv.len().div_ceil(block_bits).max(1);
        let mut lut = Vec::with_capacity(nblocks);
        let mut acc: u32 = 0;
        let words = bv.words();
        for b in 0..nblocks {
            lut.push(acc);
            let start = b * words_per_block;
            let end = ((b + 1) * words_per_block).min(words.len());
            for w in &words[start..end.max(start)] {
                acc += w.count_ones();
            }
        }
        Self { lut, block_bits }
    }

    /// Number of set bits in `[0, pos]` (inclusive).
    #[inline]
    pub fn rank1(&self, bv: &BitVector, pos: usize) -> usize {
        debug_assert!(pos < bv.len());
        let block = pos / self.block_bits;
        let mut r = self.lut[block] as usize;
        let words = bv.words();
        let first_word = block * (self.block_bits / 64);
        let last_word = pos / 64;
        for w in &words[first_word..last_word] {
            r += w.count_ones() as usize;
        }
        // Bits [0, pos % 64] of the final word.
        let mask = u64::MAX >> (63 - (pos % 64) as u32);
        r + (words[last_word] & mask).count_ones() as usize
    }

    /// Number of clear bits in `[0, pos]` (inclusive).
    #[inline]
    pub fn rank0(&self, bv: &BitVector, pos: usize) -> usize {
        pos + 1 - self.rank1(bv, pos)
    }

    /// Total set bits before block `j` — used by LUT-guided select.
    #[inline]
    pub(crate) fn block_rank(&self, j: usize) -> usize {
        self.lut[j] as usize
    }

    /// Number of blocks in the LUT.
    #[inline]
    pub(crate) fn num_blocks(&self) -> usize {
        self.lut.len()
    }

    /// Basic block size in bits.
    #[inline]
    pub(crate) fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// Heap bytes used by the LUT.
    pub fn mem_usage(&self) -> usize {
        vec_bytes(&self.lut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(bv: &BitVector, block: usize) {
        let rs = RankSupport::new(bv, block);
        let mut acc = 0;
        for i in 0..bv.len() {
            if bv.get(i) {
                acc += 1;
            }
            assert_eq!(rs.rank1(bv, i), acc, "pos {i} block {block}");
            assert_eq!(rs.rank0(bv, i), i + 1 - acc);
        }
    }

    #[test]
    fn rank_matches_naive_dense_and_sparse_blocks() {
        let patterns: Vec<BitVector> = vec![
            (0..1000).map(|i| i % 7 == 0).collect(),
            (0..1000).map(|_| true).collect(),
            (0..1000).map(|_| false).collect(),
            (0..513).map(|i| i % 2 == 0).collect(),
        ];
        for bv in &patterns {
            check_all(bv, 64);
            check_all(bv, 512);
        }
    }

    #[test]
    fn rank_on_random_bits() {
        let mut state = 42u64;
        let bv: BitVector = (0..4096)
            .map(|_| memtree_common::hash::splitmix64(&mut state) % 3 == 0)
            .collect();
        check_all(&bv, 64);
        check_all(&bv, 512);
    }
}
