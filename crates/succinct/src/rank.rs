//! Rank-1 support with a single-level lookup table (§3.6, Figure 3.3).
//!
//! The bit vector is divided into fixed-size basic blocks of `B` bits; each
//! block owns a 32-bit precomputed rank of its start position. A query adds
//! the LUT entry and popcounts the remaining `< B` bits.
//!
//! FST instantiates this twice: `B = 64` over the LOUDS-Dense bitmaps (at
//! most one popcount per query, 50 % LUT overhead on a tiny structure) and
//! `B = 512` over LOUDS-Sparse (6.25 % overhead, one cache line of
//! popcounts worst case).

use crate::bitvec::BitVector;
use memtree_common::mem::vec_bytes;

/// Precomputed rank support over an external [`BitVector`].
///
/// The support does not own the bits; callers pass the same vector to
/// queries that they built the support from (FST bundles them in one
/// struct). Ranks are **inclusive**: `rank1(bv, i)` counts set bits in
/// `[0, i]`, matching the navigation formulas of §3.2–3.3. The exclusive
/// form used by the LOUDS "values before position" formulas is
/// [`RankSupport::rank1_excl`].
#[derive(Debug, Clone)]
pub struct RankSupport {
    /// `lut[j]` = number of set bits strictly before block `j`, for `j` in
    /// `0..=nblocks` — the final sentinel entry (total ones) lets exclusive
    /// rank at one-past-the-end positions stay branch-free.
    lut: Vec<u32>,
    /// Basic block size in bits; a multiple of 64.
    block_bits: usize,
}

impl RankSupport {
    /// Builds rank support with the given basic block size (must be a
    /// non-zero multiple of 64).
    pub fn new(bv: &BitVector, block_bits: usize) -> Self {
        assert!(block_bits > 0 && block_bits.is_multiple_of(64));
        let words_per_block = block_bits / 64;
        let nblocks = bv.len().div_ceil(block_bits).max(1);
        let mut lut = Vec::with_capacity(nblocks + 1);
        let mut acc: u32 = 0;
        let words = bv.words();
        for b in 0..nblocks {
            lut.push(acc);
            let start = b * words_per_block;
            let end = ((b + 1) * words_per_block).min(words.len());
            acc += crate::kernels::popcount_words(&words[start..end.max(start)]);
        }
        lut.push(acc); // sentinel: total set bits
        Self { lut, block_bits }
    }

    /// Number of set bits in `[0, pos]` (inclusive).
    #[inline]
    pub fn rank1(&self, bv: &BitVector, pos: usize) -> usize {
        debug_assert!(pos < bv.len());
        let words = bv.words();
        let last_word = pos / 64;
        // Bits [0, pos % 64] of the final word.
        let mask = u64::MAX >> (63 - (pos % 64) as u32);
        if self.block_bits == 64 {
            // §3.6 B = 64 fast path: the LUT entry is the word's exclusive
            // rank, so the answer is one load + exactly one popcount.
            return self.lut[last_word] as usize
                + (words[last_word] & mask).count_ones() as usize;
        }
        let block = pos / self.block_bits;
        let r = self.lut[block] as usize
            + crate::kernels::popcount_words(&words[block * (self.block_bits / 64)..last_word])
                as usize;
        r + (words[last_word] & mask).count_ones() as usize
    }

    /// Number of set bits strictly before `pos` (exclusive rank).
    ///
    /// Accepts any `pos` in `[0, len]` — positions past the end clamp to
    /// the total — so LOUDS "values before position" callers need neither
    /// the `pos == 0` special case nor the `min(len - 1)` clamp that an
    /// inclusive `rank1(pos - 1)` forces on them.
    #[inline]
    pub fn rank1_excl(&self, bv: &BitVector, pos: usize) -> usize {
        let pos = pos.min(bv.len());
        let words = bv.words();
        let wi = pos / 64;
        // `(1 << off) - 1` keeps bits strictly below `pos`; off == 0 makes
        // the mask 0, so a clamped word read contributes nothing.
        let mask = (1u64 << (pos % 64)).wrapping_sub(1);
        let partial_word = words.get(wi).copied().unwrap_or(0) & mask;
        if self.block_bits == 64 {
            // The sentinel entry makes lut[wi] valid even at pos == len.
            return self.lut[wi] as usize + partial_word.count_ones() as usize;
        }
        let block = (pos / self.block_bits).min(self.lut.len() - 1);
        let r = self.lut[block] as usize
            + crate::kernels::popcount_words(
                &words[(block * (self.block_bits / 64)).min(words.len())..wi.min(words.len())],
            ) as usize;
        r + partial_word.count_ones() as usize
    }

    /// Number of clear bits in `[0, pos]` (inclusive).
    #[inline]
    pub fn rank0(&self, bv: &BitVector, pos: usize) -> usize {
        pos + 1 - self.rank1(bv, pos)
    }

    /// Total set bits before block `j` — used by LUT-guided select.
    #[inline]
    pub(crate) fn block_rank(&self, j: usize) -> usize {
        self.lut[j] as usize
    }

    /// Number of blocks in the LUT (excluding the sentinel entry).
    #[inline]
    pub(crate) fn num_blocks(&self) -> usize {
        self.lut.len() - 1
    }

    /// Basic block size in bits.
    #[inline]
    pub(crate) fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// Heap bytes used by the LUT.
    pub fn mem_usage(&self) -> usize {
        vec_bytes(&self.lut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(bv: &BitVector, block: usize) {
        let rs = RankSupport::new(bv, block);
        let mut acc = 0;
        assert_eq!(rs.rank1_excl(bv, 0), 0, "excl 0 block {block}");
        for i in 0..bv.len() {
            if bv.get(i) {
                acc += 1;
            }
            assert_eq!(rs.rank1(bv, i), acc, "pos {i} block {block}");
            assert_eq!(rs.rank1_excl(bv, i + 1), acc, "excl {} block {block}", i + 1);
            assert_eq!(rs.rank0(bv, i), i + 1 - acc);
        }
        // Past-the-end exclusive ranks clamp to the total.
        assert_eq!(rs.rank1_excl(bv, bv.len()), bv.count_ones());
        assert_eq!(rs.rank1_excl(bv, bv.len() + 100), bv.count_ones());
    }

    #[test]
    fn rank_matches_naive_dense_and_sparse_blocks() {
        let patterns: Vec<BitVector> = vec![
            (0..1000).map(|i| i % 7 == 0).collect(),
            (0..1000).map(|_| true).collect(),
            (0..1000).map(|_| false).collect(),
            (0..513).map(|i| i % 2 == 0).collect(),
        ];
        for bv in &patterns {
            check_all(bv, 64);
            check_all(bv, 512);
        }
    }

    #[test]
    fn rank_on_random_bits() {
        let mut state = 42u64;
        let bv: BitVector = (0..4096)
            .map(|_| memtree_common::hash::splitmix64(&mut state) % 3 == 0)
            .collect();
        check_all(&bv, 64);
        check_all(&bv, 512);
    }
}
