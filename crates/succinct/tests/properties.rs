//! Property tests: rank/select agree with naive counting on arbitrary bit
//! patterns, for both FST block configurations and every select path.

use memtree_common::check::{prop_check, Gen};
use memtree_common::{check, check_eq};
use memtree_succinct::{BitVector, RankSupport, SelectSupport};

#[test]
fn rank_matches_naive() {
    prop_check("rank_matches_naive", 64, |g: &mut Gen| {
        let bits = g.bools(1..3000);
        let bv: BitVector = bits.iter().copied().collect();
        for block in [64usize, 512] {
            let rs = RankSupport::new(&bv, block);
            let mut acc = 0usize;
            for (i, &b) in bits.iter().enumerate() {
                acc += usize::from(b);
                check_eq!(rs.rank1(&bv, i), acc, "block {} pos {}", block, i);
                check_eq!(rs.rank0(&bv, i), i + 1 - acc);
            }
        }
        Ok(())
    });
}

#[test]
fn select_matches_naive() {
    prop_check("select_matches_naive", 64, |g: &mut Gen| {
        let bits = g.bools(1..3000);
        let sample = g.range(1..100);
        let bv: BitVector = bits.iter().copied().collect();
        let positions: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        let ss = SelectSupport::new(&bv, sample);
        let rs = RankSupport::new(&bv, 512);
        check_eq!(ss.ones(), positions.len());
        for (k, &pos) in positions.iter().enumerate() {
            check_eq!(ss.select1(&bv, k + 1), pos, "sampled k={}", k + 1);
            check_eq!(
                SelectSupport::select1_via_rank(&bv, &rs, k + 1),
                pos,
                "via-rank k={}",
                k + 1
            );
        }
        Ok(())
    });
}

#[test]
fn rank_select_are_inverse() {
    prop_check("rank_select_are_inverse", 64, |g: &mut Gen| {
        let bits = g.bools(64..2000);
        let bv: BitVector = bits.iter().copied().collect();
        let rs = RankSupport::new(&bv, 64);
        let ss = SelectSupport::new(&bv, 64);
        for i in 1..=ss.ones() {
            let pos = ss.select1(&bv, i);
            check_eq!(rs.rank1(&bv, pos), i);
            check!(bv.get(pos));
        }
        Ok(())
    });
}
