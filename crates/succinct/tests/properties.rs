//! Property tests: rank/select agree with naive counting on arbitrary bit
//! patterns, for both FST block configurations and every select path.

use memtree_succinct::{BitVector, RankSupport, SelectSupport};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_matches_naive(bits in proptest::collection::vec(any::<bool>(), 1..3000)) {
        let bv: BitVector = bits.iter().copied().collect();
        for block in [64usize, 512] {
            let rs = RankSupport::new(&bv, block);
            let mut acc = 0usize;
            for (i, &b) in bits.iter().enumerate() {
                acc += usize::from(b);
                prop_assert_eq!(rs.rank1(&bv, i), acc, "block {} pos {}", block, i);
                prop_assert_eq!(rs.rank0(&bv, i), i + 1 - acc);
            }
        }
    }

    #[test]
    fn select_matches_naive(
        bits in proptest::collection::vec(any::<bool>(), 1..3000),
        sample in 1usize..100,
    ) {
        let bv: BitVector = bits.iter().copied().collect();
        let positions: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        let ss = SelectSupport::new(&bv, sample);
        let rs = RankSupport::new(&bv, 512);
        prop_assert_eq!(ss.ones(), positions.len());
        for (k, &pos) in positions.iter().enumerate() {
            prop_assert_eq!(ss.select1(&bv, k + 1), pos, "sampled k={}", k + 1);
            prop_assert_eq!(
                SelectSupport::select1_via_rank(&bv, &rs, k + 1),
                pos,
                "via-rank k={}",
                k + 1
            );
        }
    }

    #[test]
    fn rank_select_are_inverse(bits in proptest::collection::vec(any::<bool>(), 64..2000)) {
        let bv: BitVector = bits.iter().copied().collect();
        let rs = RankSupport::new(&bv, 64);
        let ss = SelectSupport::new(&bv, 64);
        for i in 1..=ss.ones() {
            let pos = ss.select1(&bv, i);
            prop_assert_eq!(rs.rank1(&bv, pos), i);
            prop_assert!(bv.get(pos));
        }
    }
}
