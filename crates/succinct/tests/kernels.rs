//! Differential coverage for the hot-path kernels: every vectorized
//! variant (SWAR, runtime-dispatched SIMD, fast-path rank) must agree with
//! its scalar baseline on seeded random inputs and the all-zero/all-one
//! edge cases.

use memtree_common::check::{prop_check, Gen};
use memtree_common::{check, check_eq};
use memtree_succinct::{
    find_byte, find_byte_scalar, find_byte_swar, select_in_word, select_in_word_scalar,
    select_in_word_swar, BitVector, RankSupport,
};

fn check_select_word(w: u64) -> Result<(), String> {
    for k in 1..=65u32 {
        let expect = select_in_word_scalar(w, k);
        check_eq!(select_in_word_swar(w, k), expect, "swar w={w:#x} k={k}");
        check_eq!(select_in_word(w, k), expect, "dispatch w={w:#x} k={k}");
    }
    Ok(())
}

#[test]
fn select_in_word_edge_words() {
    for w in [0u64, u64::MAX, 1, 1 << 63, 0x8000_0000_0000_0001] {
        check_select_word(w).unwrap();
    }
}

#[test]
fn select_in_word_random_words() {
    prop_check("select_in_word_vs_scalar", 2000, |g: &mut Gen| {
        // Mix dense, sparse, and clustered words.
        let w = match g.range(0..4) {
            0 => g.u64(),
            1 => g.u64() & g.u64() & g.u64(),          // sparse
            2 => g.u64() | g.u64() | g.u64(),          // dense
            _ => g.u64() & (u64::MAX >> g.range(0..64)), // clustered low
        };
        check_select_word(w)
    });
}

#[test]
fn rank_fast_path_matches_naive_and_wide_blocks() {
    prop_check("rank1_b64_vs_b512_vs_naive", 64, |g: &mut Gen| {
        let bits = g.bools(1..1200);
        let bv: BitVector = bits.iter().copied().collect();
        let r64 = RankSupport::new(&bv, 64);
        let r512 = RankSupport::new(&bv, 512);
        let mut acc = 0usize;
        for (i, &b) in bits.iter().enumerate() {
            check_eq!(r64.rank1_excl(&bv, i), acc, "excl pos {i}");
            check_eq!(r512.rank1_excl(&bv, i), acc, "excl wide pos {i}");
            if b {
                acc += 1;
            }
            check_eq!(r64.rank1(&bv, i), acc, "pos {i}");
            check_eq!(r512.rank1(&bv, i), acc, "wide pos {i}");
        }
        check_eq!(r64.rank1_excl(&bv, bv.len()), acc);
        check_eq!(r512.rank1_excl(&bv, bv.len()), acc);
        Ok(())
    });
}

#[test]
fn rank_fast_path_all_zero_all_one() {
    for len in [1usize, 63, 64, 65, 512, 513, 1000] {
        for ones in [false, true] {
            let bv: BitVector = (0..len).map(|_| ones).collect();
            let rs = RankSupport::new(&bv, 64);
            for pos in 0..len {
                let expect = if ones { pos + 1 } else { 0 };
                assert_eq!(rs.rank1(&bv, pos), expect, "len={len} ones={ones} pos={pos}");
                assert_eq!(
                    rs.rank1_excl(&bv, pos),
                    if ones { pos } else { 0 },
                    "excl len={len} ones={ones} pos={pos}"
                );
            }
            assert_eq!(rs.rank1_excl(&bv, len), if ones { len } else { 0 });
        }
    }
}

#[test]
fn find_byte_random_haystacks() {
    prop_check("find_byte_vs_scalar", 2000, |g: &mut Gen| {
        // Small alphabets force hits; full range forces misses too.
        let hay = if g.bool(0.5) {
            g.bytes_from(b"abcde", 0..260)
        } else {
            g.bytes_vec(0..260)
        };
        let needle = if g.bool(0.5) {
            *g.pick(b"abcdefg")
        } else {
            g.u64() as u8
        };
        let expect = find_byte_scalar(&hay, needle);
        check_eq!(find_byte_swar(&hay, needle), expect, "swar len={}", hay.len());
        check_eq!(find_byte(&hay, needle), expect, "dispatch len={}", hay.len());
        Ok(())
    });
}

#[test]
fn find_byte_uniform_haystacks() {
    // All-zero and all-0xFF haystacks at every alignment-relevant length.
    for len in 0..70usize {
        for fill in [0x00u8, 0xFF] {
            let hay = vec![fill; len];
            for needle in [0x00u8, 0x01, 0xFF] {
                let expect = find_byte_scalar(&hay, needle);
                assert_eq!(find_byte_swar(&hay, needle), expect, "len={len} fill={fill:#x}");
                assert_eq!(find_byte(&hay, needle), expect, "len={len} fill={fill:#x}");
            }
        }
    }
}

#[test]
fn select_via_support_still_consistent_with_rank() {
    // End-to-end: the sampled select support (which now rides on the
    // dispatched in-word select) stays the inverse of rank.
    prop_check("select_rank_inverse_kernels", 32, |g: &mut Gen| {
        let bits = g.bools(1..4000);
        let bv: BitVector = bits.iter().copied().collect();
        let ss = memtree_succinct::SelectSupport::new(&bv, 64);
        let rs = RankSupport::new(&bv, 64);
        let mut k = 0usize;
        for (pos, &b) in bits.iter().enumerate() {
            if b {
                k += 1;
                check_eq!(ss.select1(&bv, k), pos, "k={k}");
                check_eq!(rs.rank1(&bv, pos), k, "pos={pos}");
            }
        }
        check!(ss.ones() == k, "ones {} != {k}", ss.ones());
        Ok(())
    });
}
