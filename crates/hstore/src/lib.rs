//! A miniature H-Store (Chapter 5, §5.4): a single-partition in-memory
//! row store with pluggable index types, stored-procedure execution, a
//! statistics API (Table 1.1's memory breakdown), and anti-caching
//! (cold-tuple eviction to disk blocks with tombstones and
//! fetch-and-restart semantics).
//!
//! Three OLTP benchmarks drive it, as in the thesis: **TPC-C** (order
//! processing, 88 % writes), **Voter** (tiny update-heavy transactions)
//! and **Articles** (read-mostly news site scaled to Reddit-like traffic).
//!
//! The thesis runs 8 single-threaded partitions; partitions share nothing,
//! so we model one partition and report per-partition throughput
//! (substitution #7 in DESIGN.md).

#![warn(missing_docs)]

pub mod articles;
pub mod db;
pub mod index;
pub mod row;
pub mod tpcc;
pub mod voter;

pub use db::{Database, DbStats, IndexChoice};
pub use row::{Row, Val};
