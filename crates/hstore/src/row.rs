//! Rows, values, and order-preserving composite-key encoding.
//!
//! Accessors and the key encoder are fully typed: a malformed row (wrong
//! column type, a non-indexable double in a key column) surfaces as a
//! [`MemtreeError::Schema`] the transaction layer can reject, rather than
//! a panic that would take a serve worker down with it.

/// A column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// 64-bit signed integer.
    I64(i64),
    /// UTF-8 string (NUL-free, as all OLTP benchmark strings are).
    Str(String),
    /// Double (money amounts etc.; never indexed).
    F64(f64),
}

impl Val {
    /// Integer accessor; [`MemtreeError::Schema`] on any other variant.
    pub fn as_i64(&self) -> Result<i64, MemtreeError> {
        match self {
            Val::I64(v) => Ok(*v),
            _ => Err(MemtreeError::schema("val-accessor", "I64", format!("{self:?}"))),
        }
    }

    /// String accessor; [`MemtreeError::Schema`] on any other variant.
    pub fn as_str(&self) -> Result<&str, MemtreeError> {
        match self {
            Val::Str(s) => Ok(s),
            _ => Err(MemtreeError::schema("val-accessor", "Str", format!("{self:?}"))),
        }
    }

    /// Double accessor; [`MemtreeError::Schema`] on any other variant.
    pub fn as_f64(&self) -> Result<f64, MemtreeError> {
        match self {
            Val::F64(v) => Ok(*v),
            _ => Err(MemtreeError::schema("val-accessor", "F64", format!("{self:?}"))),
        }
    }

    /// Appends this value's order-preserving encoding to `out`.
    ///
    /// Integers map sign-flipped big-endian (total order over i64);
    /// strings append their bytes plus a 0x00 terminator so shorter
    /// strings sort before their extensions in composite keys. Doubles
    /// are not indexable ([`MemtreeError::Schema`]); `out` is unchanged
    /// on error.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), MemtreeError> {
        match self {
            Val::I64(v) => out.extend_from_slice(&((*v as u64) ^ (1 << 63)).to_be_bytes()),
            Val::Str(s) => {
                debug_assert!(!s.as_bytes().contains(&0));
                out.extend_from_slice(s.as_bytes());
                out.push(0);
            }
            Val::F64(_) => {
                return Err(MemtreeError::schema(
                    "key-encoder",
                    "indexable value (I64 or Str)",
                    format!("{self:?}"),
                ))
            }
        }
        Ok(())
    }

    /// Approximate heap bytes of the value.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Val::Str(s) => s.capacity(),
            _ => 0,
        }
    }
}

/// A table row.
pub type Row = Vec<Val>;

/// Encodes a composite key from the given column positions of a row.
pub fn encode_key(row: &Row, cols: &[usize]) -> Result<Vec<u8>, MemtreeError> {
    let mut out = Vec::with_capacity(cols.len() * 9);
    for &c in cols {
        row[c].encode_into(&mut out)?;
    }
    Ok(out)
}

/// Encodes a composite key directly from values.
pub fn encode_vals(vals: &[Val]) -> Result<Vec<u8>, MemtreeError> {
    let mut out = Vec::with_capacity(vals.len() * 9);
    for v in vals {
        v.encode_into(&mut out)?;
    }
    Ok(out)
}

/// Approximate in-memory bytes of a row (inline enum + string heaps).
pub fn row_bytes(row: &Row) -> usize {
    row.len() * std::mem::size_of::<Val>() + row.iter().map(Val::heap_bytes).sum::<usize>()
}

// ---- anti-cache tuple serialization ------------------------------------
//
// Evicted tuples travel through the anti-cache as a flat byte image (then
// compressed and checksum-framed by `memtree-compress`). Layout, all
// little-endian: `u32` tuple count, then per tuple `u16` table id, `u32`
// slot, `u16` column count, then per column a tag byte (0=I64, 1=Str,
// 2=F64) and its payload (i64 / u32 len + bytes / f64 bits).

use memtree_common::error::MemtreeError;

/// Serializes an eviction batch into a flat byte image.
pub fn encode_tuples(tuples: &[(u16, u32, Row)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * tuples.len());
    out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    for (tbl, slot, row) in tuples {
        out.extend_from_slice(&tbl.to_le_bytes());
        out.extend_from_slice(&slot.to_le_bytes());
        out.extend_from_slice(&(row.len() as u16).to_le_bytes());
        for val in row {
            match val {
                Val::I64(v) => {
                    out.push(0);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Val::Str(s) => {
                    out.push(1);
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                Val::F64(v) => {
                    out.push(2);
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], MemtreeError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(MemtreeError::corruption(
                "anticache-tuples",
                format!("truncated at byte {} (wanted {n} more)", self.at),
            )),
        }
    }

    fn u16(&mut self) -> Result<u16, MemtreeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, MemtreeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, MemtreeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Deserializes an eviction batch. Returns
/// [`MemtreeError::Corruption`] on any structural damage; never panics.
pub fn decode_tuples(bytes: &[u8]) -> Result<Vec<(u16, u32, Row)>, MemtreeError> {
    let mut c = Cursor { buf: bytes, at: 0 };
    let count = c.u32()? as usize;
    // A tuple needs at least 8 header bytes: reject absurd counts early.
    if count > bytes.len() / 8 + 1 {
        return Err(MemtreeError::corruption(
            "anticache-tuples",
            format!("implausible tuple count {count} for {} bytes", bytes.len()),
        ));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let tbl = c.u16()?;
        let slot = c.u32()?;
        let ncols = c.u16()? as usize;
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let tag = c.take(1)?[0];
            row.push(match tag {
                0 => Val::I64(c.u64()? as i64),
                1 => {
                    let len = c.u32()? as usize;
                    let raw = c.take(len)?;
                    let s = std::str::from_utf8(raw).map_err(|e| {
                        MemtreeError::corruption(
                            "anticache-tuples",
                            format!("non-UTF-8 string column: {e}"),
                        )
                    })?;
                    Val::Str(s.to_string())
                }
                2 => Val::F64(f64::from_bits(c.u64()?)),
                t => {
                    return Err(MemtreeError::corruption(
                        "anticache-tuples",
                        format!("unknown value tag {t}"),
                    ))
                }
            });
        }
        out.push((tbl, slot, row));
    }
    if c.at != bytes.len() {
        return Err(MemtreeError::corruption(
            "anticache-tuples",
            format!("{} trailing bytes after last tuple", bytes.len() - c.at),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_encoding_is_order_preserving_over_sign() {
        let vals = [-5i64, -1, 0, 1, 42, i64::MIN, i64::MAX];
        let mut pairs: Vec<(Vec<u8>, i64)> = vals
            .iter()
            .map(|&v| (encode_vals(&[Val::I64(v)]).unwrap(), v))
            .collect();
        pairs.sort();
        let sorted: Vec<i64> = pairs.iter().map(|(_, v)| *v).collect();
        let mut expect = vals.to_vec();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn composite_keys_sort_lexicographically() {
        let a = encode_vals(&[Val::I64(1), Val::Str("apple".into())]).unwrap();
        let b = encode_vals(&[Val::I64(1), Val::Str("apples".into())]).unwrap();
        let c = encode_vals(&[Val::I64(2), Val::Str("a".into())]).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn string_terminator_orders_prefixes() {
        let short = encode_vals(&[Val::Str("ab".into()), Val::I64(9)]).unwrap();
        let long = encode_vals(&[Val::Str("abc".into()), Val::I64(0)]).unwrap();
        assert!(short < long);
    }

    #[test]
    fn schema_violations_are_typed_not_panics() {
        let v = Val::F64(1.5);
        assert!(matches!(v.as_i64(), Err(MemtreeError::Schema { expected: "I64", .. })));
        assert!(matches!(v.as_str(), Err(MemtreeError::Schema { expected: "Str", .. })));
        assert!(matches!(Val::I64(3).as_f64(), Err(MemtreeError::Schema { .. })));
        assert_eq!(Val::I64(3).as_i64().unwrap(), 3);
        assert_eq!(Val::Str("x".into()).as_str().unwrap(), "x");
        assert_eq!(v.as_f64().unwrap(), 1.5);
        // A double in a key column rejects the encode and leaves the
        // buffer untouched.
        let mut out = vec![7u8];
        let err = encode_vals(&[Val::I64(1), Val::F64(0.5)]).unwrap_err();
        assert!(matches!(err, MemtreeError::Schema { context: "key-encoder", .. }));
        assert!(Val::F64(0.5).encode_into(&mut out).is_err());
        assert_eq!(out, vec![7u8]);
        assert!(encode_key(&vec![Val::F64(9.0)], &[0]).is_err());
    }

    #[test]
    fn tuples_roundtrip() {
        let tuples = vec![
            (0u16, 7u32, vec![Val::I64(-3), Val::Str("hello".into()), Val::F64(1.25)]),
            (9, 100_000, vec![]),
            (1, 0, vec![Val::Str(String::new())]),
        ];
        let bytes = encode_tuples(&tuples);
        assert_eq!(decode_tuples(&bytes).unwrap(), tuples);
        assert_eq!(decode_tuples(&encode_tuples(&[])).unwrap(), vec![]);
    }

    #[test]
    fn corrupt_tuple_images_error_never_panic() {
        let tuples = vec![(2u16, 5u32, vec![Val::I64(1), Val::Str("abcd".into())])];
        let bytes = encode_tuples(&tuples);
        for cut in 0..bytes.len() {
            assert!(decode_tuples(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Byte garbage must decode or error, never panic. (The checksum
        // frame above this layer catches flips; this is defense in depth.)
        for seed in 0..64u8 {
            let junk: Vec<u8> = (0..97).map(|i| seed.wrapping_mul(31).wrapping_add(i)).collect();
            let _ = decode_tuples(&junk);
        }
    }
}
