//! Rows, values, and order-preserving composite-key encoding.

/// A column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// 64-bit signed integer.
    I64(i64),
    /// UTF-8 string (NUL-free, as all OLTP benchmark strings are).
    Str(String),
    /// Double (money amounts etc.; never indexed).
    F64(f64),
}

impl Val {
    /// Integer accessor.
    pub fn i64(&self) -> i64 {
        match self {
            Val::I64(v) => *v,
            _ => panic!("expected I64, got {self:?}"),
        }
    }

    /// String accessor.
    pub fn str(&self) -> &str {
        match self {
            Val::Str(s) => s,
            _ => panic!("expected Str, got {self:?}"),
        }
    }

    /// Double accessor.
    pub fn f64(&self) -> f64 {
        match self {
            Val::F64(v) => *v,
            _ => panic!("expected F64, got {self:?}"),
        }
    }

    /// Appends this value's order-preserving encoding to `out`.
    ///
    /// Integers map sign-flipped big-endian (total order over i64);
    /// strings append their bytes plus a 0x00 terminator so shorter
    /// strings sort before their extensions in composite keys.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Val::I64(v) => out.extend_from_slice(&((*v as u64) ^ (1 << 63)).to_be_bytes()),
            Val::Str(s) => {
                debug_assert!(!s.as_bytes().contains(&0));
                out.extend_from_slice(s.as_bytes());
                out.push(0);
            }
            Val::F64(_) => panic!("doubles are not indexable"),
        }
    }

    /// Approximate heap bytes of the value.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Val::Str(s) => s.capacity(),
            _ => 0,
        }
    }
}

/// A table row.
pub type Row = Vec<Val>;

/// Encodes a composite key from the given column positions of a row.
pub fn encode_key(row: &Row, cols: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(cols.len() * 9);
    for &c in cols {
        row[c].encode_into(&mut out);
    }
    out
}

/// Encodes a composite key directly from values.
pub fn encode_vals(vals: &[Val]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 9);
    for v in vals {
        v.encode_into(&mut out);
    }
    out
}

/// Approximate in-memory bytes of a row (inline enum + string heaps).
pub fn row_bytes(row: &Row) -> usize {
    row.len() * std::mem::size_of::<Val>() + row.iter().map(Val::heap_bytes).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_encoding_is_order_preserving_over_sign() {
        let vals = [-5i64, -1, 0, 1, 42, i64::MIN, i64::MAX];
        let mut pairs: Vec<(Vec<u8>, i64)> = vals
            .iter()
            .map(|&v| (encode_vals(&[Val::I64(v)]), v))
            .collect();
        pairs.sort();
        let sorted: Vec<i64> = pairs.iter().map(|(_, v)| *v).collect();
        let mut expect = vals.to_vec();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn composite_keys_sort_lexicographically() {
        let a = encode_vals(&[Val::I64(1), Val::Str("apple".into())]);
        let b = encode_vals(&[Val::I64(1), Val::Str("apples".into())]);
        let c = encode_vals(&[Val::I64(2), Val::Str("a".into())]);
        assert!(a < b && b < c);
    }

    #[test]
    fn string_terminator_orders_prefixes() {
        let short = encode_vals(&[Val::Str("ab".into()), Val::I64(9)]);
        let long = encode_vals(&[Val::Str("abc".into()), Val::I64(0)]);
        assert!(short < long);
    }
}
