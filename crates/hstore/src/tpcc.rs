//! TPC-C (§5.4.2): the five-procedure order-processing workload.
//! ~88 % of executed transactions modify the database.

use crate::db::Database;
use crate::row::Val;
use memtree_common::error::MemtreeError;
use memtree_common::hash::splitmix64;

/// Scale parameters (thesis: 8 warehouses, 100 000 items).
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Warehouses.
    pub warehouses: i64,
    /// Items (and stock rows per warehouse).
    pub items: i64,
    /// Customers per district (10 districts per warehouse).
    pub customers_per_district: i64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self {
            warehouses: 8,
            items: 100_000,
            customers_per_district: 3000,
        }
    }
}

impl TpccConfig {
    /// A laptop-scale configuration for quick experiments.
    pub fn small() -> Self {
        Self {
            warehouses: 2,
            items: 10_000,
            customers_per_district: 300,
        }
    }
}

const DISTRICTS: i64 = 10;

/// Table/index handles resolved once.
pub struct Tpcc {
    cfg: TpccConfig,
    state: u64,
    // tables
    warehouse: usize,
    district: usize,
    customer: usize,
    history: usize,
    new_order: usize,
    orders: usize,
    order_line: usize,
    item: usize,
    stock: usize,
    // unique indexes
    warehouse_pk: usize,
    district_pk: usize,
    customer_pk: usize,
    new_order_pk: usize,
    orders_pk: usize,
    order_line_pk: usize,
    item_pk: usize,
    stock_pk: usize,
    // secondary indexes
    customer_by_name: usize,
    orders_by_customer: usize,
    history_seq: i64,
}

const LAST_NAMES: &[&str] = &[
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

fn last_name(i: i64) -> String {
    // TPC-C syllable rule over a smaller domain.
    format!(
        "{}{}{}",
        LAST_NAMES[(i / 100 % 10) as usize],
        LAST_NAMES[(i / 10 % 10) as usize],
        LAST_NAMES[(i % 10) as usize]
    )
}

impl Tpcc {
    /// Creates the schema and loads the initial database.
    pub fn load(db: &mut Database, cfg: TpccConfig, seed: u64) -> Self {
        let warehouse = db.create_table("WAREHOUSE");
        let district = db.create_table("DISTRICT");
        let customer = db.create_table("CUSTOMER");
        let history = db.create_table("HISTORY");
        let new_order = db.create_table("NEW_ORDER");
        let orders = db.create_table("ORDERS");
        let order_line = db.create_table("ORDER_LINE");
        let item = db.create_table("ITEM");
        let stock = db.create_table("STOCK");

        let warehouse_pk = db.create_unique_index("WAREHOUSE_PK", warehouse, &[0]);
        let district_pk = db.create_unique_index("DISTRICT_PK", district, &[0, 1]);
        let customer_pk = db.create_unique_index("CUSTOMER_PK", customer, &[0, 1, 2]);
        let new_order_pk = db.create_unique_index("NEW_ORDER_PK", new_order, &[0, 1, 2]);
        let orders_pk = db.create_unique_index("ORDERS_PK", orders, &[0, 1, 2]);
        let order_line_pk = db.create_unique_index("ORDER_LINE_PK", order_line, &[0, 1, 2, 3]);
        let item_pk = db.create_unique_index("ITEM_PK", item, &[0]);
        let stock_pk = db.create_unique_index("STOCK_PK", stock, &[0, 1]);
        let customer_by_name = db.create_multi_index("CUSTOMER_BY_NAME", customer, &[0, 1, 3]);
        let orders_by_customer = db.create_multi_index("ORDERS_BY_CUSTOMER", orders, &[0, 1, 3]);
        let history_pk = db.create_unique_index("HISTORY_PK", history, &[0]);
        let _ = history_pk;

        let mut t = Self {
            cfg,
            state: seed,
            warehouse,
            district,
            customer,
            history,
            new_order,
            orders,
            order_line,
            item,
            stock,
            warehouse_pk,
            district_pk,
            customer_pk,
            new_order_pk,
            orders_pk,
            order_line_pk,
            item_pk,
            stock_pk,
            customer_by_name,
            orders_by_customer,
            history_seq: 0,
        };
        t.populate(db);
        t
    }

    fn rand(&mut self, n: i64) -> i64 {
        (splitmix64(&mut self.state) % n.max(1) as u64) as i64
    }

    fn populate(&mut self, db: &mut Database) {
        for i in 0..self.cfg.items {
            db.insert(
                self.item,
                vec![
                    Val::I64(i),
                    Val::Str(format!("item-{i:06}")),
                    Val::F64(1.0 + (i % 100) as f64),
                ],
            )
            .expect("tpcc load");
        }
        for w in 0..self.cfg.warehouses {
            db.insert(
                self.warehouse,
                vec![Val::I64(w), Val::Str(format!("W{w:02}")), Val::F64(300_000.0)],
            )
            .expect("tpcc load");
            for i in 0..self.cfg.items {
                db.insert(
                    self.stock,
                    vec![
                        Val::I64(w),
                        Val::I64(i),
                        Val::I64(50 + (i % 50)),
                        Val::I64(0),
                        Val::I64(0),
                    ],
                )
                .expect("tpcc load");
            }
            for d in 0..DISTRICTS {
                db.insert(
                    self.district,
                    vec![Val::I64(w), Val::I64(d), Val::I64(1), Val::F64(30_000.0)],
                )
                .expect("tpcc load");
                for c in 0..self.cfg.customers_per_district {
                    db.insert(
                        self.customer,
                        vec![
                            Val::I64(w),
                            Val::I64(d),
                            Val::I64(c),
                            Val::Str(last_name(c)),
                            Val::F64(-10.0),
                            Val::F64(10.0),
                            Val::I64(1),
                        ],
                    )
                    .expect("tpcc load");
                }
            }
        }
    }

    /// Runs one transaction from the standard mix; returns its name.
    ///
    /// Fails (H-Store's abort-and-restart path) if a tuple it touches
    /// cannot be fetched back from the anti-cache.
    pub fn run_one(&mut self, db: &mut Database) -> Result<&'static str, MemtreeError> {
        Ok(match self.rand(100) {
            0..=44 => {
                self.new_order_txn(db)?;
                "NewOrder"
            }
            45..=87 => {
                self.payment_txn(db)?;
                "Payment"
            }
            88..=91 => {
                self.order_status_txn(db)?;
                "OrderStatus"
            }
            92..=95 => {
                self.delivery_txn(db)?;
                "Delivery"
            }
            _ => {
                self.stock_level_txn(db)?;
                "StockLevel"
            }
        })
    }

    fn new_order_txn(&mut self, db: &mut Database) -> Result<(), MemtreeError> {
        let w = self.rand(self.cfg.warehouses);
        let d = self.rand(DISTRICTS);
        let c = self.rand(self.cfg.customers_per_district);
        let d_slot = db
            .get_unique(self.district_pk, &[Val::I64(w), Val::I64(d)])?
            .expect("district");
        let o_id = db.read(self.district, d_slot)?[2].as_i64()?;
        db.update(self.district, d_slot, |row| {
            row[2] = Val::I64(o_id + 1);
            Ok(())
        })?;
        let ol_cnt = 5 + self.rand(11);
        db.insert(
            self.orders,
            vec![
                Val::I64(w),
                Val::I64(d),
                Val::I64(o_id),
                Val::I64(c),
                Val::I64(-1), // carrier unassigned
                Val::I64(ol_cnt),
            ],
        )?;
        db.insert(
            self.new_order,
            vec![Val::I64(w), Val::I64(d), Val::I64(o_id)],
        )?;
        for ol in 0..ol_cnt {
            let i_id = self.rand(self.cfg.items);
            let qty = 1 + self.rand(10);
            let item_slot = db.get_unique(self.item_pk, &[Val::I64(i_id)])?.expect("item");
            let price = db.read(self.item, item_slot)?[2].as_f64()?;
            let stock_slot = db
                .get_unique(self.stock_pk, &[Val::I64(w), Val::I64(i_id)])?
                .expect("stock");
            db.update(self.stock, stock_slot, |row| {
                let s_qty = row[2].as_i64()?;
                row[2] = Val::I64(if s_qty >= qty + 10 {
                    s_qty - qty
                } else {
                    s_qty - qty + 91
                });
                row[3] = Val::I64(row[3].as_i64()? + qty);
                row[4] = Val::I64(row[4].as_i64()? + 1);
                Ok(())
            })?;
            db.insert(
                self.order_line,
                vec![
                    Val::I64(w),
                    Val::I64(d),
                    Val::I64(o_id),
                    Val::I64(ol),
                    Val::I64(i_id),
                    Val::I64(qty),
                    Val::F64(price * qty as f64),
                    Val::Str(format!("dist-{d:02}-info-string-pad")),
                ],
            )?;
        }
        Ok(())
    }

    fn pick_customer(&mut self, db: &mut Database, w: i64, d: i64) -> Result<u64, MemtreeError> {
        if self.rand(100) < 60 {
            // By last name: take the middle match (TPC-C rule).
            let name = last_name(self.rand(self.cfg.customers_per_district.min(1000)));
            let mut slots = db.get_multi(
                self.customer_by_name,
                &[Val::I64(w), Val::I64(d), Val::Str(name)],
            )?;
            if !slots.is_empty() {
                slots.sort_unstable();
                return Ok(slots[slots.len() / 2]);
            }
        }
        let c = self.rand(self.cfg.customers_per_district);
        Ok(db
            .get_unique(self.customer_pk, &[Val::I64(w), Val::I64(d), Val::I64(c)])?
            .expect("customer"))
    }

    fn payment_txn(&mut self, db: &mut Database) -> Result<(), MemtreeError> {
        let w = self.rand(self.cfg.warehouses);
        let d = self.rand(DISTRICTS);
        let amount = 1.0 + self.rand(5000) as f64;
        let w_slot = db.get_unique(self.warehouse_pk, &[Val::I64(w)])?.expect("wh");
        db.update(self.warehouse, w_slot, |row| {
            row[2] = Val::F64(row[2].as_f64()? + amount);
            Ok(())
        })?;
        let d_slot = db
            .get_unique(self.district_pk, &[Val::I64(w), Val::I64(d)])?
            .expect("district");
        db.update(self.district, d_slot, |row| {
            row[3] = Val::F64(row[3].as_f64()? + amount);
            Ok(())
        })?;
        let c_slot = self.pick_customer(db, w, d)?;
        db.update(self.customer, c_slot, |row| {
            row[4] = Val::F64(row[4].as_f64()? - amount);
            row[5] = Val::F64(row[5].as_f64()? + amount);
            row[6] = Val::I64(row[6].as_i64()? + 1);
            Ok(())
        })?;
        let h = self.history_seq;
        self.history_seq += 1;
        db.insert(
            self.history,
            vec![
                Val::I64(h),
                Val::I64(w),
                Val::I64(d),
                Val::F64(amount),
                Val::Str(format!("payment-{w}-{d}")),
            ],
        )?;
        Ok(())
    }

    fn order_status_txn(&mut self, db: &mut Database) -> Result<(), MemtreeError> {
        let w = self.rand(self.cfg.warehouses);
        let d = self.rand(DISTRICTS);
        let c_slot = self.pick_customer(db, w, d)?;
        let c = db.read(self.customer, c_slot)?[2].as_i64()?;
        let orders = db.get_multi(
            self.orders_by_customer,
            &[Val::I64(w), Val::I64(d), Val::I64(c)],
        )?;
        // Most recent order: highest o_id.
        let mut best: Option<(i64, u64)> = None;
        for slot in orders {
            let o_id = db.read(self.orders, slot)?[2].as_i64()?;
            if best.is_none_or(|(b, _)| o_id > b) {
                best = Some((o_id, slot));
            }
        }
        if let Some((o_id, slot)) = best {
            let ol_cnt = db.read(self.orders, slot)?[5].as_i64()?;
            for ol in 0..ol_cnt {
                if let Some(l) = db.get_unique(
                    self.order_line_pk,
                    &[Val::I64(w), Val::I64(d), Val::I64(o_id), Val::I64(ol)],
                )? {
                    db.read(self.order_line, l)?;
                }
            }
        }
        Ok(())
    }

    fn delivery_txn(&mut self, db: &mut Database) -> Result<(), MemtreeError> {
        let w = self.rand(self.cfg.warehouses);
        let carrier = 1 + self.rand(10);
        for d in 0..DISTRICTS {
            // Oldest undelivered order = smallest NEW_ORDER key for (w, d).
            let mut found: Option<(Vec<u8>, u64, i64)> = None;
            db.range_unique(
                self.new_order_pk,
                &[Val::I64(w), Val::I64(d), Val::I64(0)],
                &mut |key, slot| {
                    found = Some((key.to_vec(), slot, 0));
                    false
                },
            )?;
            let Some((_, no_slot, _)) = found else {
                continue;
            };
            let no_row = db.read(self.new_order, no_slot)?;
            if no_row[0].as_i64()? != w || no_row[1].as_i64()? != d {
                continue; // ran past the district
            }
            let o_id = no_row[2].as_i64()?;
            db.delete(self.new_order, no_slot)?;
            if let Some(o_slot) =
                db.get_unique(self.orders_pk, &[Val::I64(w), Val::I64(d), Val::I64(o_id)])?
            {
                let (c_id, ol_cnt) = {
                    let row = db.read(self.orders, o_slot)?;
                    (row[3].as_i64()?, row[5].as_i64()?)
                };
                db.update(self.orders, o_slot, |row| {
                    row[4] = Val::I64(carrier);
                    Ok(())
                })?;
                let mut total = 0.0;
                for ol in 0..ol_cnt {
                    if let Some(l) = db.get_unique(
                        self.order_line_pk,
                        &[Val::I64(w), Val::I64(d), Val::I64(o_id), Val::I64(ol)],
                    )? {
                        total += db.read(self.order_line, l)?[6].as_f64()?;
                    }
                }
                if let Some(c_slot) = db.get_unique(
                    self.customer_pk,
                    &[Val::I64(w), Val::I64(d), Val::I64(c_id)],
                )? {
                    db.update(self.customer, c_slot, |row| {
                        row[4] = Val::F64(row[4].as_f64()? + total);
                        Ok(())
                    })?;
                }
            }
        }
        Ok(())
    }

    fn stock_level_txn(&mut self, db: &mut Database) -> Result<(), MemtreeError> {
        let w = self.rand(self.cfg.warehouses);
        let d = self.rand(DISTRICTS);
        let threshold = 10 + self.rand(11);
        let d_slot = db
            .get_unique(self.district_pk, &[Val::I64(w), Val::I64(d)])?
            .expect("district");
        let next_o = db.read(self.district, d_slot)?[2].as_i64()?;
        let mut low_stock = 0;
        for o_id in (next_o - 20).max(0)..next_o {
            for ol in 0..15 {
                let Some(l) = db.get_unique(
                    self.order_line_pk,
                    &[Val::I64(w), Val::I64(d), Val::I64(o_id), Val::I64(ol)],
                )?
                else {
                    break;
                };
                let i_id = db.read(self.order_line, l)?[4].as_i64()?;
                if let Some(s) = db.get_unique(self.stock_pk, &[Val::I64(w), Val::I64(i_id)])? {
                    if db.read(self.stock, s)?[2].as_i64()? < threshold {
                        low_stock += 1;
                    }
                }
            }
        }
        let _ = low_stock;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::IndexChoice;

    #[test]
    fn load_and_run_mix() {
        let mut db = Database::new(IndexChoice::BTree);
        let cfg = TpccConfig {
            warehouses: 1,
            items: 500,
            customers_per_district: 30,
        };
        let mut tpcc = Tpcc::load(&mut db, cfg, 42);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..500 {
            let name = tpcc.run_one(&mut db).unwrap();
            *counts.entry(name).or_insert(0) += 1;
        }
        assert!(counts["NewOrder"] > 150, "{counts:?}");
        assert!(counts["Payment"] > 150, "{counts:?}");
        assert!(counts.contains_key("Delivery"), "{counts:?}");
        // Orders accumulated.
        let stats: std::collections::HashMap<String, usize> = db
            .table_stats()
            .into_iter()
            .map(|(n, c, _)| (n, c))
            .collect();
        assert!(stats["ORDERS"] > 100);
        assert!(stats["ORDER_LINE"] > 500);
    }

    #[test]
    fn hybrid_index_runs_tpcc() {
        let mut db = Database::new(IndexChoice::Hybrid);
        let cfg = TpccConfig {
            warehouses: 1,
            items: 300,
            customers_per_district: 30,
        };
        let mut tpcc = Tpcc::load(&mut db, cfg, 7);
        for _ in 0..300 {
            tpcc.run_one(&mut db).unwrap();
        }
        let s = db.stats();
        assert!(s.primary_index_bytes > 0);
    }
}
