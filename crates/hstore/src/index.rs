//! The index manager: every table index is one of the thesis's three
//! configurations — the default B+tree, Hybrid B+tree, or
//! Hybrid-Compressed B+tree — in unique (primary) or non-unique
//! (secondary) mode.

use memtree_btree::BPlusTree;
use memtree_common::traits::{OrderedIndex, Value};
use memtree_hybrid::{HybridBTree, HybridCompressedBTree, SecondaryIndex};

/// A primary (unique) index: key → row slot.
pub enum UniqueIndex {
    /// Plain dynamic B+tree (H-Store's default).
    BTree(BPlusTree),
    /// Dual-stage hybrid.
    Hybrid(HybridBTree),
    /// Dual-stage hybrid with compressed static leaves.
    HybridCompressed(HybridCompressedBTree),
}

impl UniqueIndex {
    /// Inserts; `false` on duplicate key.
    pub fn insert(&mut self, key: &[u8], slot: Value) -> bool {
        match self {
            UniqueIndex::BTree(i) => i.insert(key, slot),
            UniqueIndex::Hybrid(i) => i.insert(key, slot),
            UniqueIndex::HybridCompressed(i) => i.insert(key, slot),
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<Value> {
        match self {
            UniqueIndex::BTree(i) => i.get(key),
            UniqueIndex::Hybrid(i) => i.get(key),
            UniqueIndex::HybridCompressed(i) => i.get(key),
        }
    }

    /// Removes a key.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        match self {
            UniqueIndex::BTree(i) => i.remove(key),
            UniqueIndex::Hybrid(i) => i.remove(key),
            UniqueIndex::HybridCompressed(i) => i.remove(key),
        }
    }

    /// Ordered scan of row slots from `low`.
    pub fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        match self {
            UniqueIndex::BTree(i) => i.scan(low, n, out),
            UniqueIndex::Hybrid(i) => i.scan(low, n, out),
            UniqueIndex::HybridCompressed(i) => i.scan(low, n, out),
        }
    }

    /// Keyed range iteration from `low`.
    pub fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        match self {
            UniqueIndex::BTree(i) => OrderedIndex::range_from(i, low, f),
            UniqueIndex::Hybrid(i) => OrderedIndex::range_from(i, low, f),
            UniqueIndex::HybridCompressed(i) => OrderedIndex::range_from(i, low, f),
        }
    }

    /// Heap bytes.
    pub fn mem_usage(&self) -> usize {
        match self {
            UniqueIndex::BTree(i) => i.mem_usage(),
            UniqueIndex::Hybrid(i) => i.mem_usage(),
            UniqueIndex::HybridCompressed(i) => i.mem_usage(),
        }
    }

    /// Maximum observed blocking merge pause, if hybrid.
    pub fn last_merge_ms(&self) -> f64 {
        match self {
            UniqueIndex::BTree(_) => 0.0,
            UniqueIndex::Hybrid(i) => i.merge_stats().last_merge_time.as_secs_f64() * 1e3,
            UniqueIndex::HybridCompressed(i) => {
                i.merge_stats().last_merge_time.as_secs_f64() * 1e3
            }
        }
    }
}

/// A secondary (non-unique) index: key → set of row slots.
pub enum MultiIndex {
    /// Plain B+tree via the value-list arena.
    BTree(SecondaryIndex<BPlusTree>),
    /// Hybrid B+tree secondary.
    Hybrid(SecondaryIndex<HybridBTree>),
    /// Hybrid-Compressed secondary.
    HybridCompressed(SecondaryIndex<HybridCompressedBTree>),
}

impl MultiIndex {
    /// Adds a (key, slot) pair.
    pub fn insert(&mut self, key: &[u8], slot: Value) {
        match self {
            MultiIndex::BTree(i) => i.insert(key, slot),
            MultiIndex::Hybrid(i) => i.insert(key, slot),
            MultiIndex::HybridCompressed(i) => i.insert(key, slot),
        }
    }

    /// All slots for a key.
    pub fn get(&self, key: &[u8]) -> Vec<Value> {
        match self {
            MultiIndex::BTree(i) => i.get(key).to_vec(),
            MultiIndex::Hybrid(i) => i.get(key).to_vec(),
            MultiIndex::HybridCompressed(i) => i.get(key).to_vec(),
        }
    }

    /// Removes one pair.
    pub fn remove(&mut self, key: &[u8], slot: Value) -> bool {
        match self {
            MultiIndex::BTree(i) => i.remove(key, slot),
            MultiIndex::Hybrid(i) => i.remove(key, slot),
            MultiIndex::HybridCompressed(i) => i.remove(key, slot),
        }
    }

    /// Heap bytes.
    pub fn mem_usage(&self) -> usize {
        match self {
            MultiIndex::BTree(i) => i.mem_usage(),
            MultiIndex::Hybrid(i) => i.mem_usage(),
            MultiIndex::HybridCompressed(i) => i.mem_usage(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::db::IndexChoice;

    #[test]
    fn unique_index_all_choices() {
        for choice in [
            IndexChoice::BTree,
            IndexChoice::Hybrid,
            IndexChoice::HybridCompressed,
        ] {
            let mut idx = choice.new_unique();
            for i in 0..5000u64 {
                assert!(idx.insert(&i.to_be_bytes(), i));
            }
            assert!(!idx.insert(&42u64.to_be_bytes(), 0));
            for i in (0..5000u64).step_by(97) {
                assert_eq!(idx.get(&i.to_be_bytes()), Some(i));
            }
            assert!(idx.remove(&42u64.to_be_bytes()));
            assert_eq!(idx.get(&42u64.to_be_bytes()), None);
            let mut out = Vec::new();
            idx.scan(&100u64.to_be_bytes(), 3, &mut out);
            assert_eq!(out, vec![100, 101, 102]);
        }
    }

    #[test]
    fn multi_index_all_choices() {
        for choice in [
            IndexChoice::BTree,
            IndexChoice::Hybrid,
            IndexChoice::HybridCompressed,
        ] {
            let mut idx = choice.new_multi();
            for i in 0..100u64 {
                idx.insert(b"samekey", i);
            }
            assert_eq!(idx.get(b"samekey").len(), 100);
            assert!(idx.remove(b"samekey", 7));
            assert_eq!(idx.get(b"samekey").len(), 99);
            assert!(idx.get(b"other").is_empty());
        }
    }
}
