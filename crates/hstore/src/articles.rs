//! Articles (§5.4.2): an online news site — users submit articles, others
//! comment. Read-intensive with small per-transaction footprints via
//! primary and secondary indexes, scaled Reddit-style.

use crate::db::Database;
use crate::row::Val;
use memtree_common::error::MemtreeError;
use memtree_common::hash::splitmix64;

/// The Articles benchmark handle.
pub struct Articles {
    state: u64,
    articles: usize,
    users: usize,
    comments: usize,
    articles_pk: usize,
    users_pk: usize,
    comments_pk: usize,
    comments_by_article: usize,
    num_articles: i64,
    num_users: i64,
    comment_seq: i64,
    article_seq: i64,
}

impl Articles {
    /// Creates the schema and loads initial articles/users.
    pub fn load(db: &mut Database, num_articles: i64, num_users: i64, seed: u64) -> Self {
        let articles = db.create_table("ARTICLES");
        let users = db.create_table("USERS");
        let comments = db.create_table("COMMENTS");
        let articles_pk = db.create_unique_index("ARTICLES_PK", articles, &[0]);
        let users_pk = db.create_unique_index("USERS_PK", users, &[0]);
        let comments_pk = db.create_unique_index("COMMENTS_PK", comments, &[0]);
        let comments_by_article = db.create_multi_index("COMMENTS_BY_ARTICLE", comments, &[1]);
        let mut a = Self {
            state: seed,
            articles,
            users,
            comments,
            articles_pk,
            users_pk,
            comments_pk,
            comments_by_article,
            num_articles,
            num_users,
            comment_seq: 0,
            article_seq: num_articles,
        };
        for u in 0..num_users {
            db.insert(users, vec![Val::I64(u), Val::Str(format!("user{u:06}"))])
                .expect("articles load");
        }
        for i in 0..num_articles {
            a.insert_article(db, i);
        }
        a
    }

    fn insert_article(&mut self, db: &mut Database, id: i64) {
        db.insert(
            self.articles,
            vec![
                Val::I64(id),
                Val::Str(format!("Article headline number {id}")),
                Val::Str("lorem ipsum ".repeat(8)),
                Val::I64(0), // comment count
                Val::I64(0), // view count
            ],
        )
        .expect("article rows are well-formed");
    }

    fn rand(&mut self, n: i64) -> i64 {
        (splitmix64(&mut self.state) % n.max(1) as u64) as i64
    }

    /// One transaction from the mix (~80 % reads). Fails if a touched
    /// tuple cannot be fetched back from the anti-cache.
    pub fn run_one(&mut self, db: &mut Database) -> Result<&'static str, MemtreeError> {
        let dice = self.rand(100);
        Ok(if dice < 80 {
            // GetArticle: read the requesting user, the article, and its
            // comments.
            let u = self.rand(self.num_users);
            if let Some(us) = db.get_unique(self.users_pk, &[Val::I64(u)])? {
                db.read(self.users, us)?;
            }
            let a = self.rand(self.num_articles);
            if let Some(slot) = db.get_unique(self.articles_pk, &[Val::I64(a)])? {
                db.update(self.articles, slot, |row| {
                    row[4] = Val::I64(row[4].as_i64()? + 1);
                    Ok(())
                })?;
                for c in db.get_multi(self.comments_by_article, &[Val::I64(a)])? {
                    db.read(self.comments, c)?;
                }
            }
            "GetArticle"
        } else if dice < 95 {
            // AddComment.
            let a = self.rand(self.num_articles);
            let u = self.rand(self.num_users);
            let id = self.comment_seq;
            self.comment_seq += 1;
            db.insert(
                self.comments,
                vec![
                    Val::I64(id),
                    Val::I64(a),
                    Val::I64(u),
                    Val::Str(format!("comment {id} text body")),
                ],
            )?;
            debug_assert!(db
                .get_unique(self.comments_pk, &[Val::I64(id)])?
                .is_some());
            if let Some(slot) = db.get_unique(self.articles_pk, &[Val::I64(a)])? {
                db.update(self.articles, slot, |row| {
                    row[3] = Val::I64(row[3].as_i64()? + 1);
                    Ok(())
                })?;
            }
            "AddComment"
        } else {
            // SubmitArticle.
            let id = self.article_seq;
            self.article_seq += 1;
            self.insert_article(db, id);
            self.num_articles = self.article_seq;
            "SubmitArticle"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::IndexChoice;

    #[test]
    fn mix_runs_and_grows() {
        let mut db = Database::new(IndexChoice::BTree);
        let mut art = Articles::load(&mut db, 200, 100, 9);
        let mut names = std::collections::HashMap::new();
        for _ in 0..2000 {
            *names.entry(art.run_one(&mut db).unwrap()).or_insert(0) += 1;
        }
        assert!(names["GetArticle"] > 1200, "{names:?}");
        assert!(names["AddComment"] > 100);
        assert!(names["SubmitArticle"] > 20);
        let stats: std::collections::HashMap<String, usize> = db
            .table_stats()
            .into_iter()
            .map(|(n, c, _)| (n, c))
            .collect();
        assert!(stats["COMMENTS"] > 100);
        assert!(stats["ARTICLES"] > 200);
    }
}
