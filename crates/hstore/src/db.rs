//! The partition database: tables, index manager, statistics API, and
//! anti-caching.

use crate::index::{MultiIndex, UniqueIndex};
use crate::row::{decode_tuples, encode_key, encode_tuples, row_bytes, Row, Val};
use memtree_btree::BPlusTree;
use memtree_common::error::MemtreeError;
use memtree_compress::{decode_block, encode_block};
use memtree_hybrid::{HybridBTree, HybridCompressedBTree, SecondaryIndex};
use std::collections::HashMap;
use std::time::Duration;

/// Fault point: transient anti-cache block fetch failure (retried).
pub const FP_ANTICACHE_FETCH: &str = "hstore.anticache.fetch";
/// Fault point: storage corruption of an anti-cache block at eviction
/// time (a byte of the framed image is flipped; the checksum catches it
/// at fetch and the block is quarantined).
pub const FP_ANTICACHE_CORRUPT: &str = "hstore.anticache.corrupt";
/// Fault point: an eviction round aborts before touching any slot.
pub const FP_ANTICACHE_EVICT: &str = "hstore.anticache.evict";

/// Transient-fetch retry budget before the fetch is given up.
const FETCH_MAX_ATTEMPTS: u32 = 3;

/// Which index implementation every index in the database uses — the
/// three configurations of Figures 5.11–5.16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexChoice {
    /// H-Store's default dynamic B+tree.
    BTree,
    /// Hybrid B+tree.
    Hybrid,
    /// Hybrid-Compressed B+tree.
    HybridCompressed,
}

impl IndexChoice {
    /// Figure-label name.
    pub fn name(&self) -> &'static str {
        match self {
            IndexChoice::BTree => "B+tree",
            IndexChoice::Hybrid => "Hybrid",
            IndexChoice::HybridCompressed => "Hybrid-Compressed",
        }
    }

    /// Creates a unique index of this kind.
    pub fn new_unique(&self) -> UniqueIndex {
        match self {
            IndexChoice::BTree => UniqueIndex::BTree(BPlusTree::new()),
            IndexChoice::Hybrid => UniqueIndex::Hybrid(HybridBTree::new()),
            IndexChoice::HybridCompressed => {
                UniqueIndex::HybridCompressed(HybridCompressedBTree::new())
            }
        }
    }

    /// Creates a non-unique index of this kind.
    pub fn new_multi(&self) -> MultiIndex {
        match self {
            IndexChoice::BTree => MultiIndex::BTree(SecondaryIndex::new()),
            IndexChoice::Hybrid => MultiIndex::Hybrid(SecondaryIndex::new()),
            IndexChoice::HybridCompressed => {
                MultiIndex::HybridCompressed(SecondaryIndex::new())
            }
        }
    }
}

#[derive(Debug)]
enum Slot {
    Present { row: Row, referenced: bool },
    Evicted { block: u32 },
    Free,
}

struct Table {
    name: String,
    slots: Vec<Slot>,
    free: Vec<u32>,
    resident_bytes: usize,
    resident_count: usize,
    evicted_count: usize,
    clock_hand: usize,
}

struct UniqueDef {
    table: usize,
    cols: Vec<usize>,
    index: UniqueIndex,
}

struct MultiDef {
    table: usize,
    cols: Vec<usize>,
    index: MultiIndex,
}

/// One anti-cache block slot.
#[derive(Debug)]
enum BlockState {
    /// A compressed, checksum-framed tuple image (see
    /// [`memtree_compress::encode_block`] and [`crate::row::encode_tuples`]).
    Live(Vec<u8>),
    /// The frame failed checksum validation at fetch time. The block is
    /// kept (never reused) so reads of its tuples keep returning
    /// [`MemtreeError::Quarantined`] instead of wrong data; everything
    /// else keeps serving.
    Quarantined,
    /// Fetched back and available for reuse.
    Free,
}

struct AntiCache {
    threshold_bytes: usize,
    blocks: Vec<BlockState>,
    free_blocks: Vec<u32>,
    fetch_latency: Duration,
    evictions: u64,
    fetches: u64,
    fetch_retries: u64,
    quarantined: u64,
    evict_failures: u64,
    tuples_per_block: usize,
}

/// Memory and anti-caching statistics (the Table 1.1 / Figure 5.11 view).
#[derive(Debug, Default, Clone, Copy)]
pub struct DbStats {
    /// Resident tuple bytes.
    pub tuple_bytes: usize,
    /// Bytes across primary (unique) indexes.
    pub primary_index_bytes: usize,
    /// Bytes across secondary indexes.
    pub secondary_index_bytes: usize,
    /// Tuples currently evicted to the anti-cache.
    pub evicted_tuples: usize,
    /// Anti-cache eviction passes.
    pub evictions: u64,
    /// Evicted-tuple fetches (each implies an abort-and-restart).
    pub fetches: u64,
    /// Transient fetch failures that were retried.
    pub fetch_retries: u64,
    /// Blocks quarantined after failing checksum validation.
    pub quarantined_blocks: u64,
    /// Eviction rounds aborted by an injected fault.
    pub evict_failures: u64,
}

impl DbStats {
    /// Resident memory: tuples + all indexes.
    pub fn total(&self) -> usize {
        self.tuple_bytes + self.primary_index_bytes + self.secondary_index_bytes
    }
}

/// A single-partition database.
pub struct Database {
    tables: Vec<Table>,
    names: HashMap<String, usize>,
    uniques: Vec<UniqueDef>,
    unique_names: HashMap<String, usize>,
    multis: Vec<MultiDef>,
    multi_names: HashMap<String, usize>,
    choice: IndexChoice,
    anti: Option<AntiCache>,
}

impl Database {
    /// Creates an empty partition using `choice` for every index.
    pub fn new(choice: IndexChoice) -> Self {
        Self {
            tables: Vec::new(),
            names: HashMap::new(),
            uniques: Vec::new(),
            unique_names: HashMap::new(),
            multis: Vec::new(),
            multi_names: HashMap::new(),
            choice,
            anti: None,
        }
    }

    /// Enables anti-caching: evict cold tuples once **total** resident
    /// memory (tuples + indexes — indexes can never be evicted, which is
    /// why smaller indexes leave more room for hot tuples, §5.4.4) exceeds
    /// `threshold_bytes`. Each un-evicted block fetch charges
    /// `fetch_latency` and models H-Store's abort-and-restart.
    pub fn enable_anticaching(&mut self, threshold_bytes: usize, fetch_latency: Duration) {
        self.anti = Some(AntiCache {
            threshold_bytes,
            blocks: Vec::new(),
            free_blocks: Vec::new(),
            fetch_latency,
            evictions: 0,
            fetches: 0,
            fetch_retries: 0,
            quarantined: 0,
            evict_failures: 0,
            tuples_per_block: 256,
        });
    }

    /// Registers a table; returns its id.
    pub fn create_table(&mut self, name: &str) -> usize {
        let id = self.tables.len();
        self.tables.push(Table {
            name: name.to_string(),
            slots: Vec::new(),
            free: Vec::new(),
            resident_bytes: 0,
            resident_count: 0,
            evicted_count: 0,
            clock_hand: 0,
        });
        self.names.insert(name.to_string(), id);
        id
    }

    /// Registers a unique index over `cols` of `table`.
    pub fn create_unique_index(&mut self, name: &str, table: usize, cols: &[usize]) -> usize {
        let id = self.uniques.len();
        self.uniques.push(UniqueDef {
            table,
            cols: cols.to_vec(),
            index: self.choice.new_unique(),
        });
        self.unique_names.insert(name.to_string(), id);
        id
    }

    /// Registers a non-unique index over `cols` of `table`.
    pub fn create_multi_index(&mut self, name: &str, table: usize, cols: &[usize]) -> usize {
        let id = self.multis.len();
        self.multis.push(MultiDef {
            table,
            cols: cols.to_vec(),
            index: self.choice.new_multi(),
        });
        self.multi_names.insert(name.to_string(), id);
        id
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> usize {
        self.names[name]
    }

    /// Unique-index id by name.
    pub fn unique_id(&self, name: &str) -> usize {
        self.unique_names[name]
    }

    /// Multi-index id by name.
    pub fn multi_id(&self, name: &str) -> usize {
        self.multi_names[name]
    }

    /// Inserts a row, maintaining all indexes. Returns the slot,
    /// `Ok(None)` on a unique-key violation, or a typed
    /// [`MemtreeError::Schema`] (no index touched) when an indexed column
    /// holds a non-indexable value.
    pub fn insert(&mut self, table: usize, row: Row) -> Result<Option<u64>, MemtreeError> {
        // Encode every index key up front: a schema violation in any of
        // them must reject the insert before a single index is updated.
        let mut unique_keys = Vec::new();
        for (i, def) in self.uniques.iter().enumerate() {
            if def.table == table {
                unique_keys.push((i, encode_key(&row, &def.cols)?));
            }
        }
        let mut multi_keys = Vec::new();
        for (i, def) in self.multis.iter().enumerate() {
            if def.table == table {
                multi_keys.push((i, encode_key(&row, &def.cols)?));
            }
        }
        // Uniqueness next (the hybrid's insert does its own check; probe
        // explicitly so no index is half-updated on failure).
        for (i, key) in &unique_keys {
            if self.uniques[*i].index.get(key).is_some() {
                return Ok(None);
            }
        }
        let t = &mut self.tables[table];
        let slot = match t.free.pop() {
            Some(s) => s as usize,
            None => {
                t.slots.push(Slot::Free);
                t.slots.len() - 1
            }
        };
        t.resident_bytes += row_bytes(&row) + std::mem::size_of::<Slot>();
        t.resident_count += 1;
        for (i, key) in &unique_keys {
            let inserted = self.uniques[*i].index.insert(key, slot as u64);
            debug_assert!(inserted);
        }
        for (i, key) in &multi_keys {
            self.multis[*i].index.insert(key, slot as u64);
        }
        self.tables[table].slots[slot] = Slot::Present {
            row,
            referenced: true,
        };
        self.maybe_evict(table);
        Ok(Some(slot as u64))
    }

    /// Reads a row (cloned), un-evicting it if anti-cached. Marks it
    /// recently used. Fails if the tuple sits in a quarantined or
    /// unfetchable anti-cache block.
    pub fn read(&mut self, table: usize, slot: u64) -> Result<Row, MemtreeError> {
        self.ensure_resident(table, slot)?;
        match &mut self.tables[table].slots[slot as usize] {
            Slot::Present { row, referenced } => {
                *referenced = true;
                Ok(row.clone())
            }
            _ => Err(MemtreeError::corruption(
                "hstore-slot",
                format!("slot {slot} of table {table} is not resident after fetch"),
            )),
        }
    }

    /// Applies `f` to a row in place. Must not modify indexed columns.
    /// Fails (without calling `f`) if the tuple cannot be made resident.
    /// `f` itself is fallible (typed schema errors from the row
    /// accessors); on `Err` the row keeps whatever `f` wrote before
    /// failing, but byte accounting stays exact either way.
    pub fn update<F: FnOnce(&mut Row) -> Result<(), MemtreeError>>(
        &mut self,
        table: usize,
        slot: u64,
        f: F,
    ) -> Result<(), MemtreeError> {
        self.ensure_resident(table, slot)?;
        let t = &mut self.tables[table];
        let Slot::Present { row, referenced } = &mut t.slots[slot as usize] else {
            return Err(MemtreeError::corruption(
                "hstore-slot",
                format!("slot {slot} of table {table} is not resident after fetch"),
            ));
        };
        let before = row_bytes(row);
        let result = f(row);
        *referenced = true;
        let after = row_bytes(row);
        t.resident_bytes = t.resident_bytes + after - before;
        result
    }

    /// Deletes a row by slot, maintaining all indexes. Fails (leaving the
    /// row and indexes untouched) if the tuple cannot be made resident.
    pub fn delete(&mut self, table: usize, slot: u64) -> Result<(), MemtreeError> {
        self.ensure_resident(table, slot)?;
        let t = &mut self.tables[table];
        if !matches!(t.slots[slot as usize], Slot::Present { .. }) {
            return Err(MemtreeError::corruption(
                "hstore-slot",
                format!("slot {slot} of table {table} is not resident after fetch"),
            ));
        }
        let old = std::mem::replace(&mut t.slots[slot as usize], Slot::Free);
        let Slot::Present { row, .. } = old else {
            unreachable!("matched Present above")
        };
        t.resident_bytes -= row_bytes(&row) + std::mem::size_of::<Slot>();
        t.resident_count -= 1;
        t.free.push(slot as u32);
        for def in &mut self.uniques {
            if def.table == table {
                // A row that made it into the index always re-encodes (the
                // insert validated it), so this cannot fail for real rows.
                def.index.remove(&encode_key(&row, &def.cols)?);
            }
        }
        for def in &mut self.multis {
            if def.table == table {
                def.index.remove(&encode_key(&row, &def.cols)?, slot);
            }
        }
        Ok(())
    }

    /// Point lookup through a unique index. A non-indexable probe value
    /// is a typed [`MemtreeError::Schema`], not a panic.
    pub fn get_unique(&self, index: usize, key_vals: &[Val]) -> Result<Option<u64>, MemtreeError> {
        Ok(self.uniques[index]
            .index
            .get(&crate::row::encode_vals(key_vals)?))
    }

    /// All slots under a secondary-index key.
    pub fn get_multi(&self, index: usize, key_vals: &[Val]) -> Result<Vec<u64>, MemtreeError> {
        Ok(self.multis[index]
            .index
            .get(&crate::row::encode_vals(key_vals)?))
    }

    /// Ordered scan of a unique index from `low_vals`, `n` slots.
    pub fn scan_unique(
        &self,
        index: usize,
        low_vals: &[Val],
        n: usize,
    ) -> Result<Vec<u64>, MemtreeError> {
        let mut out = Vec::with_capacity(n);
        self.uniques[index]
            .index
            .scan(&crate::row::encode_vals(low_vals)?, n, &mut out);
        Ok(out)
    }

    /// Keyed range iteration over a unique index.
    pub fn range_unique(
        &self,
        index: usize,
        low_vals: &[Val],
        f: &mut dyn FnMut(&[u8], u64) -> bool,
    ) -> Result<(), MemtreeError> {
        self.uniques[index]
            .index
            .range_from(&crate::row::encode_vals(low_vals)?, f);
        Ok(())
    }

    fn ensure_resident(&mut self, table: usize, slot: u64) -> Result<(), MemtreeError> {
        let Slot::Evicted { block } = self.tables[table].slots[slot as usize] else {
            return Ok(());
        };
        let Some(anti) = self.anti.as_mut() else {
            return Err(MemtreeError::corruption(
                "hstore-anticache",
                format!("slot {slot} of table {table} is evicted but anti-caching is off"),
            ));
        };
        anti.fetches += 1;
        if !anti.fetch_latency.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < anti.fetch_latency {
                std::hint::spin_loop();
            }
        }
        // The simulated storage read is retried on transient failure
        // (injected via `hstore.anticache.fetch`).
        let mut attempt = 1;
        while memtree_faults::should_fail(FP_ANTICACHE_FETCH) {
            if attempt >= FETCH_MAX_ATTEMPTS {
                return Err(MemtreeError::Injected {
                    point: FP_ANTICACHE_FETCH.to_string(),
                });
            }
            anti.fetch_retries += 1;
            attempt += 1;
        }
        // Validate the frame before touching any slot. A checksum failure
        // quarantines the block: its tuples stay Evicted and every read
        // of them reports Quarantined instead of serving damaged bytes.
        let tuples = match &anti.blocks[block as usize] {
            BlockState::Live(frame) => decode_block(frame).and_then(|raw| decode_tuples(&raw)),
            BlockState::Quarantined => return Err(MemtreeError::Quarantined { block }),
            BlockState::Free => Err(MemtreeError::corruption(
                "hstore-anticache",
                format!("slot points at freed block {block}"),
            )),
        };
        let tuples = match tuples {
            Ok(t) => t,
            Err(e) if e.is_corruption() => {
                anti.blocks[block as usize] = BlockState::Quarantined;
                anti.quarantined += 1;
                return Err(MemtreeError::Quarantined { block });
            }
            Err(e) => return Err(e),
        };
        // Block-merge policy: restore every tuple in the fetched block.
        anti.blocks[block as usize] = BlockState::Free;
        anti.free_blocks.push(block);
        for (tbl, s, row) in tuples {
            let t = &mut self.tables[tbl as usize];
            t.resident_bytes += row_bytes(&row) + std::mem::size_of::<Slot>();
            t.resident_count += 1;
            t.evicted_count -= 1;
            t.slots[s as usize] = Slot::Present {
                row,
                referenced: true,
            };
        }
        Ok(())
    }

    /// Evicts cold tuples (CLOCK second chance) while over the threshold.
    fn maybe_evict(&mut self, hot_table: usize) {
        let Some(anti) = &self.anti else {
            return;
        };
        // Indexes count against the budget but cannot be evicted.
        let index_bytes: usize = self.uniques.iter().map(|d| d.index.mem_usage()).sum::<usize>()
            + self.multis.iter().map(|d| d.index.mem_usage()).sum::<usize>();
        let tuple_budget = anti.threshold_bytes.saturating_sub(index_bytes);
        let mut resident: usize = self.tables.iter().map(|t| t.resident_bytes).sum();
        if resident <= tuple_budget {
            return;
        }
        let per_block = anti.tuples_per_block;
        // Evict from the largest tables first (the thesis evicts the
        // coldest data DB-wide; per-table CLOCK approximates it).
        while resident > tuple_budget {
            // An eviction round that fails here aborts before any slot or
            // block is touched — memory stays over budget (recorded in
            // `evict_failures`) but no data is lost or half-moved.
            if memtree_faults::should_fail(FP_ANTICACHE_EVICT) {
                if let Some(anti) = self.anti.as_mut() {
                    anti.evict_failures += 1;
                }
                return;
            }
            let victim_table = self
                .tables
                .iter()
                .enumerate()
                .filter(|(i, t)| t.resident_count > 64 || *i != hot_table)
                .max_by_key(|(_, t)| t.resident_bytes)
                .map(|(i, _)| i);
            let Some(tbl) = victim_table else {
                return;
            };
            let mut batch: Vec<(u16, u32, Row)> = Vec::with_capacity(per_block);
            {
                let t = &mut self.tables[tbl];
                if t.resident_count == 0 {
                    return;
                }
                let n = t.slots.len();
                let mut sweeps = 0usize;
                while batch.len() < per_block && sweeps < 2 * n {
                    let i = t.clock_hand % n;
                    t.clock_hand = (t.clock_hand + 1) % n;
                    sweeps += 1;
                    if let Slot::Present { referenced, .. } = &mut t.slots[i] {
                        if *referenced {
                            *referenced = false;
                        } else {
                            let old = std::mem::replace(&mut t.slots[i], Slot::Free);
                            let Slot::Present { row, .. } = old else {
                                unreachable!()
                            };
                            t.resident_bytes -= row_bytes(&row) + std::mem::size_of::<Slot>();
                            t.resident_count -= 1;
                            t.evicted_count += 1;
                            batch.push((tbl as u16, i as u32, row));
                        }
                    }
                }
            }
            if batch.is_empty() {
                return; // everything referenced; give up this round
            }
            // Serialize, compress, and checksum-frame the block image.
            let mut frame = encode_block(&encode_tuples(&batch));
            if memtree_faults::should_fail(FP_ANTICACHE_CORRUPT) {
                // Simulated storage corruption: damage a payload byte.
                // The CRC catches it at fetch time.
                let at = frame.len() / 2;
                frame[at] ^= 0x40;
            }
            let locs: Vec<(u16, u32)> = batch.iter().map(|(t, s, _)| (*t, *s)).collect();
            let Some(anti) = self.anti.as_mut() else {
                return;
            };
            anti.evictions += 1;
            let block = match anti.free_blocks.pop() {
                Some(b) => {
                    anti.blocks[b as usize] = BlockState::Live(frame);
                    b
                }
                None => {
                    anti.blocks.push(BlockState::Live(frame));
                    (anti.blocks.len() - 1) as u32
                }
            };
            // Re-point the evicted slots at the block.
            for (tbl2, s) in locs {
                self.tables[tbl2 as usize].slots[s as usize] = Slot::Evicted { block };
            }
            resident = self.tables.iter().map(|t| t.resident_bytes).sum();
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DbStats {
        DbStats {
            tuple_bytes: self.tables.iter().map(|t| t.resident_bytes).sum(),
            primary_index_bytes: self.uniques.iter().map(|d| d.index.mem_usage()).sum(),
            secondary_index_bytes: self.multis.iter().map(|d| d.index.mem_usage()).sum(),
            evicted_tuples: self.tables.iter().map(|t| t.evicted_count).sum(),
            evictions: self.anti.as_ref().map_or(0, |a| a.evictions),
            fetches: self.anti.as_ref().map_or(0, |a| a.fetches),
            fetch_retries: self.anti.as_ref().map_or(0, |a| a.fetch_retries),
            quarantined_blocks: self.anti.as_ref().map_or(0, |a| a.quarantined),
            evict_failures: self.anti.as_ref().map_or(0, |a| a.evict_failures),
        }
    }

    /// Flips `mask` into one byte of a live anti-cache block's frame (test
    /// hook for corruption-detection coverage). Returns the block id that
    /// was damaged, or `None` if no live block exists.
    #[doc(hidden)]
    pub fn corrupt_anticache_block(&mut self, offset: usize, mask: u8) -> Option<u32> {
        let anti = self.anti.as_mut()?;
        for (i, b) in anti.blocks.iter_mut().enumerate() {
            if let BlockState::Live(frame) = b {
                if !frame.is_empty() {
                    let at = offset % frame.len();
                    frame[at] ^= mask;
                    return Some(i as u32);
                }
            }
        }
        None
    }

    /// Length of a live anti-cache block's frame (test hook companion to
    /// [`Self::corrupt_anticache_block`]).
    #[doc(hidden)]
    pub fn anticache_block_len(&self) -> Option<usize> {
        self.anticache_block_frame().map(|f| f.len())
    }

    /// Clone of the first live anti-cache block's framed image (test hook
    /// for exhaustive corruption-detection coverage).
    #[doc(hidden)]
    pub fn anticache_block_frame(&self) -> Option<Vec<u8>> {
        let anti = self.anti.as_ref()?;
        anti.blocks.iter().find_map(|b| match b {
            BlockState::Live(frame) => Some(frame.clone()),
            _ => None,
        })
    }

    /// Per-table (name, resident tuple bytes).
    pub fn table_stats(&self) -> Vec<(String, usize, usize)> {
        self.tables
            .iter()
            .map(|t| (t.name.clone(), t.resident_count, t.resident_bytes))
            .collect()
    }

    /// Worst observed hybrid merge pause across indexes, in ms.
    pub fn max_merge_pause_ms(&self) -> f64 {
        self.uniques
            .iter()
            .map(|d| d.index.last_merge_ms())
            .fold(0.0, f64::max)
    }

    /// Index configuration in use.
    pub fn index_choice(&self) -> IndexChoice {
        self.choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db(choice: IndexChoice) -> Database {
        let mut db = Database::new(choice);
        let t = db.create_table("items");
        db.create_unique_index("items_pk", t, &[0]);
        db.create_multi_index("items_by_cat", t, &[1]);
        db
    }

    #[test]
    fn insert_read_update_delete() {
        for choice in [IndexChoice::BTree, IndexChoice::Hybrid] {
            let mut db = tiny_db(choice);
            let t = db.table_id("items");
            let pk = db.unique_id("items_pk");
            let by_cat = db.multi_id("items_by_cat");
            for i in 0..1000i64 {
                let slot = db.insert(
                    t,
                    vec![Val::I64(i), Val::I64(i % 7), Val::Str(format!("item{i}"))],
                );
                assert!(slot.unwrap().is_some(), "{choice:?} insert {i}");
            }
            // Unique violation.
            assert!(db.insert(t, vec![Val::I64(5), Val::I64(0), Val::Str("dup".into())]).unwrap().is_none());
            // Point read through the PK.
            let slot = db.get_unique(pk, &[Val::I64(123)]).unwrap().unwrap();
            assert_eq!(db.read(t, slot).unwrap()[2].as_str().unwrap(), "item123");
            // Secondary index fans out.
            let cat3 = db.get_multi(by_cat, &[Val::I64(3)]).unwrap();
            assert_eq!(cat3.len(), 1000 / 7 + 1);
            // Update a non-indexed column.
            db.update(t, slot, |row| {
                row[2] = Val::Str("renamed".into());
                Ok(())
            })
            .unwrap();
            assert_eq!(db.read(t, slot).unwrap()[2].as_str().unwrap(), "renamed");
            // Delete maintains both indexes.
            db.delete(t, slot).unwrap();
            assert!(db.get_unique(pk, &[Val::I64(123)]).unwrap().is_none());
            assert!(!db.get_multi(by_cat, &[Val::I64(123 % 7)]).unwrap().contains(&slot));
        }
    }

    #[test]
    fn stats_reflect_indexes() {
        let mut db = tiny_db(IndexChoice::BTree);
        let t = db.table_id("items");
        for i in 0..5000i64 {
            db.insert(t, vec![Val::I64(i), Val::I64(i % 3), Val::Str("x".repeat(40))]).unwrap();
        }
        let s = db.stats();
        assert!(s.tuple_bytes > 0);
        assert!(s.primary_index_bytes > 0);
        assert!(s.secondary_index_bytes > 0);
        assert!(s.total() > s.tuple_bytes);
    }

    #[test]
    fn anticaching_evicts_and_fetches() {
        let mut db = tiny_db(IndexChoice::BTree);
        db.enable_anticaching(400 << 10, Duration::ZERO);
        let t = db.table_id("items");
        let pk = db.unique_id("items_pk");
        for i in 0..20_000i64 {
            db.insert(t, vec![Val::I64(i), Val::I64(i % 3), Val::Str("y".repeat(30))]).unwrap();
        }
        let s = db.stats();
        assert!(s.evicted_tuples > 0, "nothing evicted");
        assert!(s.tuple_bytes <= 500 << 10, "resident {}", s.tuple_bytes);
        // Reading a cold tuple fetches it back.
        let slot = db.get_unique(pk, &[Val::I64(10)]).unwrap().unwrap();
        let row = db.read(t, slot).unwrap();
        assert_eq!(row[0].as_i64().unwrap(), 10);
        let s2 = db.stats();
        assert!(s2.fetches >= 1 || s.evicted_tuples > s2.evicted_tuples);
    }
}
