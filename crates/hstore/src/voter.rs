//! Voter (§5.4.2): a phone-based election — many short transactions, each
//! inserting one vote and updating one contestant tally. The VOTES table
//! (and its primary index) grows without bound, which is what makes this
//! benchmark memory-hungry for indexes (Figure 5.15).

use crate::db::Database;
use crate::row::Val;
use memtree_common::error::MemtreeError;
use memtree_common::hash::splitmix64;

/// Votes allowed per phone number.
pub const MAX_VOTES_PER_PHONE: i64 = 10;

/// The Voter benchmark handle.
pub struct Voter {
    state: u64,
    contestants: usize,
    votes: usize,
    contestants_pk: usize,
    votes_pk: usize,
    votes_by_phone: usize,
    num_contestants: i64,
    vote_seq: i64,
    rejected: u64,
}

impl Voter {
    /// Creates the schema and the contestant list.
    pub fn load(db: &mut Database, num_contestants: i64, seed: u64) -> Self {
        let contestants = db.create_table("CONTESTANTS");
        let votes = db.create_table("VOTES");
        let contestants_pk = db.create_unique_index("CONTESTANTS_PK", contestants, &[0]);
        let votes_pk = db.create_unique_index("VOTES_PK", votes, &[0]);
        let votes_by_phone = db.create_multi_index("VOTES_BY_PHONE", votes, &[1]);
        for c in 0..num_contestants {
            db.insert(
                contestants,
                vec![Val::I64(c), Val::Str(format!("Contestant {c}")), Val::I64(0)],
            )
            .expect("voter load");
        }
        Self {
            state: seed,
            contestants,
            votes,
            contestants_pk,
            votes_pk,
            votes_by_phone,
            num_contestants,
            vote_seq: 0,
            rejected: 0,
        }
    }

    /// One Vote transaction. Fails if a touched tuple cannot be fetched
    /// back from the anti-cache.
    pub fn run_one(&mut self, db: &mut Database) -> Result<&'static str, MemtreeError> {
        // Area-code-weighted phone number, reused across calls so the
        // per-phone limit actually fires.
        let phone = 2_000_000_000 + (splitmix64(&mut self.state) % 5_000_000) as i64;
        let contestant = (splitmix64(&mut self.state) % self.num_contestants as u64) as i64;
        let prior = db.get_multi(self.votes_by_phone, &[Val::I64(phone)])?;
        if prior.len() as i64 >= MAX_VOTES_PER_PHONE {
            self.rejected += 1;
            return Ok("VoteRejected");
        }
        let id = self.vote_seq;
        self.vote_seq += 1;
        db.insert(
            self.votes,
            vec![Val::I64(id), Val::I64(phone), Val::I64(contestant)],
        )?;
        let slot = db
            .get_unique(self.contestants_pk, &[Val::I64(contestant)])?
            .expect("contestant");
        db.update(self.contestants, slot, |row| {
            row[2] = Val::I64(row[2].as_i64()? + 1);
            Ok(())
        })?;
        Ok("Vote")
    }

    /// Votes rejected by the per-phone limit.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Votes table id (for stats assertions).
    pub fn votes_table(&self) -> usize {
        self.votes
    }

    /// Votes primary-index id.
    pub fn votes_pk(&self) -> usize {
        self.votes_pk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::IndexChoice;

    #[test]
    fn votes_accumulate_and_tallies_update() {
        let mut db = Database::new(IndexChoice::BTree);
        let mut voter = Voter::load(&mut db, 6, 3);
        for _ in 0..5000 {
            voter.run_one(&mut db).unwrap();
        }
        let stats: std::collections::HashMap<String, usize> = db
            .table_stats()
            .into_iter()
            .map(|(n, c, _)| (n, c))
            .collect();
        assert!(stats["VOTES"] > 4500);
        // Tallies sum to accepted votes.
        let mut total = 0i64;
        for c in 0..6i64 {
            let slot = db.get_unique(voter.contestants_pk, &[Val::I64(c)]).unwrap().unwrap();
            total += db.read(voter.contestants, slot).unwrap()[2].as_i64().unwrap();
        }
        assert_eq!(total as usize, stats["VOTES"]);
    }
}
