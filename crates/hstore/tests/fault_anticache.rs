//! Differential fault-injection tests for the anti-cache: OLTP-style op
//! streams against a `BTreeMap` reference model while fetch, eviction, and
//! corruption faults fire. Invariants, across every seed:
//!
//! * no operation panics;
//! * every successful read returns exactly what the model holds;
//! * failed operations leave the database and indexes consistent;
//! * checksum-detected corruption quarantines exactly the damaged block —
//!   its tuples error, everything else keeps serving.

use memtree_common::check::Gen;
use memtree_common::error::MemtreeError;
use memtree_compress::decode_block;
use memtree_faults as faults;
use memtree_hstore::db::{
    Database, IndexChoice, FP_ANTICACHE_CORRUPT, FP_ANTICACHE_EVICT, FP_ANTICACHE_FETCH,
};
use memtree_hstore::row::{Row, Val};
use std::collections::BTreeMap;
use std::time::Duration;

fn small_db(threshold: usize) -> Database {
    let mut db = Database::new(IndexChoice::BTree);
    db.enable_anticaching(threshold, Duration::ZERO);
    let t = db.create_table("items");
    db.create_unique_index("items_pk", t, &[0]);
    db
}

fn row_for(id: i64, g: &mut Gen) -> Row {
    vec![
        Val::I64(id),
        Val::I64(g.i64_below(7)),
        Val::Str("p".repeat(20 + g.range(0..20))),
    ]
}

/// One differential run. The model only applies a mutation when the
/// database reports success, so injected failures must not desynchronize.
fn run_differential(seed: u64) -> Result<(), String> {
    let mut g = Gen::new(seed ^ 0xD1FF);
    let mut db = small_db(200 << 10);
    let t = db.table_id("items");
    let pk = db.unique_id("items_pk");
    let mut model: BTreeMap<i64, Row> = BTreeMap::new();
    let mut next_id = 0i64;

    // Preload enough rows that eviction is active throughout.
    for _ in 0..4000 {
        let row = row_for(next_id, &mut g);
        model.insert(next_id, row.clone());
        db.insert(t, row).unwrap();
        next_id += 1;
    }

    for step in 0..800 {
        let op = g.range(0..10);
        match op {
            0 | 1 => {
                let row = row_for(next_id, &mut g);
                model.insert(next_id, row.clone());
                if db.insert(t, row).unwrap().is_none() {
                    return Err(format!("seed {seed} step {step}: duplicate pk {next_id}"));
                }
                next_id += 1;
            }
            2..=6 => {
                let id = g.i64_below(next_id);
                let slot = db.get_unique(pk, &[Val::I64(id)]).unwrap();
                match (slot, model.get(&id)) {
                    (Some(s), Some(want)) => match db.read(t, s) {
                        Ok(got) => {
                            if &got != want {
                                return Err(format!(
                                    "seed {seed} step {step}: read {id} wrong value"
                                ));
                            }
                        }
                        // Transient fetch exhausted its retries: the tuple
                        // must still be readable once the fault clears.
                        Err(MemtreeError::Injected { .. }) => {}
                        Err(e) => {
                            return Err(format!("seed {seed} step {step}: read {id}: {e}"))
                        }
                    },
                    (None, None) => {}
                    (s, m) => {
                        return Err(format!(
                            "seed {seed} step {step}: index/model disagree on {id}: \
                             slot {s:?} model {}",
                            m.is_some()
                        ))
                    }
                }
            }
            7 | 8 => {
                let id = g.i64_below(next_id);
                if let Some(s) = db.get_unique(pk, &[Val::I64(id)]).unwrap() {
                    let tag = g.i64_below(1 << 40);
                    match db.update(t, s, |row| {
                        row[1] = Val::I64(tag);
                        Ok(())
                    }) {
                        Ok(()) => {
                            model.get_mut(&id).expect("index implies model")[1] = Val::I64(tag);
                        }
                        Err(MemtreeError::Injected { .. }) => {} // not applied
                        Err(e) => {
                            return Err(format!("seed {seed} step {step}: update {id}: {e}"))
                        }
                    }
                }
            }
            _ => {
                let id = g.i64_below(next_id);
                if let Some(s) = db.get_unique(pk, &[Val::I64(id)]).unwrap() {
                    match db.delete(t, s) {
                        Ok(()) => {
                            model.remove(&id);
                        }
                        Err(MemtreeError::Injected { .. }) => {} // row survives
                        Err(e) => {
                            return Err(format!("seed {seed} step {step}: delete {id}: {e}"))
                        }
                    }
                }
            }
        }
    }

    // Faults off: every surviving row must read back exactly.
    faults::disable();
    for (id, want) in &model {
        let Some(s) = db.get_unique(pk, &[Val::I64(*id)]).unwrap() else {
            return Err(format!("seed {seed}: post-run lost pk {id}"));
        };
        match db.read(t, s) {
            Ok(got) if &got == want => {}
            Ok(_) => return Err(format!("seed {seed}: post-run wrong value for {id}")),
            Err(e) => return Err(format!("seed {seed}: post-run read {id}: {e}")),
        }
    }
    Ok(())
}

#[test]
fn differential_under_injected_anticache_faults_32_seeds() {
    let _guard = faults::test_lock();
    for seed in 0..32u64 {
        faults::enable(seed);
        faults::arm(FP_ANTICACHE_FETCH, 0.25, None);
        faults::arm(FP_ANTICACHE_EVICT, 0.10, None);
        if let Err(msg) = run_differential(seed) {
            faults::disable();
            panic!("{msg}");
        }
    }
    faults::disable();
}

/// Builds a database whose anti-cache holds at least one live block, and
/// returns (db, table, pk index, highest id loaded).
fn evicted_db() -> (Database, usize, usize, i64) {
    let mut db = small_db(60 << 10);
    let t = db.table_id("items");
    let pk = db.unique_id("items_pk");
    let mut g = Gen::new(0xB10C);
    for id in 0..3000i64 {
        db.insert(t, row_for(id, &mut g)).unwrap();
    }
    assert!(db.stats().evicted_tuples > 0, "nothing evicted");
    (db, t, pk, 3000)
}

#[test]
fn every_bit_flip_in_an_anticache_block_is_detected() {
    let _guard = faults::test_lock();
    faults::disable();
    let (db, ..) = evicted_db();
    // Exhaustively damage the actual stored image of a live block: every
    // single-bit flip must surface as a Corruption error from the frame
    // decoder — never a successful decode of different bytes.
    let frame = db.anticache_block_frame().expect("a live block");
    let reference = decode_block(&frame).expect("pristine frame decodes");
    let mut copy = frame.clone();
    for byte in 0..copy.len() {
        for bit in 0..8 {
            copy[byte] ^= 1 << bit;
            match decode_block(&copy) {
                Err(MemtreeError::Corruption { .. }) => {}
                Ok(out) => panic!(
                    "flip {byte}.{bit}: decoded silently (equal: {})",
                    out == reference
                ),
                Err(other) => panic!("flip {byte}.{bit}: unexpected error {other:?}"),
            }
            copy[byte] ^= 1 << bit;
        }
    }
    assert_eq!(decode_block(&copy).expect("restored"), reference);
}

#[test]
fn corrupted_block_is_quarantined_and_only_its_tuples_fail() {
    let _guard = faults::test_lock();
    faults::disable();
    let (mut db, t, pk, n) = evicted_db();
    let damaged = db.corrupt_anticache_block(17, 0x20).expect("a live block");

    let mut quarantined_errors = 0;
    let mut served = 0;
    for id in 0..n {
        let Some(slot) = db.get_unique(pk, &[Val::I64(id)]).unwrap() else {
            panic!("pk {id} lost");
        };
        match db.read(t, slot) {
            Ok(row) => {
                assert_eq!(row[0].as_i64().unwrap(), id, "wrong row served for {id}");
                served += 1;
            }
            Err(MemtreeError::Quarantined { block }) => {
                assert_eq!(block, damaged, "unexpected block quarantined");
                quarantined_errors += 1;
            }
            Err(e) => panic!("read {id}: unexpected error {e}"),
        }
    }
    assert!(quarantined_errors > 0, "corruption never surfaced");
    assert!(served > 0, "healthy tuples stopped serving");
    assert_eq!(db.stats().quarantined_blocks, 1);

    // The quarantined tuples keep erroring deterministically — no panic,
    // no wrong bytes, and re-reads don't \"heal\" into garbage.
    let mut still_failing = 0;
    for id in 0..n {
        if let Some(slot) = db.get_unique(pk, &[Val::I64(id)]).unwrap() {
            if matches!(db.read(t, slot), Err(MemtreeError::Quarantined { .. })) {
                still_failing += 1;
            }
        }
    }
    assert_eq!(still_failing, quarantined_errors);
}

#[test]
fn injected_corruption_at_eviction_time_quarantines() {
    let _guard = faults::test_lock();
    faults::enable(0xC0);
    faults::arm(FP_ANTICACHE_CORRUPT, 1.0, Some(1)); // damage exactly one block
    let (mut db, t, pk, n) = evicted_db();
    faults::disable();
    let mut outcomes = (0, 0);
    for id in 0..n {
        let slot = db.get_unique(pk, &[Val::I64(id)]).unwrap().expect("pk");
        match db.read(t, slot) {
            Ok(_) => outcomes.0 += 1,
            Err(MemtreeError::Quarantined { .. }) => outcomes.1 += 1,
            Err(e) => panic!("read {id}: {e}"),
        }
    }
    assert!(outcomes.1 > 0, "the damaged block never surfaced");
    assert!(outcomes.0 > n as usize / 2, "most tuples should still serve");
    assert_eq!(db.stats().quarantined_blocks, 1);
}

#[test]
fn transient_fetch_faults_are_retried() {
    let _guard = faults::test_lock();
    faults::enable(0xF3);
    let (mut db, t, pk, _) = evicted_db();
    faults::arm(FP_ANTICACHE_FETCH, 1.0, Some(2)); // two failures, then heal
    // Find an evicted tuple by probing ids until a read triggers a fetch.
    let before = db.stats().fetches;
    let mut fetched = false;
    for id in 0..3000i64 {
        let slot = db.get_unique(pk, &[Val::I64(id)]).unwrap().expect("pk");
        let row = db.read(t, slot).expect("retry should absorb both faults");
        assert_eq!(row[0].as_i64().unwrap(), id);
        if db.stats().fetches > before {
            fetched = true;
            break;
        }
    }
    assert!(fetched, "no fetch was exercised");
    assert_eq!(db.stats().fetch_retries, 2);
    faults::disable();
}
