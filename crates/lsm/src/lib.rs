//! A miniature log-structured merge engine in the image of RocksDB
//! (§4.2, Figure 4.2), built to evaluate SuRF as a drop-in Bloom-filter
//! replacement.
//!
//! Architecture: a MemTable (our own paged skip list) absorbs writes;
//! full MemTables become level-0 SSTables; leveled compaction keeps levels
//! ≥ 1 sorted and disjoint. SSTables are sequences of fixed-size blocks on
//! a **simulated disk** that counts every block read and can charge a
//! configurable per-read latency — the paper's speedups are I/O-count
//! driven, and the simulator measures those counts exactly (substitution
//! #3 in DESIGN.md). Each SSTable carries a fence index (first key per
//! block) and an optional filter: Bloom, SuRF-Hash, or SuRF-Real.
//!
//! `Get`, `Seek` (open and closed) and `Count` follow the Figure 4.3
//! execution paths, including SuRF's `moveToNext`-based candidate pruning
//! for seeks.
//!
//! Since the durability PR the engine is crash-consistent: puts are logged
//! to a CRC-framed WAL before touching the MemTable, flushes and
//! compactions publish their results through a CRC-framed manifest with an
//! atomic `CURRENT` pointer, and [`Db::open`] recovers the exact
//! acknowledged prefix of the put history after a simulated power loss
//! ([`SimDisk::crash`]), including torn final writes.

#![warn(missing_docs)]

mod compaction;
mod db;
mod disk;
mod manifest;
mod scrub;
mod snapshot;
mod sstable;
mod wal;

pub use compaction::CompactionConfig;
pub use db::{
    gc_orphans, Db, DbOptions, DbStats, FilterKind, FilterStats, FlushStats, OpenReport,
    SeekResult, StallConfig,
};
pub use disk::{IoStats, SimDisk, SlowIo};
pub use scrub::{FileScrubOutcome, LostRange, ScrubReport};
pub use snapshot::DbSnapshot;
pub use sstable::SsTable;
pub use wal::WalStats;
