//! The LSM database: MemTable + leveled SSTables + block cache, with the
//! Figure 4.3 query paths.

use crate::disk::{IoStats, SimDisk};
use crate::sstable::{DecodedBlock, SsTable};
use memtree_common::traits::OrderedIndex;
use memtree_skiplist::SkipList;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Which filter each SSTable carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    /// No filter (fence indexes only).
    None,
    /// Bloom filter at the given bits per key.
    Bloom(f64),
    /// SuRF with hashed suffix bits.
    SurfHash(u8),
    /// SuRF with real suffix bits.
    SurfReal(u8),
    /// SuRF with hashed + real suffix bits.
    SurfMixed(u8, u8),
}

/// Engine configuration (defaults scaled from RocksDB's).
#[derive(Debug, Clone)]
pub struct DbOptions {
    /// Flush the MemTable when it reaches this many bytes.
    pub memtable_bytes: usize,
    /// Target data-block size.
    pub block_size: usize,
    /// Compact level 0 when it accumulates this many SSTables.
    pub l0_tables: usize,
    /// Max tables at level 1; level `L` holds 10× level `L-1`.
    pub l1_tables: usize,
    /// Per-table filter.
    pub filter: FilterKind,
    /// Block-cache capacity in blocks.
    pub cache_blocks: usize,
    /// Simulated latency charged per block read.
    pub io_read_latency: Duration,
}

impl Default for DbOptions {
    fn default() -> Self {
        Self {
            memtable_bytes: 256 << 10,
            block_size: 4096,
            l0_tables: 4,
            l1_tables: 4,
            filter: FilterKind::None,
            cache_blocks: 64,
            io_read_latency: Duration::ZERO,
        }
    }
}

/// Result of a seek.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeekResult {
    /// Smallest entry `>= lk` (and `< hk` for closed seeks).
    Found {
        /// The entry's key.
        key: Vec<u8>,
    },
    /// No qualifying entry.
    NotFound,
}

#[derive(Default)]
struct BlockCache {
    /// (table id, block idx, payload, referenced)
    slots: Vec<(u64, usize, Rc<DecodedBlock>, bool)>,
    capacity: usize,
    hand: usize,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    fn get(&mut self, table: u64, block: usize) -> Option<Rc<DecodedBlock>> {
        for slot in &mut self.slots {
            if slot.0 == table && slot.1 == block {
                slot.3 = true;
                self.hits += 1;
                return Some(Rc::clone(&slot.2));
            }
        }
        None
    }

    fn insert(&mut self, table: u64, block: usize, data: Rc<DecodedBlock>) {
        self.misses += 1;
        if self.capacity == 0 {
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push((table, block, data, true));
            return;
        }
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.3 {
                slot.3 = false;
                self.hand = (self.hand + 1) % self.slots.len();
            } else {
                self.slots[self.hand] = (table, block, data, true);
                self.hand = (self.hand + 1) % self.slots.len();
                return;
            }
        }
    }
}

/// The LSM key-value store.
pub struct Db {
    opts: DbOptions,
    disk: SimDisk,
    /// MemTable: our paged skip list mapping keys to value-arena slots.
    mem: SkipList,
    mem_values: Vec<Vec<u8>>,
    mem_bytes: usize,
    /// `levels[0]` newest-last; levels ≥ 1 key-ordered and disjoint.
    levels: Vec<Vec<SsTable>>,
    cache: RefCell<BlockCache>,
    next_table_id: u64,
}

impl Db {
    /// Opens an empty database.
    pub fn new(opts: DbOptions) -> Self {
        let disk = SimDisk::new(opts.io_read_latency);
        Self {
            cache: RefCell::new(BlockCache {
                capacity: opts.cache_blocks,
                ..Default::default()
            }),
            opts,
            disk,
            mem: SkipList::new(),
            mem_values: Vec::new(),
            mem_bytes: 0,
            levels: vec![Vec::new()],
            next_table_id: 0,
        }
    }

    /// Inserts or overwrites `key`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        let slot = self.mem_values.len() as u64;
        self.mem_values.push(value.to_vec());
        if !self.mem.insert(key, slot) {
            self.mem.update(key, slot);
        }
        self.mem_bytes += key.len() + value.len();
        if self.mem_bytes >= self.opts.memtable_bytes {
            self.flush();
        }
    }

    /// Flushes the MemTable into a new level-0 SSTable.
    pub fn flush(&mut self) {
        if self.mem.is_empty() {
            return;
        }
        let mut entries = Vec::with_capacity(self.mem.len());
        self.mem.for_each_sorted(&mut |k, slot| {
            entries.push((k.to_vec(), self.mem_values[slot as usize].clone()));
        });
        let table = SsTable::build(
            self.next_table_id,
            &self.disk,
            &entries,
            self.opts.block_size,
            &self.opts.filter,
        );
        self.next_table_id += 1;
        self.levels[0].push(table);
        self.mem.clear();
        self.mem_values.clear();
        self.mem_bytes = 0;
        self.compact();
    }

    fn level_limit(&self, level: usize) -> usize {
        if level == 0 {
            self.opts.l0_tables
        } else {
            self.opts.l1_tables * 10usize.pow(level as u32 - 1)
        }
    }

    /// Leveled compaction: L0 merges wholesale into L1; deeper levels move
    /// one table at a time into the overlap below.
    fn compact(&mut self) {
        let mut level = 0;
        while level < self.levels.len() {
            if self.levels[level].len() <= self.level_limit(level) {
                level += 1;
                continue;
            }
            if self.levels.len() == level + 1 {
                self.levels.push(Vec::new());
            }
            // Victims: all of L0, or the oldest single table deeper down.
            let victims: Vec<SsTable> = if level == 0 {
                std::mem::take(&mut self.levels[0])
            } else {
                vec![self.levels[level].remove(0)]
            };
            let lo = victims.iter().map(|t| t.min_key.clone()).min().unwrap();
            let hi = victims.iter().map(|t| t.max_key.clone()).max().unwrap();
            // Pull overlapping tables from the next level.
            let next = &mut self.levels[level + 1];
            let mut overlapped = Vec::new();
            let mut i = 0;
            while i < next.len() {
                if next[i].overlaps(&lo, &hi) {
                    overlapped.push(next.remove(i));
                } else {
                    i += 1;
                }
            }
            // Merge newest-first: victims are newer than `overlapped`;
            // within L0, later flushes are newer.
            let mut sources: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::new();
            for t in victims.iter().rev().chain(overlapped.iter()) {
                sources.push(self.read_all(t));
            }
            let mut merged: Vec<(usize, Vec<u8>, Vec<u8>)> = Vec::new();
            for (prio, src) in sources.into_iter().enumerate() {
                for (k, v) in src {
                    merged.push((prio, k, v));
                }
            }
            merged.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
            merged.dedup_by(|b, a| a.1 == b.1); // keep lowest prio = newest
            let entries: Vec<(Vec<u8>, Vec<u8>)> =
                merged.into_iter().map(|(_, k, v)| (k, v)).collect();
            for t in victims.iter().chain(overlapped.iter()) {
                t.release(&self.disk);
            }
            // Re-split into tables of ~10 memtables each.
            let per_table = (self.opts.memtable_bytes * 4 / 64).max(64); // entries per output table
            let mut new_tables = Vec::new();
            for chunk in entries.chunks(per_table.max(1)) {
                let t = SsTable::build(
                    self.next_table_id,
                    &self.disk,
                    chunk,
                    self.opts.block_size,
                    &self.opts.filter,
                );
                self.next_table_id += 1;
                new_tables.push(t);
            }
            let next = &mut self.levels[level + 1];
            next.extend(new_tables);
            next.sort_by(|a, b| a.min_key.cmp(&b.min_key));
            level += 1;
        }
    }

    fn read_all(&self, table: &SsTable) -> Vec<(Vec<u8>, Vec<u8>)> {
        // Compaction I/O is counted as reads too (as in real systems).
        let mut out = Vec::with_capacity(table.num_entries);
        for b in 0..table.blocks.len() {
            out.extend(self.fetch_block(table, b).iter().cloned());
        }
        out
    }

    /// Fetches a data block through the block cache.
    fn fetch_block(&self, table: &SsTable, block: usize) -> Rc<DecodedBlock> {
        if let Some(hit) = self.cache.borrow_mut().get(table.id, block) {
            return hit;
        }
        let raw = self.disk.read(table.blocks[block]);
        let decoded = Rc::new(SsTable::decode_block(&raw));
        self.cache
            .borrow_mut()
            .insert(table.id, block, Rc::clone(&decoded));
        decoded
    }

    fn get_in_table(&self, table: &SsTable, key: &[u8]) -> Option<Vec<u8>> {
        let b = table.candidate_block(key);
        let blk = self.fetch_block(table, b);
        blk.binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| blk[i].1.clone())
    }

    /// Point lookup (Figure 4.3, Get path).
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(slot) = self.mem.get(key) {
            return Some(self.mem_values[slot as usize].clone());
        }
        // Level 0: newest first, overlapping ranges.
        for table in self.levels[0].iter().rev() {
            if table.covers(key) && table.filter_may_contain(key) {
                if let Some(v) = self.get_in_table(table, key) {
                    return Some(v);
                }
            }
        }
        for level in &self.levels[1..] {
            let idx = level.partition_point(|t| t.max_key.as_slice() < key);
            if let Some(table) = level.get(idx) {
                if table.covers(key) && table.filter_may_contain(key) {
                    if let Some(v) = self.get_in_table(table, key) {
                        return Some(v);
                    }
                }
            }
        }
        None
    }

    /// Exact smallest key `>= lk` within one table (1–2 block reads).
    fn table_lower_bound(&self, table: &SsTable, lk: &[u8]) -> Option<Vec<u8>> {
        let mut b = table.candidate_block(lk);
        while b < table.blocks.len() {
            let blk = self.fetch_block(table, b);
            let i = blk.partition_point(|(k, _)| k.as_slice() < lk);
            if i < blk.len() {
                return Some(blk[i].0.clone());
            }
            b += 1;
        }
        None
    }

    /// Seek (Figure 4.3): smallest key `>= lk`, bounded by `hk` when given.
    pub fn seek(&self, lk: &[u8], hk: Option<&[u8]>) -> SeekResult {
        // Memtable candidate is exact and free.
        let mut best_exact: Option<Vec<u8>> = None;
        self.mem.range_from(lk, &mut |k, _| {
            best_exact = Some(k.to_vec());
            false
        });
        // Candidates per table: exact (block fetch) without SuRF, prefix
        // (in-memory moveToNext) with SuRF.
        // (prefix, table_index) pending resolution.
        let mut pending: Vec<(Vec<u8>, usize, usize)> = Vec::new(); // (prefix, level, idx)
        let consider = |t: &SsTable| t.max_key.as_slice() >= lk;
        let visit = |level: usize, idx: usize, table: &SsTable, pending: &mut Vec<(Vec<u8>, usize, usize)>, best_exact: &mut Option<Vec<u8>>| {
            if !consider(table) {
                return;
            }
            match table.surf() {
                Some(surf) => {
                    let (it, _fp) = surf.move_to_next(lk);
                    if it.valid() {
                        let prefix = it.key().to_vec();
                        // Prune candidates definitely past hk.
                        if let Some(hk) = hk {
                            if prefix.as_slice() >= hk {
                                return;
                            }
                        }
                        pending.push((prefix, level, idx));
                    }
                }
                None => {
                    // No usable range filter: fetch the candidate block.
                    if let Some(k) = self.table_lower_bound(table, lk) {
                        if best_exact.as_deref().is_none_or(|b| k.as_slice() < b) {
                            *best_exact = Some(k);
                        }
                    }
                }
            }
        };
        for (idx, table) in self.levels[0].iter().enumerate() {
            visit(0, idx, table, &mut pending, &mut best_exact);
        }
        for (lvl, level) in self.levels.iter().enumerate().skip(1) {
            let idx = level.partition_point(|t| t.max_key.as_slice() < lk);
            if let Some(table) = level.get(idx) {
                visit(lvl, idx, table, &mut pending, &mut best_exact);
            }
        }
        // Resolve SuRF candidates smallest-prefix-first until the best
        // exact key cannot be beaten.
        pending.sort();
        for (prefix, level, idx) in pending {
            if let Some(best) = &best_exact {
                // A prefix >= best exact key cannot yield a smaller key...
                // unless it is a prefix of `best` (its extension could be
                // smaller), so only prune on strictly-greater non-prefixes.
                if prefix.as_slice() >= best.as_slice() && !best.starts_with(&prefix) {
                    break;
                }
            }
            let table = &self.levels[level][idx];
            if let Some(k) = self.table_lower_bound(table, lk) {
                if best_exact.as_deref().is_none_or(|b| k.as_slice() < b) {
                    best_exact = Some(k);
                }
            }
        }
        match best_exact {
            Some(k) => {
                if let Some(hk) = hk {
                    if k.as_slice() >= hk {
                        return SeekResult::NotFound;
                    }
                }
                SeekResult::Found { key: k }
            }
            None => SeekResult::NotFound,
        }
    }

    /// `Next` (Figure 4.3): the smallest entry strictly greater than
    /// `key`, bounded by `hk`. As the thesis observes, `Next` rarely
    /// benefits from filters — the relevant blocks are usually already
    /// cached from the preceding `Seek`.
    pub fn next_after(&self, key: &[u8], hk: Option<&[u8]>) -> SeekResult {
        let succ = memtree_common::key::successor(key);
        self.seek(&succ, hk)
    }

    /// Approximate range count (Figure 4.3, Count path). With SuRF the
    /// count is served from the filters (no data I/O); otherwise data
    /// blocks are scanned.
    pub fn count(&self, lk: &[u8], hk: &[u8]) -> usize {
        let mut total = 0usize;
        self.mem.range_from(lk, &mut |k, _| {
            if k < hk {
                total += 1;
                true
            } else {
                false
            }
        });
        for level in &self.levels {
            for table in level {
                if !table.overlaps(lk, hk) {
                    continue;
                }
                match table.surf() {
                    Some(surf) => total += surf.count(lk, hk),
                    None => {
                        let mut b = table.candidate_block(lk);
                        'blocks: while b < table.blocks.len() {
                            let blk = self.fetch_block(table, b);
                            let start = blk.partition_point(|(k, _)| k.as_slice() < lk);
                            for (k, _) in &blk[start..] {
                                if k.as_slice() >= hk {
                                    break 'blocks;
                                }
                                total += 1;
                            }
                            b += 1;
                        }
                    }
                }
            }
        }
        total
    }

    /// Read-I/O and cache statistics.
    pub fn io_stats(&self) -> IoStats {
        self.disk.stats()
    }

    /// Clears I/O counters (between benchmark phases).
    pub fn reset_io_stats(&self) {
        self.disk.reset_stats();
    }

    /// (cache hits, cache misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.cache.borrow();
        (c.hits, c.misses)
    }

    /// Total SSTables per level (diagnostics).
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.len()).collect()
    }

    /// In-memory footprint of filters + fence indexes.
    pub fn index_filter_mem(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(|t| t.mem_usage())
            .sum::<usize>()
    }

    /// Total entries across all tables (duplicates across levels counted).
    pub fn table_entries(&self) -> usize {
        self.levels.iter().flatten().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    fn db_with(filter: FilterKind, n: u64) -> Db {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 8 << 10,
            filter,
            io_read_latency: Duration::ZERO,
            ..Default::default()
        });
        let mut state = 42u64;
        for _ in 0..n {
            let k = memtree_common::hash::splitmix64(&mut state);
            db.put(&encode_u64(k), &k.to_le_bytes());
        }
        db
    }

    #[test]
    fn put_get_across_levels() {
        for filter in [
            FilterKind::None,
            FilterKind::Bloom(14.0),
            FilterKind::SurfHash(4),
            FilterKind::SurfReal(4),
        ] {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 4 << 10,
                filter,
                ..Default::default()
            });
            for i in 0..5000u64 {
                db.put(&encode_u64(i * 7), &i.to_le_bytes());
            }
            assert!(db.level_sizes().len() > 1, "{filter:?}: no compaction");
            for i in (0..5000u64).step_by(113) {
                assert_eq!(
                    db.get(&encode_u64(i * 7)),
                    Some(i.to_le_bytes().to_vec()),
                    "{filter:?} get {i}"
                );
                assert_eq!(db.get(&encode_u64(i * 7 + 1)), None);
            }
        }
    }

    #[test]
    fn updates_shadow_older_versions() {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 2 << 10,
            ..Default::default()
        });
        for round in 0..5u64 {
            for i in 0..500u64 {
                db.put(&encode_u64(i), &(i + round * 1000).to_le_bytes());
            }
        }
        for i in (0..500u64).step_by(7) {
            assert_eq!(db.get(&encode_u64(i)), Some((i + 4000).to_le_bytes().to_vec()));
        }
    }

    #[test]
    fn seek_open_and_closed() {
        for filter in [FilterKind::None, FilterKind::SurfReal(4)] {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 4 << 10,
                filter,
                ..Default::default()
            });
            for i in 0..3000u64 {
                db.put(&encode_u64(i * 10), b"v");
            }
            // Open seek.
            match db.seek(&encode_u64(995), None) {
                SeekResult::Found { key } => {
                    assert_eq!(memtree_common::key::decode_u64(&key), 1000, "{filter:?}")
                }
                SeekResult::NotFound => panic!("{filter:?}: open seek missed"),
            }
            // Closed seek hit.
            assert!(matches!(
                db.seek(&encode_u64(995), Some(&encode_u64(1005))),
                SeekResult::Found { .. }
            ));
            // Closed seek in a gap.
            assert_eq!(
                db.seek(&encode_u64(991), Some(&encode_u64(999))),
                SeekResult::NotFound,
                "{filter:?}"
            );
            // Past the end.
            assert_eq!(db.seek(&encode_u64(40_000), None), SeekResult::NotFound);
        }
    }

    #[test]
    fn surf_saves_io_on_empty_closed_seeks() {
        let build = |filter| {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 4 << 10,
                filter,
                cache_blocks: 0, // isolate I/O counts
                ..Default::default()
            });
            for i in 0..5000u64 {
                db.put(&encode_u64(i << 20), b"value");
            }
            db.flush();
            db
        };
        let io_for = |db: &Db| {
            db.reset_io_stats();
            let mut state = 7u64;
            for _ in 0..200 {
                let base = (memtree_common::hash::splitmix64(&mut state) % 5000) << 20;
                // Range strictly inside a gap: almost always empty.
                let lo = encode_u64(base + 1000);
                let hi = encode_u64(base + 2000);
                db.seek(&lo, Some(&hi));
            }
            db.io_stats().block_reads
        };
        let none = build(FilterKind::None);
        // 8 real suffix bits reach the byte where these gap queries differ
        // from the stored keys (4 bits cannot refute them — expected FPR
        // behaviour, not a bug).
        let surf = build(FilterKind::SurfReal(8));
        let (io_none, io_surf) = (io_for(&none), io_for(&surf));
        assert!(
            io_surf * 3 < io_none,
            "SuRF should cut empty-seek I/O: {io_surf} vs {io_none}"
        );
    }

    #[test]
    fn count_matches_truth_closely() {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 4 << 10,
            filter: FilterKind::SurfReal(8),
            ..Default::default()
        });
        for i in 0..3000u64 {
            db.put(&encode_u64(i * 2), b"v");
        }
        db.flush();
        let got = db.count(&encode_u64(1000), &encode_u64(3000));
        let truth = 1000; // keys 1000,1002,...,2998
        assert!(
            got >= truth && got <= truth + 2 * db.level_sizes().iter().sum::<usize>(),
            "count {got} vs truth {truth}"
        );
    }

    #[test]
    fn bloom_cuts_point_io_on_misses() {
        let io_for = |filter| {
            let db = db_with(filter, 10_000);
            db.reset_io_stats();
            let mut state = 999u64;
            for _ in 0..2000 {
                let k = memtree_common::hash::splitmix64(&mut state) | 1;
                db.get(&encode_u64(k)); // miss with overwhelming probability
            }
            db.io_stats().block_reads
        };
        let none = io_for(FilterKind::None);
        let bloom = io_for(FilterKind::Bloom(14.0));
        assert!(
            bloom * 5 < none,
            "bloom {bloom} reads vs none {none} on misses"
        );
    }
}

#[cfg(test)]
mod diag_tests {
    use super::*;
    use memtree_common::key::encode_u64;

    #[test]
    fn seek_visits_every_level() {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 8 << 10,
            cache_blocks: 0,
            ..Default::default()
        });
        for i in 0..30_000u64 {
            db.put(&encode_u64(i * 64), b"0123456789012345678901234567890123456789");
        }
        db.flush();
        let sizes = db.level_sizes();
        println!("level sizes: {sizes:?}");
        assert!(sizes.iter().filter(|&&s| s > 0).count() >= 2, "{sizes:?}");
        db.reset_io_stats();
        let n = 200;
        for i in 0..n {
            let k = encode_u64((i * 9973 % 30_000) * 64 + 1);
            db.seek(&k, None);
        }
        let per_op = db.io_stats().block_reads as f64 / n as f64;
        println!("no-filter seek IO/op = {per_op}");
        assert!(per_op > 1.2, "expected multi-level I/O, got {per_op}");
    }
}

#[cfg(test)]
mod next_tests {
    use super::*;
    use memtree_common::key::encode_u64;

    #[test]
    fn next_after_walks_the_key_sequence() {
        for filter in [FilterKind::None, FilterKind::SurfMixed(4, 4)] {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 4 << 10,
                filter,
                ..Default::default()
            });
            for i in 0..2000u64 {
                db.put(&encode_u64(i * 5), b"v");
            }
            db.flush();
            // Walk forward from 100 via repeated Next.
            let mut cur = encode_u64(100).to_vec();
            for expect in [105u64, 110, 115, 120] {
                match db.next_after(&cur, None) {
                    SeekResult::Found { key } => {
                        assert_eq!(memtree_common::key::decode_u64(&key), expect, "{filter:?}");
                        cur = key;
                    }
                    SeekResult::NotFound => panic!("{filter:?}: next missed {expect}"),
                }
            }
            // Bounded Next stops at hk.
            assert_eq!(
                db.next_after(&encode_u64(120), Some(&encode_u64(125))),
                SeekResult::NotFound
            );
            assert_eq!(db.next_after(&encode_u64(5 * 1999), None), SeekResult::NotFound);
        }
    }
}
