//! The LSM database: MemTable + leveled SSTables + block cache, with the
//! Figure 4.3 query paths and, since the durability PR, a full
//! crash-recovery stack (WAL + manifest + power-loss-aware disk).
//!
//! ## Durability protocol
//!
//! * `put` appends a CRC-framed record to the WAL *before* touching the
//!   MemTable; the record is **acknowledged** once a group commit syncs it
//!   ([`Db::last_synced_seq`]).
//! * `flush` writes the MemTable as an L0 SSTable, syncs the data blocks,
//!   then publishes `AddTable + FlushSeq` as one manifest transaction.
//!   Only after that commit point is the WAL's high-water mark reset — a
//!   crash between the two replays from the old mark and loses nothing.
//! * compaction builds its outputs aside, syncs them, then swaps victims
//!   for outputs in a single manifest transaction before releasing any old
//!   block. A torn transaction drops the whole swap.
//! * [`Db::open`] replays CURRENT → manifest → WAL, garbage-collects
//!   blocks no table references, rebuilds filters, and verifies level
//!   invariants. The crash oracle (`tests/crash_oracle.rs`) drives every
//!   `fail_point!` below through crash + reopen across seeds.

use crate::compaction::{CompactionConfig, CompactionPolicy};
use crate::disk::{IoStats, SimDisk};
use crate::manifest::{Edit, Manifest, Version};
use crate::sstable::{DecodedBlock, SsTable};
use crate::wal::{wal_file_name, Wal, WalStats};
use memtree_common::error::Result;
use memtree_common::hash::fmix64;
use memtree_common::traits::OrderedIndex;
use memtree_faults::{fail_point, Backoff};
use memtree_skiplist::SkipList;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Which filter each SSTable carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    /// No filter (fence indexes only).
    None,
    /// Bloom filter at the given bits per key.
    Bloom(f64),
    /// SuRF with hashed suffix bits.
    SurfHash(u8),
    /// SuRF with real suffix bits.
    SurfReal(u8),
    /// SuRF with hashed + real suffix bits.
    SurfMixed(u8, u8),
}

/// Engine configuration (defaults scaled from RocksDB's).
#[derive(Debug, Clone)]
pub struct DbOptions {
    /// Flush the MemTable when it reaches this many bytes.
    pub memtable_bytes: usize,
    /// Target data-block size.
    pub block_size: usize,
    /// Compact level 0 when it accumulates this many SSTables.
    pub l0_tables: usize,
    /// Max tables at level 1; level `L` holds 10× level `L-1`.
    pub l1_tables: usize,
    /// Per-table filter.
    pub filter: FilterKind,
    /// Block-cache capacity in blocks.
    pub cache_blocks: usize,
    /// Simulated latency charged per block read (used by [`Db::new`] when
    /// it creates the disk; [`Db::open`] inherits the given disk's).
    pub io_read_latency: Duration,
    /// Write-ahead logging. `false` restores the volatile pre-durability
    /// behaviour: a crash loses the MemTable, recovery serves only
    /// flushed tables.
    pub wal: bool,
    /// Group commit: sync the WAL once every this many puts (1 = every
    /// put is acknowledged immediately; larger values amortize the sync
    /// barrier and risk only the unsynced suffix).
    pub wal_group_commit: usize,
    /// File-name namespace prefix for this database's WAL, CURRENT, and
    /// manifest files (`""` = the classic standalone names). Lets several
    /// databases — e.g. the shards of a sharded serving layer — share one
    /// [`SimDisk`] without clobbering each other's metadata.
    pub namespace: String,
    /// Garbage-collect unreferenced disk blocks at open. `true` for a
    /// standalone database; a sharded open sets `false` (one shard must
    /// not free blocks its siblings reference) and runs the cross-shard
    /// [`gc_orphans`](crate::gc_orphans) after every shard is open.
    pub gc_orphans: bool,
    /// Compaction policy shaping the levels. Persisted in the manifest at
    /// creation; on reopen the *persisted* policy wins (the on-disk level
    /// shape was built by it), and this field is updated to match —
    /// [`Db::open_report`] records the override when the two disagree.
    pub compaction: CompactionConfig,
    /// Write-stall triggers (RocksDB-style slowdown/stop bands over L0 run
    /// count and MemTable bytes). Disabled by default: an unconfigured
    /// database never rejects a write for debt.
    pub stall: StallConfig,
    /// Run compaction synchronously at the end of every flush (`true`,
    /// the classic behaviour) or leave flushed runs as compaction *debt*
    /// drained by explicit [`Db::compact_step`] calls (`false` — the
    /// serving layer's model, where debt is what the stall bands measure).
    pub compact_on_flush: bool,
}

/// Write-stall triggers. A write finding the engine at or past a
/// *slowdown* trigger is rejected with a typed
/// [`Backpressure`](memtree_common::error::MemtreeError::Backpressure)
/// (after one bounded compaction step of relief); at or past a *stop*
/// trigger it is rejected with a typed
/// [`Stalled`](memtree_common::error::MemtreeError::Stalled). Neither band
/// ever blocks the caller — the delay is surfaced, not slept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallConfig {
    /// Slowdown when L0 holds at least this many runs.
    pub slowdown_l0_runs: usize,
    /// Stop when L0 holds at least this many runs.
    pub stop_l0_runs: usize,
    /// Slowdown when the MemTable holds at least this many bytes (it can
    /// only exceed [`DbOptions::memtable_bytes`] while flushes are
    /// failing, so this band catches a flush-starved engine).
    pub slowdown_memtable_bytes: usize,
    /// Stop when the MemTable holds at least this many bytes.
    pub stop_memtable_bytes: usize,
}

impl StallConfig {
    /// No triggers: writes are never rejected for debt.
    pub const fn disabled() -> Self {
        Self {
            slowdown_l0_runs: usize::MAX,
            stop_l0_runs: usize::MAX,
            slowdown_memtable_bytes: usize::MAX,
            stop_memtable_bytes: usize::MAX,
        }
    }

    /// Bands scaled for a serving shard: slowdown at `2 × l0_tables` L0
    /// runs (debt twice the compaction trigger), stop at `4 ×`, and the
    /// byte bands at `4 ×` / `8 ×` the MemTable flush threshold.
    pub fn serving(l0_tables: usize, memtable_bytes: usize) -> Self {
        Self {
            slowdown_l0_runs: l0_tables.saturating_mul(2).max(2),
            stop_l0_runs: l0_tables.saturating_mul(4).max(4),
            slowdown_memtable_bytes: memtable_bytes.saturating_mul(4),
            stop_memtable_bytes: memtable_bytes.saturating_mul(8),
        }
    }
}

impl Default for StallConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Default for DbOptions {
    fn default() -> Self {
        Self {
            memtable_bytes: 256 << 10,
            block_size: 4096,
            l0_tables: 4,
            l1_tables: 4,
            filter: FilterKind::None,
            cache_blocks: 64,
            io_read_latency: Duration::ZERO,
            wal: true,
            wal_group_commit: 1,
            namespace: String::new(),
            gc_orphans: true,
            compaction: CompactionConfig::default(),
            stall: StallConfig::disabled(),
            compact_on_flush: true,
        }
    }
}

/// Debt and overload counters exposed by [`Db::stats`]: what the stall
/// bands measure and what they rejected. The serving layer samples this to
/// drive admission control and its `stall` bench section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Runs currently at level 0.
    pub l0_runs: usize,
    /// Bytes buffered in the MemTable.
    pub memtable_bytes: usize,
    /// Approximate bytes in runs beyond every level's policy limit — the
    /// work outstanding before the engine is back in shape.
    pub compaction_debt_bytes: usize,
    /// Writes rejected with `Backpressure` (slowdown band).
    pub backpressure_rejections: u64,
    /// Writes rejected with `Stalled` (stop band, after bounded relief).
    pub stall_rejections: u64,
    /// Bounded compaction steps executed ([`Db::compact_step`], including
    /// the relief steps the bands run before rejecting).
    pub compact_steps: u64,
}

/// Point-filter probe counters, split so batched and per-key read paths
/// can be compared: one `filter_may_contain_batch` over 64 keys is one
/// *pass* probing 64 *keys*; a per-key loop over the same table is 64
/// passes probing 64 keys. Only tables that actually carry a filter count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Filter traversals started (one per `may_contain` call, one per
    /// whole `may_contain_batch` call).
    pub probe_passes: u64,
    /// Keys answered across all passes.
    pub keys_probed: u64,
}

/// What one [`Db::flush`] did — previously the flush was observably a
/// silent no-op from the outside.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// MemTable entries written into the new L0 table.
    pub entries: usize,
    /// WAL bytes reclaimed by the (post-manifest-commit) high-water reset.
    pub wal_bytes_truncated: u64,
    /// Data blocks the new table occupies.
    pub blocks_written: usize,
}

/// Result of a seek.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeekResult {
    /// Smallest entry `>= lk` (and `< hk` for closed seeks).
    Found {
        /// The entry's key.
        key: Vec<u8>,
    },
    /// No qualifying entry.
    NotFound,
}

/// Per-batch cache of exact table lower bounds: table id → `(lk₀,
/// smallest stored key ≥ lk₀)`. See [`Db::seek_candidate`]'s doc for the
/// reuse rule that keeps cached entries exact.
type SeekMemo = HashMap<u64, (Vec<u8>, Option<Vec<u8>>)>;

/// One CLOCK ring of the striped [`BlockCache`].
#[derive(Default)]
struct CacheStripe {
    /// (table id, block idx, payload, referenced)
    slots: Vec<(u64, usize, Arc<DecodedBlock>, bool)>,
    /// `(table id, block idx)` → slot position — O(1) probes instead of a
    /// linear scan of every slot. Maintained by CLOCK replacement below.
    index: HashMap<(u64, usize), usize>,
    capacity: usize,
    hand: usize,
    hits: u64,
    misses: u64,
}

impl CacheStripe {
    fn get(&mut self, table: u64, block: usize) -> Option<Arc<DecodedBlock>> {
        let &i = self.index.get(&(table, block))?;
        let slot = &mut self.slots[i];
        slot.3 = true;
        self.hits += 1;
        Some(Arc::clone(&slot.2))
    }

    fn insert(&mut self, table: u64, block: usize, data: Arc<DecodedBlock>) {
        self.misses += 1;
        if self.capacity == 0 {
            return;
        }
        // Refresh an already-cached `(table, block)` in place. Blindly
        // indexing a second slot would leave the old slot in the CLOCK
        // ring but out of the index — a stale duplicate that wastes
        // capacity and is invisible to `invalidate`.
        if let Some(&i) = self.index.get(&(table, block)) {
            self.slots[i].2 = data;
            self.slots[i].3 = true;
            return;
        }
        if self.slots.len() < self.capacity {
            self.index.insert((table, block), self.slots.len());
            self.slots.push((table, block, data, true));
            return;
        }
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.3 {
                slot.3 = false;
                self.hand = (self.hand + 1) % self.slots.len();
            } else {
                self.index.remove(&(slot.0, slot.1));
                self.index.insert((table, block), self.hand);
                self.slots[self.hand] = (table, block, data, true);
                self.hand = (self.hand + 1) % self.slots.len();
                return;
            }
        }
    }

    /// Drops one cached block. The swap-removed slot's new occupant is
    /// re-indexed and the hand is clamped back into range.
    fn invalidate(&mut self, table: u64, block: usize) {
        let Some(i) = self.index.remove(&(table, block)) else {
            return;
        };
        self.slots.swap_remove(i);
        if i < self.slots.len() {
            self.index.insert((self.slots[i].0, self.slots[i].1), i);
        }
        if self.hand >= self.slots.len() {
            self.hand = 0;
        }
    }

    /// Index ↔ slots bijection plus hand range, asserted by the
    /// differential cache tests after every operation.
    #[cfg(test)]
    fn assert_coherent(&self) {
        assert_eq!(self.index.len(), self.slots.len(), "index/slot count desync");
        assert!(self.slots.len() <= self.capacity);
        for (pos, slot) in self.slots.iter().enumerate() {
            assert_eq!(
                self.index.get(&(slot.0, slot.1)),
                Some(&pos),
                "slot {pos} not indexed at its position"
            );
        }
        assert!(self.hand == 0 || self.hand < self.slots.len(), "hand out of range");
    }
}

/// The decoded-block cache: CLOCK replacement behind a HashMap index,
/// striped across several independently locked rings so concurrent
/// snapshot readers on different blocks never serialize on one lock.
/// Stripe choice is a hash of `(table, block)`, so a given block always
/// lives in exactly one stripe.
pub(crate) struct BlockCache {
    stripes: Vec<Mutex<CacheStripe>>,
}

impl BlockCache {
    /// At most 8 stripes, never more than `capacity` (a tiny cache gains
    /// nothing from extra locks), and a single stripe for capacity 0 so
    /// the miss counters still have a home.
    pub(crate) fn new(capacity: usize) -> Self {
        let n = if capacity == 0 { 1 } else { capacity.min(8) };
        let per = capacity.div_ceil(n);
        Self {
            stripes: (0..n)
                .map(|_| {
                    Mutex::new(CacheStripe {
                        capacity: per,
                        ..Default::default()
                    })
                })
                .collect(),
        }
    }

    fn stripe(&self, table: u64, block: usize) -> MutexGuard<'_, CacheStripe> {
        let h = fmix64(table ^ (block as u64).rotate_left(32)) as usize;
        self.stripes[h % self.stripes.len()]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn get(&self, table: u64, block: usize) -> Option<Arc<DecodedBlock>> {
        self.stripe(table, block).get(table, block)
    }

    pub(crate) fn insert(&self, table: u64, block: usize, data: Arc<DecodedBlock>) {
        self.stripe(table, block).insert(table, block, data);
    }

    /// Drops one cached block (scrub repairs re-encode blocks in place).
    /// Drops one cached block. Production code retires whole tables via
    /// [`BlockCache::invalidate_table`]; the per-block form is kept for the
    /// cache coherence tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn invalidate(&self, table: u64, block: usize) {
        self.stripe(table, block).invalidate(table, block);
    }

    /// Drops every cached block of `table` (table retirement).
    pub(crate) fn invalidate_table(&self, table: u64) {
        for stripe in &self.stripes {
            let mut s = stripe.lock().unwrap_or_else(|e| e.into_inner());
            let blocks: Vec<usize> =
                s.slots.iter().filter(|sl| sl.0 == table).map(|sl| sl.1).collect();
            for b in blocks {
                s.invalidate(table, b);
            }
        }
    }

    /// (hits, misses) summed across stripes.
    pub(crate) fn stats(&self) -> (u64, u64) {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()))
            .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses))
    }

    #[cfg(test)]
    fn slot_count(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).slots.len())
            .sum()
    }
}

/// The LSM key-value store.
///
/// `Db` is `Send` (a shard worker thread can own one) but not `Sync` —
/// its hot-path bookkeeping stays in `Cell`/`RefCell`. Concurrent readers
/// go through [`Db::snapshot`]: an immutable, `Send + Sync` view backed by
/// `Arc`-shared tables, disk, and block cache.
pub struct Db {
    pub(crate) opts: DbOptions,
    pub(crate) disk: Arc<SimDisk>,
    /// MemTable: our paged skip list mapping keys to value-arena slots.
    mem: SkipList,
    /// Value arena; `None` slots are delete tombstones.
    mem_values: Vec<Option<Vec<u8>>>,
    mem_bytes: usize,
    /// Tombstones written into this MemTable generation (upper bound:
    /// overwrites of a tombstone don't decrement it).
    mem_tombstones: usize,
    /// `levels[0]` newest-last; levels ≥ 1 key-ordered and disjoint.
    /// Tables are `Arc`-shared with snapshots, which keep reading a
    /// retired table until they drop it.
    pub(crate) levels: Vec<Vec<Arc<SsTable>>>,
    pub(crate) cache: Arc<BlockCache>,
    /// Retired tables still held by outstanding snapshots: their blocks
    /// are released only once the last snapshot drops the `Arc` (reaped at
    /// the next flush / close).
    graveyard: Vec<Arc<SsTable>>,
    pub(crate) next_table_id: u64,
    filter_stats: Cell<FilterStats>,
    wal: Wal,
    /// `RefCell` so the `&self` read path can persist quarantine edits.
    pub(crate) manifest: RefCell<Manifest>,
    /// WAL records at or below this seq are covered by flushed tables.
    pub(crate) flushed_seq: u64,
    /// Block decodes that failed once and succeeded on re-read.
    read_repairs: Cell<u64>,
    /// `(table id, block index)` pairs that failed validation persistently;
    /// their entries are unreachable until scrub repairs or drops them.
    /// Mirrored in the manifest so reopen skips known-bad blocks.
    pub(crate) quarantined: RefCell<HashSet<(u64, u32)>>,
    /// Reads that hit a transient fault and were retried.
    pub(crate) transient_retries: Cell<u64>,
    /// Tables left filterless at open because a block was unreadable or
    /// quarantined (a partial filter would give false negatives).
    degraded_tables: Cell<u64>,
    /// The active compaction policy (instantiated from
    /// [`DbOptions::compaction`] / the manifest's persisted policy).
    policy: Box<dyn CompactionPolicy>,
    /// Cached `policy.overlapping_levels()`: true when levels ≥ 1 hold
    /// overlapping age-ordered runs that reads must scan newest-first.
    pub(crate) overlapping: bool,
    /// Filters restored from persisted images at open (one block read
    /// each — the O(tables) recovery fast path).
    filters_loaded: Cell<u64>,
    /// Filters rebuilt from data blocks at open (the O(data) fallback).
    filters_rebuilt: Cell<u64>,
    /// Persisted filter images that failed validation at open (fell back
    /// to rebuild — never to a wrong filter).
    filter_images_corrupt: Cell<u64>,
    /// Writes rejected by the slowdown band since open.
    backpressure_rejections: Cell<u64>,
    /// Writes rejected by the stop band since open.
    stall_rejections: Cell<u64>,
    /// Bounded compaction steps executed since open.
    compact_steps: Cell<u64>,
    /// What [`Db::open`] observed while recovering (see [`OpenReport`]).
    open_report: OpenReport,
}

/// What [`Db::open`] observed while recovering, kept for the caller to
/// inspect via [`Db::open_report`]. Recovery itself never fails on any of
/// these — they are notes, not errors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// `Some((requested, persisted))` when the options asked for a
    /// compaction policy different from the manifest's persisted one. The
    /// persisted policy won (the on-disk level shape was built by it);
    /// switching a policy on reopen is unsupported — rebuild through a
    /// fresh database to change policy.
    pub policy_overridden: Option<(CompactionConfig, CompactionConfig)>,
    /// WAL records replayed past the flushed high-water mark.
    pub wal_records_replayed: u64,
    /// Filters restored from persisted images (O(1) reads per table).
    pub filters_loaded: u64,
    /// Filters rebuilt from data blocks (no or corrupt image).
    pub filters_rebuilt: u64,
    /// Persisted filter images that failed validation.
    pub filter_images_corrupt: u64,
    /// Tables left filterless because blocks were unreadable/quarantined.
    pub degraded_tables: u64,
}

impl Db {
    /// Opens an empty database on a fresh simulated disk.
    pub fn new(opts: DbOptions) -> Self {
        let disk = Arc::new(SimDisk::new(opts.io_read_latency));
        Self::open(disk, opts).expect("fresh database open cannot fail")
    }

    /// Opens (or recovers) a database from `disk`: reads CURRENT and the
    /// manifest it names, reconstructs the level structure, garbage-
    /// collects unreferenced blocks, rebuilds filters, replays the WAL
    /// past the flushed high-water mark, and rotates the manifest to a
    /// fresh snapshot.
    pub fn open(disk: Arc<SimDisk>, opts: DbOptions) -> Result<Self> {
        let mut opts = opts;
        let (mut manifest, mut version, fresh) = Manifest::open(&disk, &opts.namespace)?;
        // Policy resolution: the manifest's persisted policy wins — the
        // on-disk level shape was built by it, and opening tiered levels
        // with leveled read paths would assume a disjointness that does
        // not hold. A fresh database records its options' policy now, so
        // every later open agrees.
        let requested = opts.compaction;
        let config = version.policy.unwrap_or(opts.compaction);
        let policy_overridden = (config != requested).then_some((requested, config));
        opts.compaction = config;
        let policy = config.policy();
        let overlapping = policy.overlapping_levels();
        if fresh {
            manifest.append(&disk, &[Edit::Policy(config)])?;
        }
        version.policy = Some(config);
        let mut levels: Vec<Vec<SsTable>> = Vec::new();
        for metas in &version.levels {
            levels.push(metas.iter().map(|m| SsTable::from_meta(m.clone())).collect());
        }
        if levels.is_empty() {
            levels.push(Vec::new());
        }
        if !overlapping {
            // Leveled levels ≥ 1 are key-ordered; tiered runs stay in the
            // manifest's age order (newest last) for newest-first reads.
            for level in levels.iter_mut().skip(1) {
                level.sort_by(|a, b| a.min_key.cmp(&b.min_key));
            }
        }
        // Garbage-collect blocks no table references: torn table builds
        // and compactions that crashed before their manifest transaction
        // leave allocated-but-unpublished blocks behind (data and filter-
        // image blocks alike). A sharded open skips this (another shard's
        // tables also reference this disk) and runs the cross-shard
        // [`gc_orphans`] once every shard is open.
        if opts.gc_orphans {
            let referenced: HashSet<u32> = levels
                .iter()
                .flatten()
                .flat_map(|t| t.blocks.iter().copied().chain(t.filter_block))
                .collect();
            for id in 0..disk.block_slots() as u32 {
                if disk.is_live(id) && !referenced.contains(&id) {
                    disk.release(id)?;
                }
            }
        }
        // Filter recovery, fastest path first:
        //
        // 1. **Persisted image** — one block read per table restores the
        //    filter in O(tables) total I/O. A table with quarantined data
        //    blocks may still load its image: the image indexes *every*
        //    key (the quarantined ones included), so it is over-complete —
        //    worst case a false positive on a lost key, never a false
        //    negative.
        // 2. **Rebuild from keys** — tables without an image (written
        //    before the format, or built filterless under a different
        //    configuration) or with a corrupt image re-read their data
        //    blocks, the old O(data) path.
        // 3. **Degrade to filterless** — a rebuild that hits unreadable or
        //    quarantined blocks leaves the table whole-table filterless (a
        //    partial filter would answer false negatives). Freshly
        //    discovered bad blocks are quarantined into the rotation
        //    snapshot below. Wrong answers are impossible in every case.
        let mut degraded = 0u64;
        let mut loaded = 0u64;
        let mut rebuilt = 0u64;
        let mut images_corrupt = 0u64;
        if !matches!(opts.filter, FilterKind::None) {
            for table in levels.iter_mut().flatten() {
                match table.load_persisted_filter(&disk, &opts.filter) {
                    Ok(true) => {
                        loaded += 1;
                        continue;
                    }
                    Ok(false) => {}
                    Err(_) => images_corrupt += 1,
                }
                let mut entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
                    Vec::with_capacity(table.num_entries);
                let mut table_degraded = false;
                for (bi, &b) in table.blocks.iter().enumerate() {
                    if version.quarantined.contains(&(table.id, bi as u32)) {
                        table_degraded = true;
                        continue;
                    }
                    let mut backoff = Backoff::new(4);
                    let blk = loop {
                        match disk.read(b).and_then(|raw| SsTable::decode_block(&raw)) {
                            Ok(blk) => break Some(blk),
                            Err(e) if backoff.retry(&e) => continue,
                            Err(e) => {
                                if !e.is_transient() {
                                    version.quarantined.insert((table.id, bi as u32));
                                }
                                break None;
                            }
                        }
                    };
                    match blk {
                        Some(blk) => entries.extend(blk),
                        None => table_degraded = true,
                    }
                }
                if table_degraded {
                    degraded += 1;
                } else {
                    let keys: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
                    table.attach_filter(&keys, &opts.filter);
                    rebuilt += 1;
                }
            }
        }
        let (wal, records) = Wal::replay(&disk, version.flushed_seq, &wal_file_name(&opts.namespace))?;
        let mut db = Self {
            cache: Arc::new(BlockCache::new(opts.cache_blocks)),
            opts,
            mem: SkipList::new(),
            mem_values: Vec::new(),
            mem_bytes: 0,
            mem_tombstones: 0,
            // Filters were attached above, while the tables were still
            // uniquely owned; from here on they are immutable and shared.
            levels: levels
                .into_iter()
                .map(|lvl| lvl.into_iter().map(Arc::new).collect())
                .collect(),
            graveyard: Vec::new(),
            next_table_id: version.next_table_id,
            filter_stats: Cell::new(FilterStats::default()),
            wal,
            manifest: RefCell::new(manifest),
            flushed_seq: version.flushed_seq,
            read_repairs: Cell::new(0),
            quarantined: RefCell::new(version.quarantined.iter().copied().collect()),
            transient_retries: Cell::new(0),
            degraded_tables: Cell::new(degraded),
            policy,
            overlapping,
            filters_loaded: Cell::new(loaded),
            filters_rebuilt: Cell::new(rebuilt),
            filter_images_corrupt: Cell::new(images_corrupt),
            backpressure_rejections: Cell::new(0),
            stall_rejections: Cell::new(0),
            compact_steps: Cell::new(0),
            open_report: OpenReport {
                policy_overridden,
                wal_records_replayed: records.len() as u64,
                filters_loaded: loaded,
                filters_rebuilt: rebuilt,
                filter_images_corrupt: images_corrupt,
                degraded_tables: degraded,
            },
            disk,
        };
        let mut last_applied = version.flushed_seq;
        for r in &records {
            // `Wal::replay` already enforces monotonic seqs; re-checking
            // here keeps the recovered-prefix guarantee local to `open`.
            if r.seq <= last_applied {
                return Err(memtree_common::error::MemtreeError::corruption(
                    "wal-replay",
                    format!("record seq {} at or below applied seq {last_applied}", r.seq),
                ));
            }
            last_applied = r.seq;
            db.apply_write(&r.key, r.value.as_deref());
        }
        if !fresh {
            db.manifest.borrow_mut().rotate(&db.disk, &version)?;
        }
        db.check_invariants()?;
        Ok(db)
    }

    /// Flushes, syncs, and hands back the disk — the clean-shutdown path.
    /// Reopening after `close` replays zero WAL records.
    pub fn close(mut self) -> Result<Arc<SimDisk>> {
        self.flush()?;
        self.reap_graveyard()?;
        // Any table still pinned by an outstanding snapshot keeps its
        // blocks; reopen's orphan GC reclaims them once nothing durable
        // references them.
        self.disk.sync();
        Ok(Arc::clone(&self.disk))
    }

    /// A handle to the underlying disk (for crash simulation and
    /// reopening; the disk outlives the `Db`).
    pub fn disk_handle(&self) -> Arc<SimDisk> {
        Arc::clone(&self.disk)
    }

    /// Retires a table that left the live version: evicts its cached
    /// blocks, then releases its disk blocks — unless a snapshot still
    /// holds the table, in which case the release is parked in the
    /// graveyard until the last reader drops the `Arc`.
    fn retire_table(&mut self, table: Arc<SsTable>) -> Result<()> {
        self.cache.invalidate_table(table.id);
        if Arc::strong_count(&table) == 1 {
            table.release(&self.disk)?;
        } else {
            self.graveyard.push(table);
        }
        Ok(())
    }

    /// Releases the blocks of graveyard tables no snapshot holds anymore.
    /// Graveyard blocks are never reused while parked (they stay
    /// allocated), so a late release can never free another table's block.
    fn reap_graveyard(&mut self) -> Result<()> {
        let mut keep = Vec::new();
        for t in std::mem::take(&mut self.graveyard) {
            if Arc::strong_count(&t) == 1 {
                t.release(&self.disk)?;
            } else {
                keep.push(t);
            }
        }
        self.graveyard = keep;
        Ok(())
    }

    /// MemTable insert without logging (shared by `put`/`delete` and WAL
    /// replay). `None` writes a delete tombstone.
    fn apply_write(&mut self, key: &[u8], value: Option<&[u8]>) {
        let slot = self.mem_values.len() as u64;
        self.mem_values.push(value.map(<[u8]>::to_vec));
        if !self.mem.insert(key, slot) {
            self.mem.update(key, slot);
        }
        self.mem_tombstones += usize::from(value.is_none());
        self.mem_bytes += key.len() + value.map_or(0, <[u8]>::len) + 1;
    }

    /// Inserts or overwrites `key`, returning the write's sequence number.
    /// The record is durable once [`Db::last_synced_seq`] reaches it.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<u64> {
        self.write(key, Some(value))
    }

    /// Deletes `key`: logs and buffers a tombstone that shadows every
    /// older version until bottom-level compaction drops both. Deleting an
    /// absent key is a (logged) no-op with the same durability guarantee.
    pub fn delete(&mut self, key: &[u8]) -> Result<u64> {
        self.write(key, None)
    }

    /// The stall bands ([`StallConfig`]): checked before a write touches
    /// the WAL, so a rejected write has no side effects at all.
    ///
    /// Stop band: one bounded compaction step of relief, then a typed
    /// [`Stalled`](MemtreeError::Stalled) if the debt still exceeds the
    /// trigger — never an unbounded block. Slowdown band: one relief step
    /// and a typed [`Backpressure`](MemtreeError::Backpressure) whose
    /// suggested wait scales with how deep into the band the engine is.
    /// A relief step's own error is swallowed here (the rejection already
    /// tells the caller to back off); flush/compact surface it typed on
    /// their own paths.
    fn check_pressure(&mut self) -> Result<()> {
        use memtree_common::error::MemtreeError;
        let bands = self.opts.stall;
        let over_stop = |l0: usize, mem: usize| {
            l0 >= bands.stop_l0_runs || mem >= bands.stop_memtable_bytes
        };
        let over_slowdown = |l0: usize, mem: usize| {
            l0 >= bands.slowdown_l0_runs || mem >= bands.slowdown_memtable_bytes
        };
        let (l0, mem) = (self.levels[0].len(), self.mem_bytes);
        if !over_slowdown(l0, mem) {
            return Ok(());
        }
        let _ = self.compact_step();
        let (l0, mem) = (self.levels[0].len(), self.mem_bytes);
        if over_stop(l0, mem) {
            self.stall_rejections.set(self.stall_rejections.get() + 1);
            return Err(MemtreeError::Stalled { l0_runs: l0, memtable_bytes: mem });
        }
        if over_slowdown(l0, mem) {
            self.backpressure_rejections
                .set(self.backpressure_rejections.get() + 1);
            let depth = (l0 + 1).saturating_sub(bands.slowdown_l0_runs).max(1) as u64;
            return Err(MemtreeError::Backpressure { suggested_wait_us: 100 * depth });
        }
        Ok(())
    }

    fn write(&mut self, key: &[u8], value: Option<&[u8]>) -> Result<u64> {
        self.check_pressure()?;
        let seq = if self.opts.wal {
            self.wal
                .append(&self.disk, key, value, self.opts.wal_group_commit)?
        } else {
            self.wal.bump_seq()
        };
        self.apply_write(key, value);
        if self.mem_bytes >= self.opts.memtable_bytes {
            // The write itself is already applied and logged; the flush it
            // triggers is best-effort here. Transient faults get a bounded
            // retry; real failures (ENOSPC, injected aborts) propagate
            // typed with the Db still fully serviceable — a later put or
            // explicit `flush` retries the whole flush.
            let mut backoff = Backoff::new(3);
            loop {
                match self.flush() {
                    Ok(_) => break,
                    Err(e) if backoff.retry(&e) => continue,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(seq)
    }

    /// Forces every appended WAL record durable (acknowledges the group-
    /// commit tail).
    pub fn sync(&mut self) -> Result<()> {
        if self.opts.wal {
            self.wal.sync(&self.disk)?;
        } else {
            self.disk.sync();
        }
        Ok(())
    }

    /// Flushes the MemTable into a new level-0 SSTable. Returns `None`
    /// when the MemTable was empty, else what the flush did.
    ///
    /// Durability order: data blocks are synced first, then the
    /// `AddTable + FlushSeq` manifest transaction commits, and only then
    /// is the WAL's high-water mark reset — never before.
    pub fn flush(&mut self) -> Result<Option<FlushStats>> {
        self.reap_graveyard()?;
        if self.mem.is_empty() {
            return Ok(None);
        }
        // The WAL tail mirrors the MemTable exactly, so the table covers
        // every record up to the last appended seq.
        let flush_seq = self.wal.appended_seq();
        let mut entries = Vec::with_capacity(self.mem.len());
        self.mem.for_each_sorted(&mut |k, slot| {
            entries.push((k.to_vec(), self.mem_values[slot as usize].clone()));
        });
        let table = SsTable::build(
            self.next_table_id,
            &self.disk,
            &entries,
            self.opts.block_size,
            &self.opts.filter,
        )?;
        // Publish: sync the data blocks, then commit the manifest edit. A
        // failure anywhere before the commit point (injected abort, ENOSPC
        // in the manifest append) releases the built blocks — the Db keeps
        // its previous shape, stays serviceable, and the flush is
        // retryable.
        let committed = (|| -> Result<()> {
            // At this point the data blocks *and* the filter-image block
            // are written but unreferenced — a crash here leaves orphans
            // for recovery's GC, the exact scenario the crash oracle's
            // `lsm.flush.filter_block` point exercises.
            fail_point!("lsm.flush.filter_block");
            fail_point!("lsm.flush.sync");
            self.disk.sync();
            self.manifest.borrow_mut().append(
                &self.disk,
                &[Edit::AddTable(table.meta(0)), Edit::FlushSeq { seq: flush_seq }],
            )
        })();
        if let Err(e) = committed {
            let _ = table.release(&self.disk);
            return Err(e);
        }
        // Commit point: the table is durable and referenced. Install it
        // in-memory *before* the WAL reset below — an error there must
        // leave a Db whose levels match the manifest (the stale WAL tail
        // merely replays records the table already shadows).
        self.flushed_seq = flush_seq;
        self.next_table_id += 1;
        let flushed_entries = entries.len();
        let blocks_written = table.blocks.len();
        self.levels[0].push(Arc::new(table));
        self.mem.clear();
        self.mem_values.clear();
        self.mem_bytes = 0;
        self.mem_tombstones = 0;
        let mut wal_bytes = 0u64;
        if self.opts.wal {
            fail_point!("lsm.wal.reset");
            wal_bytes = self.disk.file_len(self.wal.file()) as u64;
            self.disk.truncate_file(self.wal.file(), 0);
            self.disk.sync();
            self.wal.note_reset(wal_bytes);
        }
        let stats = FlushStats {
            entries: flushed_entries,
            wal_bytes_truncated: wal_bytes,
            blocks_written,
        };
        if self.opts.compact_on_flush {
            self.compact()?;
        }
        Ok(Some(stats))
    }

    fn level_limit(&self, level: usize) -> usize {
        self.policy
            .level_limit(level, self.opts.l0_tables, self.opts.l1_tables)
    }

    /// Approximate bytes in runs beyond every level's policy limit — the
    /// compaction debt outstanding. Only meaningful as a trend; block
    /// counts stand in for exact byte sizes.
    fn compaction_debt_bytes(&self) -> usize {
        let mut debt = 0usize;
        for (level, tables) in self.levels.iter().enumerate() {
            let limit = self.level_limit(level);
            if tables.len() > limit {
                let excess = tables.len() - limit;
                // Oldest runs first: those are the ones a merge consumes.
                debt += tables
                    .iter()
                    .take(excess)
                    .map(|t| t.blocks.len() * self.opts.block_size)
                    .sum::<usize>();
            }
        }
        debt
    }

    /// Debt and overload counters (see [`DbStats`]).
    pub fn stats(&self) -> DbStats {
        DbStats {
            l0_runs: self.levels[0].len(),
            memtable_bytes: self.mem_bytes,
            compaction_debt_bytes: self.compaction_debt_bytes(),
            backpressure_rejections: self.backpressure_rejections.get(),
            stall_rejections: self.stall_rejections.get(),
            compact_steps: self.compact_steps.get(),
        }
    }

    /// What [`Db::open`] observed while recovering this database.
    pub fn open_report(&self) -> &OpenReport {
        &self.open_report
    }

    /// One bounded unit of compaction: merges the shallowest level that is
    /// over its policy limit and returns `Ok(true)`, or returns
    /// `Ok(false)` when no level is over (no debt). This is the drain the
    /// serving layer calls between requests when
    /// [`DbOptions::compact_on_flush`] is off — debt shrinks one step at a
    /// time without ever holding a write hostage to a full compaction run.
    pub fn compact_step(&mut self) -> Result<bool> {
        for level in 0..self.levels.len() {
            if self.levels[level].len() > self.level_limit(level) {
                self.compact_at(level)?;
                self.compact_steps.set(self.compact_steps.get() + 1);
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// One debt-draining step for overload relief: like
    /// [`Db::compact_step`], but when no level is over its structural
    /// limit it still merges L0 once the stall *slowdown* band is
    /// reached. Without this, bands tighter than the compaction trigger
    /// would reject writes forever with no level ever "over limit" —
    /// this is the drain that guarantees a backpressure retry can
    /// eventually succeed.
    pub fn compact_debt(&mut self) -> Result<bool> {
        if self.compact_step()? {
            return Ok(true);
        }
        if !self.levels[0].is_empty() && self.levels[0].len() >= self.opts.stall.slowdown_l0_runs
        {
            self.compact_at(0)?;
            self.compact_steps.set(self.compact_steps.get() + 1);
            return Ok(true);
        }
        Ok(false)
    }

    /// Policy-driven compaction. Leveled: L0 merges wholesale into L1,
    /// deeper levels move one table at a time into the overlap below.
    /// Tiered: a full level merges into one new run appended below,
    /// rewriting nothing.
    ///
    /// The in-memory level structure is only mutated — and old blocks only
    /// released — after the swap's manifest transaction is durable, so an
    /// error (or crash) at any step leaves the previous version fully
    /// readable. Outputs built before a failed commit are unreferenced
    /// blocks that recovery garbage-collects.
    fn compact(&mut self) -> Result<()> {
        // Shallowest over-limit level first, to a fixpoint: a merge only
        // ever adds runs *below* its level, so this performs the same
        // ascending sequence of merges the old single-pass loop did.
        while self.compact_step()? {}
        Ok(())
    }

    /// One merge at `level` (the body of a [`Db::compact_step`]).
    fn compact_at(&mut self, level: usize) -> Result<()> {
        {
            fail_point!("lsm.compact.begin");
            if self.levels.len() == level + 1 {
                self.levels.push(Vec::new());
            }
            let job = self.policy.pick(&self.levels, level);
            let (victim_ids, overlapped_ids) = (job.victim_ids, job.overlapped_ids);
            let victims: Vec<&SsTable> = self.levels[level]
                .iter()
                .filter(|t| victim_ids.contains(&t.id))
                .map(|t| t.as_ref())
                .collect();
            // Merge newest-first: victims are newer than `overlapped`;
            // within a level, later tables are newer (L0 flush order /
            // tiered run order).
            let mut sources: Vec<DecodedBlock> = Vec::new();
            for t in victims.iter().rev() {
                sources.push(self.read_all(t)?);
            }
            for t in self.levels[level + 1]
                .iter()
                .filter(|t| overlapped_ids.contains(&t.id))
            {
                sources.push(self.read_all(t)?);
            }
            let mut merged: Vec<(usize, Vec<u8>, Option<Vec<u8>>)> = Vec::new();
            for (prio, src) in sources.into_iter().enumerate() {
                for (k, v) in src {
                    merged.push((prio, k, v));
                }
            }
            merged.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
            merged.dedup_by(|b, a| a.1 == b.1); // keep lowest prio = newest
            let mut entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
                merged.into_iter().map(|(_, k, v)| (k, v)).collect();
            // Tombstones are dropped only once nothing deeper can hold an
            // older version of a merged key — otherwise removing the
            // tombstone would resurrect that older version. "Deeper" is
            // everything at the output level and below that is *not*
            // consumed by this merge: under leveled that reduces to the
            // old `level + 2..` check (unconsumed level+1 tables cannot
            // overlap the merge by disjointness), and under tiered it
            // keeps tombstones alive over the older runs they shadow at
            // the output level.
            if let (Some(first), Some(last)) = (entries.first(), entries.last()) {
                let (min, max) = (first.0.clone(), last.0.clone());
                let deeper = self.levels[level + 1..]
                    .iter()
                    .flatten()
                    .any(|t| !overlapped_ids.contains(&t.id) && t.overlaps(&min, &max));
                if !deeper {
                    entries.retain(|(_, v)| v.is_some());
                }
            }
            // Build the outputs aside: one run under a single-output
            // policy (the run count is what tiered's level limit bounds),
            // tables of ~10 memtables each otherwise. If every entry was
            // a dropped tombstone this degenerates to a removal-only
            // transaction. A failure before the manifest commit releases
            // every output built so far: the previous version stays live
            // and the Db stays serviceable.
            let per_table = if self.policy.single_output() {
                entries.len()
            } else {
                (self.opts.memtable_bytes * 4 / 64).max(64) // entries per output table
            };
            let mut new_tables: Vec<SsTable> = Vec::new();
            let mut next_id = self.next_table_id;
            let committed = (|| -> Result<()> {
                for chunk in entries.chunks(per_table.max(1)) {
                    new_tables.push(SsTable::build(
                        next_id,
                        &self.disk,
                        chunk,
                        self.opts.block_size,
                        &self.opts.filter,
                    )?);
                    next_id += 1;
                }
                fail_point!("lsm.compact.sync");
                self.disk.sync();
                let mut edits: Vec<Edit> = victim_ids
                    .iter()
                    .chain(overlapped_ids.iter())
                    .map(|&id| Edit::RemoveTable { id })
                    .collect();
                for t in &new_tables {
                    edits.push(Edit::AddTable(t.meta(level + 1)));
                }
                self.manifest.borrow_mut().append(&self.disk, &edits)
            })();
            if let Err(e) = committed {
                for t in &new_tables {
                    let _ = t.release(&self.disk);
                }
                return Err(e);
            }
            // Commit point: swap the in-memory version and free victims.
            // Quarantine entries die with the tables that carried them
            // (the manifest's RemoveTable does the same purge).
            self.next_table_id = next_id;
            self.quarantined
                .borrow_mut()
                .retain(|&(t, _)| !victim_ids.contains(&t) && !overlapped_ids.contains(&t));
            let mut dropped: Vec<Arc<SsTable>> = Vec::new();
            for lvl in [level, level + 1] {
                let keep: Vec<Arc<SsTable>> = std::mem::take(&mut self.levels[lvl])
                    .into_iter()
                    .filter_map(|t| {
                        if victim_ids.contains(&t.id) || overlapped_ids.contains(&t.id) {
                            dropped.push(t);
                            None
                        } else {
                            Some(t)
                        }
                    })
                    .collect();
                self.levels[lvl] = keep;
            }
            for t in dropped {
                self.retire_table(t)?;
            }
            let next = &mut self.levels[level + 1];
            next.extend(new_tables.into_iter().map(Arc::new));
            if !self.overlapping {
                next.sort_by(|a, b| a.min_key.cmp(&b.min_key));
            }
        }
        Ok(())
    }

    fn read_all(&self, table: &SsTable) -> Result<DecodedBlock> {
        // Compaction I/O is counted as reads too (as in real systems).
        // A quarantined block gets one last read-repair chance here:
        // quarantine can stem from wire-level rot (the stored bytes are
        // intact and a re-read validates), and this merge is the final
        // moment the entries can be rescued before the input table
        // retires and the loss becomes permanent. A block that still
        // fails is skipped — that loss was already reported when the
        // block was quarantined, and insisting on reading it would wedge
        // every future flush behind the same error. Readable blocks still
        // propagate errors — a *fresh* failure must not silently drop
        // entries.
        let mut out = Vec::with_capacity(table.num_entries);
        for b in 0..table.blocks.len() {
            if self.quarantined.borrow().contains(&(table.id, b as u32)) {
                if let Ok(d) = self.read_decoded_retrying(table, b, 4) {
                    self.quarantined.borrow_mut().remove(&(table.id, b as u32));
                    self.read_repairs.set(self.read_repairs.get() + 1);
                    out.extend(d.iter().cloned());
                }
                continue;
            }
            out.extend(self.fetch_block_strict(table, b)?.iter().cloned());
        }
        Ok(out)
    }

    fn try_fetch(&self, table: &SsTable, block: usize) -> Result<Arc<DecodedBlock>> {
        let raw = self.disk.read(table.blocks[block])?;
        Ok(Arc::new(SsTable::decode_block(&raw)?))
    }

    /// One decoded-block read with bounded retry of *transient* faults
    /// only; persistent errors (corruption, dead block) return on the
    /// first attempt.
    fn read_decoded_retrying(
        &self,
        table: &SsTable,
        block: usize,
        max_attempts: u32,
    ) -> Result<Arc<DecodedBlock>> {
        let mut backoff = Backoff::new(max_attempts);
        loop {
            match self.try_fetch(table, block) {
                Ok(d) => return Ok(d),
                Err(e) => {
                    if backoff.retry(&e) {
                        self.transient_retries.set(self.transient_retries.get() + 1);
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Block fetch for the write/recovery paths: transients are retried,
    /// everything else propagates.
    fn fetch_block_strict(&self, table: &SsTable, block: usize) -> Result<Arc<DecodedBlock>> {
        if let Some(hit) = self.cache.get(table.id, block) {
            return Ok(hit);
        }
        let decoded = self.read_decoded_retrying(table, block, 4)?;
        self.cache.insert(table.id, block, Arc::clone(&decoded));
        Ok(decoded)
    }

    /// Block fetch for the query paths, through the block cache, with the
    /// three-way fault policy:
    ///
    /// * **transient** read errors are retried under [`Backoff`] until
    ///   they heal — and are *never* quarantined (the on-disk data is
    ///   intact); an exhausted retry budget serves the block as empty for
    ///   this one query only.
    /// * a **persistent** decode failure is retried once more (the read
    ///   repair — media faults injected on the read copy can vanish on
    ///   re-read), and
    /// * a block that still fails is **quarantined**: queries treat it as
    ///   empty, the quarantine is persisted through the manifest so
    ///   reopen skips it, and only scrub can lift it. The counters in
    ///   [`Db::io_stats`] record every step instead of the process
    ///   panicking.
    fn fetch_block(&self, table: &SsTable, block: usize) -> Arc<DecodedBlock> {
        if let Some(hit) = self.cache.get(table.id, block) {
            return hit;
        }
        if self.quarantined.borrow().contains(&(table.id, block as u32)) {
            return Arc::new(Vec::new());
        }
        let decoded = match self.read_decoded_retrying(table, block, 8) {
            Ok(d) => d,
            Err(e) if e.is_transient() => return Arc::new(Vec::new()),
            Err(_) => match self.read_decoded_retrying(table, block, 8) {
                Ok(d) => {
                    self.read_repairs.set(self.read_repairs.get() + 1);
                    d
                }
                Err(_) => {
                    self.quarantined
                        .borrow_mut()
                        .insert((table.id, block as u32));
                    // Best-effort persistence: if the manifest append
                    // itself fails the quarantine still holds in memory
                    // and reopen rediscovers the bad block.
                    let _ = self.manifest.borrow_mut().append(
                        &self.disk,
                        &[Edit::Quarantine {
                            table: table.id,
                            block: block as u32,
                        }],
                    );
                    return Arc::new(Vec::new());
                }
            },
        };
        self.cache.insert(table.id, block, Arc::clone(&decoded));
        decoded
    }

    /// `None` = key absent from this table; `Some(None)` = tombstoned
    /// here; `Some(Some(v))` = live value.
    fn get_in_table(&self, table: &SsTable, key: &[u8]) -> Option<Option<Vec<u8>>> {
        let b = table.candidate_block(key);
        let blk = self.fetch_block(table, b);
        blk.binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| blk[i].1.clone())
    }

    /// Per-key filter check with [`FilterStats`] accounting; filterless
    /// tables pass through uncounted.
    fn probe_filter(&self, table: &SsTable, key: &[u8]) -> bool {
        if !table.has_filter() {
            return true;
        }
        let mut s = self.filter_stats.get();
        s.probe_passes += 1;
        s.keys_probed += 1;
        self.filter_stats.set(s);
        table.filter_may_contain(key)
    }

    /// Point lookup (Figure 4.3, Get path). The newest version wins: a
    /// tombstone found at any level answers `None` without consulting
    /// older levels.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(slot) = self.mem.get(key) {
            return self.mem_values[slot as usize].clone();
        }
        // Level 0: newest first, overlapping ranges.
        for table in self.levels[0].iter().rev() {
            if table.covers(key) && self.probe_filter(table, key) {
                if let Some(v) = self.get_in_table(table, key) {
                    return v;
                }
            }
        }
        for level in &self.levels[1..] {
            if self.overlapping {
                // Tiered runs overlap: newest-first scan, like L0.
                for table in level.iter().rev() {
                    if table.covers(key) && self.probe_filter(table, key) {
                        if let Some(v) = self.get_in_table(table, key) {
                            return v;
                        }
                    }
                }
            } else {
                let idx = level.partition_point(|t| t.max_key.as_slice() < key);
                if let Some(table) = level.get(idx) {
                    if table.covers(key) && self.probe_filter(table, key) {
                        if let Some(v) = self.get_in_table(table, key) {
                            return v;
                        }
                    }
                }
            }
        }
        None
    }

    /// Resolves the not-yet-answered candidate keys `cand` (indexes into
    /// `keys`) against one table: one batched filter probe over the whole
    /// candidate set, then block fetches shared across survivors that are
    /// sorted into the same block. `out[i]` is written only on a hit
    /// (where a tombstone hit writes `Some(None)`, resolving the key as
    /// deleted).
    fn multi_get_in_table(
        &self,
        table: &SsTable,
        keys: &[&[u8]],
        cand: &[u32],
        out: &mut [Option<Option<Vec<u8>>>],
    ) {
        let mut survivors: Vec<u32>;
        if table.has_filter() {
            let probe: Vec<&[u8]> = cand.iter().map(|&i| keys[i as usize]).collect();
            let bits = table.filter_may_contain_batch(&probe);
            let mut s = self.filter_stats.get();
            s.probe_passes += 1;
            s.keys_probed += probe.len() as u64;
            self.filter_stats.set(s);
            survivors = cand
                .iter()
                .enumerate()
                .filter(|&(j, _)| bits.get(j))
                .map(|(_, &i)| i)
                .collect();
        } else {
            survivors = cand.to_vec();
        }
        if survivors.is_empty() {
            return;
        }
        // Key order clusters probes of the same data block behind a single
        // fetch — the block-level analogue of the sorted-batch descent.
        survivors.sort_unstable_by(|&a, &b| keys[a as usize].cmp(keys[b as usize]));
        let mut cur: Option<(usize, Arc<DecodedBlock>)> = None;
        for &i in &survivors {
            let key = keys[i as usize];
            let b = table.candidate_block(key);
            let blk = match &cur {
                Some((cb, blk)) if *cb == b => Arc::clone(blk),
                _ => {
                    let blk = self.fetch_block(table, b);
                    cur = Some((b, Arc::clone(&blk)));
                    blk
                }
            };
            if let Ok(pos) = blk.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                out[i as usize] = Some(blk[pos].1.clone());
            }
        }
    }

    /// Batched point lookup: one `Option<value>` per key, in input order,
    /// each identical to what [`Db::get`] returns for that key.
    ///
    /// The batch walks the same newest-to-oldest path as `get`, but per
    /// *table* instead of per key: one `may_contain_batch` filter pass over
    /// every still-unresolved candidate key, then shared block fetches over
    /// the survivors. Keys answered by a newer level are dropped from the
    /// batch before older tables are consulted (the short-circuit a per-key
    /// loop gets for free).
    pub fn multi_get(&self, keys: &[&[u8]]) -> Vec<Option<Vec<u8>>> {
        // Inner `Option` is the resolution (`Some(None)` = tombstoned);
        // flattened to the public shape at the end.
        let mut out: Vec<Option<Option<Vec<u8>>>> = vec![None; keys.len()];
        let mut unresolved: Vec<u32> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            if let Some(slot) = self.mem.get(key) {
                out[i] = Some(self.mem_values[slot as usize].clone());
            } else {
                unresolved.push(i as u32);
            }
        }
        // Level 0: newest first; tables overlap, so every unresolved key
        // covered by the table is a candidate.
        for table in self.levels[0].iter().rev() {
            if unresolved.is_empty() {
                break;
            }
            let cand: Vec<u32> = unresolved
                .iter()
                .copied()
                .filter(|&i| table.covers(keys[i as usize]))
                .collect();
            if cand.is_empty() {
                continue;
            }
            self.multi_get_in_table(table, keys, &cand, &mut out);
            unresolved.retain(|&i| out[i as usize].is_none());
        }
        // Levels >= 1. Leveled levels are disjoint: group unresolved keys
        // by the one table whose range can hold them, then batch once per
        // table. Tiered runs overlap: newest-first table walk, like L0.
        for level in &self.levels[1..] {
            if unresolved.is_empty() {
                break;
            }
            if self.overlapping {
                for table in level.iter().rev() {
                    if unresolved.is_empty() {
                        break;
                    }
                    let cand: Vec<u32> = unresolved
                        .iter()
                        .copied()
                        .filter(|&i| table.covers(keys[i as usize]))
                        .collect();
                    if cand.is_empty() {
                        continue;
                    }
                    self.multi_get_in_table(table, keys, &cand, &mut out);
                    unresolved.retain(|&i| out[i as usize].is_none());
                }
                continue;
            }
            let mut grouped: Vec<(u32, u32)> = Vec::new(); // (table idx, key idx)
            for &i in &unresolved {
                let key = keys[i as usize];
                let idx = level.partition_point(|t| t.max_key.as_slice() < key);
                if let Some(table) = level.get(idx) {
                    if table.covers(key) {
                        grouped.push((idx as u32, i));
                    }
                }
            }
            grouped.sort_unstable();
            let mut g = 0usize;
            while g < grouped.len() {
                let idx = grouped[g].0;
                let mut e = g + 1;
                while e < grouped.len() && grouped[e].0 == idx {
                    e += 1;
                }
                let cand: Vec<u32> = grouped[g..e].iter().map(|&(_, i)| i).collect();
                self.multi_get_in_table(&level[idx as usize], keys, &cand, &mut out);
                g = e;
            }
            unresolved.retain(|&i| out[i as usize].is_none());
        }
        out.into_iter().map(|r| r.flatten()).collect()
    }

    /// Batched range read: for each `(low, n)` pair, the keys of the `n`
    /// smallest entries `>= low`, resolved through the same SuRF-assisted
    /// path as [`Db::seek`] / [`Db::next_after`] and positionally identical
    /// to a per-range seek-then-next loop. Ranges are walked in sorted-low
    /// order so nearby ranges reuse each other's just-cached blocks, and
    /// the whole batch shares one candidate memo (see [`Db::multi_seek`])
    /// so a table's lower bound resolved for one range answers the next
    /// range's seek without re-probing it.
    pub fn multi_scan(&self, ranges: &[(&[u8], usize)]) -> Vec<Vec<Vec<u8>>> {
        let mut results: Vec<Vec<Vec<u8>>> = ranges.iter().map(|_| Vec::new()).collect();
        let mut order: Vec<u32> = (0..ranges.len() as u32).collect();
        order.sort_by(|&a, &b| ranges[a as usize].0.cmp(ranges[b as usize].0));
        let mut memo = SeekMemo::new();
        for &ri in &order {
            let (low, n) = ranges[ri as usize];
            if n == 0 {
                continue;
            }
            let out = &mut results[ri as usize];
            let mut cur = match self.seek_memoized(low, None, &mut memo) {
                SeekResult::Found { key } => key,
                SeekResult::NotFound => continue,
            };
            loop {
                out.push(cur.clone());
                if out.len() == n {
                    break;
                }
                let succ = memtree_common::key::successor(&cur);
                match self.seek_memoized(&succ, None, &mut memo) {
                    SeekResult::Found { key } => cur = key,
                    SeekResult::NotFound => break,
                }
            }
        }
        results
    }

    /// Exact smallest key `>= lk` within one table (1–2 block reads).
    fn table_lower_bound(&self, table: &SsTable, lk: &[u8]) -> Option<Vec<u8>> {
        let mut b = table.candidate_block(lk);
        while b < table.blocks.len() {
            let blk = self.fetch_block(table, b);
            let i = blk.partition_point(|(k, _)| k.as_slice() < lk);
            if i < blk.len() {
                return Some(blk[i].0.clone());
            }
            b += 1;
        }
        None
    }

    /// Seek (Figure 4.3): smallest key `>= lk`, bounded by `hk` when given.
    ///
    /// Tombstone-aware: the structural candidate (smallest stored entry,
    /// live or deleted) is verified against the merged view and, when it
    /// turns out to be a shadowed delete, the seek restarts past it. The
    /// verification `get` is skipped entirely while the store holds no
    /// tombstones, which keeps the delete-free fast path at its original
    /// I/O cost.
    pub fn seek(&self, lk: &[u8], hk: Option<&[u8]>) -> SeekResult {
        // A fresh memo still helps one seek: the tombstone resolution loop
        // re-queries the same tables with a strictly increasing `lk`.
        self.seek_memoized(lk, hk, &mut SeekMemo::new())
    }

    /// Batched closed-range seek: for each `(lk, hk)` pair the smallest
    /// live key in `[lk, hk)`, exactly as [`Db::seek`] would answer it.
    /// The batch is resolved in sorted-`lk` order against one shared
    /// candidate memo, so SuRF's `moveToNext` candidate pruning and the
    /// candidate block fetches are shared across the batch: a table whose
    /// exact lower bound is already known from an earlier (lower) range
    /// reuses it with zero additional I/O.
    pub fn multi_seek(&self, ranges: &[(&[u8], &[u8])]) -> Vec<SeekResult> {
        let mut out = vec![SeekResult::NotFound; ranges.len()];
        let mut order: Vec<u32> = (0..ranges.len() as u32).collect();
        order.sort_by(|&a, &b| ranges[a as usize].0.cmp(ranges[b as usize].0));
        let mut memo = SeekMemo::new();
        for &ri in &order {
            let (lk, hk) = ranges[ri as usize];
            out[ri as usize] = self.seek_memoized(lk, Some(hk), &mut memo);
        }
        out
    }

    /// [`Db::seek`] resolved against a shared candidate memo.
    fn seek_memoized(&self, lk: &[u8], hk: Option<&[u8]>, memo: &mut SeekMemo) -> SeekResult {
        let mut low = lk.to_vec();
        loop {
            let cand = match self.seek_candidate(&low, hk, memo) {
                SeekResult::Found { key } => key,
                SeekResult::NotFound => return SeekResult::NotFound,
            };
            if !self.any_tombstones() || self.get(&cand).is_some() {
                return SeekResult::Found { key: cand };
            }
            low = memtree_common::key::successor(&cand);
            if let Some(hk) = hk {
                if low.as_slice() >= hk {
                    return SeekResult::NotFound;
                }
            }
        }
    }

    /// Cheap gate for the seek resolution loop: any tombstone anywhere?
    fn any_tombstones(&self) -> bool {
        self.mem_tombstones > 0
            || self.levels.iter().flatten().any(|t| t.num_tombstones > 0)
    }

    /// The structural part of [`Db::seek`]: smallest *stored* key `>= lk`
    /// across memtable and tables, tombstones included.
    ///
    /// `memo` caches each table's resolved exact lower bound as
    /// `(lk₀, candidate)`. A cached entry answers a later query at
    /// `lk ≥ lk₀` for free: `candidate` (when `≥ lk`) is still exact
    /// because the table holds no key in `[lk₀, candidate)` ⊇
    /// `[lk, candidate)`, and a `None` candidate means the table holds no
    /// key `≥ lk₀` at all. Entries that can't answer (`lk < lk₀`, or a
    /// candidate now below `lk`) are re-resolved and overwritten, so the
    /// memo is correct for *any* query order — sorted batches merely make
    /// it effective.
    fn seek_candidate(&self, lk: &[u8], hk: Option<&[u8]>, memo: &mut SeekMemo) -> SeekResult {
        // Memtable candidate is exact and free.
        let mut best_exact: Option<Vec<u8>> = None;
        self.mem.range_from(lk, &mut |k, _| {
            best_exact = Some(k.to_vec());
            false
        });
        // Candidates per table: exact (block fetch) without SuRF, prefix
        // (in-memory moveToNext) with SuRF.
        // (prefix, table_index) pending resolution.
        let mut pending: Vec<(Vec<u8>, usize, usize)> = Vec::new(); // (prefix, level, idx)
        // A table can serve the seek only if its range intersects [lk, hk):
        // entirely-below tables have no key >= lk, and entirely-at-or-above
        // tables (min_key >= hk) have no key < hk — without the second
        // prune, filterless tables above hk paid a block fetch in
        // `table_lower_bound` just to produce an out-of-bound candidate.
        let consider = |t: &SsTable| {
            t.max_key.as_slice() >= lk && hk.is_none_or(|hk| t.min_key.as_slice() < hk)
        };
        let visit = |level: usize,
                     idx: usize,
                     table: &SsTable,
                     pending: &mut Vec<(Vec<u8>, usize, usize)>,
                     best_exact: &mut Option<Vec<u8>>,
                     memo: &mut SeekMemo| {
            if !consider(table) {
                return;
            }
            // Memo hit: an exact lower bound resolved at some lk₀ <= lk
            // answers without touching the filter or a block.
            if let Some((lk0, cached)) = memo.get(&table.id) {
                if lk >= lk0.as_slice() {
                    match cached {
                        None => return, // no key >= lk₀ ⇒ none >= lk
                        Some(c) if c.as_slice() >= lk => {
                            if best_exact.as_deref().is_none_or(|b| c.as_slice() < b) {
                                *best_exact = Some(c.clone());
                            }
                            return;
                        }
                        Some(_) => {} // candidate fell below lk: re-resolve
                    }
                }
            }
            match table.surf() {
                Some(surf) => {
                    let (it, _fp) = surf.move_to_next(lk);
                    if it.valid() {
                        let prefix = it.key().to_vec();
                        // Prune candidates definitely past hk.
                        if let Some(hk) = hk {
                            if prefix.as_slice() >= hk {
                                return;
                            }
                        }
                        pending.push((prefix, level, idx));
                    }
                }
                None => {
                    // No usable range filter: fetch the candidate block.
                    let k = self.table_lower_bound(table, lk);
                    memo.insert(table.id, (lk.to_vec(), k.clone()));
                    if let Some(k) = k {
                        if best_exact.as_deref().is_none_or(|b| k.as_slice() < b) {
                            *best_exact = Some(k);
                        }
                    }
                }
            }
        };
        for (idx, table) in self.levels[0].iter().enumerate() {
            visit(0, idx, table, &mut pending, &mut best_exact, memo);
        }
        for (lvl, level) in self.levels.iter().enumerate().skip(1) {
            if self.overlapping {
                // Tiered runs overlap: any run may hold the lower bound.
                for (idx, table) in level.iter().enumerate() {
                    visit(lvl, idx, table, &mut pending, &mut best_exact, memo);
                }
            } else {
                let idx = level.partition_point(|t| t.max_key.as_slice() < lk);
                if let Some(table) = level.get(idx) {
                    visit(lvl, idx, table, &mut pending, &mut best_exact, memo);
                }
            }
        }
        // Resolve SuRF candidates smallest-prefix-first until the best
        // exact key cannot be beaten.
        pending.sort();
        for (prefix, level, idx) in pending {
            if let Some(best) = &best_exact {
                // A prefix >= best exact key cannot yield a smaller key...
                // unless it is a prefix of `best` (its extension could be
                // smaller), so only prune on strictly-greater non-prefixes.
                if prefix.as_slice() >= best.as_slice() && !best.starts_with(&prefix) {
                    break;
                }
            }
            let table = &self.levels[level][idx];
            let k = self.table_lower_bound(table, lk);
            memo.insert(table.id, (lk.to_vec(), k.clone()));
            if let Some(k) = k {
                if best_exact.as_deref().is_none_or(|b| k.as_slice() < b) {
                    best_exact = Some(k);
                }
            }
        }
        match best_exact {
            Some(k) => {
                if let Some(hk) = hk {
                    if k.as_slice() >= hk {
                        return SeekResult::NotFound;
                    }
                }
                SeekResult::Found { key: k }
            }
            None => SeekResult::NotFound,
        }
    }

    /// `Next` (Figure 4.3): the smallest entry strictly greater than
    /// `key`, bounded by `hk`. As the thesis observes, `Next` rarely
    /// benefits from filters — the relevant blocks are usually already
    /// cached from the preceding `Seek`.
    pub fn next_after(&self, key: &[u8], hk: Option<&[u8]>) -> SeekResult {
        let succ = memtree_common::key::successor(key);
        self.seek(&succ, hk)
    }

    /// Approximate range count (Figure 4.3, Count path). With SuRF the
    /// count is served from the filters (no data I/O); otherwise data
    /// blocks are scanned.
    pub fn count(&self, lk: &[u8], hk: &[u8]) -> usize {
        let mut total = 0usize;
        self.mem.range_from(lk, &mut |k, slot| {
            if k < hk {
                total += usize::from(self.mem_values[slot as usize].is_some());
                true
            } else {
                false
            }
        });
        for level in &self.levels {
            for table in level {
                if !table.overlaps(lk, hk) {
                    continue;
                }
                match table.surf() {
                    Some(surf) => total += surf.count(lk, hk),
                    None => {
                        let mut b = table.candidate_block(lk);
                        'blocks: while b < table.blocks.len() {
                            let blk = self.fetch_block(table, b);
                            let start = blk.partition_point(|(k, _)| k.as_slice() < lk);
                            for (k, v) in &blk[start..] {
                                if k.as_slice() >= hk {
                                    break 'blocks;
                                }
                                total += usize::from(v.is_some());
                            }
                            b += 1;
                        }
                    }
                }
            }
        }
        total
    }

    /// Read-I/O, sync, and degradation statistics (the repair/quarantine
    /// counters are maintained here, not by the raw device).
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            read_repairs: self.read_repairs.get(),
            quarantined_blocks: self.quarantined.borrow().len() as u64,
            transient_retries: self.transient_retries.get(),
            ..self.disk.stats()
        }
    }

    /// Clears I/O counters (between benchmark phases).
    pub fn reset_io_stats(&self) {
        self.disk.reset_stats();
        self.read_repairs.set(0);
        self.transient_retries.set(0);
    }

    /// Tables serving filterless because a block was unreadable or
    /// quarantined when their filter was (re)built at open.
    pub fn degraded_tables(&self) -> u64 {
        self.degraded_tables.get()
    }

    /// The compaction configuration actually in force (after manifest
    /// resolution — may differ from the options passed to [`Db::open`]).
    pub fn compaction_config(&self) -> CompactionConfig {
        self.opts.compaction
    }

    /// Filters attached straight from their persisted image at open — the
    /// O(tables) fast path (one meta-block read, no data-block scan).
    pub fn filters_loaded(&self) -> u64 {
        self.filters_loaded.get()
    }

    /// Filters rebuilt from data blocks at open because no usable image
    /// existed (legacy table, kind mismatch, or corrupt image).
    pub fn filters_rebuilt(&self) -> u64 {
        self.filters_rebuilt.get()
    }

    /// Persisted filter images that failed to decode at open (the table
    /// fell back to a rebuild — slower, never wrong).
    pub fn filter_images_corrupt(&self) -> u64 {
        self.filter_images_corrupt.get()
    }

    /// The live version as the manifest would describe it (used by scrub
    /// to rewrite the manifest after repairs).
    pub(crate) fn current_version(&self) -> Version {
        Version {
            levels: self
                .levels
                .iter()
                .enumerate()
                .map(|(lvl, level)| level.iter().map(|t| t.meta(lvl)).collect())
                .collect(),
            flushed_seq: self.flushed_seq,
            next_table_id: self.next_table_id,
            quarantined: self.quarantined.borrow().iter().copied().collect(),
            policy: Some(self.opts.compaction),
        }
    }

    /// Cache lookup without any disk fallback (scrub repairs bad blocks
    /// from still-cached copies when it can).
    pub(crate) fn cached_block(&self, table: u64, block: usize) -> Option<Arc<DecodedBlock>> {
        self.cache.get(table, block)
    }

    pub(crate) fn memtable_is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Appends the MemTable's entries to `out` in key order, tombstones
    /// included (the snapshot path's freeze step).
    pub(crate) fn memtable_entries(&self, out: &mut Vec<(Vec<u8>, Option<Vec<u8>>)>) {
        out.reserve(self.mem.len());
        self.mem.for_each_sorted(&mut |k, slot| {
            out.push((k.to_vec(), self.mem_values[slot as usize].clone()));
        });
    }

    /// `[min, max]` of the keys currently buffered in the MemTable
    /// (tombstones included — a buffered delete is newer data too).
    pub(crate) fn memtable_range(&self) -> Option<(Vec<u8>, Vec<u8>)> {
        let mut min: Option<Vec<u8>> = None;
        let mut max: Option<Vec<u8>> = None;
        self.mem.for_each_sorted(&mut |k, _| {
            if min.is_none() {
                min = Some(k.to_vec());
            }
            max = Some(k.to_vec());
        });
        min.zip(max)
    }

    /// Truncates the WAL to empty and resets its high-water bookkeeping
    /// (scrub's repair for a damaged log that covers no unflushed data).
    pub(crate) fn discard_wal(&mut self) {
        let bytes = self.disk.file_len(self.wal.file()) as u64;
        self.disk.truncate_file(self.wal.file(), 0);
        self.disk.sync();
        self.wal.note_reset(bytes);
    }

    /// This database's WAL file name in the disk namespace.
    pub(crate) fn wal_file(&self) -> String {
        self.wal.file().to_string()
    }

    /// Marks WAL records up to `seq` acknowledged without issuing a sync
    /// barrier of its own — for a caller that proved durability with one
    /// `disk.sync()` covering several databases' appends (the cross-shard
    /// group commit). Clamped and monotone; a no-op with the WAL off.
    pub fn mark_synced_through(&mut self, seq: u64) {
        if self.opts.wal {
            self.wal.mark_synced(seq);
        }
    }

    /// WAL activity counters (appends, group commits, replay outcome).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Highest sequence number applied to this database, durable or not.
    /// After recovery this is exactly the length of the put-history prefix
    /// the database equals.
    pub fn last_seq(&self) -> u64 {
        self.wal.appended_seq().max(self.flushed_seq)
    }

    /// Highest *acknowledged* sequence number: every put at or below it is
    /// guaranteed to survive a crash.
    pub fn last_synced_seq(&self) -> u64 {
        self.wal.synced_seq().max(self.flushed_seq)
    }

    /// Point-filter probe counters for the Get paths.
    pub fn filter_stats(&self) -> FilterStats {
        self.filter_stats.get()
    }

    /// Clears the filter probe counters (between benchmark phases).
    pub fn reset_filter_stats(&self) {
        self.filter_stats.set(FilterStats::default());
    }

    /// (cache hits, cache misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Total SSTables per level (diagnostics).
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.len()).collect()
    }

    /// Device ids of every live persisted filter-image block (diagnostics;
    /// the corruption oracles bit-rot these to prove safe degradation).
    pub fn filter_block_ids(&self) -> Vec<u32> {
        self.levels.iter().flatten().filter_map(|t| t.filter_block).collect()
    }

    /// Structural invariants the recovery oracle re-checks after every
    /// crash + reopen: per-table geometry is coherent, every referenced
    /// block is allocated, and levels ≥ 1 are sorted and disjoint.
    pub fn check_invariants(&self) -> Result<()> {
        let broken = |detail: String| {
            Err(memtree_common::error::MemtreeError::corruption(
                "lsm-invariant",
                detail,
            ))
        };
        for (lvl, level) in self.levels.iter().enumerate() {
            for t in level {
                if t.fences.len() != t.blocks.len() {
                    return broken(format!("table {}: fences != blocks", t.id));
                }
                if t.fences.is_empty() || t.fences[0] != t.min_key || t.min_key > t.max_key {
                    return broken(format!("table {}: bad key range", t.id));
                }
                if t.fences.windows(2).any(|w| w[0] > w[1]) {
                    return broken(format!("table {}: fences unsorted", t.id));
                }
                if t.blocks.iter().any(|&b| !self.disk.is_live(b)) {
                    return broken(format!("table {}: references freed block", t.id));
                }
            }
            if lvl >= 1 && !self.overlapping {
                for w in level.windows(2) {
                    if w[0].max_key >= w[1].min_key {
                        return broken(format!(
                            "level {lvl}: tables {} and {} overlap",
                            w[0].id, w[1].id
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// In-memory footprint of filters + fence indexes.
    pub fn index_filter_mem(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(|t| t.mem_usage())
            .sum::<usize>()
    }

    /// Total entries across all tables (duplicates across levels counted).
    pub fn table_entries(&self) -> usize {
        self.levels.iter().flatten().map(|t| t.len()).sum()
    }
}

/// Cross-database orphan-block GC: releases every live disk block that no
/// table of any of `dbs` references. The sharded serving layer opens every
/// shard with [`DbOptions::gc_orphans`] `= false` (a single shard must not
/// free its siblings' blocks) and runs this once, afterwards. Returns the
/// number of blocks freed.
pub fn gc_orphans(disk: &SimDisk, dbs: &[&Db]) -> Result<u64> {
    let referenced: HashSet<u32> = dbs
        .iter()
        .flat_map(|db| db.levels.iter().flatten())
        .flat_map(|t| t.blocks.iter().copied().chain(t.filter_block))
        .collect();
    let mut freed = 0u64;
    for id in 0..disk.block_slots() as u32 {
        if disk.is_live(id) && !referenced.contains(&id) {
            disk.release(id)?;
            freed += 1;
        }
    }
    Ok(freed)
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    fn blk(tag: u8) -> Arc<DecodedBlock> {
        Arc::new(vec![(vec![tag], Some(vec![tag; 4]))])
    }

    /// Regression for the duplicate-slot bug: re-inserting an already-
    /// cached `(table, block)` must refresh the existing slot in place —
    /// the old `insert` blindly indexed a new slot, leaving the previous
    /// one in the CLOCK ring unindexed (capacity silently lost, and
    /// `invalidate` could never find it).
    #[test]
    fn reinsert_refreshes_in_place_without_duplicate_slots() {
        let cache = BlockCache::new(4);
        cache.insert(1, 0, blk(1));
        assert_eq!(cache.slot_count(), 1);
        assert!(cache.get(1, 0).is_some());
        // Re-insert the same block (a racing fill after a concurrent
        // invalidate-miss does exactly this).
        cache.insert(1, 0, blk(2));
        assert_eq!(cache.slot_count(), 1, "duplicate slot for re-inserted block");
        let got = cache.get(1, 0).expect("still cached");
        assert_eq!(got[0].0, vec![2u8], "refresh must install the new payload");
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 2), "both inserts count as misses, both gets as hits");
        for s in &cache.stripes {
            s.lock().unwrap().assert_coherent();
        }
        // And invalidate actually removes it — with the duplicate bug the
        // stale twin survived invisibly.
        cache.invalidate(1, 0);
        assert_eq!(cache.slot_count(), 0);
        assert!(cache.get(1, 0).is_none());
    }

    /// Randomized differential test: drive insert/get/invalidate/
    /// invalidate-table schedules against a map model and assert the
    /// index ↔ slot bijection after every operation, across capacities
    /// (0, 1, and the hand-wraparound-prone small sizes).
    #[test]
    fn randomized_cache_vs_model() {
        for capacity in [0usize, 1, 2, 3, 8, 17] {
            for seed in 0..16u64 {
                let cache = BlockCache::new(capacity);
                // Model: what the newest inserted payload for a key is.
                let mut model: HashMap<(u64, usize), u8> = HashMap::new();
                let mut gone: HashSet<(u64, usize)> = HashSet::new();
                let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) + 1;
                for step in 0..400u64 {
                    let r = memtree_common::hash::splitmix64(&mut state);
                    let table = r % 3;
                    let block = (r >> 8) as usize % 5;
                    let tag = (step % 251) as u8;
                    match (r >> 16) % 10 {
                        0..=4 => {
                            cache.insert(table, block, blk(tag));
                            model.insert((table, block), tag);
                            gone.remove(&(table, block));
                        }
                        5..=7 => {
                            if let Some(hit) = cache.get(table, block) {
                                assert!(
                                    !gone.contains(&(table, block)),
                                    "cap {capacity} seed {seed}: invalidated key served"
                                );
                                assert_eq!(
                                    hit[0].0[0], model[&(table, block)],
                                    "cap {capacity} seed {seed}: stale payload"
                                );
                            }
                        }
                        8 => {
                            cache.invalidate(table, block);
                            gone.insert((table, block));
                        }
                        _ => {
                            cache.invalidate_table(table);
                            for b in 0..5 {
                                gone.insert((table, b));
                            }
                        }
                    }
                    for s in &cache.stripes {
                        s.lock().unwrap().assert_coherent();
                    }
                    // Invalidated keys must miss until re-inserted.
                    for &(t, b) in &gone {
                        assert!(
                            cache.get(t, b).is_none(),
                            "cap {capacity} seed {seed}: ghost entry ({t},{b})"
                        );
                    }
                }
                assert!(cache.slot_count() <= capacity.max(1) * 8);
            }
        }
    }

    /// Evict-then-reinsert the same key under a full ring: the CLOCK hand
    /// and index must stay coherent through wraparound after removals.
    #[test]
    fn evict_reinsert_and_hand_wraparound_stay_coherent() {
        let cache = BlockCache::new(1); // one stripe, one slot: maximal churn
        for round in 0..20u64 {
            cache.insert(round % 2, 0, blk(round as u8));
            assert_eq!(cache.slot_count(), 1);
            if round % 3 == 0 {
                cache.invalidate(round % 2, 0);
                assert_eq!(cache.slot_count(), 0);
            }
            for s in &cache.stripes {
                s.lock().unwrap().assert_coherent();
            }
        }
        // Capacity-0 cache: inserts are counted misses, nothing sticks.
        let zero = BlockCache::new(0);
        zero.insert(1, 1, blk(9));
        assert!(zero.get(1, 1).is_none());
        assert_eq!(zero.slot_count(), 0);
        assert_eq!(zero.stats(), (0, 1), "the insert after the miss is what counts it");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    fn db_with(filter: FilterKind, n: u64) -> Db {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 8 << 10,
            filter,
            io_read_latency: Duration::ZERO,
            ..Default::default()
        });
        let mut state = 42u64;
        for _ in 0..n {
            let k = memtree_common::hash::splitmix64(&mut state);
            db.put(&encode_u64(k), &k.to_le_bytes()).unwrap();
        }
        db
    }

    #[test]
    fn put_get_across_levels() {
        for filter in [
            FilterKind::None,
            FilterKind::Bloom(14.0),
            FilterKind::SurfHash(4),
            FilterKind::SurfReal(4),
        ] {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 4 << 10,
                filter,
                ..Default::default()
            });
            for i in 0..5000u64 {
                db.put(&encode_u64(i * 7), &i.to_le_bytes()).unwrap();
            }
            assert!(db.level_sizes().len() > 1, "{filter:?}: no compaction");
            for i in (0..5000u64).step_by(113) {
                assert_eq!(
                    db.get(&encode_u64(i * 7)),
                    Some(i.to_le_bytes().to_vec()),
                    "{filter:?} get {i}"
                );
                assert_eq!(db.get(&encode_u64(i * 7 + 1)), None);
            }
        }
    }

    #[test]
    fn updates_shadow_older_versions() {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 2 << 10,
            ..Default::default()
        });
        for round in 0..5u64 {
            for i in 0..500u64 {
                db.put(&encode_u64(i), &(i + round * 1000).to_le_bytes()).unwrap();
            }
        }
        for i in (0..500u64).step_by(7) {
            assert_eq!(db.get(&encode_u64(i)), Some((i + 4000).to_le_bytes().to_vec()));
        }
    }

    #[test]
    fn seek_open_and_closed() {
        for filter in [FilterKind::None, FilterKind::SurfReal(4)] {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 4 << 10,
                filter,
                ..Default::default()
            });
            for i in 0..3000u64 {
                db.put(&encode_u64(i * 10), b"v").unwrap();
            }
            // Open seek.
            match db.seek(&encode_u64(995), None) {
                SeekResult::Found { key } => {
                    assert_eq!(memtree_common::key::decode_u64(&key), 1000, "{filter:?}")
                }
                SeekResult::NotFound => panic!("{filter:?}: open seek missed"),
            }
            // Closed seek hit.
            assert!(matches!(
                db.seek(&encode_u64(995), Some(&encode_u64(1005))),
                SeekResult::Found { .. }
            ));
            // Closed seek in a gap.
            assert_eq!(
                db.seek(&encode_u64(991), Some(&encode_u64(999))),
                SeekResult::NotFound,
                "{filter:?}"
            );
            // Past the end.
            assert_eq!(db.seek(&encode_u64(40_000), None), SeekResult::NotFound);
        }
    }

    #[test]
    fn surf_saves_io_on_empty_closed_seeks() {
        let build = |filter| {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 4 << 10,
                filter,
                cache_blocks: 0, // isolate I/O counts
                ..Default::default()
            });
            for i in 0..5000u64 {
                db.put(&encode_u64(i << 20), b"value").unwrap();
            }
            db.flush().unwrap();
            db
        };
        let io_for = |db: &Db| {
            db.reset_io_stats();
            let mut state = 7u64;
            for _ in 0..200 {
                let base = (memtree_common::hash::splitmix64(&mut state) % 5000) << 20;
                // Range strictly inside a gap: almost always empty.
                let lo = encode_u64(base + 1000);
                let hi = encode_u64(base + 2000);
                db.seek(&lo, Some(&hi));
            }
            db.io_stats().block_reads
        };
        let none = build(FilterKind::None);
        // 8 real suffix bits reach the byte where these gap queries differ
        // from the stored keys (4 bits cannot refute them — expected FPR
        // behaviour, not a bug).
        let surf = build(FilterKind::SurfReal(8));
        let (io_none, io_surf) = (io_for(&none), io_for(&surf));
        assert!(
            io_surf * 3 < io_none,
            "SuRF should cut empty-seek I/O: {io_surf} vs {io_none}"
        );
    }

    #[test]
    fn count_matches_truth_closely() {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 4 << 10,
            filter: FilterKind::SurfReal(8),
            ..Default::default()
        });
        for i in 0..3000u64 {
            db.put(&encode_u64(i * 2), b"v").unwrap();
        }
        db.flush().unwrap();
        let got = db.count(&encode_u64(1000), &encode_u64(3000));
        let truth = 1000; // keys 1000,1002,...,2998
        assert!(
            got >= truth && got <= truth + 2 * db.level_sizes().iter().sum::<usize>(),
            "count {got} vs truth {truth}"
        );
    }

    #[test]
    fn multi_get_matches_per_key_gets() {
        for filter in [
            FilterKind::None,
            FilterKind::Bloom(14.0),
            FilterKind::SurfHash(8),
            FilterKind::SurfReal(8),
            FilterKind::SurfMixed(4, 4),
        ] {
            let mut db = db_with(filter, 6000);
            // Leave some keys in the memtable.
            for i in 0..50u64 {
                db.put(&encode_u64(i * 3), b"memresident").unwrap();
            }
            // Probes mix stored keys, memtable keys, and misses, shuffled
            // with duplicates.
            let mut probes: Vec<Vec<u8>> = Vec::new();
            let mut state = 42u64; // same seed as db_with: every 3rd is a hit
            for j in 0..3000u64 {
                let k = memtree_common::hash::splitmix64(&mut state);
                probes.push(encode_u64(if j % 3 == 0 { k } else { k ^ 0x5555 }).to_vec());
                if j % 7 == 0 {
                    probes.push(encode_u64(j * 3).to_vec()); // memtable hit
                    probes.push(probes[probes.len() - 2].clone()); // duplicate
                }
            }
            let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            let expect: Vec<Option<Vec<u8>>> = refs.iter().map(|k| db.get(k)).collect();
            for chunk in [1usize, 16, 64, 333, refs.len()] {
                let mut got = Vec::new();
                for c in refs.chunks(chunk) {
                    got.extend(db.multi_get(c));
                }
                assert_eq!(got, expect, "{filter:?} chunk {chunk}");
            }
            assert_eq!(db.multi_get(&[]), Vec::<Option<Vec<u8>>>::new());
        }
    }

    #[test]
    fn batched_gets_save_filter_passes_and_block_reads() {
        // Negative lookups against a cold cache: the batched path must do
        // one filter pass per table (not per key) and share block fetches.
        for filter in [FilterKind::Bloom(14.0), FilterKind::SurfReal(8)] {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 16 << 10,
                filter,
                cache_blocks: 0,
                ..Default::default()
            });
            for i in 0..8000u64 {
                db.put(&encode_u64(i << 12), b"valuevalue").unwrap();
            }
            db.flush().unwrap();
            let probes: Vec<Vec<u8>> = (0..512u64)
                .map(|i| encode_u64((i * 13 % 8000) << 12 | 777).to_vec())
                .collect();
            let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();

            db.reset_io_stats();
            db.reset_filter_stats();
            for k in &refs {
                assert_eq!(db.get(k), None);
            }
            let (per_key_io, per_key_f) = (db.io_stats().block_reads, db.filter_stats());

            db.reset_io_stats();
            db.reset_filter_stats();
            for c in refs.chunks(64) {
                assert!(db.multi_get(c).iter().all(|r| r.is_none()));
            }
            let (batch_io, batch_f) = (db.io_stats().block_reads, db.filter_stats());

            assert_eq!(per_key_f.keys_probed, batch_f.keys_probed, "{filter:?}");
            assert!(
                batch_f.probe_passes < per_key_f.probe_passes,
                "{filter:?}: batched passes {} vs per-key {}",
                batch_f.probe_passes,
                per_key_f.probe_passes
            );
            assert!(
                batch_io <= per_key_io,
                "{filter:?}: batched reads {batch_io} vs per-key {per_key_io}"
            );
        }
    }

    #[test]
    fn multi_scan_matches_per_range_seek_walk() {
        for filter in [FilterKind::None, FilterKind::SurfReal(8)] {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 8 << 10,
                filter,
                ..Default::default()
            });
            for i in 0..4000u64 {
                db.put(&encode_u64(i * 10), b"v").unwrap();
            }
            // Shuffled, overlapping starts; some in gaps, some past the end.
            let mut state = 5u64;
            let mut lows: Vec<Vec<u8>> = (0..120)
                .map(|_| {
                    encode_u64(memtree_common::hash::splitmix64(&mut state) % 45_000).to_vec()
                })
                .collect();
            lows.push(encode_u64(0).to_vec());
            lows.push(encode_u64(u64::MAX).to_vec());
            let ranges: Vec<(&[u8], usize)> = lows
                .iter()
                .enumerate()
                .map(|(i, low)| (low.as_slice(), [0usize, 1, 6, 40][i % 4]))
                .collect();
            let expect: Vec<Vec<Vec<u8>>> = ranges
                .iter()
                .map(|&(low, n)| {
                    let mut one = Vec::new();
                    if n > 0 {
                        let mut cur = match db.seek(low, None) {
                            SeekResult::Found { key } => key,
                            SeekResult::NotFound => return one,
                        };
                        loop {
                            one.push(cur.clone());
                            if one.len() == n {
                                break;
                            }
                            match db.next_after(&cur, None) {
                                SeekResult::Found { key } => cur = key,
                                SeekResult::NotFound => break,
                            }
                        }
                    }
                    one
                })
                .collect();
            assert_eq!(db.multi_scan(&ranges), expect, "{filter:?}");
        }
    }

    #[test]
    fn multi_seek_matches_per_range_seeks_with_less_io() {
        // The batched form must be a pure optimization: identical answers
        // to a per-range seek loop, strictly fewer device reads (the
        // shared memo resolves each table's lower bound once per batch
        // instead of once per range).
        let mut db = Db::new(DbOptions {
            memtable_bytes: 4 << 10,
            cache_blocks: 0, // every fetch hits the device and is counted
            filter: FilterKind::SurfReal(8),
            ..Default::default()
        });
        for i in 0..3000u64 {
            db.put(&encode_u64(i * 8), b"v").unwrap();
        }
        db.flush().unwrap();
        // Clustered, overlapping ranges: nearby lows resolve to the same
        // table lower bounds, which is exactly the sharing the memo sells.
        let mut state = 11u64;
        let bounds: Vec<(Vec<u8>, Vec<u8>)> = (0..64)
            .map(|_| {
                let lo = memtree_common::hash::splitmix64(&mut state) % 2_000;
                (encode_u64(lo).to_vec(), encode_u64(lo + 600).to_vec())
            })
            .collect();
        let ranges: Vec<(&[u8], &[u8])> =
            bounds.iter().map(|(l, h)| (l.as_slice(), h.as_slice())).collect();
        db.reset_io_stats();
        let batched = db.multi_seek(&ranges);
        let batched_reads = db.io_stats().block_reads;
        db.reset_io_stats();
        let looped: Vec<SeekResult> =
            ranges.iter().map(|&(l, h)| db.seek(l, Some(h))).collect();
        let loop_reads = db.io_stats().block_reads;
        assert_eq!(batched, looped);
        assert!(
            batched_reads < loop_reads,
            "batched multi_seek read {batched_reads} blocks, per-range loop {loop_reads}"
        );
    }

    #[test]
    fn closed_seek_skips_tables_above_hk() {
        // Regression: tables entirely at/above `hk` used to pay a block
        // fetch in `table_lower_bound` during closed seeks.
        let mut db = Db::new(DbOptions {
            memtable_bytes: 1 << 20, // flush manually
            l0_tables: 100,          // keep both tables in L0, uncompacted
            filter: FilterKind::None,
            cache_blocks: 0,
            ..Default::default()
        });
        for i in 0..100u64 {
            db.put(&encode_u64(i), b"low-table").unwrap();
        }
        db.flush().unwrap();
        for i in 1000..1100u64 {
            db.put(&encode_u64(i), b"high-table").unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.level_sizes()[0], 2);
        db.reset_io_stats();
        // [200, 300) misses both tables: the low table tops out at 99 and
        // the high table starts at 1000 >= hk.
        assert_eq!(
            db.seek(&encode_u64(200), Some(&encode_u64(300))),
            SeekResult::NotFound
        );
        assert_eq!(
            db.io_stats().block_reads,
            0,
            "closed seek into a gap should touch no blocks"
        );
        // Sanity: the same seek unbounded still finds the high table's min.
        match db.seek(&encode_u64(200), None) {
            SeekResult::Found { key } => {
                assert_eq!(memtree_common::key::decode_u64(&key), 1000)
            }
            SeekResult::NotFound => panic!("open seek should find 1000"),
        }
    }

    #[test]
    fn bloom_cuts_point_io_on_misses() {
        let io_for = |filter| {
            let db = db_with(filter, 10_000);
            db.reset_io_stats();
            let mut state = 999u64;
            for _ in 0..2000 {
                let k = memtree_common::hash::splitmix64(&mut state) | 1;
                db.get(&encode_u64(k)); // miss with overwhelming probability
            }
            db.io_stats().block_reads
        };
        let none = io_for(FilterKind::None);
        let bloom = io_for(FilterKind::Bloom(14.0));
        assert!(
            bloom * 5 < none,
            "bloom {bloom} reads vs none {none} on misses"
        );
    }

    #[test]
    fn flush_reports_stats() {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 1 << 20, // flush manually
            ..Default::default()
        });
        assert_eq!(db.flush().unwrap(), None, "empty flush is a visible no-op");
        for i in 0..500u64 {
            db.put(&encode_u64(i), b"flush-stats-value").unwrap();
        }
        let stats = db.flush().unwrap().expect("non-empty flush");
        assert_eq!(stats.entries, 500);
        assert!(stats.blocks_written > 0);
        assert!(
            stats.wal_bytes_truncated > 500 * 8,
            "WAL held at least the keys: {}",
            stats.wal_bytes_truncated
        );
        assert_eq!(db.wal_stats().reset_bytes, stats.wal_bytes_truncated);
    }

    #[test]
    fn clean_reopen_recovers_everything() {
        for filter in [FilterKind::None, FilterKind::Bloom(10.0), FilterKind::SurfReal(6)] {
            let opts = DbOptions {
                memtable_bytes: 2 << 10,
                filter,
                ..Default::default()
            };
            let mut db = Db::new(opts.clone());
            for i in 0..2000u64 {
                db.put(&encode_u64(i * 3), &i.to_le_bytes()).unwrap();
            }
            db.flush().unwrap(); // close() would flush anyway; pin the shape now
            let sizes = db.level_sizes();
            let disk = db.close().unwrap();
            let db = Db::open(disk, opts).unwrap();
            assert_eq!(db.wal_stats().replayed_records, 0, "{filter:?}: clean shutdown");
            assert_eq!(db.level_sizes(), sizes, "{filter:?}: level shape");
            for i in (0..2000u64).step_by(17) {
                assert_eq!(
                    db.get(&encode_u64(i * 3)),
                    Some(i.to_le_bytes().to_vec()),
                    "{filter:?} key {i}"
                );
                assert_eq!(db.get(&encode_u64(i * 3 + 1)), None, "{filter:?}");
            }
        }
    }

    #[test]
    fn crash_without_sync_keeps_acked_prefix() {
        let opts = DbOptions {
            memtable_bytes: 1 << 20, // everything stays in the memtable
            wal_group_commit: 8,
            ..Default::default()
        };
        let mut db = Db::new(opts.clone());
        for i in 0..100u64 {
            db.put(&encode_u64(i), &i.to_le_bytes()).unwrap();
        }
        let acked = db.last_synced_seq();
        assert_eq!(acked, 96, "group commit of 8 acks in batches");
        let disk = db.disk_handle();
        drop(db);
        disk.crash(None);
        let db = Db::open(disk, opts).unwrap();
        let recovered = db.last_seq();
        assert!(recovered >= acked, "acked writes survive");
        for i in 0..recovered {
            assert_eq!(db.get(&encode_u64(i)), Some(i.to_le_bytes().to_vec()));
        }
        for i in recovered..100 {
            assert_eq!(db.get(&encode_u64(i)), None, "lost suffix is clean");
        }
    }

    #[test]
    fn quarantine_degrades_reads_without_panic() {
        let _g = memtree_faults::test_lock();
        let mut db = Db::new(DbOptions {
            memtable_bytes: 1 << 20,
            cache_blocks: 0,
            ..Default::default()
        });
        for i in 0..2000u64 {
            db.put(&encode_u64(i), b"payload").unwrap();
        }
        db.flush().unwrap();
        // Corrupt every read of one table's first block: first get trips
        // the retry (counted), persistent failure quarantines.
        memtree_faults::enable(7);
        memtree_faults::arm("lsm.disk.read_corrupt", 1.0, None);
        assert_eq!(db.get(&encode_u64(0)), None, "quarantined block reads as absent");
        memtree_faults::disable();
        let s = db.io_stats();
        assert_eq!(s.quarantined_blocks, 1);
        // After disarming, *other* blocks still serve.
        assert_eq!(db.get(&encode_u64(1999)), Some(b"payload".to_vec()));
    }

    #[test]
    fn compaction_rescues_quarantined_block_when_reread_is_clean() {
        let _g = memtree_faults::test_lock();
        let mut db = Db::new(DbOptions {
            memtable_bytes: 1 << 20,
            cache_blocks: 0,
            l0_tables: 1,
            compact_on_flush: false,
            ..Default::default()
        });
        for i in 0..2000u64 {
            db.put(&encode_u64(i), b"payload").unwrap();
        }
        db.flush().unwrap();
        // Wire-level rot on every read quarantines the first block; the
        // stored bytes underneath are untouched.
        memtree_faults::enable(7);
        memtree_faults::arm("lsm.disk.read_corrupt", 1.0, None);
        assert_eq!(db.get(&encode_u64(0)), None);
        memtree_faults::disable();
        assert_eq!(db.io_stats().quarantined_blocks, 1);
        let repairs_before = db.io_stats().read_repairs;
        // Compacting the table re-reads the quarantined block; the clean
        // re-read rescues its entries into the merged output instead of
        // letting the retirement of the input table make the loss
        // permanent.
        for i in 2000..2100u64 {
            db.put(&encode_u64(i), b"payload").unwrap();
        }
        db.flush().unwrap();
        assert!(db.compact_step().unwrap(), "L0 must be over its limit");
        let s = db.io_stats();
        assert_eq!(s.quarantined_blocks, 0, "rescued block leaves quarantine");
        assert!(s.read_repairs > repairs_before, "rescue is counted as a read repair");
        assert_eq!(db.get(&encode_u64(0)), Some(b"payload".to_vec()));
        db.check_invariants().unwrap();
    }

    #[test]
    fn delete_shadows_across_levels_and_reopen() {
        let opts = DbOptions {
            memtable_bytes: 2 << 10,
            ..Default::default()
        };
        let mut db = Db::new(opts.clone());
        for i in 0..1500u64 {
            db.put(&encode_u64(i), b"live").unwrap();
        }
        for i in (0..1500u64).step_by(3) {
            db.delete(&encode_u64(i)).unwrap();
        }
        let check = |db: &Db| {
            for i in 0..150u64 {
                let got = db.get(&encode_u64(i));
                if i % 3 == 0 {
                    assert_eq!(got, None, "deleted key {i} resurrected");
                } else {
                    assert_eq!(got, Some(b"live".to_vec()), "live key {i} lost");
                }
            }
            // Batched gets and tombstone-aware seeks agree with `get`.
            let keys: Vec<Vec<u8>> = (0..60u64).map(|i| encode_u64(i).to_vec()).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let batch = db.multi_get(&refs);
            for (i, got) in batch.iter().enumerate() {
                assert_eq!(*got, db.get(refs[i]), "multi_get key {i}");
            }
            match db.seek(&encode_u64(0), None) {
                SeekResult::Found { key } => {
                    assert_eq!(memtree_common::key::decode_u64(&key), 1, "key 0 is deleted")
                }
                SeekResult::NotFound => panic!("seek found nothing"),
            }
            // A range holding only deleted keys (just key 141, = 3*47).
            assert_eq!(
                db.seek(&encode_u64(141), Some(&encode_u64(142))),
                SeekResult::NotFound
            );
        };
        check(&db);
        let disk = db.close().unwrap();
        let db = Db::open(disk, opts).unwrap();
        check(&db);
    }

    #[test]
    fn tombstones_are_dropped_at_the_bottom_level() {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 1 << 20, // manual flushes
            l0_tables: 0,            // every flush compacts L0 away
            ..Default::default()
        });
        for i in 0..500u64 {
            db.put(&encode_u64(i), b"v").unwrap();
        }
        db.flush().unwrap();
        assert!(db.table_entries() > 0);
        for i in 0..500u64 {
            db.delete(&encode_u64(i)).unwrap();
        }
        // The tombstones merge straight into the bottom level: with
        // nothing deeper to shadow, both the tombstones and the values
        // they deleted must be gone afterwards — and stay gone.
        db.flush().unwrap();
        assert_eq!(db.table_entries(), 0, "bottom-level merge kept dead entries");
        assert_eq!(db.get(&encode_u64(250)), None, "dropping a tombstone resurrected data");
        assert_eq!(db.seek(&encode_u64(0), None), SeekResult::NotFound);
        assert_eq!(db.count(&encode_u64(0), &encode_u64(10_000)), 0);
    }

    #[test]
    fn enospc_flush_is_typed_clean_and_retryable() {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 1 << 20, // manual flushes
            ..Default::default()
        });
        for i in 0..2000u64 {
            db.put(&encode_u64(i), &[0x5a; 64]).unwrap();
        }
        let used = db.disk.used_bytes();
        db.disk.set_capacity_bytes(Some(used + 512));
        let err = db.flush().unwrap_err();
        assert!(
            matches!(err, memtree_common::error::MemtreeError::Enospc { .. }),
            "want Enospc, got {err}"
        );
        // The failed flush left no partial state: usage is back where it
        // was and every write is still served (from the memtable).
        assert_eq!(db.disk.used_bytes(), used, "failed flush leaked blocks");
        assert_eq!(db.get(&encode_u64(7)), Some(vec![0x5a; 64]));
        assert_eq!(db.table_entries(), 0);
        // Space frees up: the retried flush succeeds and data lands.
        db.disk.set_capacity_bytes(None);
        db.flush().unwrap().expect("retried flush flushes");
        assert!(db.table_entries() > 0);
        assert_eq!(db.get(&encode_u64(1999)), Some(vec![0x5a; 64]));
    }

    #[test]
    fn reopen_cycles_keep_manifest_file_count_bounded() {
        let opts = DbOptions {
            memtable_bytes: 4 << 10,
            ..Default::default()
        };
        let mut disk = Db::new(opts.clone()).close().unwrap();
        let mut next = 0u64;
        for _cycle in 0..8 {
            let mut db = Db::open(disk, opts.clone()).unwrap();
            for _ in 0..200 {
                db.put(&encode_u64(next), b"cycle-value").unwrap();
                next += 1;
            }
            disk = db.close().unwrap();
            let manifests = disk
                .file_names()
                .into_iter()
                .filter(|f| f.starts_with("manifest-"))
                .count();
            assert!(manifests <= 2, "manifest generations piling up: {manifests}");
        }
        let db = Db::open(disk, opts).unwrap();
        for i in (0..next).step_by(97) {
            assert_eq!(db.get(&encode_u64(i)), Some(b"cycle-value".to_vec()));
        }
    }

    #[test]
    fn quarantine_persists_across_reopen_and_degrades_filters() {
        let _g = memtree_faults::test_lock();
        let opts = DbOptions {
            memtable_bytes: 1 << 20,
            cache_blocks: 0,
            filter: FilterKind::Bloom(10.0),
            ..Default::default()
        };
        let mut db = Db::new(opts.clone());
        for i in 0..2000u64 {
            db.put(&encode_u64(i), b"payload").unwrap();
        }
        db.flush().unwrap();
        // Persistent corruption on key 0's block: the read path
        // quarantines it and records the quarantine in the manifest.
        memtree_faults::enable(11);
        memtree_faults::arm("lsm.disk.read_corrupt", 1.0, None);
        assert_eq!(db.get(&encode_u64(0)), None);
        memtree_faults::disable();
        assert_eq!(db.io_stats().quarantined_blocks, 1);
        let disk = db.close().unwrap();
        let db = Db::open(disk, opts).unwrap();
        // Reopen trusted the persisted quarantine (no read of the bad
        // block) and attached the persisted filter image anyway: the image
        // covers the quarantined keys too, which only means safe false
        // positives — never a wrong miss. No degraded, no rebuild.
        assert_eq!(db.io_stats().quarantined_blocks, 1);
        assert_eq!(db.degraded_tables(), 0);
        assert_eq!(db.filters_loaded(), 1);
        assert_eq!(db.filters_rebuilt(), 0);
        assert_eq!(db.get(&encode_u64(0)), None, "quarantined data stays absent");
        assert_eq!(db.get(&encode_u64(1999)), Some(b"payload".to_vec()));
    }

    #[test]
    fn transient_read_faults_heal_without_quarantine() {
        let _g = memtree_faults::test_lock();
        let db = {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 1 << 20,
                cache_blocks: 0,
                ..Default::default()
            });
            for i in 0..2000u64 {
                db.put(&encode_u64(i), b"payload").unwrap();
            }
            db.flush().unwrap();
            db
        };
        memtree_faults::enable(23);
        memtree_faults::arm("lsm.disk.read_transient", 0.25, None);
        for i in (0..2000u64).step_by(37) {
            assert_eq!(
                db.get(&encode_u64(i)),
                Some(b"payload".to_vec()),
                "transient fault leaked to a query answer at key {i}"
            );
        }
        memtree_faults::disable();
        let s = db.io_stats();
        assert!(s.transient_retries > 0, "no transient was ever injected");
        assert_eq!(s.quarantined_blocks, 0, "transient faults must never quarantine");
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use memtree_common::key::encode_u64;
    use std::collections::BTreeMap;

    fn tiered_opts() -> DbOptions {
        DbOptions {
            memtable_bytes: 2 << 10,
            block_size: 256,
            cache_blocks: 8,
            filter: FilterKind::Bloom(10.0),
            compaction: CompactionConfig::Tiered { tiers_per_level: 3 },
            ..Default::default()
        }
    }

    /// Random puts/overwrites/deletes against an in-memory model, under
    /// tiered compaction, checked through get, seek-walk, snapshot scan,
    /// and a full close/reopen cycle.
    #[test]
    fn tiered_matches_model_across_reopen() {
        let mut db = Db::new(tiered_opts());
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut state = 7u64;
        for _ in 0..4000 {
            let r = memtree_common::hash::splitmix64(&mut state);
            let k = encode_u64(r % 600);
            if r % 7 == 0 {
                db.delete(&k).unwrap();
                model.remove(&k[..]);
            } else {
                db.put(&k, &r.to_le_bytes()).unwrap();
                model.insert(k.to_vec(), r.to_le_bytes().to_vec());
            }
        }
        db.flush().unwrap();
        assert!(db.overlapping, "tiered config must set overlapping reads");
        assert!(
            db.level_sizes().iter().skip(1).any(|&s| s > 1),
            "workload never produced multiple runs per level: {:?}",
            db.level_sizes()
        );
        let check = |db: &Db| {
            for i in 0..600u64 {
                let k = encode_u64(i);
                assert_eq!(db.get(&k), model.get(&k[..]).cloned(), "key {i}");
            }
            // Seek-walk recovers exactly the model's key sequence.
            let mut low: Vec<u8> = Vec::new();
            let mut walked = Vec::new();
            while let SeekResult::Found { key } = db.seek(&low, None) {
                walked.push(key.clone());
                low = memtree_common::key::successor(&key);
            }
            let want: Vec<Vec<u8>> = model.keys().cloned().collect();
            assert_eq!(walked, want, "seek walk diverged from model");
            let scanned = db.snapshot().scan_from(&[], None, usize::MAX);
            let want: Vec<(Vec<u8>, Vec<u8>)> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            assert_eq!(scanned, want, "snapshot scan diverged from model");
        };
        check(&db);
        db.check_invariants().unwrap();
        let disk = db.close().unwrap();
        let db = Db::open(disk, tiered_opts()).unwrap();
        check(&db);
        db.check_invariants().unwrap();
    }

    /// The manifest's persisted policy wins over mismatched reopen
    /// options: tiered levels opened with leveled options keep running
    /// tiered (and stay correct).
    #[test]
    fn persisted_policy_wins_over_reopen_options() {
        let mut db = Db::new(tiered_opts());
        for i in 0..3000u64 {
            db.put(&encode_u64(i), &i.to_le_bytes()).unwrap();
        }
        db.flush().unwrap();
        let disk = db.close().unwrap();
        let leveled_opts = DbOptions {
            compaction: CompactionConfig::Leveled { fanout: 10 },
            ..tiered_opts()
        };
        let mut db = Db::open(disk, leveled_opts).unwrap();
        assert_eq!(
            db.compaction_config(),
            CompactionConfig::Tiered { tiers_per_level: 3 },
            "manifest policy must override the options"
        );
        assert!(db.overlapping);
        for i in 0..2000u64 {
            db.put(&encode_u64(i), b"round-2").unwrap();
        }
        db.flush().unwrap();
        db.check_invariants().unwrap();
        for i in (0..3000u64).step_by(97) {
            let want = if i < 2000 { b"round-2".to_vec() } else { i.to_le_bytes().to_vec() };
            assert_eq!(db.get(&encode_u64(i)), Some(want), "key {i}");
        }
    }

    /// A bit-rotted filter image is detected by its CRC frame and the
    /// open falls back to rebuilding from data blocks: slower, counted,
    /// never wrong, never filterless.
    #[test]
    fn corrupt_filter_image_falls_back_to_rebuild() {
        let opts = DbOptions {
            memtable_bytes: 1 << 20,
            cache_blocks: 0,
            filter: FilterKind::Bloom(10.0),
            ..Default::default()
        };
        let mut db = Db::new(opts.clone());
        for i in 0..2000u64 {
            db.put(&encode_u64(i), b"payload").unwrap();
        }
        db.flush().unwrap();
        let fb = db.levels[0][0].filter_block.expect("flushed table has a filter image");
        let disk = db.close().unwrap();
        let _ = disk.bitrot_block(fb, 99);
        let db = Db::open(disk, opts).unwrap();
        assert_eq!(db.filter_images_corrupt(), 1);
        assert_eq!(db.filters_loaded(), 0);
        assert_eq!(db.filters_rebuilt(), 1);
        assert_eq!(db.degraded_tables(), 0, "rebuild succeeded, no degrade");
        for i in (0..2000u64).step_by(61) {
            assert_eq!(db.get(&encode_u64(i)), Some(b"payload".to_vec()));
            assert_eq!(db.get(&encode_u64(i + 100_000)), None);
        }
        // The rebuilt filter actually prunes negative lookups.
        db.reset_io_stats();
        for i in 0..200u64 {
            assert_eq!(db.get(&encode_u64(i + 200_000)), None);
        }
        assert!(
            db.io_stats().block_reads < 20,
            "rebuilt filter is not pruning: {} reads",
            db.io_stats().block_reads
        );
    }

    /// Reopen of a persistent-filter database touches O(tables) blocks,
    /// not O(data): one meta read per table plus fixed file overhead.
    #[test]
    fn reopen_with_images_reads_o_tables_blocks() {
        let opts = DbOptions {
            memtable_bytes: 4 << 10,
            block_size: 512,
            cache_blocks: 0,
            filter: FilterKind::Bloom(10.0),
            ..Default::default()
        };
        let mut db = Db::new(opts.clone());
        for i in 0..20_000u64 {
            db.put(&encode_u64(i), &[0x77; 40]).unwrap();
        }
        db.flush().unwrap();
        let tables: u64 = db.level_sizes().iter().map(|&s| s as u64).sum();
        let data_blocks: u64 = db.levels.iter().flatten().map(|t| t.blocks.len() as u64).sum();
        assert!(data_blocks > 4 * tables, "workload too small to distinguish");
        let disk = db.close().unwrap();
        disk.reset_stats();
        let db = Db::open(disk, opts).unwrap();
        assert_eq!(db.filters_loaded(), tables);
        assert_eq!(db.filters_rebuilt(), 0);
        let reads = db.io_stats().block_reads;
        assert!(
            reads <= 2 * tables,
            "open read {reads} blocks for {tables} tables (data blocks: {data_blocks})"
        );
    }
}

#[cfg(test)]
mod diag_tests {
    use super::*;
    use memtree_common::key::encode_u64;

    #[test]
    fn seek_visits_every_level() {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 8 << 10,
            cache_blocks: 0,
            ..Default::default()
        });
        for i in 0..30_000u64 {
            db.put(&encode_u64(i * 64), b"0123456789012345678901234567890123456789").unwrap();
        }
        db.flush().unwrap();
        let sizes = db.level_sizes();
        println!("level sizes: {sizes:?}");
        assert!(sizes.iter().filter(|&&s| s > 0).count() >= 2, "{sizes:?}");
        db.reset_io_stats();
        let n = 200;
        for i in 0..n {
            let k = encode_u64((i * 9973 % 30_000) * 64 + 1);
            db.seek(&k, None);
        }
        let per_op = db.io_stats().block_reads as f64 / n as f64;
        println!("no-filter seek IO/op = {per_op}");
        assert!(per_op > 1.2, "expected multi-level I/O, got {per_op}");
    }
}

#[cfg(test)]
mod next_tests {
    use super::*;
    use memtree_common::key::encode_u64;

    #[test]
    fn next_after_walks_the_key_sequence() {
        for filter in [FilterKind::None, FilterKind::SurfMixed(4, 4)] {
            let mut db = Db::new(DbOptions {
                memtable_bytes: 4 << 10,
                filter,
                ..Default::default()
            });
            for i in 0..2000u64 {
                db.put(&encode_u64(i * 5), b"v").unwrap();
            }
            db.flush().unwrap();
            // Walk forward from 100 via repeated Next.
            let mut cur = encode_u64(100).to_vec();
            for expect in [105u64, 110, 115, 120] {
                match db.next_after(&cur, None) {
                    SeekResult::Found { key } => {
                        assert_eq!(memtree_common::key::decode_u64(&key), expect, "{filter:?}");
                        cur = key;
                    }
                    SeekResult::NotFound => panic!("{filter:?}: next missed {expect}"),
                }
            }
            // Bounded Next stops at hk.
            assert_eq!(
                db.next_after(&encode_u64(120), Some(&encode_u64(125))),
                SeekResult::NotFound
            );
            assert_eq!(db.next_after(&encode_u64(5 * 1999), None), SeekResult::NotFound);
        }
    }
}
