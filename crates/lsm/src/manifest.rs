//! The manifest: a CRC-framed log of version edits plus an atomically
//! swapped CURRENT pointer, in the image of RocksDB's MANIFEST/CURRENT
//! pair.
//!
//! Every durable change to the level structure is one **transaction**: a
//! batch of [`Edit`]s serialized into a *single* frame (the codec from
//! [`crate::wal`]) and appended to the active manifest file, then synced.
//! One frame per transaction is what makes compaction swaps atomic — a
//! torn append drops the whole `remove-victims + add-outputs` batch, never
//! half of it.
//!
//! `CURRENT` is a one-frame file naming the active manifest. It is only
//! rewritten via [`SimDisk::write_file_atomic`] (the `rename(2)` model),
//! so recovery always finds either the old or the new manifest — both
//! valid, because manifest files are never mutated after rotation.
//! Rotation happens at open: recovery snapshots the reconstructed version
//! into a fresh manifest file, syncs it, and only then swaps CURRENT.
//!
//! Edits:
//!
//! * `AddTable` — full table metadata (level, block ids, fences, key
//!   range), enough to reconstruct an [`SsTable`](crate::SsTable) without
//!   reading data blocks (filters are rebuilt separately);
//! * `RemoveTable` — a compaction victim leaves the version;
//! * `FlushSeq` — the WAL high-water mark: replay skips records at or
//!   below it. Appended in the *same transaction* as the flush's
//!   `AddTable`, so the mark moves atomically with the table becoming
//!   durable (never before).

use crate::compaction::CompactionConfig;
use crate::disk::SimDisk;
use crate::wal::{decode_frames, decode_single, encode_frame, encode_single};
use memtree_common::error::{MemtreeError, Result};
use memtree_faults::fail_point;

/// File-namespace name of the CURRENT pointer (default, un-namespaced).
pub(crate) const CURRENT_FILE: &str = "CURRENT";

/// CURRENT file name for a database namespace (`""` = the default
/// `CURRENT`). Namespaces let several databases — e.g. the shards of a
/// sharded serving layer — share one [`SimDisk`] file namespace, each with
/// its own CURRENT/manifest chain.
pub(crate) fn current_file_name(namespace: &str) -> String {
    format!("{namespace}{CURRENT_FILE}")
}

/// Reconstructable SSTable metadata, as recorded in `AddTable` edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TableMeta {
    pub level: usize,
    pub id: u64,
    /// Disk block ids in key order.
    pub blocks: Vec<u32>,
    /// First key of each block; `fences[0]` is the table's min key.
    pub fences: Vec<Vec<u8>>,
    pub max_key: Vec<u8>,
    /// Disk block holding the table's persisted filter image, when one
    /// was written (`None` for filterless tables and for records written
    /// by builds that predate the image format).
    pub filter_block: Option<u32>,
    pub num_entries: usize,
    /// Delete tombstones among `num_entries` (tombstone-free tables skip
    /// tombstone resolution on reads).
    pub num_tombstones: usize,
}

/// One version edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Edit {
    AddTable(TableMeta),
    RemoveTable { id: u64 },
    FlushSeq { seq: u64 },
    /// Block `table.blocks[block]` failed validation persistently; readers
    /// must not re-read it. Only `Db::scrub` emits the inverse edit.
    Quarantine { table: u64, block: u32 },
    /// The block validated clean again (bit rot healed / scrub verified).
    Unquarantine { table: u64, block: u32 },
    /// The compaction policy that shapes this database's levels. Appended
    /// once at creation and carried forward by every rotation snapshot;
    /// on reopen it wins over the options' policy.
    Policy(CompactionConfig),
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(MemtreeError::corruption(
                "manifest",
                format!("edit truncated at byte {}", self.at),
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

impl Edit {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Edit::AddTable(m) => {
                // Tag 6 is tag 1 plus the filter-block pointer; tag 1 is
                // still decoded for manifests written before filter
                // images existed.
                out.push(6);
                out.extend_from_slice(&(m.level as u32).to_le_bytes());
                out.extend_from_slice(&m.id.to_le_bytes());
                out.extend_from_slice(&(m.num_entries as u64).to_le_bytes());
                out.extend_from_slice(&(m.num_tombstones as u64).to_le_bytes());
                out.extend_from_slice(&(m.blocks.len() as u32).to_le_bytes());
                for b in &m.blocks {
                    out.extend_from_slice(&b.to_le_bytes());
                }
                for f in &m.fences {
                    put_bytes(out, f);
                }
                put_bytes(out, &m.max_key);
                match m.filter_block {
                    Some(fb) => {
                        out.push(1);
                        out.extend_from_slice(&fb.to_le_bytes());
                    }
                    None => out.push(0),
                }
            }
            Edit::RemoveTable { id } => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
            }
            Edit::FlushSeq { seq } => {
                out.push(3);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            Edit::Quarantine { table, block } => {
                out.push(4);
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&block.to_le_bytes());
            }
            Edit::Unquarantine { table, block } => {
                out.push(5);
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&block.to_le_bytes());
            }
            Edit::Policy(cfg) => {
                let (kind, param) = cfg.encode();
                out.push(7);
                out.push(kind);
                out.extend_from_slice(&param.to_le_bytes());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Edit> {
        let tag = r.u8()?;
        match tag {
            1 | 6 => {
                let level = r.u32()? as usize;
                let id = r.u64()?;
                let num_entries = r.u64()? as usize;
                let num_tombstones = r.u64()? as usize;
                let nblocks = r.u32()? as usize;
                let mut blocks = Vec::with_capacity(nblocks);
                for _ in 0..nblocks {
                    blocks.push(r.u32()?);
                }
                let mut fences = Vec::with_capacity(nblocks);
                for _ in 0..nblocks {
                    fences.push(r.bytes()?);
                }
                let max_key = r.bytes()?;
                // Tag 1 predates persisted filter images: no pointer.
                let filter_block = if tag == 6 {
                    match r.u8()? {
                        0 => None,
                        1 => Some(r.u32()?),
                        f => {
                            return Err(MemtreeError::corruption(
                                "manifest",
                                format!("bad filter-block presence flag {f}"),
                            ))
                        }
                    }
                } else {
                    None
                };
                if nblocks == 0 {
                    return Err(MemtreeError::corruption("manifest", "table with no blocks"));
                }
                if num_tombstones > num_entries {
                    return Err(MemtreeError::corruption(
                        "manifest",
                        "tombstone count exceeds entry count",
                    ));
                }
                Ok(Edit::AddTable(TableMeta {
                    level,
                    id,
                    blocks,
                    fences,
                    max_key,
                    filter_block,
                    num_entries,
                    num_tombstones,
                }))
            }
            2 => Ok(Edit::RemoveTable { id: r.u64()? }),
            3 => Ok(Edit::FlushSeq { seq: r.u64()? }),
            4 => Ok(Edit::Quarantine {
                table: r.u64()?,
                block: r.u32()?,
            }),
            5 => Ok(Edit::Unquarantine {
                table: r.u64()?,
                block: r.u32()?,
            }),
            7 => {
                let kind = r.u8()?;
                let param = r.u32()?;
                Ok(Edit::Policy(CompactionConfig::decode(kind, param)?))
            }
            tag => Err(MemtreeError::corruption(
                "manifest",
                format!("unknown edit tag {tag}"),
            )),
        }
    }
}

/// The level structure a manifest replay reconstructs.
#[derive(Debug, Default)]
pub(crate) struct Version {
    /// `levels[0]` in flush order (newest last); deeper levels as added.
    pub levels: Vec<Vec<TableMeta>>,
    /// WAL records at or below this seq are covered by flushed tables.
    pub flushed_seq: u64,
    /// One past the highest table id ever recorded.
    pub next_table_id: u64,
    /// `(table id, block index)` pairs readers must not re-read; persisted
    /// so a reopened Db skips known-bad blocks without probing them.
    pub quarantined: std::collections::BTreeSet<(u64, u32)>,
    /// The compaction policy recorded for this database (`None` for
    /// manifests written before policies were persisted — the opener
    /// adopts its options' policy and persists it at rotation).
    pub policy: Option<CompactionConfig>,
}

impl Version {
    fn apply(&mut self, edit: Edit) -> Result<()> {
        match edit {
            Edit::AddTable(meta) => {
                while self.levels.len() <= meta.level {
                    self.levels.push(Vec::new());
                }
                self.next_table_id = self.next_table_id.max(meta.id + 1);
                self.levels[meta.level].push(meta);
            }
            Edit::RemoveTable { id } => {
                let mut found = false;
                for level in &mut self.levels {
                    let before = level.len();
                    level.retain(|t| t.id != id);
                    found |= level.len() != before;
                }
                if !found {
                    return Err(MemtreeError::corruption(
                        "manifest",
                        format!("remove of unknown table {id}"),
                    ));
                }
                // Quarantine entries die with their table. A rewrite that
                // reuses the id (Remove + Add in one txn) re-appends
                // Quarantine edits for still-bad blocks in that same txn.
                self.quarantined.retain(|&(t, _)| t != id);
            }
            Edit::FlushSeq { seq } => self.flushed_seq = self.flushed_seq.max(seq),
            Edit::Quarantine { table, block } => {
                self.quarantined.insert((table, block));
            }
            Edit::Unquarantine { table, block } => {
                self.quarantined.remove(&(table, block));
            }
            Edit::Policy(cfg) => self.policy = Some(cfg),
        }
        Ok(())
    }

    /// Edits that recreate this version verbatim (the rotation snapshot).
    fn snapshot_edits(&self) -> Vec<Edit> {
        let mut edits = Vec::new();
        if let Some(cfg) = self.policy {
            edits.push(Edit::Policy(cfg));
        }
        for level in &self.levels {
            for meta in level {
                edits.push(Edit::AddTable(meta.clone()));
            }
        }
        for &(table, block) in &self.quarantined {
            edits.push(Edit::Quarantine { table, block });
        }
        edits.push(Edit::FlushSeq {
            seq: self.flushed_seq,
        });
        edits
    }
}

/// The active manifest file and its append state.
pub(crate) struct Manifest {
    /// File-name namespace prefix (`""` for a standalone database).
    namespace: String,
    /// Active manifest file name (`{ns}manifest-N`).
    file: String,
    /// Next transaction frame sequence number.
    next_txn: u64,
    /// Transactions appended since open (diagnostics).
    pub appended_txns: u64,
}

impl Manifest {
    /// Opens the manifest pointed to by `{namespace}CURRENT`, replaying
    /// its edits into a [`Version`]. A missing/empty CURRENT initializes a
    /// fresh database (`{ns}manifest-1` + CURRENT, synced). The returned
    /// bool is true for that fresh-initialization case.
    pub fn open(disk: &SimDisk, namespace: &str) -> Result<(Manifest, Version, bool)> {
        let current_name = current_file_name(namespace);
        let current = disk.read_file(&current_name);
        if current.is_empty() {
            let manifest = Manifest {
                namespace: namespace.to_string(),
                file: format!("{namespace}manifest-1"),
                next_txn: 1,
                appended_txns: 0,
            };
            fail_point!("lsm.current.swap");
            disk.write_file_atomic(&current_name, &encode_single(manifest.file.as_bytes()))?;
            disk.sync();
            return Ok((manifest, Version::default(), true));
        }
        let name_bytes = decode_single(&current, "manifest-current")?;
        let file = String::from_utf8(name_bytes).map_err(|_| {
            MemtreeError::corruption("manifest-current", "non-utf8 manifest name")
        })?;
        let log_buf = disk.read_file(&file);
        let log = decode_frames(&log_buf, "manifest")?;
        if log.torn {
            // A torn last transaction is a crash mid-append: the version
            // before it is fully consistent. Drop the torn bytes so later
            // appends start at a frame boundary.
            disk.truncate_file(&file, log.valid_bytes);
            disk.sync();
        }
        let mut version = Version::default();
        let mut last_txn = 0u64;
        for (txn, payload) in log.records {
            if txn <= last_txn {
                return Err(MemtreeError::corruption(
                    "manifest",
                    format!("non-monotonic transaction {txn} after {last_txn}"),
                ));
            }
            last_txn = txn;
            let mut r = Reader { buf: payload, at: 0 };
            while !r.done() {
                version.apply(Edit::decode(&mut r)?)?;
            }
        }
        Ok((
            Manifest {
                namespace: namespace.to_string(),
                file,
                next_txn: last_txn + 1,
                appended_txns: 0,
            },
            version,
            false,
        ))
    }

    /// Appends one transaction (all of `edits` in a single frame) to the
    /// active manifest and syncs it durable.
    pub fn append(&mut self, disk: &SimDisk, edits: &[Edit]) -> Result<()> {
        fail_point!("lsm.manifest.append");
        let mut payload = Vec::new();
        for e in edits {
            e.encode(&mut payload);
        }
        disk.append(&self.file, &encode_frame(self.next_txn, &payload))?;
        fail_point!("lsm.manifest.sync");
        disk.sync();
        self.next_txn += 1;
        self.appended_txns += 1;
        Ok(())
    }

    /// Rotates to a fresh manifest file holding a one-transaction snapshot
    /// of `version`, then swaps CURRENT to it. Crashing anywhere in here
    /// leaves CURRENT on the old, still-valid manifest.
    pub fn rotate(&mut self, disk: &SimDisk, version: &Version) -> Result<()> {
        let prefix = format!("{}manifest-", self.namespace);
        let n: u64 = self
            .file
            .strip_prefix(&prefix)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                MemtreeError::corruption("manifest", format!("bad manifest name {}", self.file))
            })?;
        let next_file = format!("{prefix}{}", n + 1);
        fail_point!("lsm.manifest.rotate");
        let mut payload = Vec::new();
        for e in version.snapshot_edits() {
            e.encode(&mut payload);
        }
        // Replace, never append: a rotation that died after writing this
        // file (but before the CURRENT swap) left a frame here, and a
        // retried rotation reuses the same name — appending would stack
        // two txn-1 frames and poison the next open.
        disk.write_file_atomic(&next_file, &encode_frame(1, &payload))?;
        disk.sync();
        fail_point!("lsm.current.swap");
        disk.write_file_atomic(
            &current_file_name(&self.namespace),
            &encode_single(next_file.as_bytes()),
        )?;
        disk.sync();
        self.file = next_file;
        self.next_txn = 2;
        // GC: once CURRENT durably points at generation n+1, every older
        // same-namespace manifest-K is dead — without this they accumulate
        // forever. Other namespaces' chains (sibling shards on a shared
        // disk) are untouched. A crash between the swap and these removals
        // only re-runs the GC at the next rotation (removal is idempotent).
        for f in disk.file_names() {
            if let Some(k) = f.strip_prefix(&prefix).and_then(|s| s.parse::<u64>().ok()) {
                if k <= n {
                    disk.remove_file(&f);
                }
            }
        }
        disk.sync();
        Ok(())
    }

    /// Active manifest file name.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// This manifest chain's CURRENT pointer file name.
    pub fn current_file(&self) -> String {
        current_file_name(&self.namespace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn meta(level: usize, id: u64, lo: u8, hi: u8) -> TableMeta {
        TableMeta {
            level,
            id,
            blocks: vec![id as u32 * 10, id as u32 * 10 + 1],
            fences: vec![vec![lo], vec![lo + 1]],
            max_key: vec![hi],
            filter_block: Some(id as u32 * 10 + 9),
            num_entries: 7,
            num_tombstones: 1,
        }
    }

    #[test]
    fn legacy_tag1_add_table_decodes_without_filter_block() {
        // A pre-image-format AddTable frame: tag 1, no filter pointer.
        let m = meta(0, 3, 10, 20);
        let mut legacy = vec![1u8];
        legacy.extend_from_slice(&(m.level as u32).to_le_bytes());
        legacy.extend_from_slice(&m.id.to_le_bytes());
        legacy.extend_from_slice(&(m.num_entries as u64).to_le_bytes());
        legacy.extend_from_slice(&(m.num_tombstones as u64).to_le_bytes());
        legacy.extend_from_slice(&(m.blocks.len() as u32).to_le_bytes());
        for b in &m.blocks {
            legacy.extend_from_slice(&b.to_le_bytes());
        }
        for f in &m.fences {
            put_bytes(&mut legacy, f);
        }
        put_bytes(&mut legacy, &m.max_key);
        let mut r = Reader { buf: &legacy, at: 0 };
        match Edit::decode(&mut r).unwrap() {
            Edit::AddTable(got) => {
                assert!(r.done());
                assert_eq!(got.filter_block, None, "legacy records carry no image");
                assert_eq!(got.blocks, m.blocks);
                assert_eq!(got.fences, m.fences);
            }
            other => panic!("expected AddTable, got {other:?}"),
        }
    }

    #[test]
    fn policy_edit_roundtrips_and_survives_rotation() {
        let disk = SimDisk::new(Duration::ZERO);
        let (mut m, _, _) = Manifest::open(&disk, "").unwrap();
        m.append(
            &disk,
            &[
                Edit::Policy(CompactionConfig::Tiered { tiers_per_level: 3 }),
                Edit::AddTable(meta(0, 1, 10, 20)),
            ],
        )
        .unwrap();
        let (_, v, _) = Manifest::open(&disk, "").unwrap();
        assert_eq!(v.policy, Some(CompactionConfig::Tiered { tiers_per_level: 3 }));
        m.rotate(&disk, &v).unwrap();
        let (_, v, _) = Manifest::open(&disk, "").unwrap();
        assert_eq!(
            v.policy,
            Some(CompactionConfig::Tiered { tiers_per_level: 3 }),
            "rotation snapshot must carry the policy forward"
        );
        assert_eq!(v.levels[0][0].filter_block, meta(0, 1, 10, 20).filter_block);
    }

    #[test]
    fn edits_roundtrip_through_reopen() {
        let disk = SimDisk::new(Duration::ZERO);
        let (mut m, v, fresh) = Manifest::open(&disk, "").unwrap();
        assert!(fresh && v.levels.is_empty());
        m.append(&disk, &[Edit::AddTable(meta(0, 1, 10, 20)), Edit::FlushSeq { seq: 5 }])
            .unwrap();
        m.append(&disk, &[Edit::AddTable(meta(0, 2, 30, 40)), Edit::FlushSeq { seq: 9 }])
            .unwrap();
        m.append(
            &disk,
            &[
                Edit::RemoveTable { id: 1 },
                Edit::RemoveTable { id: 2 },
                Edit::AddTable(meta(1, 3, 10, 40)),
            ],
        )
        .unwrap();
        let (_, v, fresh) = Manifest::open(&disk, "").unwrap();
        assert!(!fresh);
        assert_eq!(v.flushed_seq, 9);
        assert_eq!(v.next_table_id, 4);
        assert!(v.levels[0].is_empty());
        assert_eq!(v.levels[1], vec![meta(1, 3, 10, 40)]);
    }

    #[test]
    fn torn_compaction_txn_drops_whole_batch() {
        let disk = SimDisk::new(Duration::ZERO);
        let (mut m, _, _) = Manifest::open(&disk, "").unwrap();
        m.append(&disk, &[Edit::AddTable(meta(0, 1, 10, 20))]).unwrap();
        // A compaction transaction that never syncs, torn by the crash.
        m.append(&disk, &[Edit::RemoveTable { id: 1 }, Edit::AddTable(meta(1, 2, 10, 20))])
            .unwrap_or(());
        // Rewind durability: simulate by re-appending unsynced.
        disk.append(m.file(), b"partial-garbage-tail").unwrap();
        disk.crash(Some(3));
        let (_, v, _) = Manifest::open(&disk, "").unwrap();
        // Whichever prefix survived, the version is one of the two
        // transaction boundaries — never a half-applied swap.
        let ids: Vec<u64> = v.levels.iter().flatten().map(|t| t.id).collect();
        assert!(ids == vec![1] || ids == vec![2], "got {ids:?}");
    }

    #[test]
    fn rotation_swaps_current_atomically() {
        let disk = SimDisk::new(Duration::ZERO);
        let (mut m, _, _) = Manifest::open(&disk, "").unwrap();
        m.append(&disk, &[Edit::AddTable(meta(0, 1, 10, 20)), Edit::FlushSeq { seq: 3 }])
            .unwrap();
        let (_, v, _) = Manifest::open(&disk, "").unwrap();
        m.rotate(&disk, &v).unwrap();
        assert_eq!(m.file(), "manifest-2");
        let (m2, v2, _) = Manifest::open(&disk, "").unwrap();
        assert_eq!(m2.file(), "manifest-2");
        assert_eq!(v2.flushed_seq, 3);
        assert_eq!(v2.levels[0], vec![meta(0, 1, 10, 20)]);
    }

    #[test]
    fn rotation_gcs_dead_manifest_generations() {
        let disk = SimDisk::new(Duration::ZERO);
        let (mut m, _, _) = Manifest::open(&disk, "").unwrap();
        m.append(&disk, &[Edit::AddTable(meta(0, 1, 10, 20))]).unwrap();
        for _ in 0..6 {
            let (_, v, _) = Manifest::open(&disk, "").unwrap();
            m.rotate(&disk, &v).unwrap();
        }
        let manifests: Vec<String> = disk
            .file_names()
            .into_iter()
            .filter(|f| f.starts_with("manifest-"))
            .collect();
        assert_eq!(manifests, vec![m.file().to_string()], "only the live generation survives");
        // The surviving state still replays.
        let (_, v, _) = Manifest::open(&disk, "").unwrap();
        assert_eq!(v.levels[0], vec![meta(0, 1, 10, 20)]);
    }

    #[test]
    fn namespaced_chains_coexist_and_gc_only_their_own_generations() {
        let disk = SimDisk::new(Duration::ZERO);
        let (mut m0, _, fresh0) = Manifest::open(&disk, "s0-").unwrap();
        let (mut m1, _, fresh1) = Manifest::open(&disk, "s1-").unwrap();
        assert!(fresh0 && fresh1);
        assert_eq!(m0.file(), "s0-manifest-1");
        assert_eq!(m0.current_file(), "s0-CURRENT");
        m0.append(&disk, &[Edit::AddTable(meta(0, 1, 10, 20))]).unwrap();
        m1.append(&disk, &[Edit::AddTable(meta(0, 7, 30, 40))]).unwrap();
        // Rotate shard 0 several times; shard 1's chain must survive.
        for _ in 0..4 {
            let (_, v, _) = Manifest::open(&disk, "s0-").unwrap();
            m0.rotate(&disk, &v).unwrap();
        }
        let files = disk.file_names();
        assert!(files.contains(&m0.file().to_string()));
        assert!(files.contains(&"s1-manifest-1".to_string()), "sibling GC'd: {files:?}");
        assert_eq!(files.iter().filter(|f| f.starts_with("s0-manifest-")).count(), 1);
        let (_, v0, _) = Manifest::open(&disk, "s0-").unwrap();
        let (_, v1, _) = Manifest::open(&disk, "s1-").unwrap();
        assert_eq!(v0.levels[0][0].id, 1);
        assert_eq!(v1.levels[0][0].id, 7);
    }

    #[test]
    fn quarantine_edits_roundtrip_and_die_with_their_table() {
        let disk = SimDisk::new(Duration::ZERO);
        let (mut m, _, _) = Manifest::open(&disk, "").unwrap();
        m.append(
            &disk,
            &[
                Edit::AddTable(meta(0, 1, 10, 20)),
                Edit::AddTable(meta(1, 2, 10, 20)),
                Edit::Quarantine { table: 1, block: 0 },
                Edit::Quarantine { table: 2, block: 1 },
            ],
        )
        .unwrap();
        let (_, v, _) = Manifest::open(&disk, "").unwrap();
        assert_eq!(
            v.quarantined.iter().copied().collect::<Vec<_>>(),
            vec![(1, 0), (2, 1)]
        );
        // Unquarantine removes one pair; RemoveTable purges the other.
        m.append(
            &disk,
            &[
                Edit::Unquarantine { table: 2, block: 1 },
                Edit::RemoveTable { id: 1 },
            ],
        )
        .unwrap();
        let (_, v, _) = Manifest::open(&disk, "").unwrap();
        assert!(v.quarantined.is_empty(), "got {:?}", v.quarantined);
        // Snapshot rotation preserves quarantine state.
        m.append(&disk, &[Edit::Quarantine { table: 2, block: 0 }]).unwrap();
        let (_, v, _) = Manifest::open(&disk, "").unwrap();
        m.rotate(&disk, &v).unwrap();
        let (_, v, _) = Manifest::open(&disk, "").unwrap();
        assert_eq!(v.quarantined.iter().copied().collect::<Vec<_>>(), vec![(2, 0)]);
    }
}
