//! The write-ahead log and the CRC-framed record codec it shares with the
//! manifest and the SSTable block format.
//!
//! ## Frame format (little-endian)
//!
//! ```text
//! +---------+---------+---------+------------------+
//! | len u32 | seq u64 | crc u32 | payload len bytes|
//! +---------+---------+---------+------------------+
//! ```
//!
//! The CRC32C covers `len`, `seq`, and the payload, so a flipped bit in
//! any header field or payload byte fails validation — there is no input
//! on which a frame decodes to the *wrong* record.
//!
//! ## Torn tail vs. mid-log corruption
//!
//! When a frame at offset `o` fails validation, the decoder must decide
//! between two very different situations:
//!
//! * **torn tail** — a crash cut the last in-flight append short. The
//!   correct response is to truncate at `o` and recover everything before
//!   it (losing only unacknowledged writes);
//! * **mid-log corruption** — a bad frame with valid frames *after* it.
//!   Truncating here would silently drop acknowledged records, so the
//!   decoder returns a typed [`MemtreeError::Corruption`] instead.
//!
//! The two are distinguished by a resync scan: if any byte offset past the
//! failure parses as a valid frame (header fits, CRC matches — a 2⁻³²
//! false-positive rate), the log is corrupt in the middle; otherwise the
//! tail is torn. `crates/lsm/tests/wal_frames.rs` proves the dichotomy
//! exhaustively under single-bit flips.
//!
//! ## Group commit
//!
//! [`Wal::append`] buffers frames into the device write buffer; the log is
//! `sync`ed once every `group_commit` appends (and on demand), so a put is
//! **acknowledged** — guaranteed to survive a crash — only once
//! [`Wal::synced_seq`] reaches its sequence number. This is RocksDB's
//! group commit in miniature: batched syncs amortize the barrier, and the
//! crash oracle checks that only the unsynced suffix may be lost.

use crate::disk::SimDisk;
use memtree_common::crc::crc32c_update;
use memtree_common::error::{MemtreeError, Result};
use memtree_faults::fail_point;

/// File-namespace name of the write-ahead log (default, un-namespaced).
pub(crate) const WAL_FILE: &str = "wal";

/// WAL file name for a database namespace (`""` = the default `wal`).
/// Namespaces let several databases — e.g. the shards of a sharded
/// serving layer — share one [`SimDisk`] file namespace without
/// clobbering each other's logs.
pub(crate) fn wal_file_name(namespace: &str) -> String {
    format!("{namespace}{WAL_FILE}")
}

/// Bytes before a frame's payload.
pub(crate) const FRAME_HEADER: usize = 16;

/// Upper bound a frame may claim for its payload; anything larger is
/// treated as a framing failure (torn or corrupt length field).
const MAX_FRAME_PAYLOAD: usize = 1 << 24;

fn frame_crc(len: u32, seq: u64, payload: &[u8]) -> u32 {
    let mut state = crc32c_update(!0, &len.to_le_bytes());
    state = crc32c_update(state, &seq.to_le_bytes());
    !crc32c_update(state, payload)
}

/// Encodes one `(seq, payload)` record as a CRC frame.
pub(crate) fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&frame_crc(len, seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Tries to parse a frame at `at`; `None` on any validation failure
/// (short header, oversized length, frame past EOF, CRC mismatch).
fn parse_frame_at(buf: &[u8], at: usize) -> Option<(u64, &[u8], usize)> {
    let rest = &buf[at..];
    if rest.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_PAYLOAD || FRAME_HEADER + len > rest.len() {
        return None;
    }
    let seq = u64::from_le_bytes(rest[4..12].try_into().unwrap());
    let crc = u32::from_le_bytes(rest[12..16].try_into().unwrap());
    let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
    if frame_crc(len as u32, seq, payload) != crc {
        return None;
    }
    Some((seq, payload, at + FRAME_HEADER + len))
}

/// Outcome of decoding a frame log. Payloads borrow from the log buffer —
/// replay parses records straight out of the validated frames, with no
/// per-record copy.
#[derive(Debug)]
pub(crate) struct DecodedLog<'a> {
    /// `(seq, payload)` in log order.
    pub records: Vec<(u64, &'a [u8])>,
    /// Bytes up to the end of the last valid frame (the truncation point
    /// when `torn`).
    pub valid_bytes: usize,
    /// True when the log ended in a torn (unparseable, unrecoverable-only-
    /// at-the-tail) write that was cleanly truncated away.
    pub torn: bool,
}

/// Decodes a whole frame log, truncating a torn tail and rejecting
/// mid-log corruption with a typed error (see the module docs for the
/// dichotomy).
pub(crate) fn decode_frames<'a>(buf: &'a [u8], context: &'static str) -> Result<DecodedLog<'a>> {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        match parse_frame_at(buf, at) {
            Some((seq, payload, next)) => {
                records.push((seq, payload));
                at = next;
            }
            None => {
                // Resync scan: a valid frame anywhere past the failure
                // means acknowledged data follows the bad bytes.
                if ((at + 1)..buf.len()).any(|c| parse_frame_at(buf, c).is_some()) {
                    return Err(MemtreeError::corruption(
                        context,
                        format!("unreadable frame at offset {at} with valid frames after it"),
                    ));
                }
                return Ok(DecodedLog {
                    records,
                    valid_bytes: at,
                    torn: true,
                });
            }
        }
    }
    Ok(DecodedLog {
        records,
        valid_bytes: at,
        torn: false,
    })
}

/// Encodes a standalone single-frame value (used for SSTable blocks and
/// the CURRENT pointer, where torn writes must fail validation but no
/// sequence numbering is needed).
pub(crate) fn encode_single(payload: &[u8]) -> Vec<u8> {
    encode_frame(0, payload)
}

/// Decodes a buffer that must contain exactly one valid frame spanning the
/// whole buffer; anything else (short, torn, flipped, trailing bytes) is a
/// typed corruption error. Borrows the payload — consumers parse straight
/// out of the validated frame.
pub(crate) fn decode_single_ref<'a>(buf: &'a [u8], context: &'static str) -> Result<&'a [u8]> {
    match parse_frame_at(buf, 0) {
        Some((_, payload, next)) if next == buf.len() => Ok(payload),
        Some(_) => Err(MemtreeError::corruption(context, "trailing bytes after frame")),
        None => Err(MemtreeError::corruption(context, "invalid frame")),
    }
}

/// Owned-copy form of [`decode_single_ref`], for callers that outlive the
/// input buffer.
pub(crate) fn decode_single(buf: &[u8], context: &'static str) -> Result<Vec<u8>> {
    decode_single_ref(buf, context).map(<[u8]>::to_vec)
}

/// WAL activity counters, exposed through
/// [`Db::wal_stats`](crate::Db::wal_stats).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub appended_records: u64,
    /// Frame bytes appended since open (WAL write amplification's
    /// numerator).
    pub appended_bytes: u64,
    /// Group-commit syncs issued.
    pub syncs: u64,
    /// Records recovered by replay at open.
    pub replayed_records: u64,
    /// Records skipped at replay because a flushed table already covered
    /// them (their seq was at or below the manifest's flushed-seq mark).
    pub skipped_records: u64,
    /// 1 when replay found and truncated a torn tail.
    pub torn_tail_truncated: u64,
    /// Bytes discarded by flush high-water-mark resets.
    pub reset_bytes: u64,
}

/// A WAL record ready to re-apply at recovery. `value: None` is a delete
/// tombstone.
pub(crate) struct WalRecord {
    pub seq: u64,
    pub key: Vec<u8>,
    pub value: Option<Vec<u8>>,
}

/// Record-kind tags inside a WAL payload (first byte).
const KIND_PUT: u8 = 0;
const KIND_DELETE: u8 = 1;

/// The write-ahead log's in-memory state (the log itself lives on the
/// [`SimDisk`] file namespace).
pub(crate) struct Wal {
    file: String,
    next_seq: u64,
    appended_seq: u64,
    synced_seq: u64,
    unsynced: usize,
    stats: WalStats,
}

impl Wal {
    /// A WAL resuming after `last_durable_seq` (0 on a fresh database),
    /// logging to `file` in the disk's file namespace. Everything at or
    /// below that seq is already durable.
    pub fn new(last_durable_seq: u64, file: String) -> Self {
        Self {
            file,
            next_seq: last_durable_seq + 1,
            appended_seq: last_durable_seq,
            synced_seq: last_durable_seq,
            unsynced: 0,
            stats: WalStats::default(),
        }
    }

    /// The log's file name in the disk namespace.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Allocates the next sequence number without logging (WAL-disabled
    /// configurations still need seqs for flush bookkeeping).
    pub fn bump_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.appended_seq = seq;
        self.synced_seq = seq; // nothing to make durable
        seq
    }

    /// Appends a put or delete record (`value: None` = tombstone),
    /// group-committing once `group_commit` records accumulate. Returns
    /// the record's sequence number. On error (injected fault, ENOSPC)
    /// nothing was appended and the sequence counter is unchanged — the
    /// caller can retry the same operation.
    pub fn append(
        &mut self,
        disk: &SimDisk,
        key: &[u8],
        value: Option<&[u8]>,
        group_commit: usize,
    ) -> Result<u64> {
        fail_point!("lsm.wal.append");
        let seq = self.next_seq;
        let (kind, value) = match value {
            Some(v) => (KIND_PUT, v),
            None => (KIND_DELETE, &[][..]),
        };
        let mut payload = Vec::with_capacity(1 + 4 + key.len() + value.len());
        payload.push(kind);
        payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
        payload.extend_from_slice(key);
        payload.extend_from_slice(value);
        let frame = encode_frame(seq, &payload);
        disk.append(&self.file, &frame)?;
        self.next_seq += 1;
        self.appended_seq = seq;
        self.unsynced += 1;
        self.stats.appended_records += 1;
        self.stats.appended_bytes += frame.len() as u64;
        if self.unsynced >= group_commit.max(1) {
            self.sync(disk)?;
        }
        Ok(seq)
    }

    /// Forces the log durable; every appended record becomes acknowledged.
    pub fn sync(&mut self, disk: &SimDisk) -> Result<()> {
        fail_point!("lsm.wal.sync");
        disk.sync();
        self.synced_seq = self.appended_seq;
        self.unsynced = 0;
        self.stats.syncs += 1;
        Ok(())
    }

    /// Highest sequence number appended (durable or not).
    pub fn appended_seq(&self) -> u64 {
        self.appended_seq
    }

    /// Highest acknowledged (synced) sequence number.
    pub fn synced_seq(&self) -> u64 {
        self.synced_seq
    }

    /// Marks every record up to `seq` acknowledged without issuing a sync
    /// barrier of its own — the caller proved durability externally (a
    /// cross-shard group commit whose one `disk.sync()` barrier covered
    /// this log's appends). Clamped to the appended high-water mark and
    /// monotone: a stale or over-eager mark can never un-acknowledge.
    pub fn mark_synced(&mut self, seq: u64) {
        let capped = seq.min(self.appended_seq);
        if capped > self.synced_seq {
            self.synced_seq = capped;
            self.unsynced = 0;
        }
    }

    /// Counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Records a flush's high-water-mark reset of `bytes` log bytes. The
    /// flush made every appended record durable through its table, so the
    /// whole appended prefix is now acknowledged.
    pub fn note_reset(&mut self, bytes: u64) {
        self.stats.reset_bytes += bytes;
        self.synced_seq = self.appended_seq;
        self.unsynced = 0;
    }

    /// Replays the on-disk log: decodes frames (truncating a torn tail on
    /// disk, so later appends land after valid bytes), drops records a
    /// flushed table already covers, and returns the rest in seq order.
    ///
    /// Mid-log corruption and non-monotonic sequence numbers are typed
    /// errors — a log that replays must be an exact prefix of the put
    /// history.
    pub fn replay(disk: &SimDisk, flushed_seq: u64, file: &str) -> Result<(Self, Vec<WalRecord>)> {
        let buf = disk.read_file(file);
        let decoded = decode_frames(&buf, "wal")?;
        if decoded.torn {
            disk.truncate_file(file, decoded.valid_bytes);
            disk.sync();
        }
        let mut records = Vec::new();
        let mut last_seq = 0u64;
        let mut skipped = 0u64;
        for (seq, payload) in decoded.records {
            if seq <= last_seq {
                return Err(MemtreeError::corruption(
                    "wal",
                    format!("non-monotonic seq {seq} after {last_seq}"),
                ));
            }
            last_seq = seq;
            if payload.len() < 5 {
                return Err(MemtreeError::corruption("wal", "record shorter than header"));
            }
            let kind = payload[0];
            if kind != KIND_PUT && kind != KIND_DELETE {
                return Err(MemtreeError::corruption(
                    "wal",
                    format!("unknown record kind {kind}"),
                ));
            }
            let klen = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
            if 5 + klen > payload.len() {
                return Err(MemtreeError::corruption(
                    "wal",
                    format!("key length {klen} exceeds record"),
                ));
            }
            let value = &payload[5 + klen..];
            if kind == KIND_DELETE && !value.is_empty() {
                return Err(MemtreeError::corruption(
                    "wal",
                    "delete record carries a value",
                ));
            }
            if seq <= flushed_seq {
                skipped += 1;
                continue;
            }
            records.push(WalRecord {
                seq,
                key: payload[5..5 + klen].to_vec(),
                value: (kind == KIND_PUT).then(|| value.to_vec()),
            });
        }
        let mut wal = Self::new(last_seq.max(flushed_seq), file.to_string());
        wal.stats.replayed_records = records.len() as u64;
        wal.stats.skipped_records = skipped;
        wal.stats.torn_tail_truncated = u64::from(decoded.torn);
        Ok((wal, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn frame_roundtrip() {
        for payload in [&b""[..], b"x", &[7u8; 300][..]] {
            let f = encode_frame(42, payload);
            let log = decode_frames(&f, "t").unwrap();
            assert!(!log.torn);
            assert_eq!(log.records, vec![(42, payload)]);
            assert_eq!(decode_single(&encode_single(payload), "t").unwrap(), payload);
        }
    }

    #[test]
    fn torn_tail_truncates_cleanly() {
        let mut log = encode_frame(1, b"first");
        log.extend_from_slice(&encode_frame(2, b"second"));
        let keep = log.len();
        log.extend_from_slice(&encode_frame(3, b"third"));
        for cut in keep..log.len() {
            let d = decode_frames(&log[..cut], "t").unwrap();
            assert_eq!(d.records.len(), 2, "cut at {cut}");
            assert_eq!(d.valid_bytes, keep);
            assert_eq!(d.torn, cut != keep);
        }
    }

    #[test]
    fn mid_log_corruption_is_typed() {
        let mut log = encode_frame(1, b"first-record");
        let second = log.len();
        log.extend_from_slice(&encode_frame(2, b"second-record"));
        log[second + FRAME_HEADER] ^= 0x40; // payload bit of record 2: torn tail
        assert!(decode_frames(&log, "t").unwrap().torn);
        let mut log2 = log.clone();
        log2[second + FRAME_HEADER] ^= 0x40; // restore
        log2[FRAME_HEADER] ^= 0x40; // payload bit of record 1: mid-log
        match decode_frames(&log2, "t") {
            Err(MemtreeError::Corruption { context, .. }) => assert_eq!(context, "t"),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn group_commit_ack_lag() {
        let disk = SimDisk::new(Duration::ZERO);
        let mut wal = Wal::new(0, WAL_FILE.to_string());
        for i in 0..7u64 {
            let seq = wal.append(&disk, b"k", Some(b"v"), 4).unwrap();
            assert_eq!(seq, i + 1);
        }
        // Records 1..=4 were group-committed; 5..=7 are appended only.
        assert_eq!(wal.synced_seq(), 4);
        assert_eq!(wal.appended_seq(), 7);
        disk.crash(None);
        let (rwal, records) = Wal::replay(&disk, 0, WAL_FILE).unwrap();
        assert_eq!(records.len(), 4, "unsynced suffix lost");
        assert_eq!(rwal.synced_seq(), 4);
    }

    #[test]
    fn mark_synced_is_clamped_and_monotone() {
        let disk = SimDisk::new(Duration::ZERO);
        let mut wal = Wal::new(0, WAL_FILE.to_string());
        for _ in 0..5 {
            wal.append(&disk, b"k", Some(b"v"), usize::MAX).unwrap();
        }
        assert_eq!(wal.synced_seq(), 0);
        wal.mark_synced(3);
        assert_eq!(wal.synced_seq(), 3);
        wal.mark_synced(2); // stale mark: no un-acknowledge
        assert_eq!(wal.synced_seq(), 3);
        wal.mark_synced(99); // clamped to the appended high-water mark
        assert_eq!(wal.synced_seq(), 5);
    }

    #[test]
    fn namespaced_wals_share_a_disk_without_clobbering() {
        let disk = SimDisk::new(Duration::ZERO);
        let mut a = Wal::new(0, wal_file_name("s0-"));
        let mut b = Wal::new(0, wal_file_name("s1-"));
        a.append(&disk, b"a", Some(b"va"), 1).unwrap();
        b.append(&disk, b"b", Some(b"vb"), 1).unwrap();
        b.append(&disk, b"b2", Some(b"vb2"), 1).unwrap();
        let (_, ra) = Wal::replay(&disk, 0, "s0-wal").unwrap();
        let (_, rb) = Wal::replay(&disk, 0, "s1-wal").unwrap();
        assert_eq!(ra.len(), 1);
        assert_eq!(ra[0].key, b"a");
        assert_eq!(rb.len(), 2);
        assert_eq!(rb[1].key, b"b2");
    }

    #[test]
    fn replay_skips_flushed_prefix() {
        let disk = SimDisk::new(Duration::ZERO);
        let mut wal = Wal::new(0, WAL_FILE.to_string());
        for _ in 0..6 {
            wal.append(&disk, b"key", Some(b"val"), 1).unwrap();
        }
        let (rwal, records) = Wal::replay(&disk, 4, WAL_FILE).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 5);
        assert_eq!(rwal.stats().skipped_records, 4);
        assert_eq!(rwal.synced_seq(), 6);
    }

    #[test]
    fn delete_records_roundtrip_as_tombstones() {
        let disk = SimDisk::new(Duration::ZERO);
        let mut wal = Wal::new(0, WAL_FILE.to_string());
        wal.append(&disk, b"a", Some(b"v1"), 1).unwrap();
        wal.append(&disk, b"a", None, 1).unwrap();
        wal.append(&disk, b"b", None, 1).unwrap();
        let (_, records) = Wal::replay(&disk, 0, WAL_FILE).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].value.as_deref(), Some(&b"v1"[..]));
        assert_eq!(records[1].value, None, "tombstone decodes as None");
        assert_eq!(records[2].key, b"b");
        assert_eq!(records[2].value, None);
    }

    #[test]
    fn malformed_record_kinds_are_typed_corruption() {
        // Unknown kind byte.
        let disk = SimDisk::new(Duration::ZERO);
        let mut payload = vec![2u8]; // kind 2 does not exist
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(b'k');
        disk.append(WAL_FILE, &encode_frame(1, &payload)).unwrap();
        assert!(matches!(
            Wal::replay(&disk, 0, WAL_FILE),
            Err(MemtreeError::Corruption { .. })
        ));
        // Delete record carrying a value.
        let disk = SimDisk::new(Duration::ZERO);
        let mut payload = vec![1u8];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.push(b'k');
        payload.extend_from_slice(b"stray-value");
        disk.append(WAL_FILE, &encode_frame(1, &payload)).unwrap();
        assert!(matches!(
            Wal::replay(&disk, 0, WAL_FILE),
            Err(MemtreeError::Corruption { .. })
        ));
    }
}
