//! Pluggable compaction policies: leveled (read-optimized) and tiered
//! (write-optimized) shape strategies behind one trait.
//!
//! The policy decides three things the engine used to hard-code:
//!
//! * **when** a level must compact ([`CompactionPolicy::level_limit`]),
//! * **what** to merge ([`CompactionPolicy::pick`] — victims at the
//!   triggering level plus any overlapped tables one level down), and
//! * **how** the output is shaped ([`CompactionPolicy::single_output`] and
//!   [`CompactionPolicy::overlapping_levels`]).
//!
//! **Leveled** keeps the classic invariant: levels ≥ 1 are key-sorted and
//! disjoint, every merge rewrites the overlap below, reads touch at most
//! one table per deep level. **Tiered** trades read amplification for
//! write amplification: a full level merges into a *single* new run
//! appended to the level below, nothing below is rewritten, and deep
//! levels hold overlapping age-ordered runs that reads scan newest-first
//! exactly like L0.
//!
//! The chosen policy is recorded in the manifest (an `Edit::Policy`
//! transaction) so a database reopens under the policy that shaped its
//! levels — opening tiered levels with leveled read paths would violate
//! the disjointness the leveled paths assume.

use crate::sstable::SsTable;
use memtree_common::error::{MemtreeError, Result};
use std::sync::Arc;

/// Which compaction strategy shapes the LSM levels. Chosen in
/// [`DbOptions`](crate::DbOptions), persisted in the manifest; on reopen
/// the persisted policy wins over the options (the on-disk shape was built
/// by it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionConfig {
    /// Key-sorted disjoint levels; level `L ≥ 1` holds `l1_tables ×
    /// fanout^(L-1)` tables. `fanout: 10` reproduces the engine's
    /// original hard-coded behaviour exactly.
    Leveled {
        /// Per-level size multiplier.
        fanout: usize,
    },
    /// Age-ordered overlapping runs; each level holds at most
    /// `tiers_per_level` runs and a full level merges into one new run
    /// appended below (no rewrite of existing runs).
    Tiered {
        /// Max runs a level accumulates before merging down.
        tiers_per_level: usize,
    },
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig::Leveled { fanout: 10 }
    }
}

/// Manifest wire tags for [`CompactionConfig`].
const POLICY_LEVELED: u8 = 0;
const POLICY_TIERED: u8 = 1;

impl CompactionConfig {
    /// `(kind, param)` pair for the manifest's `Policy` edit.
    pub(crate) fn encode(&self) -> (u8, u32) {
        match *self {
            CompactionConfig::Leveled { fanout } => (POLICY_LEVELED, fanout as u32),
            CompactionConfig::Tiered { tiers_per_level } => {
                (POLICY_TIERED, tiers_per_level as u32)
            }
        }
    }

    /// Decodes a manifest `Policy` edit; unknown kinds and degenerate
    /// parameters are typed corruption (a future policy this build cannot
    /// honor must fail the open, not silently misread the levels).
    pub(crate) fn decode(kind: u8, param: u32) -> Result<Self> {
        if param == 0 {
            return Err(MemtreeError::corruption(
                "manifest",
                "compaction policy with zero parameter",
            ));
        }
        match kind {
            POLICY_LEVELED => Ok(CompactionConfig::Leveled {
                fanout: param as usize,
            }),
            POLICY_TIERED => Ok(CompactionConfig::Tiered {
                tiers_per_level: param as usize,
            }),
            k => Err(MemtreeError::corruption(
                "manifest",
                format!("unknown compaction policy kind {k}"),
            )),
        }
    }

    /// The policy object implementing this configuration.
    pub(crate) fn policy(&self) -> Box<dyn CompactionPolicy> {
        match *self {
            CompactionConfig::Leveled { fanout } => Box::new(Leveled { fanout }),
            CompactionConfig::Tiered { tiers_per_level } => Box::new(Tiered { tiers_per_level }),
        }
    }
}

/// What one compaction step merges: victims leave `level`, overlapped
/// tables leave `level + 1`, and the merged output lands at `level + 1`.
pub(crate) struct CompactionJob {
    /// Table ids leaving the triggering level.
    pub victim_ids: Vec<u64>,
    /// Table ids at `level + 1` rewritten into the merge (always empty
    /// under tiered — nothing below is touched).
    pub overlapped_ids: Vec<u64>,
}

/// A compaction strategy. See the module docs for the two shipped shapes.
pub(crate) trait CompactionPolicy: Send + Sync {
    /// Max tables `level` may hold before it must compact.
    fn level_limit(&self, level: usize, l0_tables: usize, l1_tables: usize) -> usize;

    /// True when levels ≥ 1 hold overlapping age-ordered runs (read paths
    /// must scan them newest-first like L0; the disjointness invariant and
    /// the `partition_point` routing do not apply).
    fn overlapping_levels(&self) -> bool;

    /// True when a merge emits one output run instead of re-chunking into
    /// fixed-size tables (tiered: the run count *is* the level size).
    fn single_output(&self) -> bool;

    /// Chooses what to merge at `level`. `levels[level]` is over its
    /// limit; `levels[level + 1]` exists (possibly empty).
    fn pick(&self, levels: &[Vec<Arc<SsTable>>], level: usize) -> CompactionJob;
}

/// The classic leveled strategy (RocksDB-style), exactly as the engine
/// hard-coded it before policies existed.
pub(crate) struct Leveled {
    pub fanout: usize,
}

impl CompactionPolicy for Leveled {
    fn level_limit(&self, level: usize, l0_tables: usize, l1_tables: usize) -> usize {
        if level == 0 {
            l0_tables
        } else {
            l1_tables * self.fanout.max(1).pow(level as u32 - 1)
        }
    }

    fn overlapping_levels(&self) -> bool {
        false
    }

    fn single_output(&self) -> bool {
        false
    }

    fn pick(&self, levels: &[Vec<Arc<SsTable>>], level: usize) -> CompactionJob {
        // Victims: all of L0 (overlapping flushes merge wholesale), or the
        // oldest single table deeper down. The overlap below is rewritten.
        let victim_ids: Vec<u64> = if level == 0 {
            levels[0].iter().map(|t| t.id).collect()
        } else {
            vec![levels[level][0].id]
        };
        let victims: Vec<&Arc<SsTable>> = levels[level]
            .iter()
            .filter(|t| victim_ids.contains(&t.id))
            .collect();
        let lo = victims.iter().map(|t| t.min_key.clone()).min().unwrap();
        let hi = victims.iter().map(|t| t.max_key.clone()).max().unwrap();
        let overlapped_ids = levels[level + 1]
            .iter()
            .filter(|t| t.overlaps(&lo, &hi))
            .map(|t| t.id)
            .collect();
        CompactionJob {
            victim_ids,
            overlapped_ids,
        }
    }
}

/// The tiered strategy: merge a full level into one new run below, never
/// rewriting existing runs.
pub(crate) struct Tiered {
    pub tiers_per_level: usize,
}

impl CompactionPolicy for Tiered {
    fn level_limit(&self, level: usize, l0_tables: usize, _l1_tables: usize) -> usize {
        if level == 0 {
            l0_tables
        } else {
            self.tiers_per_level.max(1)
        }
    }

    fn overlapping_levels(&self) -> bool {
        true
    }

    fn single_output(&self) -> bool {
        true
    }

    fn pick(&self, levels: &[Vec<Arc<SsTable>>], level: usize) -> CompactionJob {
        CompactionJob {
            victim_ids: levels[level].iter().map(|t| t.id).collect(),
            overlapped_ids: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_wire_roundtrip_and_bad_tags() {
        for cfg in [
            CompactionConfig::Leveled { fanout: 10 },
            CompactionConfig::Leveled { fanout: 3 },
            CompactionConfig::Tiered { tiers_per_level: 4 },
        ] {
            let (k, p) = cfg.encode();
            assert_eq!(CompactionConfig::decode(k, p).unwrap(), cfg);
        }
        assert!(CompactionConfig::decode(9, 4).is_err(), "unknown kind");
        assert!(CompactionConfig::decode(0, 0).is_err(), "zero parameter");
    }

    #[test]
    fn leveled_limits_match_the_original_hardcoded_geometry() {
        let p = Leveled { fanout: 10 };
        assert_eq!(p.level_limit(0, 4, 4), 4);
        assert_eq!(p.level_limit(1, 4, 4), 4);
        assert_eq!(p.level_limit(2, 4, 4), 40);
        assert_eq!(p.level_limit(3, 4, 4), 400);
        assert!(!p.overlapping_levels());
    }

    #[test]
    fn tiered_limits_are_flat_runs_per_level() {
        let p = Tiered { tiers_per_level: 3 };
        assert_eq!(p.level_limit(0, 4, 4), 4);
        assert_eq!(p.level_limit(1, 4, 4), 3);
        assert_eq!(p.level_limit(5, 4, 4), 3);
        assert!(p.overlapping_levels());
        assert!(p.single_output());
    }
}
