//! SSTables: immutable runs of sorted key-value blocks with fence indexes
//! and per-table filters.
//!
//! Since the durability PR, every data block is wrapped in the CRC frame
//! from [`crate::wal`]: a torn or bit-flipped block fails validation as a
//! typed [`MemtreeError`] instead of decoding into garbage, and the DB's
//! read path decides whether to retry (read repair) or quarantine.
//! Tables can also be reconstructed from manifest [`TableMeta`] records
//! without touching data blocks; filters are rebuilt separately because
//! they live only in memory.

use crate::db::FilterKind;
use crate::disk::SimDisk;
use crate::manifest::TableMeta;
use crate::wal::{decode_single_ref, encode_single};
use memtree_common::bitset::BitSet;
use memtree_common::error::{MemtreeError, Result};
use memtree_common::mem::{vec_bytes, vec_of_bytes};
use memtree_common::traits::PointFilter;
use memtree_faults::{fail_point, Backoff};
use memtree_filters::BloomFilter;
use memtree_surf::{SuffixConfig, Surf};

/// Filter-image format version (first payload byte inside the CRC frame).
const FILTER_IMAGE_VERSION: u8 = 1;
/// Filter-image kind tags (second payload byte).
const FILTER_KIND_BLOOM: u8 = 0;
const FILTER_KIND_SURF: u8 = 1;

/// A decoded data block: sorted `(key, value)` pairs. `None` values are
/// delete tombstones — they shadow older versions of the key and are
/// dropped only at bottom-level compaction.
pub(crate) type DecodedBlock = Vec<(Vec<u8>, Option<Vec<u8>>)>;

/// Per-table filter. One instance per SSTable, so the inline size gap
/// between the variants is irrelevant.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum TableFilter {
    Bloom(BloomFilter),
    Surf(Surf),
}

/// An immutable sorted table.
#[derive(Debug)]
pub struct SsTable {
    pub(crate) id: u64,
    /// Disk block ids, in key order.
    pub(crate) blocks: Vec<u32>,
    /// First key of each block (the "restarting point" fence index).
    pub(crate) fences: Vec<Vec<u8>>,
    pub(crate) min_key: Vec<u8>,
    pub(crate) max_key: Vec<u8>,
    pub(crate) filter: Option<TableFilter>,
    /// Disk block holding the serialized filter image, when one was
    /// written at build time. Persisted in the manifest so recovery can
    /// load the filter with one block read instead of re-reading every
    /// data block; `None` for filterless tables and tables written before
    /// the image format existed.
    pub(crate) filter_block: Option<u32>,
    pub(crate) num_entries: usize,
    /// Entries that are delete tombstones (`num_tombstones <=
    /// num_entries`). Persisted in the manifest so reopened databases know
    /// whether tombstone resolution is needed without reading blocks.
    pub(crate) num_tombstones: usize,
}

impl SsTable {
    /// Serializes sorted `entries` (tombstones included) into blocks of
    /// ~`block_size` bytes, builds the configured filter, and writes
    /// everything to `disk`'s write buffer (the caller syncs before
    /// publishing the table). On any error — injected block-write fault,
    /// disk write fault, or `Enospc` — every block already allocated for
    /// this table is released before the error propagates, so a failed
    /// build leaves no orphaned allocations and is safely retryable.
    pub(crate) fn build(
        id: u64,
        disk: &SimDisk,
        entries: &[(Vec<u8>, Option<Vec<u8>>)],
        block_size: usize,
        filter: &FilterKind,
    ) -> Result<Self> {
        assert!(!entries.is_empty());
        let mut blocks = Vec::new();
        let mut fences = Vec::new();
        let mut start = 0usize;
        let entry_bytes =
            |e: &(Vec<u8>, Option<Vec<u8>>)| e.0.len() + e.1.as_deref().map_or(0, <[u8]>::len) + 5;
        let mut write_blocks = || -> Result<()> {
            while start < entries.len() {
                let mut bytes = 0usize;
                let mut end = start;
                while end < entries.len()
                    && (end == start || bytes + entry_bytes(&entries[end]) <= block_size)
                {
                    bytes += entry_bytes(&entries[end]);
                    end += 1;
                }
                fail_point!("lsm.table.block_write");
                let block = disk.write(Self::encode_block(&entries[start..end]))?;
                fences.push(entries[start].0.clone());
                blocks.push(block);
                start = end;
            }
            Ok(())
        };
        if let Err(e) = write_blocks() {
            for &b in &blocks {
                let _ = disk.release(b);
            }
            return Err(e);
        }
        // The filter indexes every key, tombstones included: a tombstone
        // must be *found* by reads so it can shadow older versions below.
        let keys: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
        let built = Self::build_filter(&keys, filter);
        // Persist the filter as its own block so reopen can load it with
        // one read. A failed image write unwinds the whole build — same
        // retryability contract as a failed data-block write.
        let filter_block = match &built {
            Some(f) => match disk.write(Self::encode_filter_image(f)) {
                Ok(b) => Some(b),
                Err(e) => {
                    for &b in &blocks {
                        let _ = disk.release(b);
                    }
                    return Err(e);
                }
            },
            None => None,
        };
        Ok(Self {
            id,
            blocks,
            fences,
            min_key: entries[0].0.clone(),
            max_key: entries[entries.len() - 1].0.clone(),
            filter: built,
            filter_block,
            num_entries: entries.len(),
            num_tombstones: entries.iter().filter(|(_, v)| v.is_none()).count(),
        })
    }

    fn build_filter(keys: &[&[u8]], filter: &FilterKind) -> Option<TableFilter> {
        match filter {
            FilterKind::None => None,
            FilterKind::Bloom(bpk) => Some(TableFilter::Bloom(BloomFilter::new(keys, *bpk))),
            FilterKind::SurfHash(bits) => {
                Some(TableFilter::Surf(Surf::new(keys, SuffixConfig::Hash(*bits))))
            }
            FilterKind::SurfReal(bits) => {
                Some(TableFilter::Surf(Surf::new(keys, SuffixConfig::Real(*bits))))
            }
            FilterKind::SurfMixed(h, r) => {
                Some(TableFilter::Surf(Surf::new(keys, SuffixConfig::Mixed(*h, *r))))
            }
        }
    }

    /// Serializes a filter into its persistent image: `version u8 | kind
    /// u8 | body`, wrapped in a CRC frame so a torn or bit-flipped image
    /// fails validation instead of decoding into a wrong filter.
    pub(crate) fn encode_filter_image(filter: &TableFilter) -> Box<[u8]> {
        let mut payload = Vec::new();
        payload.push(FILTER_IMAGE_VERSION);
        match filter {
            TableFilter::Bloom(b) => {
                payload.push(FILTER_KIND_BLOOM);
                b.serialize(&mut payload);
            }
            TableFilter::Surf(s) => {
                payload.push(FILTER_KIND_SURF);
                s.serialize(&mut payload);
            }
        }
        encode_single(&payload).into_boxed_slice()
    }

    /// Validates and decodes a persistent filter image. Every failure —
    /// bad frame, unknown version or kind, or a body the filter codec
    /// rejects — is a typed [`MemtreeError::Corruption`]; the caller falls
    /// back to rebuilding (or degrading to filterless), never to a wrong
    /// filter.
    pub(crate) fn decode_filter_image(raw: &[u8]) -> Result<TableFilter> {
        let payload = decode_single_ref(raw, "filter-image")?;
        let bad = |what: &str| MemtreeError::corruption("filter-image", what.to_string());
        if payload.len() < 2 {
            return Err(bad("image shorter than header"));
        }
        if payload[0] != FILTER_IMAGE_VERSION {
            return Err(bad("unknown image version"));
        }
        match payload[1] {
            FILTER_KIND_BLOOM => Ok(TableFilter::Bloom(BloomFilter::deserialize(&payload[2..])?)),
            FILTER_KIND_SURF => Ok(TableFilter::Surf(Surf::deserialize(&payload[2..])?)),
            _ => Err(bad("unknown filter kind")),
        }
    }

    /// Loads the persisted filter image, if this table has one and it
    /// matches the configured `want` kind. Returns `Ok(true)` when a
    /// filter was attached, `Ok(false)` when there is nothing suitable to
    /// load (no image, filterless configuration, or a kind mismatch — the
    /// caller rebuilds from keys instead). Transient read faults are
    /// retried; a persistent read failure or a corrupt image is a typed
    /// error so the caller can choose rebuild vs degrade.
    pub(crate) fn load_persisted_filter(
        &mut self,
        disk: &SimDisk,
        want: &FilterKind,
    ) -> Result<bool> {
        let Some(block) = self.filter_block else {
            return Ok(false);
        };
        let want_tag = match want {
            FilterKind::None => return Ok(false),
            FilterKind::Bloom(_) => FILTER_KIND_BLOOM,
            FilterKind::SurfHash(_) | FilterKind::SurfReal(_) | FilterKind::SurfMixed(_, _) => {
                FILTER_KIND_SURF
            }
        };
        let mut backoff = Backoff::new(8);
        let decoded = loop {
            match disk.read(block).and_then(|raw| Self::decode_filter_image(&raw)) {
                Ok(f) => break f,
                Err(e) if backoff.retry(&e) => continue,
                Err(e) => return Err(e),
            }
        };
        let got_tag = match &decoded {
            TableFilter::Bloom(_) => FILTER_KIND_BLOOM,
            TableFilter::Surf(_) => FILTER_KIND_SURF,
        };
        if got_tag != want_tag {
            return Ok(false);
        }
        self.filter = Some(decoded);
        Ok(true)
    }

    /// Reconstructs the table from a manifest record (no data I/O; the
    /// filter starts absent and is re-attached by recovery, preferably
    /// from the persisted image block the record points at).
    pub(crate) fn from_meta(meta: TableMeta) -> Self {
        Self {
            id: meta.id,
            min_key: meta.fences.first().cloned().unwrap_or_default(),
            max_key: meta.max_key,
            blocks: meta.blocks,
            fences: meta.fences,
            filter: None,
            filter_block: meta.filter_block,
            num_entries: meta.num_entries,
            num_tombstones: meta.num_tombstones,
        }
    }

    /// The manifest record that reconstructs this table at `level`.
    pub(crate) fn meta(&self, level: usize) -> TableMeta {
        TableMeta {
            level,
            id: self.id,
            blocks: self.blocks.clone(),
            fences: self.fences.clone(),
            max_key: self.max_key.clone(),
            filter_block: self.filter_block,
            num_entries: self.num_entries,
            num_tombstones: self.num_tombstones,
        }
    }

    /// Rebuilds the configured filter from the table's keys (recovery
    /// path; counted block reads).
    pub(crate) fn attach_filter(&mut self, keys: &[&[u8]], filter: &FilterKind) {
        self.filter = Self::build_filter(keys, filter);
    }

    /// Block payload: `n u32 | per-entry (klen u16, vlen u16, flags u8) |
    /// keys | values`, wrapped in a CRC frame. Flags bit 0 marks a delete
    /// tombstone (which must carry an empty value). `pub(crate)` so the
    /// scrub subsystem can re-encode repaired blocks.
    pub(crate) fn encode_block(entries: &[(Vec<u8>, Option<Vec<u8>>)]) -> Box<[u8]> {
        let mut out = Vec::new();
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (k, v) in entries {
            out.extend_from_slice(&(k.len() as u16).to_le_bytes());
            out.extend_from_slice(&(v.as_deref().map_or(0, <[u8]>::len) as u16).to_le_bytes());
            out.push(u8::from(v.is_none()));
        }
        for (k, _) in entries {
            out.extend_from_slice(k);
        }
        for (_, v) in entries {
            if let Some(v) = v {
                out.extend_from_slice(v);
            }
        }
        encode_single(&out).into_boxed_slice()
    }

    /// Validates the CRC frame and decodes the payload. Torn writes,
    /// flipped bits, inconsistent length tables, unknown flags, and
    /// tombstones carrying values are all typed
    /// [`MemtreeError::Corruption`] — never a panic, never a wrong pair.
    pub(crate) fn decode_block(raw: &[u8]) -> Result<DecodedBlock> {
        // Borrow the validated payload — entries are sliced straight out
        // of the frame, so decode makes no intermediate payload copy.
        let raw = decode_single_ref(raw, "sstable-block")?;
        let short = |what: &str| MemtreeError::corruption("sstable-block", what.to_string());
        if raw.len() < 4 {
            return Err(short("payload shorter than entry count"));
        }
        let n = u32::from_le_bytes(raw[0..4].try_into().unwrap()) as usize;
        let mut lens = Vec::with_capacity(n);
        let mut pos = 4;
        if pos + n * 5 > raw.len() {
            return Err(short("length table exceeds payload"));
        }
        for _ in 0..n {
            let kl = u16::from_le_bytes(raw[pos..pos + 2].try_into().unwrap()) as usize;
            let vl = u16::from_le_bytes(raw[pos + 2..pos + 4].try_into().unwrap()) as usize;
            let flags = raw[pos + 4];
            if flags > 1 {
                return Err(short("unknown entry flags"));
            }
            if flags == 1 && vl != 0 {
                return Err(short("tombstone entry carries a value"));
            }
            lens.push((kl, vl, flags == 1));
            pos += 5;
        }
        let ktotal: usize = lens.iter().map(|(k, _, _)| k).sum();
        let vtotal: usize = lens.iter().map(|(_, v, _)| v).sum();
        if pos + ktotal + vtotal != raw.len() {
            return Err(short("entry lengths disagree with payload size"));
        }
        let mut out = Vec::with_capacity(n);
        let mut kpos = pos;
        let mut vpos = pos + ktotal;
        for (kl, vl, tombstone) in lens {
            let value = (!tombstone).then(|| raw[vpos..vpos + vl].to_vec());
            out.push((raw[kpos..kpos + kl].to_vec(), value));
            kpos += kl;
            vpos += vl;
        }
        Ok(out)
    }

    /// Index of the block that may contain `key` (last fence `<= key`).
    pub(crate) fn candidate_block(&self, key: &[u8]) -> usize {
        self.fences
            .partition_point(|f| f.as_slice() <= key)
            .saturating_sub(1)
    }

    /// Does `key` fall within this table's [min, max] range?
    pub(crate) fn covers(&self, key: &[u8]) -> bool {
        self.min_key.as_slice() <= key && key <= self.max_key.as_slice()
    }

    /// Does the table's key range overlap `[lo, hi]`?
    pub(crate) fn overlaps(&self, lo: &[u8], hi: &[u8]) -> bool {
        self.min_key.as_slice() <= hi && lo <= self.max_key.as_slice()
    }

    /// Filter check for point gets; `true` when no filter is attached.
    pub(crate) fn filter_may_contain(&self, key: &[u8]) -> bool {
        match &self.filter {
            None => true,
            Some(TableFilter::Bloom(b)) => b.may_contain(key),
            Some(TableFilter::Surf(s)) => s.may_contain(key),
        }
    }

    /// True when a filter is attached (so a batch probe is worth counting).
    pub(crate) fn has_filter(&self) -> bool {
        self.filter.is_some()
    }

    /// Batched filter check: bit `i` answers `keys[i]`. All-ones when no
    /// filter is attached. SuRF descends the whole batch
    /// level-synchronously; Bloom takes the per-key default loop.
    pub(crate) fn filter_may_contain_batch(&self, keys: &[&[u8]]) -> BitSet {
        match &self.filter {
            None => BitSet::full(keys.len()),
            Some(TableFilter::Bloom(b)) => b.may_contain_batch(keys),
            Some(TableFilter::Surf(s)) => s.may_contain_batch(keys),
        }
    }

    /// The SuRF filter, when configured.
    pub(crate) fn surf(&self) -> Option<&Surf> {
        match &self.filter {
            Some(TableFilter::Surf(s)) => Some(s),
            _ => None,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.num_entries
    }

    /// True when the table holds no entries (never happens post-build).
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// In-memory footprint: fences + filter (blocks live on "disk").
    pub fn mem_usage(&self) -> usize {
        let filter = match &self.filter {
            None => 0,
            Some(TableFilter::Bloom(b)) => b.size_bytes(),
            Some(TableFilter::Surf(s)) => s.size_bytes(),
        };
        vec_bytes(&self.blocks) + vec_of_bytes(&self.fences) + filter
    }

    /// Releases the table's disk blocks (filter image included).
    pub(crate) fn release(&self, disk: &SimDisk) -> Result<()> {
        for &b in &self.blocks {
            disk.release(b)?;
        }
        if let Some(fb) = self.filter_block {
            disk.release(fb)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn entries(n: u64) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        (0..n)
            .map(|i| {
                (
                    memtree_common::key::encode_u64(i * 3).to_vec(),
                    // Every 11th entry is a tombstone, exercising the
                    // flags byte in every block-spanning test.
                    (i % 11 != 10).then(|| vec![i as u8; 32]),
                )
            })
            .collect()
    }

    #[test]
    fn block_roundtrip() {
        let e = entries(100);
        let raw = SsTable::encode_block(&e);
        assert_eq!(SsTable::decode_block(&raw).unwrap(), e);
    }

    #[test]
    fn tombstone_with_value_and_unknown_flags_are_typed() {
        // Hand-craft payloads that the encoder would never emit.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&1u16.to_le_bytes()); // klen
        payload.extend_from_slice(&2u16.to_le_bytes()); // vlen
        payload.push(1); // tombstone flag, but vlen != 0
        payload.push(b'k');
        payload.extend_from_slice(b"vv");
        let framed = encode_single(&payload);
        assert!(SsTable::decode_block(&framed).is_err());

        let mut payload = Vec::new();
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.extend_from_slice(&0u16.to_le_bytes());
        payload.push(7); // unknown flags
        payload.push(b'k');
        let framed = encode_single(&payload);
        assert!(SsTable::decode_block(&framed).is_err());
    }

    #[test]
    fn failed_build_releases_partial_blocks() {
        let _g = memtree_faults::test_lock();
        let e = entries(1000);
        // Injected write fault partway through the build (seeded schedules
        // decide where; every seed must leave zero orphans on failure).
        for seed in 0..16u64 {
            let disk = SimDisk::new(Duration::ZERO);
            memtree_faults::enable(seed);
            memtree_faults::arm("lsm.disk.write_fault", 0.2, Some(1));
            match SsTable::build(1, &disk, &e, 1024, &FilterKind::None) {
                Err(_) => assert_eq!(
                    disk.live_blocks(),
                    0,
                    "seed {seed}: failed build must release every allocated block"
                ),
                Ok(t) => t.release(&disk).unwrap(),
            }
            memtree_faults::disable();
        }

        // ENOSPC path: capacity admits some blocks but not all.
        let disk = SimDisk::new(Duration::ZERO);
        disk.set_capacity_bytes(Some(4096));
        match SsTable::build(3, &disk, &e, 1024, &FilterKind::None) {
            Err(MemtreeError::Enospc { .. }) => {}
            other => panic!("expected Enospc, got {other:?}"),
        }
        assert_eq!(disk.live_blocks(), 0, "no orphaned blocks after ENOSPC");
        assert_eq!(disk.used_bytes(), 0);
    }

    #[test]
    fn torn_and_flipped_blocks_are_typed_errors() {
        let e = entries(40);
        let raw = SsTable::encode_block(&e);
        for cut in 0..raw.len() {
            assert!(
                SsTable::decode_block(&raw[..cut]).is_err(),
                "torn block at {cut} must not decode"
            );
        }
        let mut flipped = raw.to_vec();
        for byte in (0..raw.len()).step_by(7) {
            flipped[byte] ^= 0x10;
            assert!(
                SsTable::decode_block(&flipped).is_err(),
                "flip at {byte} must not decode"
            );
            flipped[byte] ^= 0x10;
        }
    }

    #[test]
    fn build_and_locate() {
        let disk = SimDisk::new(Duration::ZERO);
        let e = entries(1000);
        let t = SsTable::build(1, &disk, &e, 4096, &FilterKind::Bloom(10.0)).unwrap();
        assert!(t.blocks.len() > 5, "should span multiple blocks");
        assert_eq!(t.len(), 1000);
        // Candidate block actually contains the key.
        for probe in [0u64, 999, 1500, 2997] {
            let key = memtree_common::key::encode_u64(probe);
            let b = t.candidate_block(&key);
            let blk = SsTable::decode_block(&disk.read(t.blocks[b]).unwrap()).unwrap();
            if probe % 3 == 0 && probe <= 2997 {
                assert!(
                    blk.iter().any(|(k, _)| k.as_slice() == key),
                    "probe {probe} missing from its candidate block"
                );
            }
        }
        // Filter admits members.
        for i in (0..1000u64).step_by(37) {
            assert!(t.filter_may_contain(&memtree_common::key::encode_u64(i * 3)));
        }
    }

    #[test]
    fn meta_roundtrip_reconstructs_geometry() {
        let disk = SimDisk::new(Duration::ZERO);
        let e = entries(500);
        let t = SsTable::build(7, &disk, &e, 1024, &FilterKind::None).unwrap();
        let r = SsTable::from_meta(t.meta(2));
        assert_eq!(r.id, t.id);
        assert_eq!(r.blocks, t.blocks);
        assert_eq!(r.fences, t.fences);
        assert_eq!(r.min_key, t.min_key);
        assert_eq!(r.max_key, t.max_key);
        assert_eq!(r.num_entries, t.num_entries);
        assert_eq!(r.num_tombstones, t.num_tombstones);
        assert!(t.num_tombstones > 0, "test data should include tombstones");
        assert!(r.filter.is_none());
    }

    #[test]
    fn filter_image_roundtrips_for_every_kind() {
        let disk = SimDisk::new(Duration::ZERO);
        let e = entries(400);
        for kind in [
            FilterKind::Bloom(12.0),
            FilterKind::SurfHash(8),
            FilterKind::SurfReal(4),
            FilterKind::SurfMixed(4, 4),
        ] {
            let t = SsTable::build(1, &disk, &e, 2048, &kind).unwrap();
            let fb = t.filter_block.expect("filtered build writes an image block");
            let raw = disk.read(fb).unwrap();
            let decoded = SsTable::decode_filter_image(&raw).unwrap();
            // The decoded filter answers membership identically.
            let mut clone = SsTable::from_meta(t.meta(1));
            clone.filter = Some(decoded);
            for i in 0..1300u64 {
                let key = memtree_common::key::encode_u64(i);
                assert_eq!(
                    clone.filter_may_contain(&key),
                    t.filter_may_contain(&key),
                    "kind {kind:?} key {i}"
                );
            }
            assert!(clone.load_persisted_filter(&disk, &kind).unwrap());
            t.release(&disk).unwrap();
        }
        assert_eq!(disk.live_blocks(), 0, "release frees the image block too");
    }

    #[test]
    fn semantically_truncated_image_is_typed_not_panic() {
        let disk = SimDisk::new(Duration::ZERO);
        let e = entries(400);
        for kind in [FilterKind::Bloom(12.0), FilterKind::SurfReal(4)] {
            let t = SsTable::build(1, &disk, &e, 2048, &kind).unwrap();
            let raw = disk.read(t.filter_block.unwrap()).unwrap();
            let payload = decode_single_ref(&raw, "t").unwrap();
            // Re-frame progressively shorter payload prefixes: the CRC
            // frame validates, but the body is semantically truncated.
            // Every prefix must decode to a typed error — never a panic,
            // never a wrong filter.
            for cut in 0..payload.len() {
                let reframed = encode_single(&payload[..cut]);
                match SsTable::decode_filter_image(&reframed) {
                    Err(MemtreeError::Corruption { .. }) => {}
                    other => panic!("kind {kind:?} cut {cut}: expected corruption, got {other:?}"),
                }
            }
            t.release(&disk).unwrap();
        }
    }

    #[test]
    fn persisted_filter_kind_mismatch_falls_back_to_rebuild() {
        let disk = SimDisk::new(Duration::ZERO);
        let e = entries(300);
        let t = SsTable::build(1, &disk, &e, 2048, &FilterKind::Bloom(10.0)).unwrap();
        let mut r = SsTable::from_meta(t.meta(1));
        // A Surf configuration must not adopt the persisted Bloom image.
        assert!(!r.load_persisted_filter(&disk, &FilterKind::SurfReal(4)).unwrap());
        assert!(r.filter.is_none());
        // A filterless configuration loads nothing.
        assert!(!r.load_persisted_filter(&disk, &FilterKind::None).unwrap());
        // The matching kind loads.
        assert!(r.load_persisted_filter(&disk, &FilterKind::Bloom(10.0)).unwrap());
        assert!(r.has_filter());
    }

    #[test]
    fn surf_filter_attach() {
        let disk = SimDisk::new(Duration::ZERO);
        let e = entries(500);
        let t = SsTable::build(2, &disk, &e, 4096, &FilterKind::SurfReal(4)).unwrap();
        assert!(t.surf().is_some());
        assert!(t.covers(&memtree_common::key::encode_u64(300)));
        assert!(!t.covers(&memtree_common::key::encode_u64(4000)));
        assert!(t.overlaps(
            &memtree_common::key::encode_u64(100),
            &memtree_common::key::encode_u64(200)
        ));
    }
}
