//! The simulated block device: I/O accounting plus a power-loss model and
//! three seeded latent-fault classes.
//!
//! Two storage namespaces share one device, mirroring how an LSM engine
//! splits its on-disk footprint:
//!
//! * a **block store** (`write`/`read`/`release`) holding SSTable data
//!   blocks, addressed by id;
//! * a small **file namespace** (`append`/`write_file_atomic`/
//!   `truncate_file`/`remove_file`/`read_file`) holding the WAL, MANIFEST
//!   files, and the CURRENT pointer.
//!
//! Every mutation first lands in a volatile **write buffer** and becomes
//! durable only at [`SimDisk::sync`]. [`SimDisk::crash`] models power loss:
//! all unsynced writes are dropped, and optionally the *last* in-flight
//! write is **torn** — a seeded prefix of it reaches the platter. Torn
//! block writes and torn appends surface as short/CRC-invalid frames to the
//! recovery path; `write_file_atomic` models `rename(2)` and is never torn
//! (it applies fully or not at all), which is exactly the primitive the
//! manifest's CURRENT swap needs.
//!
//! ## Concurrency
//!
//! The device is `Send + Sync`: all namespace state lives behind one
//! mutex (each call is one atomic step, like a single-queue-depth NVMe
//! simulator), counters are lock-free atomics. Multiple `Db` shards can
//! therefore share one disk — which is what makes cross-shard group
//! commit meaningful: one `sync()` barrier persists every shard's
//! buffered WAL appends at once, and one `crash()` loses power for all of
//! them atomically.
//!
//! ## Fault classes beyond power loss
//!
//! * **Latent corruption** ([`SimDisk::bitrot_block`] /
//!   [`SimDisk::bitrot_file`]): a seeded bit flip in *durable* content —
//!   damage that lands after a successful `sync`, which CRC framing detects
//!   only at the next read. `Db::scrub` exists to find it proactively.
//! * **Transient read errors** (the `lsm.disk.read_transient` fail point):
//!   the read fails with a typed [`MemtreeError::TransientIo`] but the
//!   stored bytes are intact — a retry can succeed. Readers must heal these
//!   via retry, never quarantine on them.
//! * **Capacity** ([`SimDisk::set_capacity_bytes`]): block writes, appends,
//!   and atomic replaces that would push total usage past the limit are
//!   rejected with a typed [`MemtreeError::Enospc`] *before* buffering
//!   anything, so a failed write never leaves partial state.
//! * **Slow I/O** ([`SimDisk::set_slow_io`] and the `lsm.disk.slow_io`
//!   fail point): *late* data, the fault class overload survival needs.
//!   Every device op advances a monotone **virtual clock** (microseconds)
//!   by at least one tick; a [`SlowIo`] profile adds seeded per-op jitter,
//!   periodic burst storms, and one permanently-slow block region, and an
//!   armed `lsm.disk.slow_io` point adds a fixed storm delay per firing.
//!   Delays are charged to the virtual clock only — deterministic and
//!   free of wall-clock flakiness — and [`SimDisk::now_us`] is the time
//!   base the serving layer's request deadlines measure against.
//!
//! Reads are served through the buffer (like the OS page cache), so a
//! process that never crashes observes its own unsynced writes.

use memtree_common::error::{MemtreeError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Running I/O counters. `read_repairs` / `quarantined_blocks` /
/// `transient_retries` are maintained by the [`Db`](crate::Db) read paths
/// and merged into this struct by [`Db::io_stats`](crate::Db::io_stats);
/// the raw device reports them as zero.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Block reads served by the device (block-cache misses).
    pub block_reads: u64,
    /// Blocks written by flushes and compactions.
    pub block_writes: u64,
    /// Append/replace calls against the file namespace (WAL + manifest).
    pub file_appends: u64,
    /// Bytes handed to the file namespace by those calls.
    pub file_bytes_written: u64,
    /// `sync()` barriers issued.
    pub syncs: u64,
    /// Block decodes that failed once and succeeded on a re-read.
    pub read_repairs: u64,
    /// Blocks quarantined after failing validation twice.
    pub quarantined_blocks: u64,
    /// Reads retried after a transient I/O fault (healed, not quarantined).
    pub transient_retries: u64,
    /// Virtual microseconds of injected slow-I/O delay charged so far
    /// (jitter + bursts + slow region + armed `lsm.disk.slow_io` storms).
    pub slow_io_delay_us: u64,
}

/// A seeded latency profile for the device (see the module docs). All
/// delays are *virtual* microseconds charged to [`SimDisk::now_us`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowIo {
    /// Seed for the per-op jitter draw.
    pub seed: u64,
    /// Upper bound of the uniform per-op jitter (`0..=base_us`).
    pub base_us: u64,
    /// Every `burst_every` device ops a burst storm starts (0 = never).
    pub burst_every: u64,
    /// Ops a burst lasts once started.
    pub burst_len: u64,
    /// Extra delay per op while a burst is active.
    pub burst_us: u64,
    /// A permanently slow block-id range `[lo, hi)` (media defect /
    /// remapped zone); reads and writes touching it pay `region_us` extra.
    pub slow_region: Option<(u32, u32)>,
    /// Extra delay for ops touching `slow_region`.
    pub region_us: u64,
}

impl SlowIo {
    /// A storm-heavy profile used by the chaos soak: steady small jitter
    /// plus a hard burst every 64 ops and one slow region at the front of
    /// the block space.
    pub fn storm(seed: u64) -> Self {
        Self {
            seed,
            base_us: 20,
            burst_every: 64,
            burst_len: 12,
            burst_us: 400,
            slow_region: Some((0, 8)),
            region_us: 150,
        }
    }
}

/// Live slow-I/O state: the profile plus the op counter driving bursts.
#[derive(Debug)]
struct SlowState {
    cfg: SlowIo,
    ops: u64,
}

/// A buffered, not-yet-durable mutation. Order within the buffer is the
/// order writes were issued; `crash` can tear the last one.
#[derive(Debug)]
enum PendingOp {
    Block { id: u32, data: Box<[u8]> },
    Append { file: String, data: Vec<u8> },
    /// Whole-file replace, atomic like `rename(2)`: applied fully or not
    /// at all, never torn.
    Replace { file: String, data: Vec<u8> },
    /// Truncation to `len` bytes; atomic (metadata-only in a real FS).
    Truncate { file: String, len: usize },
    /// File removal (`unlink(2)`); atomic at crash.
    Remove { file: String },
}

/// All namespace state, held under one mutex so each device call is a
/// single atomic step even with many shard threads issuing I/O.
#[derive(Debug)]
struct DiskState {
    /// Durable block contents (what survives a crash).
    blocks: Vec<Box<[u8]>>,
    /// Allocation state per block slot.
    live: Vec<bool>,
    free: Vec<u32>,
    /// Durable file contents.
    files: BTreeMap<String, Vec<u8>>,
    /// The volatile write buffer, in issue order.
    pending: Vec<PendingOp>,
    /// Optional capacity limit; `None` = unbounded.
    capacity: Option<u64>,
}

impl DiskState {
    /// Bytes currently consumed: durable blocks + durable files + the
    /// write buffer.
    fn used_bytes(&self) -> u64 {
        let blocks: usize = self.blocks.iter().map(|b| b.len()).sum();
        let files: usize = self.files.values().map(|f| f.len()).sum();
        let pending: usize = self
            .pending
            .iter()
            .map(|op| match op {
                PendingOp::Block { data, .. } => data.len(),
                PendingOp::Append { data, .. } | PendingOp::Replace { data, .. } => data.len(),
                PendingOp::Truncate { .. } | PendingOp::Remove { .. } => 0,
            })
            .sum();
        (blocks + files + pending) as u64
    }

    /// Rejects a prospective write of `requested` bytes when it would
    /// exceed the capacity limit.
    fn check_capacity(&self, context: &'static str, requested: usize) -> Result<()> {
        if let Some(cap) = self.capacity {
            if self.used_bytes() + requested as u64 > cap {
                return Err(MemtreeError::Enospc { context, requested });
            }
        }
        Ok(())
    }

    fn apply_durable(&mut self, op: PendingOp) {
        match op {
            PendingOp::Block { id, data } => {
                // The slot may have been released after the write was
                // buffered; releases drop matching ops, so reaching here
                // means the slot is still owned by the writer.
                self.blocks[id as usize] = data;
            }
            PendingOp::Append { file, data } => {
                self.files.entry(file).or_default().extend_from_slice(&data);
            }
            PendingOp::Replace { file, data } => {
                self.files.insert(file, data);
            }
            PendingOp::Truncate { file, len } => {
                if let Some(f) = self.files.get_mut(&file) {
                    f.truncate(len);
                }
            }
            PendingOp::Remove { file } => {
                self.files.remove(&file);
            }
        }
    }

    fn apply_to(content: &mut Vec<u8>, file: &str, op: &PendingOp) {
        match op {
            PendingOp::Append { file: f, data } if f == file => content.extend_from_slice(data),
            PendingOp::Replace { file: f, data } if f == file => *content = data.clone(),
            PendingOp::Truncate { file: f, len } if f == file => content.truncate(*len),
            PendingOp::Remove { file: f } if f == file => content.clear(),
            _ => {}
        }
    }
}

/// An in-memory "disk" of fixed-size blocks and small log files with exact
/// read accounting, an optional per-read latency charge (busy-wait, so
/// short latencies are accurate), and crash/tear semantics for recovery
/// testing. `Send + Sync`: shard workers share one device.
#[derive(Debug)]
pub struct SimDisk {
    state: Mutex<DiskState>,
    reads: AtomicU64,
    writes: AtomicU64,
    appends: AtomicU64,
    append_bytes: AtomicU64,
    syncs: AtomicU64,
    read_latency: Duration,
    /// Monotone virtual clock in microseconds; every device op ticks it.
    clock_us: AtomicU64,
    /// Accumulated injected slow-I/O delay (subset of `clock_us`).
    slow_delay_us: AtomicU64,
    /// Optional seeded latency profile.
    slow: Mutex<Option<SlowState>>,
}

/// Fixed virtual delay added per firing of the `lsm.disk.slow_io` fail
/// point (a storm armed through the faults registry, probability- and
/// budget-controlled like every other fault class).
const SLOW_IO_STORM_US: u64 = 800;

impl SimDisk {
    /// Creates a disk charging `read_latency` per block read.
    pub fn new(read_latency: Duration) -> Self {
        Self {
            state: Mutex::new(DiskState {
                blocks: Vec::new(),
                live: Vec::new(),
                free: Vec::new(),
                files: BTreeMap::new(),
                pending: Vec::new(),
                capacity: None,
            }),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            append_bytes: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            read_latency,
            clock_us: AtomicU64::new(0),
            slow_delay_us: AtomicU64::new(0),
            slow: Mutex::new(None),
        }
    }

    /// The virtual clock, in microseconds. Monotone; ticks at least once
    /// per device op and absorbs every injected slow-I/O delay. The serve
    /// layer's request deadlines measure against this clock.
    pub fn now_us(&self) -> u64 {
        self.clock_us.load(Ordering::Relaxed)
    }

    /// Advances the virtual clock (callers model waiting — e.g. the serve
    /// layer's backpressure backoff — without real sleeps).
    pub fn advance_clock(&self, us: u64) {
        self.clock_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Installs (or clears) a seeded latency profile. Deterministic: the
    /// same profile over the same op sequence charges the same delays.
    pub fn set_slow_io(&self, profile: Option<SlowIo>) {
        *self.slow.lock().unwrap_or_else(|e| e.into_inner()) =
            profile.map(|cfg| SlowState { cfg, ops: 0 });
    }

    /// Charges one device op to the virtual clock: a 1us base tick, the
    /// profile's jitter/burst/region delays for this op, and the armed
    /// `lsm.disk.slow_io` storm delay when that point fires.
    fn charge_op(&self, block: Option<u32>) {
        let mut delay = 0u64;
        {
            let mut slow = self.slow.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(s) = slow.as_mut() {
                let i = s.ops;
                s.ops += 1;
                let mut rng = s.cfg.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                delay += memtree_common::hash::splitmix64(&mut rng) % (s.cfg.base_us + 1);
                if s.cfg.burst_every > 0 && i % s.cfg.burst_every < s.cfg.burst_len {
                    delay += s.cfg.burst_us;
                }
                if let (Some((lo, hi)), Some(id)) = (s.cfg.slow_region, block) {
                    if (lo..hi).contains(&id) {
                        delay += s.cfg.region_us;
                    }
                }
            }
        }
        if memtree_faults::should_fail("lsm.disk.slow_io") {
            delay += SLOW_IO_STORM_US;
        }
        if delay > 0 {
            self.slow_delay_us.fetch_add(delay, Ordering::Relaxed);
        }
        self.clock_us.fetch_add(1 + delay, Ordering::Relaxed);
    }

    /// The state mutex, poison-tolerant: a panicking test thread must not
    /// cascade into every other test sharing the disk.
    fn st(&self) -> MutexGuard<'_, DiskState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sets (or clears) the capacity limit in bytes. Mutations that would
    /// push [`SimDisk::used_bytes`] past it fail with a typed
    /// [`MemtreeError::Enospc`] before buffering anything.
    pub fn set_capacity_bytes(&self, capacity: Option<u64>) {
        self.st().capacity = capacity;
    }

    /// Bytes currently consumed: durable blocks + durable files + the
    /// write buffer. Buffered replaces count in full alongside the content
    /// they will supersede — a conservative model of the transient double
    /// occupancy a real rename-based replace has.
    pub fn used_bytes(&self) -> u64 {
        self.st().used_bytes()
    }

    /// Writes a block into the buffer, returning its id. The content is
    /// readable immediately but durable only after [`SimDisk::sync`].
    /// Fails typed — and allocates nothing — on `Enospc` or an armed
    /// `lsm.disk.write_fault`.
    pub fn write(&self, data: Box<[u8]>) -> Result<u32> {
        memtree_faults::fail_point!("lsm.disk.write_fault");
        let mut st = self.st();
        st.check_capacity("block-write", data.len())?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        let id = if let Some(id) = st.free.pop() {
            st.live[id as usize] = true;
            id
        } else {
            st.blocks.push(Box::from(&[][..]));
            st.live.push(true);
            (st.blocks.len() - 1) as u32
        };
        st.pending.push(PendingOp::Block { id, data });
        drop(st);
        self.charge_op(Some(id));
        Ok(id)
    }

    /// Reads a block (counted, latency-charged) through the write buffer.
    /// Out-of-range and freed ids return typed errors instead of
    /// panicking — a stale manifest or a buggy caller must degrade one
    /// read, not the process.
    pub fn read(&self, id: u32) -> Result<Box<[u8]>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.charge_op(Some(id));
        if !self.read_latency.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < self.read_latency {
                std::hint::spin_loop();
            }
        }
        // Transient media fault: the stored bytes are intact; the caller
        // may retry. Evaluated before the corrupting fault so the two
        // classes exercise distinct read-path reactions.
        if memtree_faults::should_fail("lsm.disk.read_transient") {
            return Err(MemtreeError::TransientIo { context: "sim-disk" });
        }
        let st = self.st();
        match st.live.get(id as usize) {
            None => {
                return Err(MemtreeError::corruption(
                    "sim-disk",
                    format!("read of out-of-range block {id}"),
                ))
            }
            Some(false) => {
                return Err(MemtreeError::corruption(
                    "sim-disk",
                    format!("read of freed block {id}"),
                ))
            }
            Some(true) => {}
        }
        // Newest buffered write wins (page-cache semantics).
        let mut data = 'found: {
            for op in st.pending.iter().rev() {
                if let PendingOp::Block { id: bid, data } = op {
                    if *bid == id {
                        break 'found data.clone();
                    }
                }
            }
            st.blocks[id as usize].clone()
        };
        drop(st);
        // Injection point for media errors: corrupts this read's returned
        // bytes only (the stored block is untouched), so a retry can
        // succeed — exercises the Db quarantine-and-read-repair path.
        if memtree_faults::should_fail("lsm.disk.read_corrupt") {
            let n = data.len();
            if n > 0 {
                data[n / 2] ^= 0x40;
            }
        }
        Ok(data)
    }

    /// Frees a block (after compaction drops an SSTable). Double release
    /// and out-of-range ids are typed errors.
    pub fn release(&self, id: u32) -> Result<()> {
        let mut st = self.st();
        match st.live.get(id as usize) {
            None => {
                return Err(MemtreeError::corruption(
                    "sim-disk",
                    format!("release of out-of-range block {id}"),
                ))
            }
            Some(false) => {
                return Err(MemtreeError::corruption(
                    "sim-disk",
                    format!("double release of block {id}"),
                ))
            }
            Some(true) => st.live[id as usize] = false,
        }
        st.blocks[id as usize] = Box::from(&[][..]);
        // Drop buffered writes to the freed slot so a later sync cannot
        // resurrect them under a new owner of the id.
        st.pending
            .retain(|op| !matches!(op, PendingOp::Block { id: bid, .. } if *bid == id));
        st.free.push(id);
        Ok(())
    }

    /// Flips one seeded bit of a block's **durable** content — latent
    /// corruption that lands after a successful sync, invisible until the
    /// next read CRC-checks the frame. Errors on dead or empty blocks.
    /// Deterministic: the same `(id, seed)` flips the same bit, so a
    /// second call with the same arguments restores the original bytes.
    pub fn bitrot_block(&self, id: u32, seed: u64) -> Result<()> {
        let mut st = self.st();
        if !st.live.get(id as usize).copied().unwrap_or(false) {
            return Err(MemtreeError::corruption(
                "sim-disk",
                format!("bitrot of dead block {id}"),
            ));
        }
        let block = &mut st.blocks[id as usize];
        if block.is_empty() {
            return Err(MemtreeError::corruption(
                "sim-disk",
                format!("bitrot of empty (unsynced) block {id}"),
            ));
        }
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let bit = memtree_common::hash::splitmix64(&mut s) as usize % (block.len() * 8);
        block[bit / 8] ^= 1 << (bit % 8);
        Ok(())
    }

    /// Flips one seeded bit of a named file's **durable** content; returns
    /// false when the file is missing or empty (nothing to rot).
    pub fn bitrot_file(&self, file: &str, seed: u64) -> bool {
        let mut st = self.st();
        let Some(content) = st.files.get_mut(file) else { return false };
        if content.is_empty() {
            return false;
        }
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let bit = memtree_common::hash::splitmix64(&mut s) as usize % (content.len() * 8);
        content[bit / 8] ^= 1 << (bit % 8);
        true
    }

    /// Appends bytes to a named file's buffered tail. `Enospc` rejects the
    /// whole append before buffering.
    pub fn append(&self, file: &str, data: &[u8]) -> Result<()> {
        let mut st = self.st();
        st.check_capacity("file-append", data.len())?;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.append_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        st.pending.push(PendingOp::Append {
            file: file.to_string(),
            data: data.to_vec(),
        });
        drop(st);
        self.charge_op(None);
        Ok(())
    }

    /// Replaces a file's entire content atomically (the `rename(2)`
    /// primitive): after a crash either the old or the new content is
    /// visible, never a mix. `Enospc` rejects it before buffering.
    pub fn write_file_atomic(&self, file: &str, data: &[u8]) -> Result<()> {
        let mut st = self.st();
        st.check_capacity("file-replace", data.len())?;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.append_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        st.pending.push(PendingOp::Replace {
            file: file.to_string(),
            data: data.to_vec(),
        });
        drop(st);
        self.charge_op(None);
        Ok(())
    }

    /// Truncates a file to `len` bytes (buffered; atomic at crash).
    /// Truncation only frees space, so it cannot fail with `Enospc`.
    pub fn truncate_file(&self, file: &str, len: usize) {
        self.st().pending.push(PendingOp::Truncate {
            file: file.to_string(),
            len,
        });
    }

    /// Removes a file (buffered `unlink(2)`; atomic at crash). Removing a
    /// missing file is a no-op, like `rm -f`.
    pub fn remove_file(&self, file: &str) {
        self.st().pending.push(PendingOp::Remove {
            file: file.to_string(),
        });
    }

    /// Names of all files visible through the write buffer (durable files
    /// plus buffered creations, minus buffered removals).
    pub fn file_names(&self) -> Vec<String> {
        let st = self.st();
        let mut names: std::collections::BTreeSet<String> = st.files.keys().cloned().collect();
        for op in st.pending.iter() {
            match op {
                PendingOp::Append { file, .. } | PendingOp::Replace { file, .. } => {
                    names.insert(file.clone());
                }
                PendingOp::Remove { file } => {
                    names.remove(file);
                }
                PendingOp::Block { .. } | PendingOp::Truncate { .. } => {}
            }
        }
        names.into_iter().collect()
    }

    /// The file's current content as seen through the write buffer.
    /// Missing files read as empty.
    pub fn read_file(&self, file: &str) -> Vec<u8> {
        let st = self.st();
        let mut content = st.files.get(file).cloned().unwrap_or_default();
        for op in st.pending.iter() {
            DiskState::apply_to(&mut content, file, op);
        }
        content
    }

    /// The file's length as seen through the write buffer.
    pub fn file_len(&self, file: &str) -> usize {
        self.read_file(file).len()
    }

    /// Makes every buffered write durable (the `fsync` barrier).
    pub fn sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.charge_op(None);
        let mut st = self.st();
        let ops = std::mem::take(&mut st.pending);
        for op in ops {
            st.apply_durable(op);
        }
    }

    /// Simulates power loss: every unsynced write is dropped. With
    /// `tear_seed`, the **last** in-flight write is torn instead of
    /// dropped — a seeded prefix of an append or block write reaches
    /// durable storage (atomic replace/truncate/remove ops apply fully or
    /// not at all, `rename` semantics, decided by the seed's low bit).
    ///
    /// Block ids allocated for unsynced writes stay allocated (their
    /// durable content is empty or torn); recovery garbage-collects ids no
    /// manifest references.
    pub fn crash(&self, tear_seed: Option<u64>) {
        let mut st = self.st();
        let mut ops = std::mem::take(&mut st.pending);
        let Some(seed) = tear_seed else { return };
        let Some(last) = ops.pop() else { return };
        let mut s = seed;
        let draw = memtree_common::hash::splitmix64(&mut s);
        match last {
            PendingOp::Block { id, data } => {
                let keep = if data.is_empty() { 0 } else { draw as usize % data.len() };
                st.blocks[id as usize] = Box::from(&data[..keep]);
            }
            PendingOp::Append { file, data } => {
                let keep = if data.is_empty() { 0 } else { draw as usize % data.len() };
                st.files.entry(file).or_default().extend_from_slice(&data[..keep]);
            }
            op @ (PendingOp::Replace { .. } | PendingOp::Truncate { .. } | PendingOp::Remove { .. }) => {
                if draw & 1 == 1 {
                    st.apply_durable(op);
                }
            }
        }
    }

    /// True while any write is buffered but not yet durable.
    pub fn has_unsynced_writes(&self) -> bool {
        !self.st().pending.is_empty()
    }

    /// Current counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            block_reads: self.reads.load(Ordering::Relaxed),
            block_writes: self.writes.load(Ordering::Relaxed),
            file_appends: self.appends.load(Ordering::Relaxed),
            file_bytes_written: self.append_bytes.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            read_repairs: 0,
            quarantined_blocks: 0,
            transient_retries: 0,
            slow_io_delay_us: self.slow_delay_us.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.appends.store(0, Ordering::Relaxed);
        self.append_bytes.store(0, Ordering::Relaxed);
        self.syncs.store(0, Ordering::Relaxed);
        self.slow_delay_us.store(0, Ordering::Relaxed);
    }

    /// Live (allocated) block count.
    pub fn live_blocks(&self) -> usize {
        self.st().live.iter().filter(|&&l| l).count()
    }

    /// Number of block slots ever allocated (live or freed); recovery
    /// iterates `0..block_slots()` to garbage-collect orphans.
    pub fn block_slots(&self) -> usize {
        self.st().blocks.len()
    }

    /// True when `id` is currently allocated.
    pub fn is_live(&self, id: u32) -> bool {
        self.st().live.get(id as usize).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_release_roundtrip() {
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&b"hello"[..])).unwrap();
        let b = d.write(Box::from(&b"world"[..])).unwrap();
        assert_eq!(&*d.read(a).unwrap(), b"hello");
        assert_eq!(&*d.read(b).unwrap(), b"world");
        assert_eq!(d.stats().block_reads, 2);
        assert_eq!(d.stats().block_writes, 2);
        d.release(a).unwrap();
        let c = d.write(Box::from(&b"again"[..])).unwrap();
        assert_eq!(c, a, "freed slot reused");
        assert_eq!(d.live_blocks(), 2);
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
    }

    #[test]
    fn typed_errors_for_bad_block_ids() {
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&b"x"[..])).unwrap();
        assert!(d.read(99).is_err(), "out-of-range read");
        assert!(d.release(99).is_err(), "out-of-range release");
        d.release(a).unwrap();
        assert!(d.release(a).is_err(), "double release");
        assert!(d.read(a).is_err(), "read of freed block");
    }

    #[test]
    fn crash_drops_unsynced_block_writes() {
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&b"durable"[..])).unwrap();
        d.sync();
        let b = d.write(Box::from(&b"volatile"[..])).unwrap();
        assert_eq!(&*d.read(b).unwrap(), b"volatile", "buffer readable pre-crash");
        d.crash(None);
        assert_eq!(&*d.read(a).unwrap(), b"durable");
        assert_eq!(&*d.read(b).unwrap(), b"", "unsynced write lost");
    }

    #[test]
    fn crash_tears_last_append_at_seeded_offset() {
        for seed in 0..64u64 {
            let d = SimDisk::new(Duration::ZERO);
            d.append("wal", b"AAAA").unwrap();
            d.sync();
            d.append("wal", b"BBBBBBBB").unwrap();
            d.crash(Some(seed));
            let f = d.read_file("wal");
            assert!(f.starts_with(b"AAAA"), "synced prefix intact");
            assert!(f.len() < 12, "torn append keeps a strict prefix: {f:?}");
            assert!(f[4..].iter().all(|&c| c == b'B'));
        }
    }

    #[test]
    fn atomic_replace_never_tears() {
        for seed in 0..32u64 {
            let d = SimDisk::new(Duration::ZERO);
            d.write_file_atomic("CURRENT", b"manifest-1").unwrap();
            d.sync();
            d.write_file_atomic("CURRENT", b"manifest-2").unwrap();
            d.crash(Some(seed));
            let f = d.read_file("CURRENT");
            assert!(
                f == b"manifest-1" || f == b"manifest-2",
                "replace must be atomic, got {f:?}"
            );
        }
    }

    #[test]
    fn files_append_truncate_roundtrip() {
        let d = SimDisk::new(Duration::ZERO);
        d.append("log", b"one").unwrap();
        d.append("log", b"two").unwrap();
        assert_eq!(d.read_file("log"), b"onetwo", "buffered view");
        d.sync();
        d.truncate_file("log", 3);
        assert_eq!(d.read_file("log"), b"one");
        d.crash(None); // unsynced truncate dropped
        assert_eq!(d.read_file("log"), b"onetwo");
        assert_eq!(d.read_file("missing"), b"");
    }

    #[test]
    fn remove_file_and_file_names_track_the_buffer() {
        let d = SimDisk::new(Duration::ZERO);
        d.append("a", b"1").unwrap();
        d.append("b", b"2").unwrap();
        d.sync();
        d.remove_file("a");
        assert_eq!(d.file_names(), vec!["b".to_string()], "buffered removal visible");
        assert_eq!(d.read_file("a"), b"", "removed file reads as empty");
        d.crash(None); // unsynced removal dropped
        assert_eq!(d.file_names(), vec!["a".to_string(), "b".to_string()]);
        d.remove_file("a");
        d.sync();
        assert_eq!(d.file_names(), vec!["b".to_string()], "durable removal");
        d.remove_file("missing"); // no-op, like rm -f
        d.sync();
    }

    #[test]
    fn capacity_limit_yields_typed_enospc_without_partial_state() {
        let d = SimDisk::new(Duration::ZERO);
        d.set_capacity_bytes(Some(10));
        let a = d.write(Box::from(&b"12345678"[..])).unwrap();
        let before = d.used_bytes();
        match d.write(Box::from(&b"xxx"[..])) {
            Err(MemtreeError::Enospc { requested, .. }) => assert_eq!(requested, 3),
            other => panic!("expected Enospc, got {other:?}"),
        }
        assert_eq!(d.used_bytes(), before, "failed write buffered nothing");
        assert!(matches!(
            d.append("wal", b"abc"),
            Err(MemtreeError::Enospc { .. })
        ));
        assert!(matches!(
            d.write_file_atomic("CURRENT", b"abc"),
            Err(MemtreeError::Enospc { .. })
        ));
        // Freeing space makes the same writes succeed.
        d.sync();
        d.release(a).unwrap();
        d.write(Box::from(&b"xxx"[..])).unwrap();
        d.append("wal", b"abc").unwrap();
        d.set_capacity_bytes(None);
        d.write(Box::from(&vec![0u8; 1 << 16][..])).unwrap();
    }

    #[test]
    fn bitrot_flips_exactly_one_durable_bit_and_is_self_inverse() {
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&[0u8; 64][..])).unwrap();
        d.sync();
        d.bitrot_block(a, 42).unwrap();
        let rotten = d.read(a).unwrap();
        assert_eq!(
            rotten.iter().map(|b| b.count_ones()).sum::<u32>(),
            1,
            "exactly one bit flipped"
        );
        d.bitrot_block(a, 42).unwrap();
        assert_eq!(&*d.read(a).unwrap(), &[0u8; 64][..], "same seed restores");
        // Unsynced blocks have no durable content to rot.
        let b = d.write(Box::from(&b"fresh"[..])).unwrap();
        assert!(d.bitrot_block(b, 1).is_err());
        d.release(a).unwrap();
        assert!(d.bitrot_block(a, 1).is_err(), "dead block");

        d.append("f", b"\0\0\0\0").unwrap();
        assert!(!d.bitrot_file("f", 3), "unsynced file content is not durable");
        d.sync();
        assert!(d.bitrot_file("f", 3));
        let rotten = d.read_file("f");
        assert_eq!(rotten.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        assert!(d.bitrot_file("f", 3), "self-inverse for files too");
        assert_eq!(d.read_file("f"), b"\0\0\0\0");
        assert!(!d.bitrot_file("missing", 1));
    }

    #[test]
    fn transient_read_fault_is_typed_and_heals_on_retry() {
        let _g = memtree_faults::test_lock();
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&b"payload"[..])).unwrap();
        d.sync();
        memtree_faults::enable(5);
        memtree_faults::arm("lsm.disk.read_transient", 1.0, Some(1));
        match d.read(a) {
            Err(e) => assert!(e.is_transient(), "typed transient, got {e:?}"),
            Ok(_) => panic!("armed transient fault must fire"),
        }
        assert_eq!(&*d.read(a).unwrap(), b"payload", "retry heals");
        memtree_faults::disable();
    }

    #[test]
    fn virtual_clock_ticks_every_op_and_slow_io_is_deterministic() {
        let run = |profile: Option<SlowIo>| {
            let d = SimDisk::new(Duration::ZERO);
            d.set_slow_io(profile);
            let mut ids = Vec::new();
            for i in 0..100u8 {
                ids.push(d.write(Box::from(&[i][..])).unwrap());
                d.append("wal", &[i]).unwrap();
            }
            d.sync();
            for &id in &ids {
                d.read(id).unwrap();
            }
            (d.now_us(), d.stats().slow_io_delay_us)
        };
        let (clock, delay) = run(None);
        assert_eq!(delay, 0, "no profile, no injected delay");
        assert_eq!(clock, 301, "100 writes + 100 appends + 1 sync + 100 reads, 1us each");

        let profile = SlowIo::storm(7);
        let (slow_clock, slow_delay) = run(Some(profile));
        assert!(slow_delay > 0, "storm profile must charge delay");
        assert_eq!(slow_clock, 301 + slow_delay, "all delay lands on the clock");
        assert_eq!(run(Some(profile)), (slow_clock, slow_delay), "seeded = reproducible");
        // A different seed draws different jitter.
        assert_ne!(run(Some(SlowIo::storm(8))).1, slow_delay);
    }

    #[test]
    fn slow_region_charges_only_region_blocks() {
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&b"in-region"[..])).unwrap();
        for _ in 0..8 {
            d.write(Box::from(&b"filler"[..])).unwrap();
        }
        let b = d.write(Box::from(&b"outside"[..])).unwrap();
        d.sync();
        d.set_slow_io(Some(SlowIo {
            seed: 1,
            base_us: 0,
            burst_every: 0,
            burst_len: 0,
            burst_us: 0,
            slow_region: Some((0, 8)),
            region_us: 500,
        }));
        let before = d.stats().slow_io_delay_us;
        d.read(b).unwrap();
        assert_eq!(d.stats().slow_io_delay_us, before, "outside region: free");
        d.read(a).unwrap();
        assert_eq!(d.stats().slow_io_delay_us, before + 500, "region read pays");
    }

    #[test]
    fn slow_io_fail_point_adds_storm_delay() {
        let _g = memtree_faults::test_lock();
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&b"x"[..])).unwrap();
        d.sync();
        memtree_faults::enable(3);
        memtree_faults::arm("lsm.disk.slow_io", 1.0, Some(2));
        let t0 = d.now_us();
        d.read(a).unwrap();
        assert!(d.now_us() >= t0 + SLOW_IO_STORM_US, "armed point slows the read");
        memtree_faults::disable();
        let t1 = d.now_us();
        d.read(a).unwrap();
        assert!(d.now_us() < t1 + SLOW_IO_STORM_US, "disarmed point is fast");
        assert!(d.stats().slow_io_delay_us >= SLOW_IO_STORM_US);
        d.advance_clock(1000);
        assert!(d.now_us() >= t1 + 1000);
    }

    #[test]
    fn shared_disk_is_send_sync_across_threads() {
        use std::sync::Arc;
        let d = Arc::new(SimDisk::new(Duration::ZERO));
        let ids: Vec<_> = (0..4)
            .map(|t| {
                let d = d.clone();
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for i in 0..32u8 {
                        ids.push((d.write(Box::from(&[t as u8, i][..])).unwrap(), [t as u8, i]));
                        d.append(&format!("wal-{t}"), &[t as u8, i]).unwrap();
                    }
                    d.sync();
                    ids
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Every thread's blocks survived with its own bytes: allocation
        // under the state mutex never handed two writers one slot.
        for (id, want) in ids {
            assert_eq!(&*d.read(id).unwrap(), &want[..]);
        }
        assert_eq!(d.live_blocks(), 128);
        for t in 0..4 {
            assert_eq!(d.read_file(&format!("wal-{t}")).len(), 64);
        }
    }
}
