//! The simulated block device and its I/O accounting.

use std::cell::{Cell, RefCell};
use std::time::Duration;

/// Running I/O counters (reads only; the benchmarks measure read I/O).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Block reads served by the device (block-cache misses).
    pub block_reads: u64,
    /// Blocks written by flushes and compactions.
    pub block_writes: u64,
}

/// An in-memory "disk" of fixed-size blocks with exact read accounting and
/// an optional per-read latency charge (busy-wait, so short latencies are
/// accurate).
#[derive(Debug)]
pub struct SimDisk {
    blocks: RefCell<Vec<Box<[u8]>>>,
    free: RefCell<Vec<u32>>,
    reads: Cell<u64>,
    writes: Cell<u64>,
    read_latency: Duration,
}

impl SimDisk {
    /// Creates a disk charging `read_latency` per block read.
    pub fn new(read_latency: Duration) -> Self {
        Self {
            blocks: RefCell::new(Vec::new()),
            free: RefCell::new(Vec::new()),
            reads: Cell::new(0),
            writes: Cell::new(0),
            read_latency,
        }
    }

    /// Writes a block, returning its id.
    pub fn write(&self, data: Box<[u8]>) -> u32 {
        self.writes.set(self.writes.get() + 1);
        if let Some(id) = self.free.borrow_mut().pop() {
            self.blocks.borrow_mut()[id as usize] = data;
            return id;
        }
        let mut blocks = self.blocks.borrow_mut();
        blocks.push(data);
        (blocks.len() - 1) as u32
    }

    /// Reads a block (counted, latency-charged).
    pub fn read(&self, id: u32) -> Box<[u8]> {
        self.reads.set(self.reads.get() + 1);
        if !self.read_latency.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < self.read_latency {
                std::hint::spin_loop();
            }
        }
        self.blocks.borrow()[id as usize].clone()
    }

    /// Frees a block (after compaction drops an SSTable).
    pub fn release(&self, id: u32) {
        self.blocks.borrow_mut()[id as usize] = Box::from(&[][..]);
        self.free.borrow_mut().push(id);
    }

    /// Current counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            block_reads: self.reads.get(),
            block_writes: self.writes.get(),
        }
    }

    /// Zeroes the counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.reads.set(0);
        self.writes.set(0);
    }

    /// Live (non-freed) block count.
    pub fn live_blocks(&self) -> usize {
        self.blocks.borrow().len() - self.free.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_release_roundtrip() {
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&b"hello"[..]));
        let b = d.write(Box::from(&b"world"[..]));
        assert_eq!(&*d.read(a), b"hello");
        assert_eq!(&*d.read(b), b"world");
        assert_eq!(d.stats().block_reads, 2);
        assert_eq!(d.stats().block_writes, 2);
        d.release(a);
        let c = d.write(Box::from(&b"again"[..]));
        assert_eq!(c, a, "freed slot reused");
        assert_eq!(d.live_blocks(), 2);
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
    }
}
