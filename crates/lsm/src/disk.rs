//! The simulated block device: I/O accounting plus a power-loss model.
//!
//! Two storage namespaces share one device, mirroring how an LSM engine
//! splits its on-disk footprint:
//!
//! * a **block store** (`write`/`read`/`release`) holding SSTable data
//!   blocks, addressed by id;
//! * a small **file namespace** (`append`/`write_file_atomic`/
//!   `truncate_file`/`read_file`) holding the WAL, MANIFEST files, and the
//!   CURRENT pointer.
//!
//! Every mutation first lands in a volatile **write buffer** and becomes
//! durable only at [`SimDisk::sync`]. [`SimDisk::crash`] models power loss:
//! all unsynced writes are dropped, and optionally the *last* in-flight
//! write is **torn** — a seeded prefix of it reaches the platter. Torn
//! block writes and torn appends surface as short/CRC-invalid frames to the
//! recovery path; `write_file_atomic` models `rename(2)` and is never torn
//! (it applies fully or not at all), which is exactly the primitive the
//! manifest's CURRENT swap needs.
//!
//! Reads are served through the buffer (like the OS page cache), so a
//! process that never crashes observes its own unsynced writes.

use memtree_common::error::{MemtreeError, Result};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::time::Duration;

/// Running I/O counters. `read_repairs` / `quarantined_blocks` are
/// maintained by the [`Db`](crate::Db) read-repair path and merged into
/// this struct by [`Db::io_stats`](crate::Db::io_stats); the raw device
/// reports them as zero.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Block reads served by the device (block-cache misses).
    pub block_reads: u64,
    /// Blocks written by flushes and compactions.
    pub block_writes: u64,
    /// Append/replace calls against the file namespace (WAL + manifest).
    pub file_appends: u64,
    /// Bytes handed to the file namespace by those calls.
    pub file_bytes_written: u64,
    /// `sync()` barriers issued.
    pub syncs: u64,
    /// Block decodes that failed once and succeeded on a re-read.
    pub read_repairs: u64,
    /// Blocks quarantined after failing validation twice.
    pub quarantined_blocks: u64,
}

/// A buffered, not-yet-durable mutation. Order within the buffer is the
/// order writes were issued; `crash` can tear the last one.
#[derive(Debug)]
enum PendingOp {
    Block { id: u32, data: Box<[u8]> },
    Append { file: String, data: Vec<u8> },
    /// Whole-file replace, atomic like `rename(2)`: applied fully or not
    /// at all, never torn.
    Replace { file: String, data: Vec<u8> },
    /// Truncation to `len` bytes; atomic (metadata-only in a real FS).
    Truncate { file: String, len: usize },
}

/// An in-memory "disk" of fixed-size blocks and small log files with exact
/// read accounting, an optional per-read latency charge (busy-wait, so
/// short latencies are accurate), and crash/tear semantics for recovery
/// testing.
#[derive(Debug)]
pub struct SimDisk {
    /// Durable block contents (what survives a crash).
    blocks: RefCell<Vec<Box<[u8]>>>,
    /// Allocation state per block slot.
    live: RefCell<Vec<bool>>,
    free: RefCell<Vec<u32>>,
    /// Durable file contents.
    files: RefCell<BTreeMap<String, Vec<u8>>>,
    /// The volatile write buffer, in issue order.
    pending: RefCell<Vec<PendingOp>>,
    reads: Cell<u64>,
    writes: Cell<u64>,
    appends: Cell<u64>,
    append_bytes: Cell<u64>,
    syncs: Cell<u64>,
    read_latency: Duration,
}

impl SimDisk {
    /// Creates a disk charging `read_latency` per block read.
    pub fn new(read_latency: Duration) -> Self {
        Self {
            blocks: RefCell::new(Vec::new()),
            live: RefCell::new(Vec::new()),
            free: RefCell::new(Vec::new()),
            files: RefCell::new(BTreeMap::new()),
            pending: RefCell::new(Vec::new()),
            reads: Cell::new(0),
            writes: Cell::new(0),
            appends: Cell::new(0),
            append_bytes: Cell::new(0),
            syncs: Cell::new(0),
            read_latency,
        }
    }

    /// Writes a block into the buffer, returning its id. The content is
    /// readable immediately but durable only after [`SimDisk::sync`].
    pub fn write(&self, data: Box<[u8]>) -> u32 {
        self.writes.set(self.writes.get() + 1);
        let id = if let Some(id) = self.free.borrow_mut().pop() {
            self.live.borrow_mut()[id as usize] = true;
            id
        } else {
            let mut blocks = self.blocks.borrow_mut();
            blocks.push(Box::from(&[][..]));
            self.live.borrow_mut().push(true);
            (blocks.len() - 1) as u32
        };
        self.pending.borrow_mut().push(PendingOp::Block { id, data });
        id
    }

    /// Reads a block (counted, latency-charged) through the write buffer.
    /// Out-of-range and freed ids return typed errors instead of
    /// panicking — a stale manifest or a buggy caller must degrade one
    /// read, not the process.
    pub fn read(&self, id: u32) -> Result<Box<[u8]>> {
        self.reads.set(self.reads.get() + 1);
        if !self.read_latency.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < self.read_latency {
                std::hint::spin_loop();
            }
        }
        let live = self.live.borrow();
        match live.get(id as usize) {
            None => {
                return Err(MemtreeError::corruption(
                    "sim-disk",
                    format!("read of out-of-range block {id}"),
                ))
            }
            Some(false) => {
                return Err(MemtreeError::corruption(
                    "sim-disk",
                    format!("read of freed block {id}"),
                ))
            }
            Some(true) => {}
        }
        // Newest buffered write wins (page-cache semantics).
        let mut data = 'found: {
            for op in self.pending.borrow().iter().rev() {
                if let PendingOp::Block { id: bid, data } = op {
                    if *bid == id {
                        break 'found data.clone();
                    }
                }
            }
            self.blocks.borrow()[id as usize].clone()
        };
        // Injection point for media errors: corrupts this read's returned
        // bytes only (the stored block is untouched), so a retry can
        // succeed — exercises the Db quarantine-and-read-repair path.
        if memtree_faults::should_fail("lsm.disk.read_corrupt") {
            let n = data.len();
            if n > 0 {
                data[n / 2] ^= 0x40;
            }
        }
        Ok(data)
    }

    /// Frees a block (after compaction drops an SSTable). Double release
    /// and out-of-range ids are typed errors.
    pub fn release(&self, id: u32) -> Result<()> {
        {
            let mut live = self.live.borrow_mut();
            match live.get(id as usize) {
                None => {
                    return Err(MemtreeError::corruption(
                        "sim-disk",
                        format!("release of out-of-range block {id}"),
                    ))
                }
                Some(false) => {
                    return Err(MemtreeError::corruption(
                        "sim-disk",
                        format!("double release of block {id}"),
                    ))
                }
                Some(true) => live[id as usize] = false,
            }
        }
        self.blocks.borrow_mut()[id as usize] = Box::from(&[][..]);
        // Drop buffered writes to the freed slot so a later sync cannot
        // resurrect them under a new owner of the id.
        self.pending
            .borrow_mut()
            .retain(|op| !matches!(op, PendingOp::Block { id: bid, .. } if *bid == id));
        self.free.borrow_mut().push(id);
        Ok(())
    }

    /// Appends bytes to a named file's buffered tail.
    pub fn append(&self, file: &str, data: &[u8]) {
        self.appends.set(self.appends.get() + 1);
        self.append_bytes.set(self.append_bytes.get() + data.len() as u64);
        self.pending.borrow_mut().push(PendingOp::Append {
            file: file.to_string(),
            data: data.to_vec(),
        });
    }

    /// Replaces a file's entire content atomically (the `rename(2)`
    /// primitive): after a crash either the old or the new content is
    /// visible, never a mix.
    pub fn write_file_atomic(&self, file: &str, data: &[u8]) {
        self.appends.set(self.appends.get() + 1);
        self.append_bytes.set(self.append_bytes.get() + data.len() as u64);
        self.pending.borrow_mut().push(PendingOp::Replace {
            file: file.to_string(),
            data: data.to_vec(),
        });
    }

    /// Truncates a file to `len` bytes (buffered; atomic at crash).
    pub fn truncate_file(&self, file: &str, len: usize) {
        self.pending.borrow_mut().push(PendingOp::Truncate {
            file: file.to_string(),
            len,
        });
    }

    /// The file's current content as seen through the write buffer.
    /// Missing files read as empty.
    pub fn read_file(&self, file: &str) -> Vec<u8> {
        let mut content = self
            .files
            .borrow()
            .get(file)
            .cloned()
            .unwrap_or_default();
        for op in self.pending.borrow().iter() {
            Self::apply_to(&mut content, file, op);
        }
        content
    }

    /// The file's length as seen through the write buffer.
    pub fn file_len(&self, file: &str) -> usize {
        self.read_file(file).len()
    }

    fn apply_to(content: &mut Vec<u8>, file: &str, op: &PendingOp) {
        match op {
            PendingOp::Append { file: f, data } if f == file => {
                content.extend_from_slice(data)
            }
            PendingOp::Replace { file: f, data } if f == file => {
                *content = data.clone()
            }
            PendingOp::Truncate { file: f, len } if f == file => {
                content.truncate(*len)
            }
            _ => {}
        }
    }

    /// Makes every buffered write durable (the `fsync` barrier).
    pub fn sync(&self) {
        self.syncs.set(self.syncs.get() + 1);
        let ops = std::mem::take(&mut *self.pending.borrow_mut());
        for op in ops {
            self.apply_durable(op);
        }
    }

    fn apply_durable(&self, op: PendingOp) {
        match op {
            PendingOp::Block { id, data } => {
                // The slot may have been released after the write was
                // buffered; releases drop matching ops, so reaching here
                // means the slot is still owned by the writer.
                self.blocks.borrow_mut()[id as usize] = data;
            }
            PendingOp::Append { file, data } => {
                self.files.borrow_mut().entry(file).or_default().extend_from_slice(&data);
            }
            PendingOp::Replace { file, data } => {
                self.files.borrow_mut().insert(file, data);
            }
            PendingOp::Truncate { file, len } => {
                if let Some(f) = self.files.borrow_mut().get_mut(&file) {
                    f.truncate(len);
                }
            }
        }
    }

    /// Simulates power loss: every unsynced write is dropped. With
    /// `tear_seed`, the **last** in-flight write is torn instead of
    /// dropped — a seeded prefix of an append or block write reaches
    /// durable storage (atomic replace/truncate ops apply fully or not at
    /// all, `rename` semantics, decided by the seed's low bit).
    ///
    /// Block ids allocated for unsynced writes stay allocated (their
    /// durable content is empty or torn); recovery garbage-collects ids no
    /// manifest references.
    pub fn crash(&self, tear_seed: Option<u64>) {
        let mut ops = std::mem::take(&mut *self.pending.borrow_mut());
        let Some(seed) = tear_seed else { return };
        let Some(last) = ops.pop() else { return };
        let mut s = seed;
        let draw = memtree_common::hash::splitmix64(&mut s);
        match last {
            PendingOp::Block { id, data } => {
                let keep = if data.is_empty() { 0 } else { draw as usize % data.len() };
                self.blocks.borrow_mut()[id as usize] = Box::from(&data[..keep]);
            }
            PendingOp::Append { file, data } => {
                let keep = if data.is_empty() { 0 } else { draw as usize % data.len() };
                self.files
                    .borrow_mut()
                    .entry(file)
                    .or_default()
                    .extend_from_slice(&data[..keep]);
            }
            op @ (PendingOp::Replace { .. } | PendingOp::Truncate { .. }) => {
                if draw & 1 == 1 {
                    self.apply_durable(op);
                }
            }
        }
    }

    /// True while any write is buffered but not yet durable.
    pub fn has_unsynced_writes(&self) -> bool {
        !self.pending.borrow().is_empty()
    }

    /// Current counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            block_reads: self.reads.get(),
            block_writes: self.writes.get(),
            file_appends: self.appends.get(),
            file_bytes_written: self.append_bytes.get(),
            syncs: self.syncs.get(),
            read_repairs: 0,
            quarantined_blocks: 0,
        }
    }

    /// Zeroes the counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.reads.set(0);
        self.writes.set(0);
        self.appends.set(0);
        self.append_bytes.set(0);
        self.syncs.set(0);
    }

    /// Live (allocated) block count.
    pub fn live_blocks(&self) -> usize {
        self.live.borrow().iter().filter(|&&l| l).count()
    }

    /// Number of block slots ever allocated (live or freed); recovery
    /// iterates `0..block_slots()` to garbage-collect orphans.
    pub fn block_slots(&self) -> usize {
        self.blocks.borrow().len()
    }

    /// True when `id` is currently allocated.
    pub fn is_live(&self, id: u32) -> bool {
        self.live.borrow().get(id as usize).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_release_roundtrip() {
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&b"hello"[..]));
        let b = d.write(Box::from(&b"world"[..]));
        assert_eq!(&*d.read(a).unwrap(), b"hello");
        assert_eq!(&*d.read(b).unwrap(), b"world");
        assert_eq!(d.stats().block_reads, 2);
        assert_eq!(d.stats().block_writes, 2);
        d.release(a).unwrap();
        let c = d.write(Box::from(&b"again"[..]));
        assert_eq!(c, a, "freed slot reused");
        assert_eq!(d.live_blocks(), 2);
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
    }

    #[test]
    fn typed_errors_for_bad_block_ids() {
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&b"x"[..]));
        assert!(d.read(99).is_err(), "out-of-range read");
        assert!(d.release(99).is_err(), "out-of-range release");
        d.release(a).unwrap();
        assert!(d.release(a).is_err(), "double release");
        assert!(d.read(a).is_err(), "read of freed block");
    }

    #[test]
    fn crash_drops_unsynced_block_writes() {
        let d = SimDisk::new(Duration::ZERO);
        let a = d.write(Box::from(&b"durable"[..]));
        d.sync();
        let b = d.write(Box::from(&b"volatile"[..]));
        assert_eq!(&*d.read(b).unwrap(), b"volatile", "buffer readable pre-crash");
        d.crash(None);
        assert_eq!(&*d.read(a).unwrap(), b"durable");
        assert_eq!(&*d.read(b).unwrap(), b"", "unsynced write lost");
    }

    #[test]
    fn crash_tears_last_append_at_seeded_offset() {
        for seed in 0..64u64 {
            let d = SimDisk::new(Duration::ZERO);
            d.append("wal", b"AAAA");
            d.sync();
            d.append("wal", b"BBBBBBBB");
            d.crash(Some(seed));
            let f = d.read_file("wal");
            assert!(f.starts_with(b"AAAA"), "synced prefix intact");
            assert!(f.len() < 12, "torn append keeps a strict prefix: {f:?}");
            assert!(f[4..].iter().all(|&c| c == b'B'));
        }
    }

    #[test]
    fn atomic_replace_never_tears() {
        for seed in 0..32u64 {
            let d = SimDisk::new(Duration::ZERO);
            d.write_file_atomic("CURRENT", b"manifest-1");
            d.sync();
            d.write_file_atomic("CURRENT", b"manifest-2");
            d.crash(Some(seed));
            let f = d.read_file("CURRENT");
            assert!(
                f == b"manifest-1" || f == b"manifest-2",
                "replace must be atomic, got {f:?}"
            );
        }
    }

    #[test]
    fn files_append_truncate_roundtrip() {
        let d = SimDisk::new(Duration::ZERO);
        d.append("log", b"one");
        d.append("log", b"two");
        assert_eq!(d.read_file("log"), b"onetwo", "buffered view");
        d.sync();
        d.truncate_file("log", 3);
        assert_eq!(d.read_file("log"), b"one");
        d.crash(None); // unsynced truncate dropped
        assert_eq!(d.read_file("log"), b"onetwo");
        assert_eq!(d.read_file("missing"), b"");
    }
}
