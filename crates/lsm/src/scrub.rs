//! Online scrub & repair: walk every manifest-live block plus the WAL and
//! manifest files, verify CRC framing, and fix what can be fixed while the
//! database keeps serving.
//!
//! ## Protocol
//!
//! [`Db::scrub`] runs three passes, cheapest authority first:
//!
//! 1. **Manifest/CURRENT** — the in-memory version is authoritative while
//!    the database is open, so any framing damage (bit-rotted CURRENT,
//!    torn or corrupt manifest log) is repaired by rotating to a fresh
//!    snapshot of the live version.
//! 2. **WAL** — the MemTable mirrors the log's unflushed tail, so a
//!    damaged log is repaired by flushing the MemTable (publishing the
//!    data through an SSTable) or, when the MemTable is empty, by plain
//!    truncation.
//! 3. **Data blocks** — every block of every live table is read *directly
//!    from the device* (bypassing the block cache: the scrub verifies what
//!    is actually on disk) and CRC-validated. Per block:
//!
//!    * transient read errors are retried under backoff and counted as
//!      healed; a transient storm that outlasts the budget aborts the
//!      scrub with a typed error (the scrub is retryable — nothing is
//!      half-done, because every table rewrite is one manifest
//!      transaction);
//!    * a clean block that was quarantined is **un-quarantined** — the
//!      scrub is the only path that lifts a quarantine;
//!    * a corrupt block with a clean copy still in the block cache is
//!      **repaired**: re-encoded, written to a fresh device block, and
//!      swapped into the table;
//!    * a corrupt block whose key range is fully covered by strictly
//!      newer data (MemTable + shallower tables) is **dropped** from the
//!      table — a targeted single-table compaction;
//!    * anything else stays **quarantined**.
//!
//!    Dropped *and* quarantined blocks both contribute a [`LostRange`]:
//!    keys in such a range may be missing or served stale (an older
//!    version below becomes visible). The report is the loss
//!    notification — nothing disappears silently.
//!
//! A table whose geometry changed is republished under a **new table id**
//! in a single manifest transaction (`RemoveTable` + `AddTable` +
//! re-mapped `Quarantine` edits), so a crash anywhere during the scrub
//! leaves either the old or the new table fully live. Tables that come out
//! fully clean get their filter rebuilt if the configuration wants one and
//! it was lost to a degraded open.

use crate::db::Db;
use crate::manifest::Edit;
use crate::sstable::{DecodedBlock, SsTable};
use crate::wal::{decode_frames, decode_single};
use memtree_common::error::Result;
use memtree_common::key::successor;
use memtree_faults::{fail_point, Backoff};
use std::sync::Arc;

/// Health verdict for one of the engine's framed files (WAL, manifest).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FileScrubOutcome {
    /// Every frame validated.
    #[default]
    Clean,
    /// Damage was found and the file was rewritten from live state.
    Repaired,
}

/// A key range whose stored entries may be missing or stale after a scrub
/// dropped or quarantined the block that held them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LostRange {
    /// Level of the table the block belonged to.
    pub level: usize,
    /// Id of the table the block belonged to (pre-rewrite id).
    pub table: u64,
    /// First key of the range (inclusive).
    pub lo: Vec<u8>,
    /// Last key of the range; see [`LostRange::hi_inclusive`].
    pub hi: Vec<u8>,
    /// Whether `hi` itself is inside the range (true only for a table's
    /// final block, whose range ends at the table's max key).
    pub hi_inclusive: bool,
}

impl LostRange {
    /// Does `key` fall inside this range?
    pub fn contains(&self, key: &[u8]) -> bool {
        key >= self.lo.as_slice()
            && (key < self.hi.as_slice() || (self.hi_inclusive && key == self.hi.as_slice()))
    }
}

/// What one [`Db::scrub`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Data blocks read and verified.
    pub blocks_scanned: u64,
    /// Bytes of block data read and verified.
    pub bytes_scanned: u64,
    /// Blocks that validated on the first (possibly retried) read.
    pub clean_blocks: u64,
    /// Blocks whose read hit transient faults that healed under retry.
    pub transient_healed: u64,
    /// Corrupt blocks rewritten from a clean block-cache copy.
    pub repaired_blocks: u64,
    /// Corrupt blocks dropped because strictly newer data covers them.
    pub dropped_blocks: u64,
    /// Blocks left quarantined when the scrub finished.
    pub quarantined_blocks: u64,
    /// Previously quarantined blocks that validated clean and were lifted.
    pub unquarantined_blocks: u64,
    /// Tables republished under a new id (repair, drop, or removal).
    pub tables_rewritten: u64,
    /// Filters rebuilt on tables that came out fully clean.
    pub filters_rebuilt: u64,
    /// WAL verdict.
    pub wal: FileScrubOutcome,
    /// Manifest/CURRENT verdict.
    pub manifest: FileScrubOutcome,
    /// Every key range whose data may be missing or stale. Empty iff no
    /// acknowledged data was put at risk.
    pub lost_ranges: Vec<LostRange>,
}

impl ScrubReport {
    /// True when nothing was damaged, degraded, or lost.
    pub fn is_clean(&self) -> bool {
        self.repaired_blocks == 0
            && self.dropped_blocks == 0
            && self.quarantined_blocks == 0
            && self.unquarantined_blocks == 0
            && self.tables_rewritten == 0
            && self.wal == FileScrubOutcome::Clean
            && self.manifest == FileScrubOutcome::Clean
            && self.lost_ranges.is_empty()
    }
}

/// Per-block verdict while a table is being scrubbed.
enum BlockState {
    /// Block stays, `block` is its (possibly fresh) device id; `data` is
    /// its decoded contents for count/filter rebuilds.
    Kept { block: u32, data: DecodedBlock },
    /// Block stays in the geometry but remains unreadable.
    Quarantined { block: u32 },
    /// Block leaves the geometry; the device block is released.
    Dropped { block: u32 },
}

impl Db {
    /// Online scrub & repair over every manifest-live block plus the WAL
    /// and manifest files. See the module docs for the full protocol. The
    /// database stays open and serviceable throughout; the returned
    /// [`ScrubReport`] lists every repair and every key range put at risk.
    pub fn scrub(&mut self) -> Result<ScrubReport> {
        let mut report = ScrubReport {
            manifest: self.scrub_manifest()?,
            ..Default::default()
        };
        report.wal = self.scrub_wal()?;
        for lvl in 0..self.levels.len() {
            let mut pos = 0;
            while pos < self.levels[lvl].len() {
                let removed = self.scrub_table(lvl, pos, &mut report)?;
                if !removed {
                    pos += 1;
                }
            }
            if lvl >= 1 && !self.overlapping {
                self.levels[lvl].sort_by(|a, b| a.min_key.cmp(&b.min_key));
            }
        }
        self.disk.sync();
        self.check_invariants()?;
        Ok(report)
    }

    fn scrub_manifest(&mut self) -> Result<FileScrubOutcome> {
        let current = self.manifest.borrow().current_file();
        let healthy = (|| {
            let name = decode_single(&self.disk.read_file(&current), "manifest-current").ok()?;
            if name != self.manifest.borrow().file().as_bytes() {
                return None;
            }
            let log_buf = self.disk.read_file(self.manifest.borrow().file());
            let log = decode_frames(&log_buf, "manifest").ok()?;
            (!log.torn).then_some(())
        })()
        .is_some();
        if healthy {
            return Ok(FileScrubOutcome::Clean);
        }
        let version = self.current_version();
        self.manifest.borrow_mut().rotate(&self.disk, &version)?;
        Ok(FileScrubOutcome::Repaired)
    }

    fn scrub_wal(&mut self) -> Result<FileScrubOutcome> {
        let raw = self.disk.read_file(&self.wal_file());
        if raw.is_empty() || decode_frames(&raw, "wal").map(|log| !log.torn).unwrap_or(false) {
            return Ok(FileScrubOutcome::Clean);
        }
        if self.memtable_is_empty() {
            self.discard_wal();
        } else {
            self.flush()?;
        }
        Ok(FileScrubOutcome::Repaired)
    }

    /// Scrubs one table in place; returns true when the table was removed
    /// from `levels[lvl]` entirely (so the caller must not advance `pos`).
    fn scrub_table(&mut self, lvl: usize, pos: usize, report: &mut ScrubReport) -> Result<bool> {
        let (old_id, blocks, fences, max_key, old_had_filter) = {
            let t = &self.levels[lvl][pos];
            (t.id, t.blocks.clone(), t.fences.clone(), t.max_key.clone(), t.has_filter())
        };
        let mut states: Vec<BlockState> = Vec::with_capacity(blocks.len());
        let mut fresh_blocks: Vec<u32> = Vec::new(); // written by repairs, unpublished
        let mut changed = false;
        for (bi, &block_id) in blocks.iter().enumerate() {
            let was_quarantined = self.quarantined.borrow().contains(&(old_id, bi as u32));
            let mut backoff = Backoff::new(8);
            let mut retried = false;
            let read = loop {
                match self.disk.read(block_id) {
                    Ok(raw) => break Ok(raw),
                    Err(e) => {
                        if backoff.retry(&e) {
                            retried = true;
                            continue;
                        }
                        break Err(e);
                    }
                }
            };
            report.blocks_scanned += 1;
            let decoded = match read {
                Ok(raw) => {
                    report.bytes_scanned += raw.len() as u64;
                    if retried {
                        report.transient_healed += 1;
                    }
                    SsTable::decode_block(&raw)
                }
                // A transient storm that outlasts the retry budget aborts
                // the scrub: the data is intact on disk and every table
                // already handled committed atomically, so re-running the
                // scrub later resumes safely.
                Err(e) if e.is_transient() => {
                    for &b in &fresh_blocks {
                        let _ = self.disk.release(b);
                    }
                    return Err(e);
                }
                Err(e) => Err(e),
            };
            match decoded {
                Ok(data) => {
                    report.clean_blocks += 1;
                    if was_quarantined {
                        report.unquarantined_blocks += 1;
                        changed = true;
                    }
                    states.push(BlockState::Kept { block: block_id, data });
                }
                Err(_) => {
                    // Persistent damage. Best repair first: a clean copy
                    // still in the block cache.
                    if let Some(cached) = self.cached_block(old_id, bi) {
                        if let Ok(nb) = self.disk.write(SsTable::encode_block(&cached)) {
                            fresh_blocks.push(nb);
                            report.repaired_blocks += 1;
                            changed = true;
                            states.push(BlockState::Kept {
                                block: nb,
                                data: cached.as_ref().clone(),
                            });
                            continue;
                        }
                    }
                    let (lo, hi, hi_inclusive) = if bi + 1 < fences.len() {
                        (fences[bi].clone(), fences[bi + 1].clone(), false)
                    } else {
                        (fences[bi].clone(), max_key.clone(), true)
                    };
                    let lost = LostRange { level: lvl, table: old_id, lo, hi, hi_inclusive };
                    if self.covered_by_newer(lvl, pos, &lost) {
                        report.dropped_blocks += 1;
                        changed = true;
                        states.push(BlockState::Dropped { block: block_id });
                    } else {
                        report.quarantined_blocks += 1;
                        if !was_quarantined {
                            changed = true;
                        }
                        states.push(BlockState::Quarantined { block: block_id });
                    }
                    report.lost_ranges.push(lost);
                }
            }
        }
        if !changed {
            // Geometry and quarantine state both stand. The only possible
            // improvement is a filter a degraded open withheld — safe to
            // (re)build now that every block verified clean.
            let fully_clean = states.iter().all(|s| matches!(s, BlockState::Kept { .. }));
            if fully_clean
                && !old_had_filter
                && !matches!(self.opts.filter, crate::db::FilterKind::None)
            {
                let keys: Vec<&[u8]> = states
                    .iter()
                    .filter_map(|s| match s {
                        BlockState::Kept { data, .. } => Some(data),
                        _ => None,
                    })
                    .flatten()
                    .map(|(k, _)| k.as_slice())
                    .collect();
                let filter = self.opts.filter;
                // A snapshot may still hold this table's `Arc`; mutating a
                // shared table is unsound, so skip the rebuild in that case
                // (filter absence is always safe — only a perf loss).
                if let Some(t) = Arc::get_mut(&mut self.levels[lvl][pos]) {
                    t.attach_filter(&keys, &filter);
                    report.filters_rebuilt += 1;
                }
            }
            return Ok(false);
        }
        self.republish_table(lvl, pos, old_id, states, fresh_blocks, report)
    }

    /// Commits a scrubbed table's new shape: one manifest transaction that
    /// removes the old id and (unless every block was dropped) adds the
    /// table back under a fresh id with re-mapped quarantine edits.
    fn republish_table(
        &mut self,
        lvl: usize,
        pos: usize,
        old_id: u64,
        states: Vec<BlockState>,
        mut fresh_blocks: Vec<u32>,
        report: &mut ScrubReport,
    ) -> Result<bool> {
        let old_fences = self.levels[lvl][pos].fences.clone();
        let old_max_key = self.levels[lvl][pos].max_key.clone();
        let old_filter_block = self.levels[lvl][pos].filter_block;
        let mut kept_blocks: Vec<u32> = Vec::new();
        let mut kept_fences: Vec<Vec<u8>> = Vec::new();
        let mut kept_data: Vec<Option<&DecodedBlock>> = Vec::new();
        let mut quarantined_bi: Vec<u32> = Vec::new();
        for (bi, s) in states.iter().enumerate() {
            match s {
                BlockState::Kept { block, data } => {
                    kept_blocks.push(*block);
                    kept_fences.push(old_fences[bi].clone());
                    kept_data.push(Some(data));
                }
                BlockState::Quarantined { block } => {
                    quarantined_bi.push(kept_blocks.len() as u32);
                    kept_blocks.push(*block);
                    kept_fences.push(old_fences[bi].clone());
                    kept_data.push(None);
                }
                BlockState::Dropped { .. } => {}
            }
        }
        // Crash window: repaired blocks are written but the manifest
        // transaction swapping them in has not committed. A crash (or
        // injected abort) here must leave the *old* table shape fully
        // live and the repair blocks as recoverable orphans — the
        // scrub-republish crash-oracle case drives this point.
        let abort = (|| -> Result<()> {
            fail_point!("lsm.scrub.republish");
            Ok(())
        })();
        if let Err(e) = abort {
            for &b in &fresh_blocks {
                let _ = self.disk.release(b);
            }
            return Err(e);
        }
        let commit = if kept_blocks.is_empty() {
            // Every block dropped: the table leaves the version outright.
            self.disk.sync();
            self.manifest
                .borrow_mut()
                .append(&self.disk, &[Edit::RemoveTable { id: old_id }])
                .map(|()| None)
        } else {
            let new_id = self.next_table_id;
            let num_entries: usize = kept_data.iter().flatten().map(|d| d.len()).sum();
            let num_tombstones: usize = kept_data
                .iter()
                .flatten()
                .map(|d| d.iter().filter(|(_, v)| v.is_none()).count())
                .sum();
            let mut table = SsTable {
                id: new_id,
                min_key: kept_fences[0].clone(),
                max_key: old_max_key,
                blocks: kept_blocks,
                fences: kept_fences,
                filter: None,
                filter_block: None,
                num_entries,
                num_tombstones,
            };
            if quarantined_bi.is_empty() {
                // Fully clean: build the configured filter from the
                // verified keys and persist a fresh image so the next open
                // keeps its O(tables) fast path.
                if !matches!(self.opts.filter, crate::db::FilterKind::None) {
                    let keys: Vec<&[u8]> =
                        kept_data.iter().flatten().flat_map(|d| d.iter()).map(|(k, _)| k.as_slice()).collect();
                    let filter = self.opts.filter;
                    table.attach_filter(&keys, &filter);
                    report.filters_rebuilt += 1;
                    if let Some(f) = &table.filter {
                        match self.disk.write(SsTable::encode_filter_image(f)) {
                            Ok(b) => {
                                fresh_blocks.push(b);
                                table.filter_block = Some(b);
                            }
                            Err(e) => {
                                for &b in &fresh_blocks {
                                    let _ = self.disk.release(b);
                                }
                                return Err(e);
                            }
                        }
                    }
                }
            } else {
                // Still-degraded: inherit the old filter when one exists.
                // It indexes dropped/unreachable keys too, which can only
                // cause safe false positives — never a false negative.
                // Skipped when a snapshot still shares the old table (its
                // filter stays with it); `None` only costs filter probes.
                // The persisted image block transfers to the new id either
                // way — the next open can still load it in one read.
                table.filter =
                    Arc::get_mut(&mut self.levels[lvl][pos]).and_then(|t| t.filter.take());
                table.filter_block = old_filter_block;
            }
            let mut edits = vec![Edit::RemoveTable { id: old_id }, Edit::AddTable(table.meta(lvl))];
            for &bi in &quarantined_bi {
                edits.push(Edit::Quarantine { table: new_id, block: bi });
            }
            // Data (repaired blocks) durable before the reference to it.
            self.disk.sync();
            self.manifest
                .borrow_mut()
                .append(&self.disk, &edits)
                .map(|()| Some(table))
        };
        let new_table = match commit {
            Ok(t) => t,
            Err(e) => {
                // Unpublished repair blocks must not leak.
                for &b in &fresh_blocks {
                    let _ = self.disk.release(b);
                }
                return Err(e);
            }
        };
        // Commit point. Drop stale cache entries keyed by the retired id,
        // re-map quarantine bookkeeping to the new id, and free every
        // device block the new shape no longer references.
        self.cache.invalidate_table(old_id);
        self.quarantined.borrow_mut().retain(|&(t, _)| t != old_id);
        let removed = new_table.is_none();
        if let Some(t) = new_table {
            self.next_table_id = t.id + 1;
            let mut q = self.quarantined.borrow_mut();
            for &bi in &quarantined_bi {
                q.insert((t.id, bi));
            }
            drop(q);
            let carried_filter_block = t.filter_block;
            let old = std::mem::replace(&mut self.levels[lvl][pos], Arc::new(t));
            for (bi, s) in states.iter().enumerate() {
                match s {
                    BlockState::Dropped { block } => self.disk.release(*block)?,
                    BlockState::Kept { block, .. } if *block != old.blocks[bi] => {
                        // Repaired: the rotted original is dead.
                        self.disk.release(old.blocks[bi])?;
                    }
                    _ => {}
                }
            }
            // The old filter image dies unless the new table inherited it.
            if let Some(fb) = old_filter_block {
                if carried_filter_block != Some(fb) {
                    self.disk.release(fb)?;
                }
            }
        } else {
            let old = self.levels[lvl].remove(pos);
            old.release(&self.disk)?;
        }
        report.tables_rewritten += 1;
        Ok(removed)
    }

    /// Is every key in `lost` covered by strictly newer data (MemTable,
    /// newer L0 tables, shallower levels)? "Covered" is a range-level
    /// argument — newer tables' `[min, max]` spans — so a dropped block is
    /// *likely* shadowed, not proven; that is why dropped blocks still
    /// report a [`LostRange`].
    fn covered_by_newer(&self, lvl: usize, pos: usize, lost: &LostRange) -> bool {
        let mut spans: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        if let Some(r) = self.memtable_range() {
            spans.push(r);
        }
        let mut newer_tables: Vec<&SsTable> = if lvl == 0 {
            self.levels[0][pos + 1..].iter().map(|t| t.as_ref()).collect()
        } else {
            self.levels[..lvl].iter().flatten().map(|t| t.as_ref()).collect()
        };
        if lvl >= 1 && self.overlapping {
            // Tiered runs at the same level are age-ordered newest-last:
            // later runs are strictly newer data too.
            newer_tables.extend(self.levels[lvl][pos + 1..].iter().map(|t| t.as_ref()));
        }
        for t in newer_tables {
            spans.push((t.min_key.clone(), t.max_key.clone()));
        }
        spans.sort();
        // Interval sweep: `cur` is the smallest key not yet covered.
        let mut cur = lost.lo.clone();
        let covered = |cur: &[u8]| {
            if lost.hi_inclusive {
                cur > lost.hi.as_slice()
            } else {
                cur >= lost.hi.as_slice()
            }
        };
        for (a, b) in spans {
            if covered(&cur) {
                return true;
            }
            if a > cur {
                return false; // gap below `cur` that nothing newer fills
            }
            let next = successor(&b);
            if next > cur {
                cur = next;
            }
        }
        covered(&cur)
    }
}
