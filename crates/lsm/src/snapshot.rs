//! Immutable point-in-time read views ([`DbSnapshot`]).
//!
//! A snapshot freezes everything a read needs — the MemTable contents
//! (copied into a sorted vector), the level structure (`Arc`-shared
//! tables), and the quarantine set — next to `Arc` handles on the shared
//! device and block cache. The result is `Send + Sync`: any number of
//! threads can run point gets and range scans against it while the owning
//! [`Db`] keeps absorbing writes, flushing, and compacting on its own
//! thread. Writers never wait for readers and readers never wait for
//! writers; the only shared mutable state is the striped block cache,
//! locked per stripe for microseconds at a time.
//!
//! Retired tables stay alive as long as any snapshot holds their `Arc`
//! (the `Db` parks them in a graveyard and releases their blocks only
//! after the last reference drops), so a snapshot taken before a
//! compaction reads exactly the data it was taken over.
//!
//! ## Fault policy
//!
//! Snapshot reads are *degraded, never escalating*: a quarantined or
//! persistently unreadable block is served as empty for this view (the
//! same answer the owning `Db` gives), transient faults are retried under
//! backoff, and a snapshot never quarantines a block or writes a manifest
//! edit — fault bookkeeping stays with the single writer.

use crate::db::{BlockCache, Db};
use crate::disk::SimDisk;
use crate::sstable::{DecodedBlock, SsTable};
use memtree_faults::Backoff;
use std::collections::HashSet;
use std::sync::Arc;

/// An immutable, `Send + Sync` point-in-time view of a [`Db`].
///
/// Created by [`Db::snapshot`]; see the module docs for semantics.
pub struct DbSnapshot {
    /// The MemTable at snapshot time, sorted; `None` = tombstone.
    pub(crate) mem: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    /// `levels[0]` newest-last; levels ≥ 1 key-ordered and disjoint under
    /// leveled compaction, age-ordered newest-last runs under tiered.
    pub(crate) levels: Vec<Vec<Arc<SsTable>>>,
    /// True when levels ≥ 1 hold overlapping runs (tiered compaction):
    /// deep levels are read newest-first like L0.
    pub(crate) overlapping: bool,
    /// Blocks known-bad at snapshot time; served as empty without a read.
    pub(crate) quarantined: HashSet<(u64, u32)>,
    pub(crate) disk: Arc<SimDisk>,
    pub(crate) cache: Arc<BlockCache>,
    /// Last WAL sequence number applied to this view.
    pub(crate) seq: u64,
}

impl Db {
    /// Freezes the current state into an immutable [`DbSnapshot`] that
    /// other threads can read while this `Db` keeps writing. Cost is one
    /// copy of the MemTable plus `Arc` bumps on every live table.
    pub fn snapshot(&self) -> DbSnapshot {
        let mut mem = Vec::new();
        self.memtable_entries(&mut mem);
        DbSnapshot {
            mem,
            levels: self.levels.clone(),
            overlapping: self.overlapping,
            quarantined: self.quarantined.borrow().clone(),
            disk: self.disk_handle(),
            cache: Arc::clone(&self.cache),
            seq: self.last_seq(),
        }
    }
}

/// One ordered source feeding the merge in [`DbSnapshot::scan_from`].
/// Sources are consulted newest-first; on a key tie the newest wins.
enum Source<'a> {
    /// The frozen MemTable slice.
    Mem {
        entries: &'a [(Vec<u8>, Option<Vec<u8>>)],
        idx: usize,
    },
    /// A streaming cursor over one table's blocks.
    Table(TableCursor<'a>),
}

struct TableCursor<'a> {
    table: &'a SsTable,
    /// Index into `table.blocks`; `== blocks.len()` when exhausted.
    block: usize,
    data: Arc<DecodedBlock>,
    pos: usize,
}

impl<'a> Source<'a> {
    fn peek(&self) -> Option<(&[u8], &Option<Vec<u8>>)> {
        match self {
            Source::Mem { entries, idx } => {
                entries.get(*idx).map(|(k, v)| (k.as_slice(), v))
            }
            Source::Table(c) => c.data.get(c.pos).map(|(k, v)| (k.as_slice(), v)),
        }
    }

    fn advance(&mut self, snap: &DbSnapshot) {
        match self {
            Source::Mem { idx, .. } => *idx += 1,
            Source::Table(c) => {
                c.pos += 1;
                // Skip exhausted and degraded-empty blocks.
                while c.pos >= c.data.len() && c.block + 1 < c.table.blocks.len() {
                    c.block += 1;
                    c.data = snap.fetch_block(c.table, c.block);
                    c.pos = 0;
                }
            }
        }
    }
}

impl DbSnapshot {
    /// The last WAL sequence number this view reflects.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Point lookup at snapshot time; newest version wins, a tombstone at
    /// any level answers `None` without consulting older levels.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        if let Ok(i) = self.mem.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            return self.mem[i].1.clone();
        }
        let probe = |table: &SsTable| -> Option<Option<Vec<u8>>> {
            if !table.covers(key) || (table.has_filter() && !table.filter_may_contain(key)) {
                return None;
            }
            let blk = self.fetch_block(table, table.candidate_block(key));
            blk.binary_search_by(|(k, _)| k.as_slice().cmp(key))
                .ok()
                .map(|i| blk[i].1.clone())
        };
        if let Some(l0) = self.levels.first() {
            for table in l0.iter().rev() {
                if let Some(v) = probe(table) {
                    return v;
                }
            }
        }
        for level in self.levels.iter().skip(1) {
            if self.overlapping {
                // Tiered runs overlap: scan newest-first like L0.
                for table in level.iter().rev() {
                    if let Some(v) = probe(table) {
                        return v;
                    }
                }
            } else {
                let idx = level.partition_point(|t| t.max_key.as_slice() < key);
                if let Some(table) = level.get(idx) {
                    if let Some(v) = probe(table) {
                        return v;
                    }
                }
            }
        }
        None
    }

    /// Merged range scan: up to `limit` live `(key, value)` entries with
    /// `lk <= key` (`< hk` when bounded), in key order, each the newest
    /// version at snapshot time. Tombstones are merged away.
    pub fn scan_from(
        &self,
        lk: &[u8],
        hk: Option<&[u8]>,
        limit: usize,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        // Build the newest-first source list: MemTable, then L0 newest-
        // last reversed, then each deeper level's overlapping tables
        // (disjoint within a level, so order within it is by key anyway).
        let mut sources: Vec<Source<'_>> = Vec::new();
        let start = self.mem.partition_point(|(k, _)| k.as_slice() < lk);
        sources.push(Source::Mem { entries: &self.mem, idx: start });
        let in_range = |t: &SsTable| {
            t.max_key.as_slice() >= lk && hk.is_none_or(|hk| t.min_key.as_slice() < hk)
        };
        if let Some(l0) = self.levels.first() {
            for table in l0.iter().rev().filter(|t| in_range(t)) {
                sources.push(Source::Table(self.open_cursor(table, lk)));
            }
        }
        for level in self.levels.iter().skip(1) {
            if self.overlapping {
                // Tiered runs are age-ordered newest-last; reverse so the
                // earlier source wins key ties, exactly like L0.
                for table in level.iter().rev().filter(|t| in_range(t)) {
                    sources.push(Source::Table(self.open_cursor(table, lk)));
                }
            } else {
                for table in level.iter().filter(|t| in_range(t)) {
                    sources.push(Source::Table(self.open_cursor(table, lk)));
                }
            }
        }
        loop {
            // Smallest key across sources; first (= newest) source wins
            // ties and provides the authoritative value.
            let mut best: Option<(usize, Vec<u8>)> = None;
            for (i, s) in sources.iter().enumerate() {
                if let Some((k, _)) = s.peek() {
                    if hk.is_some_and(|hk| k >= hk) {
                        continue;
                    }
                    if best.as_ref().is_none_or(|(_, b)| k < b.as_slice()) {
                        best = Some((i, k.to_vec()));
                    }
                }
            }
            let Some((winner, key)) = best else { break };
            let value = sources[winner].peek().and_then(|(_, v)| v.clone());
            for s in sources.iter_mut() {
                while s.peek().is_some_and(|(k, _)| k == key.as_slice()) {
                    s.advance(self);
                }
            }
            if let Some(v) = value {
                out.push((key, v));
                if out.len() == limit {
                    break;
                }
            }
        }
        out
    }

    fn open_cursor<'a>(&self, table: &'a SsTable, lk: &[u8]) -> TableCursor<'a> {
        let mut c = TableCursor {
            table,
            block: table.candidate_block(lk),
            data: Arc::new(Vec::new()),
            pos: 0,
        };
        if c.block < table.blocks.len() {
            c.data = self.fetch_block(table, c.block);
            c.pos = c.data.partition_point(|(k, _)| k.as_slice() < lk);
            while c.pos >= c.data.len() && c.block + 1 < table.blocks.len() {
                c.block += 1;
                c.data = self.fetch_block(table, c.block);
                c.pos = c.data.partition_point(|(k, _)| k.as_slice() < lk);
            }
        }
        c
    }

    /// Degraded block fetch: cache first, quarantined blocks are empty
    /// without a read, transients retry under backoff, and anything still
    /// unreadable is served as empty for this view only — a snapshot never
    /// quarantines, repairs, or persists anything.
    fn fetch_block(&self, table: &SsTable, block: usize) -> Arc<DecodedBlock> {
        if let Some(hit) = self.cache.get(table.id, block) {
            return hit;
        }
        if self.quarantined.contains(&(table.id, block as u32)) {
            return Arc::new(Vec::new());
        }
        let mut backoff = Backoff::new(8);
        loop {
            match self
                .disk
                .read(table.blocks[block])
                .and_then(|raw| SsTable::decode_block(&raw))
            {
                Ok(d) => {
                    let d = Arc::new(d);
                    self.cache.insert(table.id, block, Arc::clone(&d));
                    return d;
                }
                Err(e) if backoff.retry(&e) => continue,
                Err(_) => return Arc::new(Vec::new()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbOptions;
    use memtree_common::key::encode_u64;

    fn small_opts() -> DbOptions {
        DbOptions {
            memtable_bytes: 512,
            block_size: 128,
            cache_blocks: 8,
            ..DbOptions::default()
        }
    }

    #[test]
    fn snapshot_types_are_thread_safe() {
        fn send<T: Send>() {}
        fn send_sync<T: Send + Sync>() {}
        send::<Db>();
        send_sync::<DbSnapshot>();
        send_sync::<Arc<SsTable>>();
    }

    #[test]
    fn snapshot_is_frozen_while_db_moves_on() {
        let mut db = Db::new(small_opts());
        for i in 0..100u64 {
            db.put(&encode_u64(i), format!("v{i}").as_bytes()).unwrap();
        }
        let snap = db.snapshot();
        let seq_at_snap = snap.seq();
        // Mutate heavily after the snapshot: overwrites, deletes, flushes.
        for i in 0..100u64 {
            db.put(&encode_u64(i), b"overwritten").unwrap();
        }
        for i in 0..50u64 {
            db.delete(&encode_u64(i)).unwrap();
        }
        db.flush().unwrap();
        // The snapshot still answers from its frozen world.
        for i in 0..100u64 {
            assert_eq!(
                snap.get(&encode_u64(i)).as_deref(),
                Some(format!("v{i}").as_bytes()),
                "key {i} must read its snapshot-time version"
            );
        }
        assert_eq!(snap.seq(), seq_at_snap);
        // While the Db sees its own newer state.
        assert_eq!(db.get(&encode_u64(10)), None);
        assert_eq!(db.get(&encode_u64(60)).as_deref(), Some(&b"overwritten"[..]));
    }

    #[test]
    fn snapshot_survives_compaction_of_its_tables() {
        // Serialize with fault-arming tests: an armed read_corrupt window
        // in a sibling test corrupts this test's uncached compaction and
        // snapshot reads (the registry is process-global).
        let _g = memtree_faults::test_lock();
        let mut db = Db::new(small_opts());
        for i in 0..400u64 {
            db.put(&encode_u64(i), &[i as u8; 16]).unwrap();
        }
        db.flush().unwrap();
        let snap = db.snapshot();
        // Push enough new data through to force flushes + compactions that
        // retire every table the snapshot references.
        for round in 0..6u64 {
            for i in 0..400u64 {
                db.put(&encode_u64(i), &[round as u8; 24]).unwrap();
            }
            db.flush().unwrap();
        }
        for i in (0..400u64).step_by(7) {
            assert_eq!(
                snap.get(&encode_u64(i)).as_deref(),
                Some(&[i as u8; 16][..]),
                "snapshot read after compaction retired its tables"
            );
        }
        drop(snap);
        // With the snapshot gone the graveyard reaps on the next flush.
        db.put(b"post", b"post").unwrap();
        db.flush().unwrap();
        db.check_invariants().unwrap();
    }

    #[test]
    fn scan_merges_newest_versions_and_drops_tombstones() {
        let mut db = Db::new(small_opts());
        for i in 0..60u64 {
            db.put(&encode_u64(i), b"old").unwrap();
        }
        db.flush().unwrap();
        for i in (0..60u64).step_by(2) {
            db.put(&encode_u64(i), b"new").unwrap();
        }
        for i in (0..60u64).step_by(3) {
            db.delete(&encode_u64(i)).unwrap();
        }
        let snap = db.snapshot();
        let got = snap.scan_from(&encode_u64(0), None, usize::MAX);
        let mut want: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..60u64 {
            if i % 3 == 0 {
                continue; // tombstoned
            }
            let v: &[u8] = if i % 2 == 0 { b"new" } else { b"old" };
            want.push((encode_u64(i).to_vec(), v.to_vec()));
        }
        assert_eq!(got, want);
        // Bounded + limited forms agree with the full scan.
        assert_eq!(
            snap.scan_from(&encode_u64(10), Some(&encode_u64(20)), usize::MAX),
            want.iter()
                .filter(|(k, _)| {
                    k.as_slice() >= &encode_u64(10)[..] && k.as_slice() < &encode_u64(20)[..]
                })
                .cloned()
                .collect::<Vec<_>>()
        );
        assert_eq!(snap.scan_from(&encode_u64(0), None, 5), want[..5].to_vec());
    }

    #[test]
    fn scan_matches_db_seek_walk_across_many_levels() {
        let mut db = Db::new(small_opts());
        let mut state = 42u64;
        for _ in 0..800 {
            let r = memtree_common::hash::splitmix64(&mut state);
            let k = encode_u64(r % 300);
            if r % 5 == 0 {
                db.delete(&k).unwrap();
            } else {
                db.put(&k, &r.to_le_bytes()).unwrap();
            }
        }
        let snap = db.snapshot();
        let scanned = snap.scan_from(&[], None, usize::MAX);
        // Reference: walk the Db with seek/get.
        let mut want: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut low: Vec<u8> = Vec::new();
        while let crate::db::SeekResult::Found { key } = db.seek(&low, None) {
            if let Some(v) = db.get(&key) {
                want.push((key.clone(), v));
            }
            low = memtree_common::key::successor(&key);
        }
        assert_eq!(scanned, want);
        for (k, v) in &want {
            assert_eq!(snap.get(k).as_deref(), Some(v.as_slice()));
        }
    }
}
