//! The recovery oracle: crash at every injection point, recover, and
//! verify **prefix consistency** against an in-memory model.
//!
//! For each crashpoint × seed, a seeded workload runs against a small
//! memtable (forcing flushes and compactions through the fault) until the
//! armed point fires — then the disk "loses power" (optionally tearing
//! the last in-flight write at a seeded offset) and the database reopens.
//!
//! The contract checked after every recovery:
//!
//! 1. `last_seq()` = some prefix length `p` of the put history, with
//!    `p >= last_synced_seq()` observed before the crash — acknowledged
//!    writes survive;
//! 2. the recovered state equals **exactly** the fold of puts `1..=p` —
//!    no lost acknowledged record, no phantom suffix record, no
//!    half-applied compaction;
//! 3. structural invariants hold (`check_invariants`);
//! 4. the recovered database accepts new writes and survives a further
//!    clean reopen.
//!
//! Seeds come from `MEMTREE_FAULT_SEEDS` (`"lo..hi"`, default `0..32`),
//! so CI can shard the matrix across jobs.

use memtree_faults as faults;
use memtree_lsm::{Db, DbOptions, FilterKind};
use std::collections::BTreeMap;

/// Every fail point on the write/flush/compact paths. The two
/// recovery-only points (`lsm.manifest.rotate`, `lsm.current.swap`) never
/// evaluate during a workload; `crash_during_recovery_is_survivable`
/// covers them.
const CRASHPOINTS: [&str; 9] = [
    "lsm.wal.append",
    "lsm.wal.sync",
    "lsm.table.block_write",
    "lsm.flush.sync",
    "lsm.manifest.append",
    "lsm.manifest.sync",
    "lsm.wal.reset",
    "lsm.compact.begin",
    "lsm.compact.sync",
];

fn seed_range() -> std::ops::Range<u64> {
    let spec = std::env::var("MEMTREE_FAULT_SEEDS").unwrap_or_else(|_| "0..32".to_string());
    let (lo, hi) = spec
        .split_once("..")
        .unwrap_or_else(|| panic!("MEMTREE_FAULT_SEEDS must look like '0..32', got {spec:?}"));
    let parse = |s: &str| {
        s.trim()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("bad bound {s:?} in MEMTREE_FAULT_SEEDS: {e}"))
    };
    parse(lo)..parse(hi)
}

fn opts_for(seed: u64) -> DbOptions {
    DbOptions {
        // Small memtable: the workload crosses many flush/compaction
        // boundaries, so the armed point sits on a hot path.
        memtable_bytes: 2 << 10,
        l0_tables: 2,
        l1_tables: 2,
        filter: [FilterKind::None, FilterKind::Bloom(10.0), FilterKind::SurfReal(6)]
            [(seed % 3) as usize],
        wal_group_commit: [1usize, 4, 16][(seed / 3 % 3) as usize],
        ..Default::default()
    }
}

fn key_of(i: u64) -> Vec<u8> {
    // ~200 distinct keys: plenty of overwrites, so compactions must keep
    // the *newest* version and recovery must not resurrect older ones.
    let mut s = i % 200;
    memtree_common::key::encode_u64(memtree_common::hash::splitmix64(&mut s)).to_vec()
}

fn value_of(i: u64) -> Vec<u8> {
    format!("v{i:06}").into_bytes()
}

/// One crash-recover-verify cycle. Returns whether the armed point fired.
fn run_case(point: &str, seed: u64) -> bool {
    let opts = opts_for(seed);
    let mut db = Db::new(opts.clone());
    // Probability tiers: always / often / rarely — late firings crash in
    // deeper states (mid-compaction chains) than first-call firings.
    let probability = [1.0, 0.3, 0.05][(seed % 3) as usize];
    faults::enable(seed);
    faults::arm(point, probability, Some(1));

    // ~2000 puts of ~15 bytes against a 2 KiB memtable: ≈15 flushes and a
    // steady stream of compactions, so every point gets many evaluations.
    let total_puts = 2000 + (seed % 7) * 31;
    let mut issued = 0u64;
    for i in 1..=total_puts {
        match db.put(&key_of(i), &value_of(i)) {
            Ok(seq) => {
                assert_eq!(seq, i, "seqs are dense while puts succeed");
                issued = i;
            }
            Err(_) => {
                issued = i; // the failed put may or may not have logged
                break;
            }
        }
    }
    let fired = faults::trips(point) > 0;
    faults::disable();

    let acked = db.last_synced_seq();
    let disk = db.disk_handle();
    drop(db);
    let tear = if seed % 2 == 0 { Some(seed.wrapping_mul(0x9E37_79B9)) } else { None };
    disk.crash(tear);

    let db = Db::open(disk, opts.clone()).unwrap_or_else(|e| {
        panic!("recovery after crash at {point} (seed {seed}) failed: {e:?}")
    });
    db.check_invariants()
        .unwrap_or_else(|e| panic!("invariants broken after {point}/{seed}: {e:?}"));

    // 1. The recovered prefix covers everything acknowledged.
    let p = db.last_seq();
    assert!(
        p >= acked && p <= issued,
        "{point}/{seed}: recovered prefix {p} outside [acked {acked}, issued {issued}]"
    );

    // 2. The state is exactly the fold of puts 1..=p.
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for i in 1..=p {
        model.insert(key_of(i), value_of(i));
    }
    for (k, v) in &model {
        assert_eq!(
            db.get(k).as_deref(),
            Some(v.as_slice()),
            "{point}/{seed}: lost record at or below recovered seq {p}"
        );
    }
    // Keys whose *only* writes are in the lost suffix must be absent
    // (phantom detection); keys overwritten after p must hold the
    // prefix-time value (checked above via `model`).
    for i in (p + 1)..=issued {
        let k = key_of(i);
        if !model.contains_key(&k) {
            assert_eq!(db.get(&k), None, "{point}/{seed}: phantom record {i}");
        }
    }

    // 3. The recovered database is live: absorb new writes, flush through
    // a fresh manifest transaction, and survive a clean reopen.
    let mut db = db;
    for i in (issued + 1)..=(issued + 40) {
        db.put(&key_of(i), &value_of(i)).unwrap();
        model.insert(key_of(i), value_of(i));
    }
    let disk = db.close().unwrap();
    let db = Db::open(disk, opts)
        .unwrap_or_else(|e| panic!("clean reopen after {point}/{seed} failed: {e:?}"));
    assert_eq!(db.wal_stats().replayed_records, 0, "clean shutdown replays nothing");
    for (k, v) in &model {
        assert_eq!(db.get(k).as_deref(), Some(v.as_slice()), "{point}/{seed}: post-recovery write lost");
    }
    fired
}

#[test]
fn every_crashpoint_recovers_the_acknowledged_prefix() {
    let _guard = faults::test_lock();
    let seeds = seed_range();
    assert!(!seeds.is_empty(), "empty MEMTREE_FAULT_SEEDS range");
    for point in CRASHPOINTS {
        let mut fired = 0u64;
        for seed in seeds.clone() {
            if run_case(point, seed) {
                fired += 1;
            }
        }
        // Probability tiers mean not every seed fires, but a point that
        // never fires across the whole seed range is a dead crashpoint
        // (e.g. renamed in the engine but not here).
        assert!(
            fired > 0,
            "{point}: never fired across seeds {seeds:?} — stale crashpoint name?"
        );
    }
}

#[test]
fn crash_during_recovery_is_survivable() {
    // Double-fault: the first recovery itself is interrupted (rotation and
    // CURRENT swap are on the recovery path), then a second recovery runs
    // clean. Nothing acknowledged may be lost across the pile-up.
    let _guard = faults::test_lock();
    for seed in seed_range() {
        let opts = opts_for(seed);
        let mut db = Db::new(opts.clone());
        for i in 1..=120u64 {
            db.put(&key_of(i), &value_of(i)).unwrap();
        }
        let acked = db.last_synced_seq();
        let disk = db.disk_handle();
        drop(db);
        disk.crash(if seed % 2 == 0 { Some(seed) } else { None });

        let point = ["lsm.manifest.rotate", "lsm.current.swap"][(seed % 2) as usize];
        faults::enable(seed);
        faults::arm(point, 1.0, Some(1));
        let first = Db::open(disk.clone(), opts.clone());
        faults::disable();
        if let Ok(db) = first {
            // Rotation fired after its durable work or never evaluated;
            // either way this handle is fully recovered.
            drop(db);
        }
        disk.crash(Some(seed ^ 0xDEAD));

        let db = Db::open(disk, opts)
            .unwrap_or_else(|e| panic!("second recovery failed ({point}/{seed}): {e:?}"));
        let p = db.last_seq();
        assert!(p >= acked, "{point}/{seed}: double-fault lost acked records");
        for i in 1..=p {
            let mut want = None;
            for j in (1..=p).rev() {
                if key_of(j) == key_of(i) {
                    want = Some(value_of(j));
                    break;
                }
            }
            assert_eq!(db.get(&key_of(i)), want, "{point}/{seed}: record {i}");
        }
    }
}
