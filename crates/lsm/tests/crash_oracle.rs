//! The recovery oracle: crash at every injection point, recover, and
//! verify **prefix consistency** against an in-memory model.
//!
//! For each crashpoint × seed, a seeded workload runs against a small
//! memtable (forcing flushes and compactions through the fault) until the
//! armed point fires — then the disk "loses power" (optionally tearing
//! the last in-flight write at a seeded offset) and the database reopens.
//!
//! The contract checked after every recovery:
//!
//! 1. `last_seq()` = some prefix length `p` of the put history, with
//!    `p >= last_synced_seq()` observed before the crash — acknowledged
//!    writes survive;
//! 2. the recovered state equals **exactly** the fold of puts `1..=p` —
//!    no lost acknowledged record, no phantom suffix record, no
//!    half-applied compaction;
//! 3. structural invariants hold (`check_invariants`);
//! 4. the recovered database accepts new writes and survives a further
//!    clean reopen.
//!
//! Seeds come from `MEMTREE_FAULT_SEEDS` (`"lo..hi"`, default `0..32`),
//! so CI can shard the matrix across jobs.

use memtree_common::error::MemtreeError;
use memtree_faults as faults;
use memtree_lsm::{CompactionConfig, Db, DbOptions, FilterKind, StallConfig};
use std::collections::BTreeMap;

/// Every fail point on the write/flush/compact paths. The two
/// recovery-only points (`lsm.manifest.rotate`, `lsm.current.swap`) never
/// evaluate during a workload; `crash_during_recovery_is_survivable`
/// covers them.
const CRASHPOINTS: [&str; 11] = [
    "lsm.wal.append",
    "lsm.wal.sync",
    "lsm.disk.write_fault",
    "lsm.table.block_write",
    "lsm.flush.filter_block",
    "lsm.flush.sync",
    "lsm.manifest.append",
    "lsm.manifest.sync",
    "lsm.wal.reset",
    "lsm.compact.begin",
    "lsm.compact.sync",
];

fn seed_range() -> std::ops::Range<u64> {
    let spec = std::env::var("MEMTREE_FAULT_SEEDS").unwrap_or_else(|_| "0..32".to_string());
    let (lo, hi) = spec
        .split_once("..")
        .unwrap_or_else(|| panic!("MEMTREE_FAULT_SEEDS must look like '0..32', got {spec:?}"));
    let parse = |s: &str| {
        s.trim()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("bad bound {s:?} in MEMTREE_FAULT_SEEDS: {e}"))
    };
    parse(lo)..parse(hi)
}

fn opts_for(seed: u64) -> DbOptions {
    DbOptions {
        // Small memtable: the workload crosses many flush/compaction
        // boundaries, so the armed point sits on a hot path.
        memtable_bytes: 2 << 10,
        l0_tables: 2,
        l1_tables: 2,
        filter: [FilterKind::None, FilterKind::Bloom(10.0), FilterKind::SurfReal(6)]
            [(seed % 3) as usize],
        wal_group_commit: [1usize, 4, 16][(seed / 3 % 3) as usize],
        // Half the matrix runs each compaction policy: crash consistency
        // must hold under both level shapes.
        compaction: if seed % 2 == 0 {
            CompactionConfig::Leveled { fanout: 10 }
        } else {
            CompactionConfig::Tiered { tiers_per_level: 3 }
        },
        ..Default::default()
    }
}

fn key_of(i: u64) -> Vec<u8> {
    // ~200 distinct keys: plenty of overwrites, so compactions must keep
    // the *newest* version and recovery must not resurrect older ones.
    let mut s = i % 200;
    memtree_common::key::encode_u64(memtree_common::hash::splitmix64(&mut s)).to_vec()
}

fn value_of(i: u64) -> Vec<u8> {
    format!("v{i:06}").into_bytes()
}

/// Seeded op mix: ~1 in 5 operations is a delete, so tombstones ride
/// through every flush, compaction, and crash the oracle provokes.
fn op_is_delete(seed: u64, i: u64) -> bool {
    let mut s = seed ^ i.wrapping_mul(0x517c_c1b7_2722_0a95);
    memtree_common::hash::splitmix64(&mut s) % 5 == 0
}

/// The fold of operations `1..=p` (puts and deletes) into final state.
fn fold_model(seed: u64, p: u64) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut model = BTreeMap::new();
    for i in 1..=p {
        if op_is_delete(seed, i) {
            model.remove(&key_of(i));
        } else {
            model.insert(key_of(i), value_of(i));
        }
    }
    model
}

/// Checks the whole 200-key space against the model: catches lost
/// records, phantom suffix records, and resurrected deleted keys alike.
fn assert_matches_model(db: &Db, model: &BTreeMap<Vec<u8>, Vec<u8>>, ctx: &str) {
    for i in 0..200u64 {
        let k = key_of(i);
        assert_eq!(db.get(&k), model.get(&k).cloned(), "{ctx}: key {i}");
    }
}

/// One crash-recover-verify cycle. Returns whether the armed point fired.
fn run_case(point: &str, seed: u64) -> bool {
    let opts = opts_for(seed);
    let mut db = Db::new(opts.clone());
    // Probability tiers: always / often / rarely — late firings crash in
    // deeper states (mid-compaction chains) than first-call firings.
    let probability = [1.0, 0.3, 0.05][(seed % 3) as usize];
    faults::enable(seed);
    faults::arm(point, probability, Some(1));

    // ~2000 puts of ~15 bytes against a 2 KiB memtable: ≈15 flushes and a
    // steady stream of compactions, so every point gets many evaluations.
    let total_puts = 2000 + (seed % 7) * 31;
    let mut issued = 0u64;
    for i in 1..=total_puts {
        let result = if op_is_delete(seed, i) {
            db.delete(&key_of(i))
        } else {
            db.put(&key_of(i), &value_of(i))
        };
        match result {
            Ok(seq) => {
                assert_eq!(seq, i, "seqs are dense while writes succeed");
                issued = i;
            }
            Err(_) => {
                issued = i; // the failed write may or may not have logged
                break;
            }
        }
    }
    let fired = faults::trips(point) > 0;
    faults::disable();

    let acked = db.last_synced_seq();
    let disk = db.disk_handle();
    drop(db);
    let tear = if seed % 2 == 0 { Some(seed.wrapping_mul(0x9E37_79B9)) } else { None };
    disk.crash(tear);

    let db = Db::open(disk, opts.clone()).unwrap_or_else(|e| {
        panic!("recovery after crash at {point} (seed {seed}) failed: {e:?}")
    });
    db.check_invariants()
        .unwrap_or_else(|e| panic!("invariants broken after {point}/{seed}: {e:?}"));

    // 1. The recovered prefix covers everything acknowledged.
    let p = db.last_seq();
    assert!(
        p >= acked && p <= issued,
        "{point}/{seed}: recovered prefix {p} outside [acked {acked}, issued {issued}]"
    );

    // 2. The state is exactly the fold of operations 1..=p: no lost
    // record, no phantom suffix record, no resurrected deleted key.
    let mut model = fold_model(seed, p);
    assert_matches_model(&db, &model, &format!("{point}/{seed} after recovery"));

    // 3. The recovered database is live: absorb new writes (and deletes),
    // flush through a fresh manifest transaction, and survive a clean
    // reopen.
    let mut db = db;
    for i in (issued + 1)..=(issued + 40) {
        if op_is_delete(seed, i) {
            db.delete(&key_of(i)).unwrap();
            model.remove(&key_of(i));
        } else {
            db.put(&key_of(i), &value_of(i)).unwrap();
            model.insert(key_of(i), value_of(i));
        }
    }
    let disk = db.close().unwrap();
    let db = Db::open(disk, opts)
        .unwrap_or_else(|e| panic!("clean reopen after {point}/{seed} failed: {e:?}"));
    assert_eq!(db.wal_stats().replayed_records, 0, "clean shutdown replays nothing");
    assert_matches_model(&db, &model, &format!("{point}/{seed} after clean reopen"));
    fired
}

#[test]
fn every_crashpoint_recovers_the_acknowledged_prefix() {
    let _guard = faults::test_lock();
    let seeds = seed_range();
    assert!(!seeds.is_empty(), "empty MEMTREE_FAULT_SEEDS range");
    for point in CRASHPOINTS {
        let mut fired = 0u64;
        for seed in seeds.clone() {
            if run_case(point, seed) {
                fired += 1;
            }
        }
        // Probability tiers mean not every seed fires, but a point that
        // never fires across the whole seed range is a dead crashpoint
        // (e.g. renamed in the engine but not here).
        assert!(
            fired > 0,
            "{point}: never fired across seeds {seeds:?} — stale crashpoint name?"
        );
    }
}

#[test]
fn crash_during_recovery_is_survivable() {
    // Double-fault: the first recovery itself is interrupted (rotation and
    // CURRENT swap are on the recovery path), then a second recovery runs
    // clean. Nothing acknowledged may be lost across the pile-up.
    let _guard = faults::test_lock();
    for seed in seed_range() {
        let opts = opts_for(seed);
        let mut db = Db::new(opts.clone());
        for i in 1..=120u64 {
            if op_is_delete(seed, i) {
                db.delete(&key_of(i)).unwrap();
            } else {
                db.put(&key_of(i), &value_of(i)).unwrap();
            }
        }
        let acked = db.last_synced_seq();
        let disk = db.disk_handle();
        drop(db);
        disk.crash(if seed % 2 == 0 { Some(seed) } else { None });

        let point = ["lsm.manifest.rotate", "lsm.current.swap"][(seed % 2) as usize];
        faults::enable(seed);
        faults::arm(point, 1.0, Some(1));
        let first = Db::open(disk.clone(), opts.clone());
        faults::disable();
        if let Ok(db) = first {
            // Rotation fired after its durable work or never evaluated;
            // either way this handle is fully recovered.
            drop(db);
        }
        disk.crash(Some(seed ^ 0xDEAD));

        let db = Db::open(disk, opts)
            .unwrap_or_else(|e| panic!("second recovery failed ({point}/{seed}): {e:?}"));
        let p = db.last_seq();
        assert!(p >= acked, "{point}/{seed}: double-fault lost acked records");
        let model = fold_model(seed, p);
        assert_matches_model(&db, &model, &format!("{point}/{seed} after double fault"));
    }
}

/// Stall-band oracle: with write stalls armed tighter than the compaction
/// trigger and auto-compaction off, a workload must see typed
/// `Backpressure`/`Stalled` rejections, every rejection must have **zero
/// side effects** (the retry's sequence number proves nothing was
/// half-logged), `compact_debt` must always drain enough for the retry to
/// eventually land — and a crash mid-churn must still recover an exact
/// acknowledged prefix.
#[test]
fn stall_bands_reject_typed_then_drain_and_recover_across_crash() {
    let _guard = faults::test_lock();
    for seed in seed_range() {
        let opts = DbOptions {
            stall: StallConfig {
                slowdown_l0_runs: 1,
                stop_l0_runs: 3,
                slowdown_memtable_bytes: 8 << 10,
                stop_memtable_bytes: 16 << 10,
            },
            compact_on_flush: false,
            ..opts_for(seed)
        };
        let mut db = Db::new(opts.clone());
        let mut rejections = 0u64;
        let mut issued = 0u64;
        for i in 1..=800u64 {
            loop {
                let result = if op_is_delete(seed, i) {
                    db.delete(&key_of(i))
                } else {
                    db.put(&key_of(i), &value_of(i))
                };
                match result {
                    Ok(seq) => {
                        // Dense seqs across rejections: a rejected write
                        // left nothing behind, not even a seq allocation.
                        assert_eq!(seq, i, "seed {seed}: rejection had side effects");
                        issued = i;
                        break;
                    }
                    Err(e) if e.is_overload() => {
                        rejections += 1;
                        if matches!(e, MemtreeError::Stalled { .. }) {
                            let _ = db.flush();
                        }
                        db.compact_debt()
                            .unwrap_or_else(|e| panic!("seed {seed}: drain failed: {e:?}"));
                    }
                    Err(e) => panic!("seed {seed}: untyped write error: {e:?}"),
                }
            }
        }
        assert!(rejections > 0, "seed {seed}: bands this tight must reject");
        let stats = db.stats();
        assert!(
            stats.backpressure_rejections + stats.stall_rejections >= rejections,
            "seed {seed}: rejection accounting lost events: {stats:?}"
        );
        assert!(stats.compact_steps > 0, "seed {seed}: no drain ran: {stats:?}");

        let acked = db.last_synced_seq();
        let disk = db.disk_handle();
        drop(db);
        disk.crash(if seed % 2 == 0 { Some(seed) } else { None });
        let db = Db::open(disk, opts)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e:?}"));
        db.check_invariants().unwrap();
        let p = db.last_seq();
        assert!(
            p >= acked && p <= issued,
            "seed {seed}: recovered prefix {p} outside [acked {acked}, issued {issued}]"
        );
        let model = fold_model(seed, p);
        assert_matches_model(&db, &model, &format!("stall-band crash, seed {seed}"));
    }
}

/// Filter-image corruption oracle: flip one seeded bit in **every**
/// persisted filter-image block, reopen, and demand zero wrong answers.
/// The CRC frame must catch each flip, the open must fall back to
/// rebuilding each filter from its (intact) data blocks, and the rebuilt
/// filters must still serve the full key space exactly — under both
/// compaction policies.
#[test]
fn filter_image_bitrot_rebuilds_with_zero_wrong_answers() {
    let _guard = faults::test_lock();
    for seed in seed_range() {
        let opts = DbOptions {
            // Force a filter (a filterless config has no image to rot).
            filter: [FilterKind::Bloom(10.0), FilterKind::SurfReal(6)][(seed % 2) as usize],
            ..opts_for(seed)
        };
        let mut db = Db::new(opts.clone());
        let total = 1200u64;
        for i in 1..=total {
            if op_is_delete(seed, i) {
                db.delete(&key_of(i)).unwrap();
            } else {
                db.put(&key_of(i), &value_of(i)).unwrap();
            }
        }
        let disk = db.close().unwrap();
        let clean = Db::open(disk, opts.clone()).unwrap();
        let images = clean.filter_block_ids();
        assert!(!images.is_empty(), "seed {seed}: no filter images to corrupt");
        let tables: u64 = clean.level_sizes().iter().map(|&s| s as u64).sum();
        assert_eq!(clean.filters_loaded(), tables, "seed {seed}: clean open loads all");
        let disk = clean.close().unwrap();
        for &b in &images {
            disk.bitrot_block(b, seed).unwrap();
        }
        let db = Db::open(disk, opts)
            .unwrap_or_else(|e| panic!("seed {seed}: open died on rotten images: {e:?}"));
        db.check_invariants().unwrap();
        assert_eq!(
            db.filter_images_corrupt(),
            images.len() as u64,
            "seed {seed}: every single-bit flip must be caught"
        );
        assert_eq!(db.filters_rebuilt(), images.len() as u64, "seed {seed}: rebuild fallback");
        assert_eq!(db.degraded_tables(), 0, "seed {seed}: data is intact, no degrade");
        let model = fold_model(seed, total);
        assert_matches_model(&db, &model, &format!("seed {seed} after image bitrot"));
    }
}

/// Resurrection oracle: a deleted key must stay dead through a crash,
/// recovery, and however many compactions it takes for its tombstone to
/// reach the bottom level and be dropped. A tombstone dropped too early
/// (while an older version still lives below) would resurface the old
/// value here.
#[test]
fn deleted_keys_stay_dead_across_crash_and_compaction() {
    let _guard = faults::test_lock();
    for seed in seed_range() {
        let opts = opts_for(seed);
        let mut db = Db::new(opts.clone());
        // Phase 1: seed every key with several overwritten generations so
        // old versions pile up in deep levels.
        for i in 1..=800u64 {
            db.put(&key_of(i), &value_of(i)).unwrap();
        }
        // Phase 2: deletes mixed with puts, then crash mid-history.
        let mut issued = 800u64;
        for i in 801..=1400u64 {
            if op_is_delete(seed, i) {
                db.delete(&key_of(i)).unwrap();
            } else {
                db.put(&key_of(i), &value_of(i)).unwrap();
            }
            issued = i;
        }
        let acked = db.last_synced_seq();
        let disk = db.disk_handle();
        drop(db);
        disk.crash(if seed % 2 == 0 { Some(seed) } else { None });

        let mut db = Db::open(disk, opts.clone())
            .unwrap_or_else(|e| panic!("recovery failed (seed {seed}): {e:?}"));
        let p = db.last_seq();
        assert!(p >= acked && p <= issued, "seed {seed}: bad recovered prefix {p}");
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for i in 1..=800.min(p) {
            model.insert(key_of(i), value_of(i));
        }
        for i in 801..=p {
            if op_is_delete(seed, i) {
                model.remove(&key_of(i));
            } else {
                model.insert(key_of(i), value_of(i));
            }
        }
        assert_matches_model(&db, &model, &format!("seed {seed} after recovery"));

        // Phase 3: churn hard enough that the tombstones migrate down and
        // are eventually dropped at the bottom — the deleted keys must
        // stay dead the whole way, and seeks must not step onto them.
        for i in (issued + 1)..=(issued + 1200) {
            if op_is_delete(seed, i) {
                db.delete(&key_of(i)).unwrap();
                model.remove(&key_of(i));
            } else {
                db.put(&key_of(i), &value_of(i)).unwrap();
                model.insert(key_of(i), value_of(i));
            }
        }
        assert_matches_model(&db, &model, &format!("seed {seed} after churn"));
        let disk = db.close().unwrap();
        let db = Db::open(disk, opts)
            .unwrap_or_else(|e| panic!("clean reopen failed (seed {seed}): {e:?}"));
        assert_matches_model(&db, &model, &format!("seed {seed} after reopen"));
        // Seek sweep: walking the whole key space must surface exactly the
        // model's keys — a tombstone visible to `seek` is a live leak.
        let mut at = Vec::new();
        let mut seen = 0usize;
        loop {
            match db.next_after(&at, None) {
                memtree_lsm::SeekResult::Found { key } => {
                    assert!(model.contains_key(&key), "seed {seed}: seek surfaced dead key");
                    seen += 1;
                    at = key;
                }
                memtree_lsm::SeekResult::NotFound => break,
            }
        }
        assert_eq!(seen, model.len(), "seed {seed}: seek missed live keys");
    }
}
