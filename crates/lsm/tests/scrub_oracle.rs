//! The latent-fault oracle: inject every fault class the simulated disk
//! supports — post-sync bit rot, transient read errors, capacity
//! exhaustion — and prove, differentially against a `BTreeMap` model,
//! that the engine never *silently* loses an acknowledged, non-deleted
//! key. Any key the database cannot serve correctly after corruption
//! must fall inside a [`memtree_lsm::LostRange`] reported by
//! [`memtree_lsm::Db::scrub`] — loss is allowed only with a receipt.
//!
//! Seeds come from `MEMTREE_FAULT_SEEDS` (`"lo..hi"`, default `0..32`),
//! so CI can shard the matrix across jobs.

use memtree_common::hash::splitmix64;
use memtree_common::key::encode_u64;
use memtree_faults as faults;
use memtree_lsm::{CompactionConfig, Db, DbOptions, FileScrubOutcome, FilterKind, ScrubReport};
use std::collections::BTreeMap;
use std::sync::Arc;

const KEYSPACE: u64 = 150;

fn seed_range() -> std::ops::Range<u64> {
    let spec = std::env::var("MEMTREE_FAULT_SEEDS").unwrap_or_else(|_| "0..32".to_string());
    let (lo, hi) = spec
        .split_once("..")
        .unwrap_or_else(|| panic!("MEMTREE_FAULT_SEEDS must look like '0..32', got {spec:?}"));
    let parse = |s: &str| {
        s.trim()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("bad bound {s:?} in MEMTREE_FAULT_SEEDS: {e}"))
    };
    parse(lo)..parse(hi)
}

fn opts_for(seed: u64) -> DbOptions {
    DbOptions {
        // Small memtable and blocks: many flushes, compactions, and
        // multi-block tables, so corruption can land in any level and
        // any block position.
        memtable_bytes: 2 << 10,
        block_size: 512,
        l0_tables: 2,
        l1_tables: 2,
        filter: [FilterKind::None, FilterKind::Bloom(10.0), FilterKind::SurfReal(6)]
            [(seed % 3) as usize],
        ..Default::default()
    }
}

fn key_of(i: u64) -> Vec<u8> {
    let mut s = i % KEYSPACE;
    encode_u64(splitmix64(&mut s)).to_vec()
}

fn value_of(i: u64) -> Vec<u8> {
    format!("v{i:06}").into_bytes()
}

fn op_is_delete(seed: u64, i: u64) -> bool {
    let mut s = seed ^ i.wrapping_mul(0x517c_c1b7_2722_0a95);
    splitmix64(&mut s) % 5 == 0
}

/// Seeded put/delete workload; returns the database and its model.
fn build_workload(seed: u64, ops: u64) -> (Db, BTreeMap<Vec<u8>, Vec<u8>>) {
    let mut db = Db::new(opts_for(seed));
    let mut model = BTreeMap::new();
    for i in 1..=ops {
        if op_is_delete(seed, i) {
            db.delete(&key_of(i)).unwrap();
            model.remove(&key_of(i));
        } else {
            db.put(&key_of(i), &value_of(i)).unwrap();
            model.insert(key_of(i), value_of(i));
        }
    }
    (db, model)
}

/// The core contract: every key the database answers differently from the
/// model must be covered by a reported lost range.
fn assert_no_silent_loss(
    db: &Db,
    model: &BTreeMap<Vec<u8>, Vec<u8>>,
    report: &ScrubReport,
    ctx: &str,
) {
    let mut mismatches = 0usize;
    for i in 0..KEYSPACE {
        let k = key_of(i);
        let got = db.get(&k);
        let want = model.get(&k).cloned();
        if got == want {
            continue;
        }
        mismatches += 1;
        assert!(
            report.lost_ranges.iter().any(|r| r.contains(&k)),
            "{ctx}: key {i} answers {got:?} (model {want:?}) outside every \
             reported lost range — silent loss"
        );
    }
    if !report.lost_ranges.is_empty() {
        // Having ranges with zero mismatches is legal (the damage may sit
        // under newer data) — but mismatches without ranges never are,
        // and that direction is what the per-key asserts above enforce.
        let _ = mismatches;
    }
}

fn live_blocks(disk: &Arc<memtree_lsm::SimDisk>) -> Vec<u32> {
    (0..disk.block_slots() as u32).filter(|&id| disk.is_live(id)).collect()
}

/// Latent bit rot: flip a seeded bit in 1–4 live data blocks after a
/// clean shutdown, reopen (possibly degraded), scrub, and check the
/// no-silent-loss contract — then again after a further reopen, since
/// quarantines and rewrites must persist through the manifest.
#[test]
fn bitrot_differential_never_loses_a_key_silently() {
    let _guard = faults::test_lock();
    for seed in seed_range() {
        let (db, model) = build_workload(seed, 1200);
        let disk = db.close().unwrap();
        let blocks = live_blocks(&disk);
        assert!(!blocks.is_empty(), "seed {seed}: workload left no live blocks");
        let victims = (1 + (seed % 4) as usize).min(blocks.len());
        let mut s = seed;
        for v in 0..victims {
            let id = blocks[splitmix64(&mut s) as usize % blocks.len()];
            // Re-rotting the same block is fine: it just flips another bit.
            disk.bitrot_block(id, seed.wrapping_add(v as u64)).unwrap();
        }

        let mut db = Db::open(disk, opts_for(seed))
            .unwrap_or_else(|e| panic!("seed {seed}: degraded open failed: {e:?}"));
        let report = db
            .scrub()
            .unwrap_or_else(|e| panic!("seed {seed}: scrub failed: {e:?}"));
        assert!(report.blocks_scanned > 0, "seed {seed}: scrub scanned nothing");
        assert_no_silent_loss(&db, &model, &report, &format!("seed {seed} post-scrub"));

        // A second scrub is a fixed point: nothing left to repair or drop.
        let second = db.scrub().unwrap();
        assert_eq!(second.repaired_blocks, 0, "seed {seed}");
        assert_eq!(second.dropped_blocks, 0, "seed {seed}");
        assert_eq!(second.tables_rewritten, 0, "seed {seed}");
        assert_eq!(
            second.quarantined_blocks, report.quarantined_blocks,
            "seed {seed}: quarantine set must be stable"
        );

        // Quarantines survive reopen; the contract holds on the new handle.
        let disk = db.disk_handle();
        drop(db);
        let mut db = Db::open(disk, opts_for(seed))
            .unwrap_or_else(|e| panic!("seed {seed}: reopen after scrub failed: {e:?}"));
        db.check_invariants().unwrap();
        let third = db.scrub().unwrap();
        assert_no_silent_loss(&db, &model, &third, &format!("seed {seed} post-reopen"));
    }
}

/// Transient read faults (25% of reads fail once) heal under retry:
/// every answer stays correct, nothing is quarantined, and the retry
/// counter proves the fault path actually ran.
#[test]
fn transient_read_storms_heal_without_quarantine_or_wrong_answers() {
    let _guard = faults::test_lock();
    let mut retries_across_seeds = 0u64;
    for seed in seed_range() {
        let (db, model) = build_workload(seed, 1000);
        let disk = db.close().unwrap();
        let db = Db::open(disk, opts_for(seed)).unwrap();
        faults::enable(seed);
        faults::arm("lsm.disk.read_transient", 0.25, Some(400));
        for i in 0..KEYSPACE {
            let k = key_of(i);
            assert_eq!(
                db.get(&k),
                model.get(&k).cloned(),
                "seed {seed}: wrong answer under transient storm at key {i}"
            );
        }
        faults::disable();
        let stats = db.io_stats();
        assert_eq!(stats.quarantined_blocks, 0, "seed {seed}: transient must not quarantine");
        retries_across_seeds += stats.transient_retries;
    }
    // Per-seed read counts vary with caching, but a storm that never
    // trips anywhere across the whole seed range means the fault point
    // is dead.
    assert!(retries_across_seeds > 0, "transient fault point never fired");
}

/// Capacity exhaustion is typed, clean, and retryable: a flush that hits
/// `Enospc` releases its partial blocks (no leak across attempts), the
/// database keeps serving out of the memtable, and freeing capacity lets
/// the same flush succeed with zero data loss.
#[test]
fn enospc_is_typed_leak_free_and_retryable() {
    let _guard = faults::test_lock();
    for seed in seed_range() {
        let (mut db, mut model) = build_workload(seed, 600);
        let disk = db.disk_handle();
        disk.set_capacity_bytes(Some(disk.used_bytes() + 256));
        // Fill the remaining headroom until the engine reports Enospc.
        let mut typed = false;
        for i in 601..=1200u64 {
            match db.put(&key_of(i), &value_of(i)) {
                Ok(_) => {
                    model.insert(key_of(i), value_of(i));
                }
                Err(memtree_common::error::MemtreeError::Enospc { .. }) => {
                    typed = true;
                    break;
                }
                Err(e) => panic!("seed {seed}: expected Enospc, got {e:?}"),
            }
        }
        assert!(typed, "seed {seed}: capacity limit never surfaced");
        // Serviceable while full: everything acknowledged still answers.
        for (k, v) in &model {
            assert_eq!(db.get(k).as_deref(), Some(v.as_slice()), "seed {seed}: full-disk read");
        }
        // Failed flushes must not leak partial blocks across attempts.
        let used_after_first = {
            let _ = db.flush();
            disk.used_bytes()
        };
        let used_after_second = {
            let _ = db.flush();
            disk.used_bytes()
        };
        assert_eq!(
            used_after_first, used_after_second,
            "seed {seed}: failing flushes leak disk space"
        );
        // Free space: the same writes now succeed and nothing was lost.
        disk.set_capacity_bytes(None);
        for i in 1201..=1400u64 {
            db.put(&key_of(i), &value_of(i)).unwrap();
            model.insert(key_of(i), value_of(i));
        }
        db.flush().unwrap();
        for (k, v) in &model {
            assert_eq!(db.get(k).as_deref(), Some(v.as_slice()), "seed {seed}: post-recovery read");
        }
        let report = db.scrub().unwrap();
        assert!(report.lost_ranges.is_empty(), "seed {seed}: Enospc must not lose data");
    }
}

/// Scrub repairs a rotted block from a clean block-cache copy: the data
/// comes back bit-identical, nothing is lost, and the follow-up scrub is
/// fully clean.
#[test]
fn scrub_repairs_rotted_blocks_from_the_cache() {
    let _guard = faults::test_lock();
    for seed in seed_range() {
        let (db, model) = build_workload(seed, 900);
        let disk = db.close().unwrap();
        let mut db = Db::open(disk, opts_for(seed)).unwrap();
        // Warm the cache over the whole key space, then rot one block that
        // is certain to be cached (small workload, 64-block cache).
        for i in 0..KEYSPACE {
            let _ = db.get(&key_of(i));
        }
        let disk = db.disk_handle();
        let blocks = live_blocks(&disk);
        let mut s = seed ^ 0xC0FFEE;
        let victim = blocks[splitmix64(&mut s) as usize % blocks.len()];
        disk.bitrot_block(victim, seed).unwrap();

        let report = db.scrub().unwrap();
        assert!(
            report.repaired_blocks + report.dropped_blocks + report.quarantined_blocks > 0
                || report.clean_blocks == report.blocks_scanned,
            "seed {seed}: rot vanished without classification"
        );
        // Whatever the classification, the contract holds…
        assert_no_silent_loss(&db, &model, &report, &format!("seed {seed}"));
        // …and when the block was cached (cache capacity permitting), the
        // repair path specifically must have fired instead of quarantine.
        if report.repaired_blocks > 0 {
            assert!(report.lost_ranges.is_empty(), "seed {seed}: repair still reported loss");
            let second = db.scrub().unwrap();
            assert!(second.is_clean(), "seed {seed}: repair did not stick: {second:?}");
            for (k, v) in &model {
                assert_eq!(db.get(k).as_deref(), Some(v.as_slice()), "seed {seed}");
            }
        }
    }
}

/// Scrub is the only un-quarantine path: a block that rots, gets
/// quarantined by the read path, and is then restored (the fault model's
/// stand-in for a media remap or an operator fixing a cable) is lifted
/// back to clean by the next scrub — and only then.
#[test]
fn restored_blocks_are_unquarantined_by_scrub_only() {
    let _guard = faults::test_lock();
    for seed in seed_range() {
        // Filterless config: the open does not read blocks, so the
        // quarantine must come from the runtime read path.
        let opts = DbOptions {
            filter: FilterKind::None,
            memtable_bytes: 2 << 10,
            l0_tables: 2,
            l1_tables: 2,
            cache_blocks: 0, // no cache: the repair path must not mask the rot
            ..Default::default()
        };
        let mut db = Db::new(opts.clone());
        let mut model = BTreeMap::new();
        for i in 1..=900u64 {
            if op_is_delete(seed, i) {
                db.delete(&key_of(i)).unwrap();
                model.remove(&key_of(i));
            } else {
                db.put(&key_of(i), &value_of(i)).unwrap();
                model.insert(key_of(i), value_of(i));
            }
        }
        let disk = db.close().unwrap();
        let mut db = Db::open(disk, opts).unwrap();
        let disk = db.disk_handle();
        let blocks = live_blocks(&disk);
        let mut s = seed ^ 0xFACADE;
        let victim = blocks[splitmix64(&mut s) as usize % blocks.len()];
        disk.bitrot_block(victim, seed).unwrap();

        // Reads over the whole space trip the quarantine on the rotted
        // block (and answer degraded for its keys — allowed while the
        // loss is pending a scrub report).
        for i in 0..KEYSPACE {
            let _ = db.get(&key_of(i));
        }
        let quarantined = db.io_stats().quarantined_blocks;
        assert_eq!(quarantined, 1, "seed {seed}: read path did not quarantine the rot");

        // Restore the bit (bitrot_block is self-inverse per (id, seed)).
        disk.bitrot_block(victim, seed).unwrap();
        // Reads still skip the block: quarantine outlives the fault…
        assert_eq!(db.io_stats().quarantined_blocks, 1, "seed {seed}");

        // …until a scrub verifies it clean and lifts it.
        let report = db.scrub().unwrap();
        assert_eq!(report.unquarantined_blocks, 1, "seed {seed}: scrub must lift the quarantine");
        assert!(report.lost_ranges.is_empty(), "seed {seed}: nothing is lost after restore");
        assert_eq!(db.io_stats().quarantined_blocks, 0, "seed {seed}");
        for (k, v) in &model {
            assert_eq!(
                db.get(k).as_deref(),
                Some(v.as_slice()),
                "seed {seed}: restored data must serve again"
            );
        }
        // The lift persists: reopen and re-verify.
        let disk = db.close().unwrap();
        let db = Db::open(disk, DbOptions { filter: FilterKind::None, ..opts_for(seed) }).unwrap();
        assert_eq!(db.io_stats().quarantined_blocks, 0, "seed {seed}: lift must persist");
    }
}

/// Crash mid-scrub: the republish step (rewriting a repaired table under
/// a fresh id) is interrupted by a crash under the Tiered policy, whose
/// overlapping runs make half-swapped level states easiest to corrupt.
/// Recovery must come back structurally sound, and a clean scrub
/// afterwards must finish the interrupted repair with zero lost ranges
/// and an exact model match.
#[test]
fn crash_during_scrub_republish_recovers_under_tiered() {
    let _guard = faults::test_lock();
    for seed in seed_range() {
        let opts = DbOptions {
            filter: FilterKind::None,
            memtable_bytes: 2 << 10,
            l0_tables: 2,
            l1_tables: 2,
            cache_blocks: 0,
            // No auto-compaction: a merge would rescue the quarantined
            // block first, and this case is about scrub's republish.
            compact_on_flush: false,
            compaction: CompactionConfig::Tiered { tiers_per_level: 3 },
            ..Default::default()
        };
        let mut db = Db::new(opts.clone());
        let mut model = BTreeMap::new();
        for i in 1..=900u64 {
            if op_is_delete(seed, i) {
                db.delete(&key_of(i)).unwrap();
                model.remove(&key_of(i));
            } else {
                db.put(&key_of(i), &value_of(i)).unwrap();
                model.insert(key_of(i), value_of(i));
            }
        }
        let disk = db.close().unwrap();
        let mut db = Db::open(disk, opts.clone()).unwrap();
        let disk = db.disk_handle();

        // Rot one live block that reads actually touch (tiered keeps
        // shadowed runs whose blocks no query probes), trip the
        // quarantine, then restore the bit (self-inverse) so the next
        // scrub has a rescue to republish.
        let mut blocks = live_blocks(&disk);
        let mut s = seed ^ 0xFACADE;
        blocks.sort_by_key(|_| splitmix64(&mut s));
        let mut tripped = false;
        for victim in blocks {
            disk.bitrot_block(victim, seed).unwrap();
            for i in 0..KEYSPACE {
                let _ = db.get(&key_of(i));
            }
            disk.bitrot_block(victim, seed).unwrap();
            if db.io_stats().quarantined_blocks == 1 {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "seed {seed}: no reachable block quarantined");

        // Scrub dies mid-republish.
        faults::enable(seed);
        faults::arm("lsm.scrub.republish", 1.0, Some(1));
        let interrupted = db.scrub();
        let fired = faults::trips("lsm.scrub.republish") > 0;
        faults::disable();
        assert!(fired, "seed {seed}: republish point never evaluated — stale name?");
        assert!(interrupted.is_err(), "seed {seed}: injected republish fault must surface");
        drop(db);
        disk.crash(Some(seed));

        // Recovery is sound, and a clean scrub completes the repair.
        let mut db = Db::open(disk, opts)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery after scrub crash: {e:?}"));
        db.check_invariants()
            .unwrap_or_else(|e| panic!("seed {seed}: invariants after scrub crash: {e:?}"));
        let report = db.scrub().unwrap();
        assert!(
            report.lost_ranges.is_empty(),
            "seed {seed}: stored bytes were intact throughout, nothing may be lost: {report:?}"
        );
        assert_eq!(db.io_stats().quarantined_blocks, 0, "seed {seed}: quarantine must lift");
        for i in 0..KEYSPACE {
            let k = key_of(i);
            assert_eq!(db.get(&k), model.get(&k).cloned(), "seed {seed}: key {i}");
        }
    }
}

/// Bit rot in the WAL and manifest while the database is live: scrub
/// detects the damage and repairs each from in-memory state (flush or
/// truncate for the WAL, rotation for the manifest) with zero data loss.
#[test]
fn live_wal_and_manifest_rot_are_repaired_in_place() {
    let _guard = faults::test_lock();
    for seed in seed_range() {
        // Leave the workload dirty: memtable + WAL hold the newest writes.
        let (mut db, model) = build_workload(seed, 700);
        let disk = db.disk_handle();
        let manifest_file = disk
            .file_names()
            .into_iter()
            .find(|f| f.starts_with("manifest-"))
            .unwrap_or_else(|| panic!("seed {seed}: no manifest file on disk"));
        assert!(disk.bitrot_file("wal", seed), "seed {seed}: WAL missing or empty");
        assert!(disk.bitrot_file(&manifest_file, seed), "seed {seed}");

        let report = db.scrub().unwrap();
        assert_eq!(report.wal, FileScrubOutcome::Repaired, "seed {seed}");
        assert_eq!(report.manifest, FileScrubOutcome::Repaired, "seed {seed}");
        assert!(report.lost_ranges.is_empty(), "seed {seed}: log repair lost data");
        for (k, v) in &model {
            assert_eq!(db.get(k).as_deref(), Some(v.as_slice()), "seed {seed}");
        }
        // The repaired logs must now recover cleanly through a reopen.
        let disk = db.close().unwrap();
        let db = Db::open(disk, opts_for(seed))
            .unwrap_or_else(|e| panic!("seed {seed}: reopen after log repair failed: {e:?}"));
        for (k, v) in &model {
            assert_eq!(db.get(k).as_deref(), Some(v.as_slice()), "seed {seed}: post-reopen");
        }
    }
}
