//! The LSM engine against a `BTreeMap` model: puts, overwrites, gets,
//! open/closed seeks and counts must agree (modulo documented count
//! over-approximation) under every filter configuration.

use memtree_lsm::{Db, DbOptions, FilterKind, SeekResult};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn key() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'k'), Just(b'l'), Just(b'm')], 1..6)
}

#[derive(Debug, Clone)]
enum Cmd {
    Put(Vec<u8>, u8),
    Get(Vec<u8>),
    SeekOpen(Vec<u8>),
    SeekClosed(Vec<u8>, Vec<u8>),
    Count(Vec<u8>, Vec<u8>),
    Flush,
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        4 => (key(), any::<u8>()).prop_map(|(k, v)| Cmd::Put(k, v)),
        3 => key().prop_map(Cmd::Get),
        1 => key().prop_map(Cmd::SeekOpen),
        1 => (key(), key()).prop_map(|(a, b)| Cmd::SeekClosed(a, b)),
        1 => (key(), key()).prop_map(|(a, b)| Cmd::Count(a, b)),
        1 => Just(Cmd::Flush),
    ]
}

fn filter_for(case: usize) -> FilterKind {
    match case % 4 {
        0 => FilterKind::None,
        1 => FilterKind::Bloom(12.0),
        2 => FilterKind::SurfHash(6),
        _ => FilterKind::SurfReal(6),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn db_matches_model(cmds in proptest::collection::vec(cmd(), 1..150), fsel in 0usize..4) {
        let mut db = Db::new(DbOptions {
            memtable_bytes: 256, // tiny: force flushes + compactions
            filter: filter_for(fsel),
            cache_blocks: 4,
            ..Default::default()
        });
        let mut model: BTreeMap<Vec<u8>, u8> = BTreeMap::new();
        for (step, c) in cmds.iter().enumerate() {
            match c {
                Cmd::Put(k, v) => {
                    db.put(k, &[*v]);
                    model.insert(k.clone(), *v);
                }
                Cmd::Get(k) => {
                    let expect = model.get(k).map(|v| vec![*v]);
                    prop_assert_eq!(db.get(k), expect, "step {} get {:?}", step, k);
                }
                Cmd::SeekOpen(k) => {
                    let expect = model.range(k.clone()..).next().map(|(k, _)| k.clone());
                    let got = match db.seek(k, None) {
                        SeekResult::Found { key } => Some(key),
                        SeekResult::NotFound => None,
                    };
                    prop_assert_eq!(got, expect, "step {} open-seek {:?}", step, k);
                }
                Cmd::SeekClosed(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let expect = model
                        .range(lo.clone()..hi.clone())
                        .next()
                        .map(|(k, _)| k.clone());
                    let got = match db.seek(lo, Some(hi)) {
                        SeekResult::Found { key } => Some(key),
                        SeekResult::NotFound => None,
                    };
                    prop_assert_eq!(got, expect, "step {} closed-seek {:?}..{:?}", step, lo, hi);
                }
                Cmd::Count(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let truth = model.range(lo.clone()..hi.clone()).count();
                    let got = db.count(lo, hi);
                    // Counts may over-approximate (per-level duplicates +
                    // SuRF boundary slack) but never under-count.
                    prop_assert!(got >= truth, "step {} count {} < {}", step, got, truth);
                }
                Cmd::Flush => db.flush(),
            }
        }
    }
}
