//! The LSM engine against a `BTreeMap` model: puts, overwrites, gets,
//! open/closed seeks and counts must agree (modulo documented count
//! over-approximation) under every filter configuration.

use memtree_common::check::{prop_check, Gen};
use memtree_common::{check, check_eq};
use memtree_lsm::{Db, DbOptions, FilterKind, SeekResult};
use std::collections::BTreeMap;

fn key(g: &mut Gen) -> Vec<u8> {
    g.bytes_from(b"klm", 1..6)
}

#[derive(Debug, Clone)]
enum Cmd {
    Put(Vec<u8>, u8),
    Delete(Vec<u8>),
    Get(Vec<u8>),
    SeekOpen(Vec<u8>),
    SeekClosed(Vec<u8>, Vec<u8>),
    Count(Vec<u8>, Vec<u8>),
    Flush,
}

fn cmd(g: &mut Gen) -> Cmd {
    // Original weights 4/3/1/1/1/1, plus 2 for deletes. The small key
    // space means deletes hit live keys often — and a miss writes a
    // tombstone for a key that never existed, its own edge case.
    match g.range(0..13) {
        0..=3 => Cmd::Put(key(g), g.u64() as u8),
        4..=5 => Cmd::Delete(key(g)),
        6..=8 => Cmd::Get(key(g)),
        9 => Cmd::SeekOpen(key(g)),
        10 => Cmd::SeekClosed(key(g), key(g)),
        11 => Cmd::Count(key(g), key(g)),
        _ => Cmd::Flush,
    }
}

fn filter_for(case: usize) -> FilterKind {
    match case % 4 {
        0 => FilterKind::None,
        1 => FilterKind::Bloom(12.0),
        2 => FilterKind::SurfHash(6),
        _ => FilterKind::SurfReal(6),
    }
}

#[test]
fn db_matches_model() {
    let mut fsel = 0usize;
    prop_check("db_matches_model", 48, |g: &mut Gen| {
        // Cycle through every filter configuration across cases.
        fsel += 1;
        let mut db = Db::new(DbOptions {
            memtable_bytes: 256, // tiny: force flushes + compactions
            filter: filter_for(fsel),
            cache_blocks: 4,
            ..Default::default()
        });
        let mut model: BTreeMap<Vec<u8>, u8> = BTreeMap::new();
        let n_cmds = g.range(1..150);
        for step in 0..n_cmds {
            match cmd(g) {
                Cmd::Put(k, v) => {
                    db.put(&k, &[v]).unwrap();
                    model.insert(k, v);
                }
                Cmd::Delete(k) => {
                    db.delete(&k).unwrap();
                    model.remove(&k);
                }
                Cmd::Get(k) => {
                    let expect = model.get(&k).map(|v| vec![*v]);
                    check_eq!(db.get(&k), expect, "step {} get {:?}", step, k);
                }
                Cmd::SeekOpen(k) => {
                    let expect = model.range(k.clone()..).next().map(|(k, _)| k.clone());
                    let got = match db.seek(&k, None) {
                        SeekResult::Found { key } => Some(key),
                        SeekResult::NotFound => None,
                    };
                    check_eq!(got, expect, "step {} open-seek {:?}", step, k);
                }
                Cmd::SeekClosed(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let expect = model
                        .range(lo.clone()..hi.clone())
                        .next()
                        .map(|(k, _)| k.clone());
                    let got = match db.seek(&lo, Some(&hi)) {
                        SeekResult::Found { key } => Some(key),
                        SeekResult::NotFound => None,
                    };
                    check_eq!(got, expect, "step {} closed-seek {:?}..{:?}", step, lo, hi);
                }
                Cmd::Count(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let truth = model.range(lo.clone()..hi.clone()).count();
                    let got = db.count(&lo, &hi);
                    // Counts may over-approximate (per-level duplicates +
                    // SuRF boundary slack) but never under-count.
                    check!(got >= truth, "step {} count {} < {}", step, got, truth);
                }
                Cmd::Flush => { db.flush().unwrap(); }
            }
        }
        Ok(())
    });
}
