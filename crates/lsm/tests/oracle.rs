//! Differential LSM oracle: `get` / `multi_get` / `seek` / `next_after` /
//! `count` / `multi_scan` cross-checked against a `BTreeMap` reference
//! across 32 seeds for every `FilterKind`.
//!
//! Unlike `model.rs` (which interleaves commands and checks), this harness
//! builds a randomized database per seed and then sweeps every read API
//! over the same probe set, so the batched paths are exercised against
//! their per-key twins on identical state.

use memtree_common::check::{prop_check_seeded, Gen};
use memtree_common::{check, check_eq};
use memtree_lsm::{Db, DbOptions, FilterKind, SeekResult};
use std::collections::BTreeMap;

const SEEDS: u64 = 32;

fn all_kinds() -> [FilterKind; 5] {
    [
        FilterKind::None,
        FilterKind::Bloom(12.0),
        FilterKind::SurfHash(6),
        FilterKind::SurfReal(6),
        FilterKind::SurfMixed(4, 4),
    ]
}

fn key(g: &mut Gen) -> Vec<u8> {
    g.bytes_from(b"pqrs", 1..7)
}

/// Builds a DB + model pair with random puts, overwrites, and flushes.
fn build(g: &mut Gen, filter: FilterKind) -> (Db, BTreeMap<Vec<u8>, Vec<u8>>) {
    let mut db = Db::new(DbOptions {
        memtable_bytes: 256, // tiny: force flushes + multi-level shapes
        filter,
        cache_blocks: g.range(0..6),
        ..Default::default()
    });
    let mut model = BTreeMap::new();
    for _ in 0..g.range(20..250) {
        if g.bool(0.04) {
            db.flush().unwrap();
        } else if g.bool(0.15) {
            // Delete a live key half the time (tombstone shadowing real
            // data through flushes), a random key otherwise (tombstone
            // for a key that may never have existed).
            let k = if !model.is_empty() && g.bool(0.5) {
                let stored: Vec<&Vec<u8>> = model.keys().collect();
                (*g.pick(&stored)).clone()
            } else {
                key(g)
            };
            db.delete(&k).unwrap();
            model.remove(&k);
        } else {
            let k = key(g);
            let v = vec![g.u64() as u8; g.range(1..4)];
            db.put(&k, &v).unwrap();
            model.insert(k, v);
        }
    }
    (db, model)
}

/// Probe set mixing stored keys, their neighbors, random misses, and
/// duplicates — shared by every read API below.
fn probes(g: &mut Gen, model: &BTreeMap<Vec<u8>, Vec<u8>>) -> Vec<Vec<u8>> {
    let stored: Vec<&Vec<u8>> = model.keys().collect();
    let mut out = Vec::new();
    for _ in 0..60 {
        match g.range(0..4) {
            0 if !stored.is_empty() => out.push((*g.pick(&stored)).clone()),
            1 if !stored.is_empty() => {
                let mut k = (*g.pick(&stored)).clone();
                k.push(b'!');
                out.push(k);
            }
            2 => out.push(key(g)),
            _ => {
                if let Some(last) = out.last() {
                    out.push(last.clone()); // duplicate
                } else {
                    out.push(key(g));
                }
            }
        }
    }
    out
}

#[test]
fn oracle_all_filter_kinds() {
    for filter in all_kinds() {
        prop_check_seeded(
            "lsm_oracle",
            0xC0FFEE ^ (format!("{filter:?}").len() as u64), // per-kind stream
            SEEDS,
            |g: &mut Gen| {
                let (db, model) = build(g, filter);
                let probe_keys = probes(g, &model);
                let refs: Vec<&[u8]> = probe_keys.iter().map(|k| k.as_slice()).collect();

                // get ↔ model, and multi_get ↔ per-key get loop.
                let expect: Vec<Option<Vec<u8>>> = refs
                    .iter()
                    .map(|k| {
                        let got = db.get(k);
                        let want = model.get(*k).cloned();
                        check_eq!(got.clone(), want, "{filter:?} get {k:?}");
                        Ok::<_, String>(got)
                    })
                    .collect::<Result<_, _>>()?;
                for chunk in [1usize, 7, 64, refs.len().max(1)] {
                    let mut got = Vec::new();
                    for c in refs.chunks(chunk) {
                        got.extend(db.multi_get(c));
                    }
                    check_eq!(got, expect, "{filter:?} multi_get chunk {chunk}");
                }

                // seek (open + closed) and next_after ↔ model.
                for w in probe_keys.windows(2) {
                    let lk = &w[0];
                    let want_open = model.range(lk.clone()..).next().map(|(k, _)| k.clone());
                    let got_open = match db.seek(lk, None) {
                        SeekResult::Found { key } => Some(key),
                        SeekResult::NotFound => None,
                    };
                    check_eq!(got_open, want_open, "{filter:?} open seek {lk:?}");

                    let (lo, hi) = if w[0] <= w[1] {
                        (w[0].clone(), w[1].clone())
                    } else {
                        (w[1].clone(), w[0].clone())
                    };
                    let want_closed = model
                        .range(lo.clone()..hi.clone())
                        .next()
                        .map(|(k, _)| k.clone());
                    let got_closed = match db.seek(&lo, Some(&hi)) {
                        SeekResult::Found { key } => Some(key),
                        SeekResult::NotFound => None,
                    };
                    check_eq!(got_closed, want_closed, "{filter:?} closed {lo:?}..{hi:?}");

                    let want_next = model
                        .range((
                            std::ops::Bound::Excluded(lk.clone()),
                            std::ops::Bound::Unbounded,
                        ))
                        .next()
                        .map(|(k, _)| k.clone());
                    let got_next = match db.next_after(lk, None) {
                        SeekResult::Found { key } => Some(key),
                        SeekResult::NotFound => None,
                    };
                    check_eq!(got_next, want_next, "{filter:?} next_after {lk:?}");

                    // count may over-approximate, never under-count.
                    let truth = model.range(lo.clone()..hi.clone()).count();
                    let got = db.count(&lo, &hi);
                    check!(got >= truth, "{filter:?} count {got} < {truth}");
                }

                // multi_scan ↔ per-range seek-then-next walk.
                let ranges: Vec<(&[u8], usize)> = refs
                    .iter()
                    .enumerate()
                    .map(|(i, k)| (*k, [0usize, 1, 5, 64][i % 4]))
                    .collect();
                let want: Vec<Vec<Vec<u8>>> = ranges
                    .iter()
                    .map(|&(low, n)| {
                        model
                            .range(low.to_vec()..)
                            .take(n)
                            .map(|(k, _)| k.clone())
                            .collect()
                    })
                    .collect();
                check_eq!(db.multi_scan(&ranges), want, "{filter:?} multi_scan");
                Ok(())
            },
        );
    }
}
