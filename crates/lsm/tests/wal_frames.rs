//! Exhaustive single-bit-flip corruption sweep over the WAL.
//!
//! A 3-record log is corrupted at **every bit position** and recovered.
//! The frame format (CRC32C over length + seq + payload) must map each
//! flip to exactly one of two outcomes:
//!
//! * flip inside the **last** record's frame → clean torn-tail truncation:
//!   recovery succeeds with exactly records 1 and 2;
//! * flip inside an **earlier** frame → typed `Corruption` error from
//!   `Db::open` (the resync scan finds a valid later frame, so this cannot
//!   be a torn tail).
//!
//! In no case may recovery surface a wrong or phantom record.

use memtree_lsm::{Db, DbOptions, SimDisk};
use std::sync::Arc;

const KEYS: [&[u8]; 3] = [b"alpha-key", b"bravo-key", b"charlie-key"];
const VALS: [&[u8]; 3] = [b"value-one", b"value-two", b"value-three"];

fn opts() -> DbOptions {
    DbOptions {
        memtable_bytes: 1 << 20, // keep all records in WAL + memtable
        ..Default::default()
    }
}

/// A fresh database whose WAL holds exactly the three records, synced.
fn build() -> (Arc<SimDisk>, usize) {
    let mut db = Db::new(opts());
    for (k, v) in KEYS.iter().zip(VALS) {
        db.put(k, v).unwrap(); // group commit 1: synced per put
    }
    let disk = db.disk_handle();
    drop(db);
    let wal_len = disk.file_len("wal");
    (disk, wal_len)
}

/// Frame layout mirror: header (len u32 | seq u64 | crc u32) + payload
/// (kind u8 | key_len u32 | key | value). Used only to map a byte offset
/// to the record it belongs to.
fn frame_len(i: usize) -> usize {
    16 + 1 + 4 + KEYS[i].len() + VALS[i].len()
}

#[test]
fn every_single_bit_flip_truncates_or_errors_never_lies() {
    let bounds = [frame_len(0), frame_len(0) + frame_len(1)];
    let (disk0, wal_len) = build();
    assert_eq!(
        wal_len,
        bounds[1] + frame_len(2),
        "frame layout mirror out of sync with the codec"
    );
    drop(disk0);

    let mut torn = 0usize;
    let mut typed = 0usize;
    for byte in 0..wal_len {
        for bit in 0..8u8 {
            let (disk, _) = build();
            let mut wal = disk.read_file("wal");
            wal[byte] ^= 1 << bit;
            disk.write_file_atomic("wal", &wal).unwrap();
            disk.sync();
            let record = if byte < bounds[0] {
                0
            } else if byte < bounds[1] {
                1
            } else {
                2
            };
            match Db::open(disk, opts()) {
                Ok(db) => {
                    // Only a flip in the final frame may recover, and only
                    // by truncating that frame away.
                    assert_eq!(
                        record, 2,
                        "flip at byte {byte} bit {bit} (record {record}) must not recover"
                    );
                    torn += 1;
                    let stats = db.wal_stats();
                    assert_eq!(stats.replayed_records, 2, "exactly the intact prefix");
                    assert_eq!(stats.torn_tail_truncated, 1);
                    for (i, (k, v)) in KEYS.iter().zip(VALS).enumerate() {
                        let got = db.get(k);
                        if i < 2 {
                            assert_eq!(got.as_deref(), Some(v), "byte {byte} bit {bit}");
                        } else {
                            assert_eq!(got, None, "byte {byte} bit {bit}: phantom record");
                        }
                    }
                }
                Err(e) => {
                    assert_ne!(
                        record, 2,
                        "flip in the tail frame should truncate, got {e:?} at byte {byte} bit {bit}"
                    );
                    typed += 1;
                    assert!(
                        matches!(e, memtree_common::error::MemtreeError::Corruption { .. }),
                        "mid-log flip must be a typed corruption, got {e:?}"
                    );
                }
            }
        }
    }
    // Every flip was classified, and both arms were exercised.
    assert_eq!(torn, frame_len(2) * 8);
    assert_eq!(typed, bounds[1] * 8);
}

#[test]
fn truncated_tails_of_every_length_recover_the_intact_prefix() {
    let (_, wal_len) = build();
    let full_frames = [0, frame_len(0), frame_len(0) + frame_len(1), wal_len];
    for cut in 0..wal_len {
        let (disk, _) = build();
        let mut wal = disk.read_file("wal");
        wal.truncate(cut);
        disk.write_file_atomic("wal", &wal).unwrap();
        disk.sync();
        let db = Db::open(disk, opts()).unwrap_or_else(|e| {
            panic!("truncation to {cut} bytes is a torn tail, not corruption: {e:?}")
        });
        let intact = full_frames.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(
            db.wal_stats().replayed_records,
            intact as u64,
            "cut at {cut}"
        );
        for (i, (k, v)) in KEYS.iter().zip(VALS).enumerate() {
            if i < intact {
                assert_eq!(db.get(k).as_deref(), Some(v), "cut {cut}");
            } else {
                assert_eq!(db.get(k), None, "cut {cut}: phantom record");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Manifest-frame sweep: same exhaustive single-bit-flip discipline, applied
// to the other CRC-framed files (`manifest-N` and `CURRENT`).
// ---------------------------------------------------------------------------

/// A database whose manifest holds two flush transactions (one L0 table
/// each) and whose WAL is empty: all data lives behind the manifest.
fn build_flushed() -> Arc<SimDisk> {
    let mut db = Db::new(opts());
    for group in 0..2 {
        for i in 0..8u32 {
            db.put(group_key(group, i).as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
    }
    let disk = db.disk_handle();
    drop(db);
    disk
}

fn group_key(group: u32, i: u32) -> String {
    format!("key-{group}-{i}")
}

/// Byte offsets where each manifest frame starts (frames are
/// self-describing: `len u32 | seq u64 | crc u32 | payload`).
fn frame_starts(buf: &[u8]) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut at = 0;
    while at < buf.len() {
        starts.push(at);
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        at += 16 + len;
    }
    assert_eq!(at, buf.len(), "manifest is not a whole number of frames");
    starts
}

/// Every single-bit flip in the manifest maps to exactly one outcome:
///
/// * flip in the **final** transaction frame → torn-tail truncation. The
///   database opens on the version one commit back (the second flush's
///   table is gone, its blocks are garbage-collected), serves the first
///   flush correctly, and passes invariants and a clean scrub. No wrong
///   or phantom record ever surfaces.
/// * flip in an **earlier** frame → typed `Corruption` from `Db::open`.
#[test]
fn manifest_bit_flips_truncate_or_error_never_lie() {
    let disk0 = build_flushed();
    let manifest = disk0.read_file("manifest-1");
    let starts = frame_starts(&manifest);
    assert!(starts.len() >= 2, "need at least two transactions to sweep");
    let last_frame = *starts.last().unwrap();
    drop(disk0);

    let mut torn = 0usize;
    let mut typed = 0usize;
    for byte in 0..manifest.len() {
        for bit in 0..8u8 {
            let disk = build_flushed();
            let mut m = disk.read_file("manifest-1");
            m[byte] ^= 1 << bit;
            disk.write_file_atomic("manifest-1", &m).unwrap();
            disk.sync();
            match Db::open(disk, opts()) {
                Ok(mut db) => {
                    assert!(
                        byte >= last_frame,
                        "flip at byte {byte} bit {bit} is mid-log and must not recover"
                    );
                    torn += 1;
                    for i in 0..8 {
                        assert_eq!(
                            db.get(group_key(0, i).as_bytes()).as_deref(),
                            Some(b"v".as_slice()),
                            "byte {byte} bit {bit}: first flush must survive"
                        );
                        assert_eq!(
                            db.get(group_key(1, i).as_bytes()),
                            None,
                            "byte {byte} bit {bit}: phantom record from the dropped commit"
                        );
                    }
                    db.check_invariants().unwrap();
                    let report = db.scrub().unwrap();
                    assert!(report.lost_ranges.is_empty(), "byte {byte} bit {bit}");
                }
                Err(e) => {
                    assert!(
                        byte < last_frame,
                        "flip in the tail frame should truncate, got {e:?} at byte {byte} bit {bit}"
                    );
                    typed += 1;
                    assert!(
                        matches!(e, memtree_common::error::MemtreeError::Corruption { .. }),
                        "mid-log flip must be a typed corruption, got {e:?}"
                    );
                }
            }
        }
    }
    assert_eq!(torn, (manifest.len() - last_frame) * 8);
    assert_eq!(typed, last_frame * 8);
}

/// `CURRENT` is one CRC frame naming the live manifest; any single-bit
/// flip must be a typed corruption, never a misdirected open.
#[test]
fn current_pointer_bit_flips_are_typed_corruption() {
    let disk0 = build_flushed();
    let len = disk0.file_len("CURRENT");
    drop(disk0);
    for byte in 0..len {
        for bit in 0..8u8 {
            let disk = build_flushed();
            let mut c = disk.read_file("CURRENT");
            c[byte] ^= 1 << bit;
            disk.write_file_atomic("CURRENT", &c).unwrap();
            disk.sync();
            let e = match Db::open(disk, opts()) {
                Ok(_) => panic!("byte {byte} bit {bit}: corrupt CURRENT must not open"),
                Err(e) => e,
            };
            assert!(
                matches!(e, memtree_common::error::MemtreeError::Corruption { .. }),
                "byte {byte} bit {bit}: expected typed corruption, got {e:?}"
            );
        }
    }
}
