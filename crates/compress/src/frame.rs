//! Checksummed block framing.
//!
//! Layout (little-endian):
//!
//! ```text
//! +--------+---------+----------+-------+-----------------------+
//! | magic  | raw_len | comp_len | crc32c| compressed payload    |
//! | u32    | u32     | u32      | u32   | comp_len bytes        |
//! +--------+---------+----------+-------+-----------------------+
//! ```
//!
//! The CRC covers `raw_len`, `comp_len`, and the payload, so a flipped
//! bit in a length field is caught even when the payload still happens to
//! decode. The magic pins the format; it is excluded from the CRC because
//! a corrupt magic already fails its own equality check. Every single-bit
//! corruption of a frame is therefore detected:
//!
//! * magic bits → magic mismatch;
//! * length or payload bits → CRC mismatch;
//! * CRC bits → CRC mismatch;
//! * and as defense in depth, the decompressed size must equal `raw_len`.

use crate::{compress_into, decompress_fused};
use memtree_common::crc::crc32c_update;
use memtree_common::error::MemtreeError;

/// `"MTB1"` — memtree block, format version 1.
const MAGIC: u32 = u32::from_le_bytes(*b"MTB1");

/// Size of the frame header preceding the compressed payload.
pub const FRAME_HEADER_BYTES: usize = 16;

/// CRC32C over the two length fields and the payload (iSCSI final-xor
/// form, matching [`memtree_common::crc::crc32c`]).
fn frame_crc(raw_len: u32, comp_len: u32, payload: &[u8]) -> u32 {
    let mut state = crc32c_update(!0, &raw_len.to_le_bytes());
    state = crc32c_update(state, &comp_len.to_le_bytes());
    !crc32c_update(state, payload)
}

/// Compresses `input` and wraps it in a checksummed frame.
///
/// The token stream is compressed directly into the framed buffer (after a
/// header placeholder) and the header is backfilled — no payload copy.
pub fn encode_block(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + input.len() / 2 + 16);
    out.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
    compress_into(input, &mut out);
    let raw_len = input.len() as u32;
    let comp_len = (out.len() - FRAME_HEADER_BYTES) as u32;
    let crc = frame_crc(raw_len, comp_len, &out[FRAME_HEADER_BYTES..]);
    out[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    out[4..8].copy_from_slice(&raw_len.to_le_bytes());
    out[8..12].copy_from_slice(&comp_len.to_le_bytes());
    out[12..16].copy_from_slice(&crc.to_le_bytes());
    out
}

#[inline]
fn read_u32(block: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(block[at..at + 4].try_into().expect("bounds checked"))
}

/// Validates and decompresses a frame produced by [`encode_block`].
///
/// Returns [`MemtreeError::Corruption`] on any validation failure — short
/// frame, bad magic, inconsistent lengths, CRC mismatch, undecodable
/// payload, or a decompressed size that disagrees with the header.
pub fn decode_block(block: &[u8]) -> Result<Vec<u8>, MemtreeError> {
    if block.len() < FRAME_HEADER_BYTES {
        return Err(MemtreeError::corruption(
            "block-frame",
            format!("frame too short: {} bytes", block.len()),
        ));
    }
    if read_u32(block, 0) != MAGIC {
        return Err(MemtreeError::corruption("block-frame", "bad magic"));
    }
    let raw_len = read_u32(block, 4);
    let comp_len = read_u32(block, 8);
    let crc = read_u32(block, 12);
    let payload = &block[FRAME_HEADER_BYTES..];
    if payload.len() != comp_len as usize {
        return Err(MemtreeError::corruption(
            "block-frame",
            format!("length mismatch: header {} vs actual {}", comp_len, payload.len()),
        ));
    }
    // Fused verify+decode: the CRC is folded forward inside the
    // decompression pass (continuing the state seeded with the length
    // fields), so the payload is swept once, not twice.
    let mut state = crc32c_update(!0, &raw_len.to_le_bytes());
    state = crc32c_update(state, &comp_len.to_le_bytes());
    let raw = match decompress_fused(payload, state, raw_len as usize) {
        Ok((raw, state)) => {
            if !state != crc {
                return Err(MemtreeError::corruption("block-frame", "crc mismatch"));
            }
            raw
        }
        Err(e) => {
            // Decode failed before verification finished: re-sweep the CRC
            // to attribute the failure — a checksum mismatch means payload
            // corruption, a clean checksum means a genuinely bad stream.
            if frame_crc(raw_len, comp_len, payload) != crc {
                return Err(MemtreeError::corruption("block-frame", "crc mismatch"));
            }
            return Err(MemtreeError::corruption(
                "block-frame",
                format!("payload undecodable: {e}"),
            ));
        }
    };
    if raw.len() != raw_len as usize {
        return Err(MemtreeError::corruption(
            "block-frame",
            format!("raw length mismatch: header {} vs decoded {}", raw_len, raw.len()),
        ));
    }
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for data in [
            &b""[..],
            b"a",
            b"hello world hello world hello world",
            &vec![7u8; 10_000],
        ] {
            let block = encode_block(data);
            assert_eq!(decode_block(&block).unwrap(), data);
        }
    }

    #[test]
    fn truncation_detected() {
        let block = encode_block(b"some moderately compressible input input input");
        for cut in 0..block.len() {
            assert!(
                decode_block(&block[..cut]).is_err(),
                "truncation to {cut} undetected"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_detected() {
        let mut data = Vec::new();
        for i in 0..64u64 {
            data.extend_from_slice(&(i * 977).to_be_bytes());
        }
        let mut block = encode_block(&data);
        let n = block.len();
        for byte in 0..n {
            for bit in 0..8 {
                block[byte] ^= 1 << bit;
                match decode_block(&block) {
                    Err(MemtreeError::Corruption { .. }) => {}
                    Ok(out) => {
                        // A flip may never yield a successful decode of
                        // different bytes — and by construction it can't
                        // yield a successful decode at all.
                        panic!(
                            "flip {byte}.{bit} decoded {} bytes silently (equal: {})",
                            out.len(),
                            out == data
                        );
                    }
                    Err(other) => panic!("flip {byte}.{bit}: unexpected error {other:?}"),
                }
                block[byte] ^= 1 << bit;
            }
        }
        assert_eq!(decode_block(&block).unwrap(), data, "restore failed");
    }
}
