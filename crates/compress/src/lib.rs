//! A fast byte-oriented LZ77 block codec.
//!
//! Stands in for Snappy/LZ4 in the thesis's Compression Rule (§2.4) and in
//! H-Store anti-caching: same algorithmic class (greedy hash-table match
//! finding, byte-aligned output, decompression much faster than
//! compression, modest ratios on structured data).
//!
//! ## Format
//!
//! A block is a sequence of tokens:
//!
//! * **Literal** — token byte `0b0LLLLLLL` (`L` = length, 1–127) followed by
//!   `L` raw bytes.
//! * **Copy** — token byte `0b1LLLLLLL` (`L` = match length − 4, so 4–131)
//!   followed by a 2-byte little-endian back-offset (1–65535).
//!
//! Longer literals/matches are emitted as multiple tokens. The format is
//! self-terminating at the compressed length; the caller stores the
//! compressed byte count.
//!
//! ## Checksummed framing
//!
//! [`encode_block`]/[`decode_block`] wrap a compressed stream in a
//! self-describing frame — magic, raw length, compressed length, CRC32C —
//! so any corruption (a single flipped bit anywhere in the frame) surfaces
//! as [`MemtreeError::Corruption`] on decode instead of silently wrong
//! bytes. The Hybrid-Compressed B+tree and H-Store anti-caching store only
//! framed blocks.

#![warn(missing_docs)]

mod frame;

pub use frame::{decode_block, encode_block, FRAME_HEADER_BYTES};
pub use memtree_common::error::MemtreeError;

const MIN_MATCH: usize = 4;
const MAX_MATCH_TOKEN: usize = 131; // 4 + 127
const MAX_OFFSET: usize = 65535;
const HASH_BITS: u32 = 14;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` into a fresh buffer.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    compress_into(input, &mut out);
    out
}

/// Compresses `input`, appending the token stream to `out` — lets the
/// framed encoder build header + payload in one buffer with no copy.
pub(crate) fn compress_into(input: &[u8], out: &mut Vec<u8>) {
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = table[h];
        table[h] = i;
        if candidate != usize::MAX
            && i - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH]
        {
            // Flush pending literals.
            flush_literals(out, &input[lit_start..i]);
            // Extend the match.
            let mut len = MIN_MATCH;
            while i + len < input.len() && input[candidate + len] == input[i + len] {
                len += 1;
            }
            let offset = (i - candidate) as u16;
            let mut remaining = len;
            while remaining >= MIN_MATCH {
                let take = remaining.min(MAX_MATCH_TOKEN);
                // A trailing fragment < MIN_MATCH can't be a copy token;
                // shorten this token so the tail merges into literals.
                let take = if remaining - take > 0 && remaining - take < MIN_MATCH {
                    remaining - MIN_MATCH
                } else {
                    take
                };
                out.push(0x80 | ((take - MIN_MATCH) as u8));
                out.extend_from_slice(&offset.to_le_bytes());
                remaining -= take;
            }
            i += len - remaining;
            lit_start = i;
            // Leave `remaining` (< MIN_MATCH) bytes to the literal run.
        } else {
            i += 1;
        }
    }
    flush_literals(out, &input[lit_start..]);
}

fn flush_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let take = lits.len().min(127);
        out.push(take as u8);
        out.extend_from_slice(&lits[..take]);
        lits = &lits[take..];
    }
}

/// Errors produced by [`decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// A token referenced bytes beyond the produced output (bad offset).
    BadOffset,
    /// The stream ended in the middle of a token.
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOffset => write!(f, "copy offset outside produced output"),
            DecodeError::Truncated => write!(f, "compressed stream truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decompresses a block produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecodeError> {
    decompress_impl::<false>(input, 0, input.len() * 3).map(|(out, _)| out)
}

/// Fused verify+decode: decompresses `input` while folding the scanned
/// bytes into a running CRC32C continued from `crc_state`, so the framed
/// decoder makes **one pass** over the payload instead of a CRC sweep
/// followed by a decompression sweep. `cap_hint` sizes the output buffer
/// exactly (the frame header knows `raw_len`), avoiding growth copies.
///
/// Returns the decompressed bytes and the final CRC state. On a decode
/// error the CRC is unfinished — the caller re-sweeps to attribute the
/// failure (corruption vs. genuinely bad stream).
pub(crate) fn decompress_fused(
    input: &[u8],
    crc_state: u32,
    cap_hint: usize,
) -> Result<(Vec<u8>, u32), DecodeError> {
    decompress_impl::<true>(input, crc_state, cap_hint)
}

/// Shared token loop. With `VERIFY`, the running CRC is folded forward in
/// chunks as the decoder moves past them, so checksummed bytes are still
/// cache-hot from the decode scan (a true single pass over memory).
fn decompress_impl<const VERIFY: bool>(
    input: &[u8],
    mut crc: u32,
    cap_hint: usize,
) -> Result<(Vec<u8>, u32), DecodeError> {
    /// Fold granularity: big enough to amortize kernel dispatch, small
    /// enough that folded bytes are still in L1.
    const CRC_CHUNK: usize = 512;
    let mut out = Vec::with_capacity(cap_hint);
    let mut crc_pos = 0usize;
    let mut i = 0usize;
    while i < input.len() {
        if VERIFY && i - crc_pos >= CRC_CHUNK {
            crc = memtree_common::crc32c_update(crc, &input[crc_pos..i]);
            crc_pos = i;
        }
        let token = input[i];
        i += 1;
        if token & 0x80 == 0 {
            let len = token as usize;
            if len == 0 || i + len > input.len() {
                return Err(DecodeError::Truncated);
            }
            out.extend_from_slice(&input[i..i + len]);
            i += len;
        } else {
            if i + 2 > input.len() {
                return Err(DecodeError::Truncated);
            }
            let len = (token & 0x7F) as usize + MIN_MATCH;
            let offset = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
            i += 2;
            if offset == 0 || offset > out.len() {
                return Err(DecodeError::BadOffset);
            }
            // Overlapping copies are valid (RLE-style); copy byte-wise.
            let start = out.len() - offset;
            for j in 0..len {
                let b = out[start + j];
                out.push(b);
            }
        }
    }
    if VERIFY {
        crc = memtree_common::crc32c_update(crc, &input[crc_pos..]);
    }
    Ok((out, crc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decode");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_compresses_well() {
        let data: Vec<u8> = b"hello world, hello world, hello world! "
            .iter()
            .cycle()
            .take(4096)
            .copied()
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "ratio too poor: {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn rle_overlapping_copy() {
        let data = vec![7u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < 3000);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_random() {
        let mut state = 99u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let c = compress(&data);
        // Expansion is bounded by the literal framing (1 byte per 127).
        assert!(c.len() <= data.len() + data.len() / 127 + 2);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn sorted_keys_block() {
        // The actual use case: a leaf node of sorted 8-byte keys.
        let mut data = Vec::new();
        for i in 0..512u64 {
            data.extend_from_slice(&(i * 131).to_be_bytes());
        }
        let c = compress(&data);
        assert!(c.len() < data.len(), "sorted keys should compress");
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_stream_errors() {
        let c = compress(b"hello world hello world hello world");
        assert!(decompress(&c[..c.len() - 1]).is_err());
        assert_eq!(decompress(&[0x85]), Err(DecodeError::Truncated));
        // Copy with offset beyond output.
        assert_eq!(decompress(&[0x80, 9, 0]), Err(DecodeError::BadOffset));
    }

    #[test]
    fn long_match_split_has_no_short_tail() {
        // A very long run exercises the multi-token match splitting.
        let mut data = b"0123456789".to_vec();
        data.extend(std::iter::repeat(b'x').take(1000));
        data.extend_from_slice(b"0123456789");
        roundtrip(&data);
    }
}
