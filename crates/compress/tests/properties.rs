//! Property tests: the block codec round-trips arbitrary inputs and never
//! panics on corrupted streams.

use memtree_compress::{compress, decompress};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..6000)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_low_entropy(
        byte in any::<u8>(),
        runs in proptest::collection::vec((any::<u8>(), 1usize..200), 0..40),
    ) {
        // Run-length-style inputs stress the overlapping-copy path.
        let mut data = vec![byte; 10];
        for (b, n) in runs {
            data.extend(std::iter::repeat(b).take(n));
        }
        let c = compress(&data);
        prop_assert!(c.len() <= data.len() + data.len() / 127 + 2);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupted_streams_never_panic(junk in proptest::collection::vec(any::<u8>(), 0..500)) {
        // Any byte soup must decode or error — never panic/UB.
        let _ = decompress(&junk);
    }

    #[test]
    fn truncation_is_detected_or_consistent(data in proptest::collection::vec(any::<u8>(), 1..1000)) {
        let c = compress(&data);
        for cut in [c.len() / 2, c.len().saturating_sub(1)] {
            // Truncated streams either error or produce a prefix-consistent
            // output; they must not panic.
            if let Ok(out) = decompress(&c[..cut]) {
                prop_assert!(out.len() <= data.len());
                prop_assert_eq!(&data[..out.len()], &out[..]);
            }
        }
    }
}
