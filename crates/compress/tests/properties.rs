//! Property tests: the block codec round-trips arbitrary inputs, never
//! panics on corrupted streams, and the checksummed frame catches every
//! single-bit corruption.

use memtree_common::check::{prop_check, Gen};
use memtree_common::{check, check_eq};
use memtree_compress::{compress, decode_block, decompress, encode_block, MemtreeError};

#[test]
fn roundtrip_arbitrary() {
    prop_check("roundtrip_arbitrary", 128, |g: &mut Gen| {
        let data = g.bytes_vec(0..6000);
        let c = compress(&data);
        check_eq!(decompress(&c).unwrap(), data);
        Ok(())
    });
}

#[test]
fn roundtrip_low_entropy() {
    prop_check("roundtrip_low_entropy", 128, |g: &mut Gen| {
        // Run-length-style inputs stress the overlapping-copy path.
        let mut data = vec![g.u64() as u8; 10];
        for _ in 0..g.range(0..40) {
            let b = g.u64() as u8;
            let n = g.range(1..200);
            data.extend(std::iter::repeat(b).take(n));
        }
        let c = compress(&data);
        check!(c.len() <= data.len() + data.len() / 127 + 2);
        check_eq!(decompress(&c).unwrap(), data);
        Ok(())
    });
}

#[test]
fn corrupted_streams_never_panic() {
    prop_check("corrupted_streams_never_panic", 256, |g: &mut Gen| {
        // Any byte soup must decode or error — never panic/UB.
        let junk = g.bytes_vec(0..500);
        let _ = decompress(&junk);
        let _ = decode_block(&junk);
        Ok(())
    });
}

#[test]
fn truncation_is_detected_or_consistent() {
    prop_check("truncation_is_detected_or_consistent", 128, |g: &mut Gen| {
        let data = g.bytes_vec(1..1000);
        let c = compress(&data);
        for cut in [c.len() / 2, c.len().saturating_sub(1)] {
            // Truncated raw streams either error or produce a
            // prefix-consistent output; they must not panic.
            if let Ok(out) = decompress(&c[..cut]) {
                check!(out.len() <= data.len());
                check_eq!(&data[..out.len()], &out[..]);
            }
        }
        // Truncated *frames* always error — the frame knows its length.
        let block = encode_block(&data);
        for cut in 0..block.len() {
            check!(decode_block(&block[..cut]).is_err(), "cut {}", cut);
        }
        Ok(())
    });
}

#[test]
fn framed_roundtrip_and_random_corruption() {
    prop_check("framed_roundtrip_and_random_corruption", 128, |g: &mut Gen| {
        let data = g.bytes_vec(0..4000);
        let mut block = encode_block(&data);
        check_eq!(decode_block(&block).unwrap(), data);
        // Random single-bit flips must surface as Corruption.
        let byte = g.range(0..block.len());
        let bit = 1u8 << g.range(0..8);
        block[byte] ^= bit;
        match decode_block(&block) {
            Err(MemtreeError::Corruption { .. }) => Ok(()),
            other => Err(format!("flip {byte}: expected corruption, got {other:?}")),
        }
    });
}
