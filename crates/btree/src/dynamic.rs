//! The dynamic B+tree baseline (STX-style).
//!
//! An arena-backed B+tree over byte-string keys. The default node capacity
//! of 32 entries corresponds to the thesis's best-performing 512-byte nodes
//! for 8-byte keys + 8-byte values. Deletions rebalance (borrow/merge) to
//! keep the classic half-full invariant.

use memtree_common::key::common_prefix_len;
use memtree_common::mem::vec_bytes;
use memtree_common::probe::ProbeStats;
use memtree_common::traits::{BatchProbe, OrderedIndex, Value};

type NodeId = u32;
const NIL: NodeId = u32::MAX;

/// Default node capacity (max keys per leaf / max children per inner node):
/// 512-byte nodes for 16-byte entries.
pub const DEFAULT_FANOUT: usize = 32;

#[derive(Debug)]
enum Node {
    Leaf {
        keys: Vec<Box<[u8]>>,
        vals: Vec<Value>,
        next: NodeId,
    },
    Inner {
        /// `keys[i]` = smallest key in the subtree of `children[i + 1]`.
        keys: Vec<Box<[u8]>>,
        children: Vec<NodeId>,
    },
    /// Free-list slot.
    Free(NodeId),
}

enum InsertUp {
    Done,
    Duplicate,
    Split(Box<[u8]>, NodeId),
}

/// An in-memory B+tree mapping byte strings to [`Value`]s.
#[derive(Debug)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: NodeId,
    free_head: NodeId,
    len: usize,
    fanout: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// Creates an empty tree with the default fanout.
    pub fn new() -> Self {
        Self::with_fanout(DEFAULT_FANOUT)
    }

    /// Creates an empty tree with a custom node capacity (min 4).
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout >= 4, "fanout must be at least 4");
        let mut t = Self {
            nodes: Vec::new(),
            root: NIL,
            free_head: NIL,
            len: 0,
            fanout,
        };
        t.root = t.alloc(Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
            next: NIL,
        });
        t
    }

    /// Node capacity this tree was built with.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        if self.free_head != NIL {
            let id = self.free_head;
            match std::mem::replace(&mut self.nodes[id as usize], node) {
                Node::Free(next) => self.free_head = next,
                _ => unreachable!("free list corrupted"),
            }
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as NodeId
        }
    }

    fn free(&mut self, id: NodeId) {
        self.nodes[id as usize] = Node::Free(self.free_head);
        self.free_head = id;
    }

    #[inline]
    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    fn min_leaf(&self) -> usize {
        self.fanout / 2
    }

    fn min_children(&self) -> usize {
        self.fanout / 2
    }

    /// Leaf that may contain `key`.
    fn find_leaf(&self, key: &[u8]) -> NodeId {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Leaf { .. } => return id,
                Node::Inner { keys, children } => {
                    let ci = keys.partition_point(|k| k.as_ref() <= key);
                    id = children[ci];
                }
                Node::Free(_) => unreachable!(),
            }
        }
    }

    fn insert_rec(&mut self, id: NodeId, key: &[u8], val: Value) -> InsertUp {
        let child_slot = match self.node(id) {
            Node::Leaf { .. } => None,
            Node::Inner { keys, children } => {
                let ci = keys.partition_point(|k| k.as_ref() <= key);
                Some((ci, children[ci]))
            }
            Node::Free(_) => unreachable!(),
        };
        match child_slot {
            None => {
                let fanout = self.fanout;
                let Node::Leaf { keys, vals, next } = self.node_mut(id) else {
                    unreachable!()
                };
                match keys.binary_search_by(|k| k.as_ref().cmp(key)) {
                    Ok(_) => InsertUp::Duplicate,
                    Err(pos) => {
                        keys.insert(pos, key.into());
                        vals.insert(pos, val);
                        if keys.len() <= fanout {
                            return InsertUp::Done;
                        }
                        // Split the leaf.
                        let mid = keys.len() / 2;
                        let r_keys: Vec<Box<[u8]>> = keys.split_off(mid);
                        let r_vals: Vec<Value> = vals.split_off(mid);
                        let sep = r_keys[0].clone();
                        let old_next = *next;
                        let right = Node::Leaf {
                            keys: r_keys,
                            vals: r_vals,
                            next: old_next,
                        };
                        let rid = self.alloc(right);
                        let Node::Leaf { next, .. } = self.node_mut(id) else {
                            unreachable!()
                        };
                        *next = rid;
                        InsertUp::Split(sep, rid)
                    }
                }
            }
            Some((ci, child)) => match self.insert_rec(child, key, val) {
                InsertUp::Done => InsertUp::Done,
                InsertUp::Duplicate => InsertUp::Duplicate,
                InsertUp::Split(sep, new_child) => {
                    let fanout = self.fanout;
                    let Node::Inner { keys, children } = self.node_mut(id) else {
                        unreachable!()
                    };
                    keys.insert(ci, sep);
                    children.insert(ci + 1, new_child);
                    if children.len() <= fanout {
                        return InsertUp::Done;
                    }
                    let mid = keys.len() / 2;
                    let up = keys[mid].clone();
                    let r_keys = keys.split_off(mid + 1);
                    keys.pop(); // `up` moves to the parent
                    let r_children = children.split_off(mid + 1);
                    let rid = self.alloc(Node::Inner {
                        keys: r_keys,
                        children: r_children,
                    });
                    InsertUp::Split(up, rid)
                }
            },
        }
    }

    /// Removes the entry and returns whether `id` underflowed.
    fn remove_rec(&mut self, id: NodeId, key: &[u8]) -> Option<bool> {
        let child_slot = match self.node(id) {
            Node::Leaf { .. } => None,
            Node::Inner { keys, children } => {
                let ci = keys.partition_point(|k| k.as_ref() <= key);
                Some((ci, children[ci]))
            }
            Node::Free(_) => unreachable!(),
        };
        match child_slot {
            None => {
                let min = self.min_leaf();
                let Node::Leaf { keys, vals, .. } = self.node_mut(id) else {
                    unreachable!()
                };
                match keys.binary_search_by(|k| k.as_ref().cmp(key)) {
                    Ok(pos) => {
                        keys.remove(pos);
                        vals.remove(pos);
                        Some(keys.len() < min)
                    }
                    Err(_) => None,
                }
            }
            Some((ci, child)) => {
                let under = self.remove_rec(child, key)?;
                if under {
                    self.fix_child(id, ci);
                }
                let min = self.min_children();
                let Node::Inner { children, .. } = self.node(id) else {
                    unreachable!()
                };
                Some(children.len() < min)
            }
        }
    }

    /// Rebalances `parent`'s `ci`-th child after an underflow: borrow from a
    /// sibling if possible, otherwise merge.
    fn fix_child(&mut self, parent: NodeId, ci: usize) {
        let (left_i, right_i) = {
            let Node::Inner { children, .. } = self.node(parent) else {
                unreachable!()
            };
            let n = children.len();
            if ci > 0 {
                (ci - 1, ci)
            } else if ci + 1 < n {
                (ci, ci + 1)
            } else {
                return; // root with a single child handled by caller
            }
        };
        let (lid, rid) = {
            let Node::Inner { children, .. } = self.node(parent) else {
                unreachable!()
            };
            (children[left_i], children[right_i])
        };
        // Take both siblings out of the arena to manipulate freely.
        let left = std::mem::replace(&mut self.nodes[lid as usize], Node::Free(NIL));
        let right = std::mem::replace(&mut self.nodes[rid as usize], Node::Free(NIL));
        match (left, right) {
            (
                Node::Leaf {
                    keys: mut lk,
                    vals: mut lv,
                    next: lnext,
                },
                Node::Leaf {
                    keys: mut rk,
                    vals: mut rv,
                    next: rnext,
                },
            ) => {
                let min = self.min_leaf();
                if lk.len() + rk.len() <= self.fanout {
                    // Merge right into left.
                    lk.append(&mut rk);
                    lv.append(&mut rv);
                    self.nodes[lid as usize] = Node::Leaf {
                        keys: lk,
                        vals: lv,
                        next: rnext,
                    };
                    self.free(rid);
                    let Node::Inner { keys, children } = self.node_mut(parent) else {
                        unreachable!()
                    };
                    keys.remove(left_i);
                    children.remove(right_i);
                } else {
                    // Borrow to equalize.
                    if lk.len() < rk.len() {
                        let moven = (rk.len() - lk.len()) / 2;
                        lk.extend(rk.drain(..moven.max(1)));
                        lv.extend(rv.drain(..moven.max(1)));
                    } else {
                        let moven = ((lk.len() - rk.len()) / 2).max(1);
                        let at = lk.len() - moven;
                        let mut tail_k: Vec<_> = lk.split_off(at);
                        let mut tail_v: Vec<_> = lv.split_off(at);
                        tail_k.append(&mut rk);
                        tail_v.append(&mut rv);
                        rk = tail_k;
                        rv = tail_v;
                    }
                    debug_assert!(lk.len() >= min && rk.len() >= min);
                    let sep = rk[0].clone();
                    self.nodes[lid as usize] = Node::Leaf {
                        keys: lk,
                        vals: lv,
                        next: lnext,
                    };
                    self.nodes[rid as usize] = Node::Leaf {
                        keys: rk,
                        vals: rv,
                        next: rnext,
                    };
                    let Node::Inner { keys, .. } = self.node_mut(parent) else {
                        unreachable!()
                    };
                    keys[left_i] = sep;
                }
            }
            (
                Node::Inner {
                    keys: mut lk,
                    children: mut lc,
                },
                Node::Inner {
                    keys: mut rk,
                    children: mut rc,
                },
            ) => {
                let sep = {
                    let Node::Inner { keys, .. } = self.node(parent) else {
                        unreachable!()
                    };
                    keys[left_i].clone()
                };
                if lc.len() + rc.len() <= self.fanout {
                    // Merge: left ++ sep ++ right.
                    lk.push(sep);
                    lk.append(&mut rk);
                    lc.append(&mut rc);
                    self.nodes[lid as usize] = Node::Inner {
                        keys: lk,
                        children: lc,
                    };
                    self.free(rid);
                    let Node::Inner { keys, children } = self.node_mut(parent) else {
                        unreachable!()
                    };
                    keys.remove(left_i);
                    children.remove(right_i);
                } else if lc.len() < rc.len() {
                    // Rotate one child left through the parent separator.
                    lk.push(sep);
                    lc.push(rc.remove(0));
                    let new_sep = rk.remove(0);
                    self.nodes[lid as usize] = Node::Inner {
                        keys: lk,
                        children: lc,
                    };
                    self.nodes[rid as usize] = Node::Inner {
                        keys: rk,
                        children: rc,
                    };
                    let Node::Inner { keys, .. } = self.node_mut(parent) else {
                        unreachable!()
                    };
                    keys[left_i] = new_sep;
                } else {
                    // Rotate one child right through the parent separator.
                    rk.insert(0, sep);
                    rc.insert(0, lc.pop().expect("left inner non-empty"));
                    let new_sep = lk.pop().expect("left inner has keys");
                    self.nodes[lid as usize] = Node::Inner {
                        keys: lk,
                        children: lc,
                    };
                    self.nodes[rid as usize] = Node::Inner {
                        keys: rk,
                        children: rc,
                    };
                    let Node::Inner { keys, .. } = self.node_mut(parent) else {
                        unreachable!()
                    };
                    keys[left_i] = new_sep;
                }
            }
            _ => unreachable!("siblings at the same level share a kind"),
        }
    }

    /// Instrumented point query used by the Table 2.2 reproduction.
    pub fn get_profiled(&self, key: &[u8]) -> (Option<Value>, ProbeStats) {
        let mut stats = ProbeStats::default();
        let mut id = self.root;
        loop {
            stats.nodes_visited += 1;
            match self.node(id) {
                Node::Inner { keys, children } => {
                    let mut lo = 0usize;
                    let mut hi = keys.len();
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        stats.key_bytes_compared +=
                            (common_prefix_len(&keys[mid], key) + 1) as u64;
                        if keys[mid].as_ref() <= key {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    stats.pointer_derefs += 1;
                    id = children[lo];
                }
                Node::Leaf { keys, vals, .. } => {
                    let mut lo = 0usize;
                    let mut hi = keys.len();
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        stats.key_bytes_compared +=
                            (common_prefix_len(&keys[mid], key) + 1) as u64;
                        match keys[mid].as_ref().cmp(key) {
                            std::cmp::Ordering::Less => lo = mid + 1,
                            std::cmp::Ordering::Greater => hi = mid,
                            std::cmp::Ordering::Equal => {
                                return (Some(vals[mid]), stats);
                            }
                        }
                    }
                    return (None, stats);
                }
                Node::Free(_) => unreachable!(),
            }
        }
    }

    /// Iterates `(key, value)` pairs in order starting from the first key
    /// `>= low`, calling `f` until it returns `false` or entries run out.
    pub fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        let mut id = self.find_leaf(low);
        let mut start = {
            let Node::Leaf { keys, .. } = self.node(id) else {
                unreachable!()
            };
            keys.partition_point(|k| k.as_ref() < low)
        };
        loop {
            let Node::Leaf { keys, vals, next } = self.node(id) else {
                unreachable!()
            };
            for i in start..keys.len() {
                if !f(&keys[i], vals[i]) {
                    return;
                }
            }
            if *next == NIL {
                return;
            }
            id = *next;
            start = 0;
        }
    }
}

impl OrderedIndex for BPlusTree {
    fn insert(&mut self, key: &[u8], value: Value) -> bool {
        match self.insert_rec(self.root, key, value) {
            InsertUp::Done => {
                self.len += 1;
                true
            }
            InsertUp::Duplicate => false,
            InsertUp::Split(sep, rid) => {
                let new_root = self.alloc(Node::Inner {
                    keys: vec![sep],
                    children: vec![self.root, rid],
                });
                self.root = new_root;
                self.len += 1;
                true
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        let leaf = self.find_leaf(key);
        let Node::Leaf { keys, vals, .. } = self.node(leaf) else {
            unreachable!()
        };
        keys.binary_search_by(|k| k.as_ref().cmp(key))
            .ok()
            .map(|i| vals[i])
    }

    fn update(&mut self, key: &[u8], value: Value) -> bool {
        let leaf = self.find_leaf(key);
        let Node::Leaf { keys, vals, .. } = self.node_mut(leaf) else {
            unreachable!()
        };
        match keys.binary_search_by(|k| k.as_ref().cmp(key)) {
            Ok(i) => {
                vals[i] = value;
                true
            }
            Err(_) => false,
        }
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        if self.remove_rec(self.root, key).is_none() {
            return false;
        }
        self.len -= 1;
        // Collapse the root if it became a single-child inner node.
        loop {
            match self.node(self.root) {
                Node::Inner { children, .. } if children.len() == 1 => {
                    let child = children[0];
                    let old = self.root;
                    self.root = child;
                    self.free(old);
                }
                _ => break,
            }
        }
        true
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let before = out.len();
        self.range_from(low, &mut |_k, v| {
            if out.len() - before == n {
                return false;
            }
            out.push(v);
            out.len() - before < n
        });
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_usage(&self) -> usize {
        let mut total = vec_bytes(&self.nodes);
        for node in &self.nodes {
            match node {
                Node::Leaf { keys, vals, .. } => {
                    total += vec_bytes(keys)
                        + keys.iter().map(|k| k.len()).sum::<usize>()
                        + vec_bytes(vals);
                }
                Node::Inner { keys, children } => {
                    total += vec_bytes(keys)
                        + keys.iter().map(|k| k.len()).sum::<usize>()
                        + vec_bytes(children);
                }
                Node::Free(_) => {}
            }
        }
        total
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        BPlusTree::range_from(self, &[], &mut |k, v| {
            f(k, v);
            true
        });
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        BPlusTree::range_from(self, low, f);
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free_head = NIL;
        self.len = 0;
        self.root = self.alloc(Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
            next: NIL,
        });
    }
}
/// Per-key fallback `multi_get`; no batched descent for this structure.
impl BatchProbe for BPlusTree {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    fn seq_tree(n: u64) -> BPlusTree {
        let mut t = BPlusTree::with_fanout(8);
        for i in 0..n {
            assert!(t.insert(&encode_u64(i), i));
        }
        t
    }

    #[test]
    fn insert_get_sequential_and_random() {
        let t = seq_tree(1000);
        assert_eq!(t.len(), 1000);
        for i in 0..1000 {
            assert_eq!(t.get(&encode_u64(i)), Some(i));
        }
        assert_eq!(t.get(&encode_u64(1000)), None);

        let mut t = BPlusTree::new();
        let mut state = 1u64;
        let mut keys = Vec::new();
        for _ in 0..2000 {
            let k = memtree_common::hash::splitmix64(&mut state);
            if t.insert(&encode_u64(k), k) {
                keys.push(k);
            }
        }
        for &k in &keys {
            assert_eq!(t.get(&encode_u64(k)), Some(k));
        }
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = BPlusTree::new();
        assert!(t.insert(b"alpha", 1));
        assert!(!t.insert(b"alpha", 2));
        assert_eq!(t.get(b"alpha"), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_in_place() {
        let mut t = seq_tree(100);
        assert!(t.update(&encode_u64(42), 999));
        assert_eq!(t.get(&encode_u64(42)), Some(999));
        assert!(!t.update(&encode_u64(100), 1));
    }

    #[test]
    fn remove_with_rebalancing() {
        let mut t = seq_tree(1000);
        // Remove every other key, then the rest, verifying along the way.
        for i in (0..1000).step_by(2) {
            assert!(t.remove(&encode_u64(i)), "remove {i}");
        }
        assert_eq!(t.len(), 500);
        for i in 0..1000 {
            let expect = if i % 2 == 0 { None } else { Some(i) };
            assert_eq!(t.get(&encode_u64(i)), expect, "get {i}");
        }
        for i in (1..1000).step_by(2) {
            assert!(t.remove(&encode_u64(i)));
        }
        assert_eq!(t.len(), 0);
        assert!(!t.remove(&encode_u64(0)));
    }

    #[test]
    fn scan_in_order() {
        let t = seq_tree(500);
        let mut out = Vec::new();
        assert_eq!(t.scan(&encode_u64(100), 50, &mut out), 50);
        assert_eq!(out, (100..150).collect::<Vec<_>>());
        out.clear();
        // Scan from a non-existent key.
        let mut t2 = BPlusTree::new();
        for i in (0..500).step_by(5) {
            t2.insert(&encode_u64(i), i);
        }
        t2.scan(&encode_u64(7), 3, &mut out);
        assert_eq!(out, vec![10, 15, 20]);
        // Scan past the end.
        out.clear();
        assert_eq!(t.scan(&encode_u64(495), 100, &mut out), 5);
    }

    #[test]
    fn for_each_sorted_is_sorted_and_complete() {
        let mut t = BPlusTree::with_fanout(6);
        let mut state = 5u64;
        let mut expect = Vec::new();
        for _ in 0..777 {
            let k = memtree_common::hash::splitmix64(&mut state) % 100_000;
            if t.insert(&encode_u64(k), k) {
                expect.push(k);
            }
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        t.for_each_sorted(&mut |k, v| {
            assert_eq!(memtree_common::key::decode_u64(k), v);
            got.push(v);
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn variable_length_keys() {
        let mut t = BPlusTree::with_fanout(4);
        let words: &[&[u8]] = &[b"a", b"ab", b"abc", b"b", b"ba", b"", b"zzz", b"ab\xff"];
        for (i, w) in words.iter().enumerate() {
            assert!(t.insert(w, i as u64));
        }
        for (i, w) in words.iter().enumerate() {
            assert_eq!(t.get(w), Some(i as u64), "{w:?}");
        }
        let mut sorted: Vec<&[u8]> = words.to_vec();
        sorted.sort();
        let mut got = Vec::new();
        t.for_each_sorted(&mut |k, _| got.push(k.to_vec()));
        assert_eq!(got, sorted.iter().map(|w| w.to_vec()).collect::<Vec<_>>());
    }

    #[test]
    fn profiled_get_counts() {
        let t = seq_tree(10_000);
        let (v, stats) = t.get_profiled(&encode_u64(1234));
        assert_eq!(v, Some(1234));
        assert!(stats.nodes_visited >= 3); // fanout 8, 10k keys => height >= 4
        assert!(stats.key_bytes_compared > 0);
        assert_eq!(stats.pointer_derefs, stats.nodes_visited - 1);
    }

    #[test]
    fn mem_usage_grows() {
        let small = seq_tree(10).mem_usage();
        let big = seq_tree(10_000).mem_usage();
        assert!(big > small * 100);
    }

    #[test]
    fn clear_resets() {
        let mut t = seq_tree(100);
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(&encode_u64(5)), None);
        assert!(t.insert(&encode_u64(5), 5));
        assert_eq!(t.get(&encode_u64(5)), Some(5));
    }
}
