//! Compact B+tree — the Compaction + Structural Reduction rules (§2.2–2.3).
//!
//! All leaf entries live in one contiguous, 100 %-full array (concatenated
//! key bytes + an offset array). The "internal nodes" are sampled separator
//! arrays storing **leaf indexes** instead of key copies: every `F`-th key
//! of the level below becomes one entry, and a child's position is computed
//! (`node * F + slot`) instead of following a stored pointer — the dashed
//! arrows of Figure 2.3.

use crate::sepsearch;
use memtree_common::mem::vec_bytes;
use memtree_common::traits::{BatchProbe, StaticIndex, Value};

/// Sampling factor / logical node size of the computed internal levels.
pub const NODE_FANOUT: usize = 32;

/// A static, read-optimized B+tree built from sorted entries.
#[derive(Debug)]
pub struct CompactBTree {
    /// Concatenated key bytes, in order.
    key_bytes: Vec<u8>,
    /// `key_offsets[i]..key_offsets[i+1]` is key `i`; length `n + 1`.
    key_offsets: Vec<u32>,
    vals: Vec<Value>,
    /// `levels[0]` indexes leaf keys; `levels[l]` indexes `levels[l-1]`
    /// entries (all ultimately leaf key ids). The topmost level has at most
    /// `NODE_FANOUT` entries.
    levels: Vec<Vec<u32>>,
    /// `prefixes[l][i]` is the 8-byte big-endian prefix of the key
    /// `levels[l][i]` points at — the SIMD-searchable side of each
    /// separator array ([`sepsearch`]).
    prefixes: Vec<Vec<u64>>,
}

impl CompactBTree {
    #[inline]
    fn key(&self, i: usize) -> &[u8] {
        &self.key_bytes[self.key_offsets[i] as usize..self.key_offsets[i + 1] as usize]
    }

    /// First slot of `levels[depth][s..e]` whose separator key is
    /// `> target` — the `partition_point` of `key <= target`, resolved as
    /// one SIMD prefix count over the whole node plus a scalar walk of the
    /// (usually empty) run of 8-byte-prefix ties, the only separators
    /// whose full keys must be fetched.
    #[inline]
    fn separator_slot(&self, depth: usize, s: usize, e: usize, target: &[u8], tp: u64) -> usize {
        let (lt, le) = sepsearch::count_lt_le(&self.prefixes[depth][s..e], tp);
        let mut slot = lt;
        for &ki in &self.levels[depth][s + lt..s + le] {
            if self.key(ki as usize) <= target {
                slot += 1;
            } else {
                break; // separators are sorted; the first miss ends the run
            }
        }
        slot
    }

    /// Index of the first key `>= target` (i.e. lower bound), or `len()`.
    pub fn lower_bound(&self, target: &[u8]) -> usize {
        let n = self.len();
        if n == 0 {
            return 0;
        }
        let tp = sepsearch::key_prefix8(target);
        // Descend the computed levels to narrow to one logical node.
        let (mut lo, mut hi) = (0usize, n); // leaf-entry range
        if let Some(top) = self.levels.last() {
            // Each level narrows to a NODE_FANOUT-wide child range.
            let mut node_range = (0usize, top.len());
            for (depth, level) in self.levels.iter().enumerate().rev() {
                let (s, e) = node_range;
                // First separator > target, prefix-count + tie walk.
                let slot = self.separator_slot(depth, s, e, target, tp);
                // Child covered by separator slot-1 (or the leftmost child).
                let child = s + slot.saturating_sub(1);
                if depth == 0 {
                    // level[child] is a leaf key id; leaf range spans until
                    // the next sampled key.
                    lo = level[child] as usize;
                    hi = level
                        .get(child + 1)
                        .map_or(n, |&next| next as usize);
                } else {
                    node_range = (
                        child * NODE_FANOUT,
                        ((child + 1) * NODE_FANOUT).min(self.levels[depth - 1].len()),
                    );
                }
            }
        }
        lo + self.key_bytes_partition(lo, hi, target)
    }

    /// partition_point of `key < target` within leaf range `[lo, hi)`.
    fn key_bytes_partition(&self, lo: usize, hi: usize, target: &[u8]) -> usize {
        let mut l = lo;
        let mut h = hi;
        while l < h {
            let mid = (l + h) / 2;
            if self.key(mid) < target {
                l = mid + 1;
            } else {
                h = mid;
            }
        }
        l - lo
    }

    /// Sorted-batch descent for [`BatchProbe::multi_get`]: `group` holds
    /// probe indexes whose keys are ascending and all fall inside
    /// `node_range` of `levels[depth]`. One `partition_point` per *run* of
    /// keys resolves the shared child, so upper-level separator probes are
    /// paid once per child instead of once per key.
    fn batch_descend(
        &self,
        keys: &[&[u8]],
        group: &[u32],
        depth: usize,
        node_range: (usize, usize),
        base: usize,
        out: &mut [Option<Value>],
    ) {
        let level = &self.levels[depth];
        let (s, e) = node_range;
        let n = self.len();
        let mut i = 0usize;
        while i < group.len() {
            let target = keys[group[i] as usize];
            let tp = sepsearch::key_prefix8(target);
            let slot = self.separator_slot(depth, s, e, target, tp);
            let child = s + slot.saturating_sub(1);
            // Grow the run: every following key that still falls under the
            // same separator shares this child.
            let mut j = i + 1;
            while j < group.len()
                && (child + 1 >= e
                    || self.key(level[child + 1] as usize) > keys[group[j] as usize])
            {
                j += 1;
            }
            if depth == 0 {
                let lo = level[child] as usize;
                let hi = level.get(child + 1).map_or(n, |&next| next as usize);
                for &gi in &group[i..j] {
                    let key = keys[gi as usize];
                    let pos = lo + self.key_bytes_partition(lo, hi, key);
                    if pos < n && self.key(pos) == key {
                        out[base + gi as usize] = Some(self.vals[pos]);
                    }
                }
            } else {
                let child_range = (
                    child * NODE_FANOUT,
                    ((child + 1) * NODE_FANOUT).min(self.levels[depth - 1].len()),
                );
                self.batch_descend(keys, &group[i..j], depth - 1, child_range, base, out);
            }
            i = j;
        }
    }

    /// Sorted-batch lower-bound descent, the scan-side twin of
    /// [`Self::batch_descend`]: `group` holds probe indexes whose targets
    /// are ascending and all fall inside `node_range` of `levels[depth]`.
    /// Writes each target's lower-bound position into `pos`.
    fn batch_lower_bound(
        &self,
        targets: &[&[u8]],
        group: &[u32],
        depth: usize,
        node_range: (usize, usize),
        pos: &mut [usize],
    ) {
        let level = &self.levels[depth];
        let (s, e) = node_range;
        let n = self.len();
        let mut i = 0usize;
        while i < group.len() {
            let target = targets[group[i] as usize];
            let tp = sepsearch::key_prefix8(target);
            let slot = self.separator_slot(depth, s, e, target, tp);
            let child = s + slot.saturating_sub(1);
            let mut j = i + 1;
            while j < group.len()
                && (child + 1 >= e
                    || self.key(level[child + 1] as usize) > targets[group[j] as usize])
            {
                j += 1;
            }
            if depth == 0 {
                let lo = level[child] as usize;
                let hi = level.get(child + 1).map_or(n, |&next| next as usize);
                for &gi in &group[i..j] {
                    let target = targets[gi as usize];
                    pos[gi as usize] = lo + self.key_bytes_partition(lo, hi, target);
                }
            } else {
                let child_range = (
                    child * NODE_FANOUT,
                    ((child + 1) * NODE_FANOUT).min(self.levels[depth - 1].len()),
                );
                self.batch_lower_bound(targets, &group[i..j], depth - 1, child_range, pos);
            }
            i = j;
        }
    }

    /// The key at sorted position `i`.
    pub fn key_at(&self, i: usize) -> &[u8] {
        self.key(i)
    }

    /// The value at sorted position `i`.
    pub fn value_at(&self, i: usize) -> Value {
        self.vals[i]
    }
}

impl StaticIndex for CompactBTree {
    fn build(entries: &[(Vec<u8>, Value)]) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "input must be sorted and duplicate-free"
        );
        let n = entries.len();
        let total_bytes: usize = entries.iter().map(|(k, _)| k.len()).sum();
        let mut key_bytes = Vec::with_capacity(total_bytes);
        let mut key_offsets = Vec::with_capacity(n + 1);
        let mut vals = Vec::with_capacity(n);
        for (k, v) in entries {
            key_offsets.push(key_bytes.len() as u32);
            key_bytes.extend_from_slice(k);
            vals.push(*v);
        }
        key_offsets.push(key_bytes.len() as u32);

        // Build sampled separator levels bottom-up until one fits in a node:
        // level 0 holds every NODE_FANOUT-th leaf key id, each higher level
        // samples the one below.
        let mut levels: Vec<Vec<u32>> = Vec::new();
        if n > NODE_FANOUT {
            let mut cur: Vec<u32> = (0..n).step_by(NODE_FANOUT).map(|i| i as u32).collect();
            while cur.len() > NODE_FANOUT {
                let next: Vec<u32> = cur.iter().step_by(NODE_FANOUT).copied().collect();
                levels.push(cur);
                cur = next;
            }
            levels.push(cur);
        }

        let mut tree = Self {
            key_bytes,
            key_offsets,
            vals,
            levels,
            prefixes: Vec::new(),
        };
        // Side arrays of 8-byte key prefixes, one per separator, so the
        // descent can count most of a node's separators with one SIMD
        // sweep instead of a pointer-chasing binary search.
        tree.prefixes = tree
            .levels
            .iter()
            .map(|level| {
                level.iter().map(|&ki| sepsearch::key_prefix8(tree.key(ki as usize))).collect()
            })
            .collect();
        tree
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        let pos = self.lower_bound(key);
        if pos < self.len() && self.key(pos) == key {
            Some(self.vals[pos])
        } else {
            None
        }
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let start = self.lower_bound(low);
        let end = (start + n).min(self.len());
        out.extend_from_slice(&self.vals[start..end]);
        end - start
    }

    fn len(&self) -> usize {
        self.vals.len()
    }

    fn mem_usage(&self) -> usize {
        vec_bytes(&self.key_bytes)
            + vec_bytes(&self.key_offsets)
            + vec_bytes(&self.vals)
            + self.levels.iter().map(vec_bytes).sum::<usize>()
            + self.prefixes.iter().map(vec_bytes).sum::<usize>()
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        for i in 0..self.len() {
            f(self.key(i), self.vals[i]);
        }
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        for i in self.lower_bound(low)..self.len() {
            if !f(self.key(i), self.vals[i]) {
                return;
            }
        }
    }
}

impl BatchProbe for CompactBTree {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    /// Sorted-batch multi-get: probes are sorted once, then descend the
    /// sampled levels together — each upper-level node is binary-searched
    /// once per *run* of keys instead of once per key, and leaf binary
    /// searches start from an already-narrowed range.
    fn multi_get(&self, keys: &[&[u8]], out: &mut Vec<Option<Value>>) {
        let base = out.len();
        out.resize(base + keys.len(), None);
        if self.len() == 0 || keys.is_empty() {
            return;
        }
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_unstable_by_key(|&i| keys[i as usize]);
        if let Some(top) = self.levels.last() {
            let depth = self.levels.len() - 1;
            self.batch_descend(keys, &order, depth, (0, top.len()), base, out);
        } else {
            // Single-node tree: nothing to share, probe directly.
            for &i in &order {
                out[base + i as usize] = self.get(keys[i as usize]);
            }
        }
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }

    /// Sorted-batch multi-scan: all range starts descend the sampled levels
    /// together (one separator binary-search per run of nearby lows via
    /// [`Self::batch_lower_bound`]), then each range is a contiguous value
    /// slice — scans over a flat leaf array need no cursor at all.
    fn multi_scan(&self, ranges: &[(&[u8], usize)], out: &mut Vec<Vec<Value>>) {
        if self.len() == 0 || ranges.is_empty() {
            out.extend(ranges.iter().map(|_| Vec::new()));
            return;
        }
        let lows: Vec<&[u8]> = ranges.iter().map(|&(low, _)| low).collect();
        let mut pos = vec![0usize; ranges.len()];
        if let Some(top) = self.levels.last() {
            let mut order: Vec<u32> = (0..ranges.len() as u32).collect();
            order.sort_unstable_by_key(|&i| lows[i as usize]);
            let depth = self.levels.len() - 1;
            self.batch_lower_bound(&lows, &order, depth, (0, top.len()), &mut pos);
        } else {
            for (i, &low) in lows.iter().enumerate() {
                pos[i] = self.lower_bound(low);
            }
        }
        for (i, &(_, n)) in ranges.iter().enumerate() {
            let start = pos[i];
            let end = (start + n).min(self.len());
            out.push(self.vals[start..end].to_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    fn build_seq(n: u64) -> CompactBTree {
        let entries: Vec<(Vec<u8>, Value)> =
            (0..n).map(|i| (encode_u64(i * 3).to_vec(), i)).collect();
        CompactBTree::build(&entries)
    }

    #[test]
    fn get_hit_and_miss() {
        let t = build_seq(10_000);
        for i in (0..10_000).step_by(97) {
            assert_eq!(t.get(&encode_u64(i * 3)), Some(i));
            assert_eq!(t.get(&encode_u64(i * 3 + 1)), None);
        }
        assert_eq!(t.get(&encode_u64(30_000)), None);
    }

    #[test]
    fn tiny_trees() {
        for n in [0u64, 1, 2, NODE_FANOUT as u64, NODE_FANOUT as u64 + 1] {
            let t = build_seq(n);
            assert_eq!(t.len(), n as usize);
            for i in 0..n {
                assert_eq!(t.get(&encode_u64(i * 3)), Some(i), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn lower_bound_and_scan() {
        let t = build_seq(1000);
        assert_eq!(t.lower_bound(&encode_u64(0)), 0);
        assert_eq!(t.lower_bound(&encode_u64(1)), 1); // key 3 at pos 1
        assert_eq!(t.lower_bound(&encode_u64(3 * 999)), 999);
        assert_eq!(t.lower_bound(&encode_u64(3 * 999 + 1)), 1000);
        let mut out = Vec::new();
        assert_eq!(t.scan(&encode_u64(4), 5, &mut out), 5);
        assert_eq!(out, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn matches_reference_on_random_strings() {
        let mut state = 11u64;
        let mut keys: Vec<Vec<u8>> = (0..5000)
            .map(|_| {
                let len = 1 + (memtree_common::hash::splitmix64(&mut state) % 20) as usize;
                (0..len)
                    .map(|_| (memtree_common::hash::splitmix64(&mut state) % 256) as u8)
                    .collect()
            })
            .collect();
        keys.sort();
        keys.dedup();
        let entries: Vec<(Vec<u8>, Value)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as Value))
            .collect();
        let t = CompactBTree::build(&entries);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as Value));
        }
        // Lower bound against a std binary search reference.
        for probe in 0..2000u64 {
            let p = encode_u64(probe * 7919);
            let expect = keys.partition_point(|k| k.as_slice() < p.as_slice());
            assert_eq!(t.lower_bound(&p), expect);
        }
    }

    /// Keys sharing a long (> 8 byte) common prefix make every separator
    /// prefix tie, forcing the SIMD count to resolve nothing and the
    /// scalar tie-walk to do all the work — the worst case for the
    /// prefix-count separator search, and the one a botched tie bound
    /// would answer wrongly.
    #[test]
    fn lower_bound_survives_all_prefix_ties() {
        let stem = b"shared-prefix-longer-than-eight-bytes-";
        let keys: Vec<Vec<u8>> = (0..4000u64)
            .map(|i| {
                let mut k = stem.to_vec();
                k.extend_from_slice(&encode_u64(i * 3));
                k
            })
            .collect();
        let entries: Vec<(Vec<u8>, Value)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as Value))
            .collect();
        let t = CompactBTree::build(&entries);
        for probe in 0..4000u64 {
            let mut p = stem.to_vec();
            p.extend_from_slice(&encode_u64(probe * 3 + probe % 2));
            let expect = keys.partition_point(|k| k.as_slice() < p.as_slice());
            assert_eq!(t.lower_bound(&p), expect, "probe {probe}");
        }
        // The batched paths run the same separator search per run head.
        let refs: Vec<&[u8]> = keys.iter().rev().map(|k| k.as_slice()).collect();
        let mut got = Vec::new();
        t.multi_get(&refs, &mut got);
        let expect: Vec<Option<Value>> = refs.iter().map(|k| t.get(k)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn compact_is_smaller_than_dynamic() {
        use crate::dynamic::BPlusTree;
        use memtree_common::traits::OrderedIndex;
        let mut dt = BPlusTree::new();
        let entries: Vec<(Vec<u8>, Value)> = (0..50_000u64)
            .map(|i| (encode_u64(i).to_vec(), i))
            .collect();
        for (k, v) in &entries {
            dt.insert(k, *v);
        }
        let ct = CompactBTree::build(&entries);
        assert!(
            (ct.mem_usage() as f64) < 0.7 * dt.mem_usage() as f64,
            "compact {} vs dynamic {}",
            ct.mem_usage(),
            dt.mem_usage()
        );
    }

    #[test]
    fn multi_get_matches_per_key_loop() {
        let mut state = 23u64;
        let mut keys: Vec<Vec<u8>> = (0..8000)
            .map(|_| {
                let len = 1 + (memtree_common::hash::splitmix64(&mut state) % 16) as usize;
                (0..len)
                    .map(|_| (memtree_common::hash::splitmix64(&mut state) % 8) as u8)
                    .collect()
            })
            .collect();
        keys.sort();
        keys.dedup();
        let entries: Vec<(Vec<u8>, Value)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as Value))
            .collect();
        for n in [0usize, 1, 5, NODE_FANOUT, NODE_FANOUT + 1, keys.len()] {
            let t = CompactBTree::build(&entries[..n]);
            // Unsorted probe order with hits, misses, and duplicates.
            let mut probes: Vec<Vec<u8>> = Vec::new();
            for (i, k) in keys.iter().enumerate().take(n.max(64)) {
                probes.push(k.clone());
                if i % 2 == 0 {
                    let mut miss = k.clone();
                    miss.push(9);
                    probes.push(miss);
                }
                if i % 5 == 0 {
                    probes.push(k.clone());
                }
            }
            probes.reverse(); // force the sort to do real work
            let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            let expect: Vec<Option<Value>> = refs.iter().map(|k| t.get(k)).collect();
            for chunk in [1usize, 16, 100, refs.len().max(1)] {
                let mut got = Vec::new();
                for c in refs.chunks(chunk) {
                    t.multi_get(c, &mut got);
                }
                assert_eq!(got, expect, "n={n} chunk={chunk}");
            }
        }
    }

    #[test]
    fn for_each_sorted_roundtrip() {
        let entries: Vec<(Vec<u8>, Value)> = (0..500u64)
            .map(|i| (encode_u64(i).to_vec(), i * 2))
            .collect();
        let t = CompactBTree::build(&entries);
        let mut got = Vec::new();
        t.for_each_sorted(&mut |k, v| got.push((k.to_vec(), v)));
        assert_eq!(got, entries);
    }

    #[test]
    fn multi_scan_matches_per_range_loop() {
        let mut state = 29u64;
        for n in [0usize, 1, NODE_FANOUT, 3000] {
            let entries: Vec<(Vec<u8>, Value)> = (0..n as u64)
                .map(|i| (encode_u64(i * 5).to_vec(), i))
                .collect();
            let t = CompactBTree::build(&entries);
            // Overlapping, duplicate, in-gap, and past-the-end range starts
            // in shuffled order, with n of 0/1/small/huge.
            let mut lows: Vec<Vec<u8>> = Vec::new();
            for _ in 0..200 {
                let r = memtree_common::hash::splitmix64(&mut state);
                lows.push(encode_u64(r % (n as u64 * 6 + 10)).to_vec());
            }
            lows.push(encode_u64(0).to_vec());
            lows.push(encode_u64(u64::MAX).to_vec());
            let ranges: Vec<(&[u8], usize)> = lows
                .iter()
                .enumerate()
                .map(|(i, low)| (low.as_slice(), [0usize, 1, 7, 10_000][i % 4]))
                .collect();
            let expect: Vec<Vec<Value>> = ranges
                .iter()
                .map(|&(low, cnt)| {
                    let mut one = Vec::new();
                    t.scan(low, cnt, &mut one);
                    one
                })
                .collect();
            assert_eq!(t.multi_scan_vec(&ranges), expect, "n={n}");
        }
    }
}
