//! B+tree family: the dynamic baseline and its Dynamic-to-Static variants.
//!
//! * [`BPlusTree`] — an STX-style in-memory B+tree over byte-string keys
//!   (the thesis's baseline; 512-byte-class nodes).
//! * [`CompactBTree`] — the result of the **Compaction** and **Structural
//!   Reduction** rules (§2.2–2.3): leaf entries packed 100 % full in one
//!   contiguous level, internal "nodes" replaced by sampled separator
//!   arrays whose child positions are computed, not stored.
//! * [`CompressedBTree`] — additionally applies the **Compression** rule
//!   (§2.4): leaf blocks go through the block codec, fronted by a CLOCK
//!   node cache.
//! * [`PrefixBTree`] — a Bayer–Unterauer prefix B+tree (leaf-level prefix
//!   truncation + shortest separators), used in the HOPE evaluation (Ch. 6).

#![warn(missing_docs)]

pub mod compact;
pub mod compressed;
pub mod dynamic;
pub mod prefix;
pub mod sepsearch;

pub use compact::CompactBTree;
pub use compressed::CompressedBTree;
pub use dynamic::BPlusTree;
pub use prefix::PrefixBTree;
