//! Compressed B+tree — the Compression rule (§2.4).
//!
//! Leaf entries are grouped into fixed-size blocks, serialized, and run
//! through the block codec. Only leaf blocks are compressed so a point
//! query decompresses at most one block; a CLOCK cache of recently
//! decompressed blocks amortizes that cost (Figure 2.3, rightmost column).

use memtree_common::error::MemtreeError;
use memtree_common::mem::{vec_bytes, vec_of_bytes};
use memtree_common::traits::{BatchProbe, StaticIndex, Value};
use std::cell::RefCell;
use std::collections::HashMap;

/// Entries per compressed leaf block.
pub const BLOCK_ENTRIES: usize = 128;

/// Default number of decompressed blocks kept in the CLOCK cache.
pub const DEFAULT_CACHE_BLOCKS: usize = 32;

/// A decoded leaf block: materialized keys and values.
struct DecodedBlock {
    key_offsets: Vec<u32>,
    key_bytes: Vec<u8>,
    vals: Vec<Value>,
}

impl DecodedBlock {
    fn key(&self, i: usize) -> &[u8] {
        &self.key_bytes[self.key_offsets[i] as usize..self.key_offsets[i + 1] as usize]
    }

    fn len(&self) -> usize {
        self.vals.len()
    }

    fn from_bytes(raw: &[u8]) -> Self {
        let n = u32::from_le_bytes(raw[0..4].try_into().unwrap()) as usize;
        let mut pos = 4;
        let mut key_offsets = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            key_offsets.push(u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()));
            pos += 4;
        }
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(Value::from_le_bytes(raw[pos..pos + 8].try_into().unwrap()));
            pos += 8;
        }
        let key_bytes = raw[pos..].to_vec();
        Self {
            key_offsets,
            key_bytes,
            vals,
        }
    }

    fn to_bytes(entries: &[(Vec<u8>, Value)]) -> Vec<u8> {
        let mut raw = Vec::new();
        raw.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        let mut off = 0u32;
        for (k, _) in entries {
            raw.extend_from_slice(&off.to_le_bytes());
            off += k.len() as u32;
        }
        raw.extend_from_slice(&off.to_le_bytes());
        for (_, v) in entries {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        for (k, _) in entries {
            raw.extend_from_slice(k);
        }
        raw
    }

    fn mem_usage(&self) -> usize {
        vec_bytes(&self.key_offsets) + vec_bytes(&self.key_bytes) + vec_bytes(&self.vals)
    }
}

/// CLOCK (second-chance) cache of decompressed blocks.
struct ClockCache {
    capacity: usize,
    /// (block_id, decoded, referenced)
    slots: Vec<(usize, DecodedBlock, bool)>,
    /// block_id → slot position — O(1) probes instead of a linear scan.
    index: HashMap<usize, usize>,
    hand: usize,
    hits: u64,
    misses: u64,
}

impl ClockCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            slots: Vec::new(),
            index: HashMap::new(),
            hand: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn find(&mut self, block_id: usize) -> Option<usize> {
        let &idx = self.index.get(&block_id)?;
        self.slots[idx].2 = true;
        self.hits += 1;
        Some(idx)
    }

    /// Caches a decode, returning its slot — or gives the block back
    /// (`Err`) when the cache holds nothing (capacity 0). The former code
    /// relied on every caller guarding capacity 0 externally: an unguarded
    /// insert ran the CLOCK sweep over zero slots and indexed out of
    /// bounds. A re-insert of an already-cached id refreshes the existing
    /// slot in place instead of indexing a duplicate that would orphan the
    /// old slot in the ring.
    fn insert(&mut self, block_id: usize, block: DecodedBlock) -> Result<usize, DecodedBlock> {
        self.misses += 1;
        if self.capacity == 0 {
            return Err(block);
        }
        if let Some(&i) = self.index.get(&block_id) {
            self.slots[i].1 = block;
            self.slots[i].2 = true;
            return Ok(i);
        }
        if self.slots.len() < self.capacity {
            self.index.insert(block_id, self.slots.len());
            self.slots.push((block_id, block, true));
            return Ok(self.slots.len() - 1);
        }
        // CLOCK sweep: clear reference bits until an unreferenced victim.
        loop {
            let slot = &mut self.slots[self.hand];
            if slot.2 {
                slot.2 = false;
                self.hand = (self.hand + 1) % self.slots.len();
            } else {
                let victim = self.hand;
                self.index.remove(&self.slots[victim].0);
                self.index.insert(block_id, victim);
                self.slots[victim] = (block_id, block, true);
                self.hand = (self.hand + 1) % self.slots.len();
                return Ok(victim);
            }
        }
    }

    /// Drops a cached decode (if any), keeping the slot index coherent.
    fn invalidate(&mut self, block_id: usize) {
        if let Some(i) = self.index.remove(&block_id) {
            self.slots.swap_remove(i);
            if i < self.slots.len() {
                self.index.insert(self.slots[i].0, i);
            }
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
        }
    }

    /// Index ↔ slots bijection plus hand range, asserted by the
    /// differential cache test after every operation.
    #[cfg(test)]
    fn assert_coherent(&self) {
        assert_eq!(self.index.len(), self.slots.len(), "index/slot count desync");
        assert!(self.slots.len() <= self.capacity);
        for (pos, slot) in self.slots.iter().enumerate() {
            assert_eq!(self.index.get(&slot.0), Some(&pos), "slot {pos} not indexed");
        }
        assert!(self.hand == 0 || self.hand < self.slots.len(), "hand out of range");
    }
}

/// A static B+tree whose leaf blocks are block-compressed.
///
/// Blocks are stored in checksummed frames
/// ([`memtree_compress::encode_block`]); every decode validates the frame,
/// so corruption of a stored block is detected rather than returning wrong
/// values. [`CompressedBTree::try_get`] and
/// [`CompressedBTree::verify_blocks`] expose the checked results; the
/// (infallible) [`StaticIndex`] methods panic on a corrupt block, which for
/// this in-memory structure means the process's own heap was damaged.
pub struct CompressedBTree {
    /// Compressed leaf blocks (checksum-framed unless built via
    /// [`CompressedBTree::build_unframed`]).
    blocks: Vec<Vec<u8>>,
    /// First key of each block (uncompressed separators).
    block_first_keys: Vec<Vec<u8>>,
    /// Separator index for descending: a compact tree over block ids.
    len: usize,
    /// Whether blocks carry the checksum frame. Always true in production;
    /// false only for the `build_unframed` robustness-tax baseline.
    framed: bool,
    cache: RefCell<ClockCache>,
}

impl CompressedBTree {
    /// Rebuilds with a given cache capacity (in blocks).
    pub fn set_cache_blocks(&mut self, capacity: usize) {
        *self.cache.borrow_mut() = ClockCache::new(capacity);
    }

    /// (hits, misses) of the decompressed-block cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.cache.borrow();
        (c.hits, c.misses)
    }

    fn block_for(&self, key: &[u8]) -> usize {
        // Last block whose first key <= key.
        self.block_first_keys
            .partition_point(|fk| fk.as_slice() <= key)
            .saturating_sub(1)
    }

    fn try_with_block<R>(
        &self,
        block_id: usize,
        f: impl FnOnce(&DecodedBlock) -> R,
    ) -> Result<R, MemtreeError> {
        let mut cache = self.cache.borrow_mut();
        if let Some(i) = cache.find(block_id) {
            return Ok(f(&cache.slots[i].1));
        }
        let raw = if self.framed {
            memtree_compress::decode_block(&self.blocks[block_id])?
        } else {
            memtree_compress::decompress(&self.blocks[block_id]).map_err(|e| {
                MemtreeError::corruption("compressed-btree", format!("unframed block: {e}"))
            })?
        };
        let decoded = DecodedBlock::from_bytes(&raw);
        match cache.insert(block_id, decoded) {
            Ok(idx) => Ok(f(&cache.slots[idx].1)),
            // Capacity 0: the cache handed the decode back.
            Err(decoded) => Ok(f(&decoded)),
        }
    }

    fn with_block<R>(&self, block_id: usize, f: impl FnOnce(&DecodedBlock) -> R) -> R {
        self.try_with_block(block_id, f)
            .expect("corrupt in-memory leaf block (use try_get/verify_blocks for checked access)")
    }

    /// Checked point lookup: like [`StaticIndex::get`] but surfaces a
    /// corrupt leaf block as [`MemtreeError::Corruption`] instead of
    /// panicking.
    pub fn try_get(&self, key: &[u8]) -> Result<Option<Value>, MemtreeError> {
        if self.len == 0 {
            return Ok(None);
        }
        let b = self.block_for(key);
        self.try_with_block(b, |blk| {
            let mut lo = 0usize;
            let mut hi = blk.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                match blk.key(mid).cmp(key) {
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                    std::cmp::Ordering::Equal => return Some(blk.vals[mid]),
                }
            }
            None
        })
    }

    /// Validates the checksum frame of every stored block.
    pub fn verify_blocks(&self) -> Result<(), MemtreeError> {
        for b in &self.blocks {
            if self.framed {
                memtree_compress::decode_block(b)?;
            } else {
                memtree_compress::decompress(b).map_err(|e| {
                    MemtreeError::corruption("compressed-btree", format!("unframed block: {e}"))
                })?;
            }
        }
        Ok(())
    }

    /// Builds with raw (unchecksummed) compressed blocks. **Benchmark
    /// baseline only** — measures the robustness tax of the checksum frame;
    /// corruption of an unframed block is *not* reliably detected.
    pub fn build_unframed(entries: &[(Vec<u8>, Value)]) -> Self {
        Self::build_inner(entries, false)
    }

    fn build_inner(entries: &[(Vec<u8>, Value)], framed: bool) -> Self {
        let mut blocks = Vec::new();
        let mut block_first_keys = Vec::new();
        for chunk in entries.chunks(BLOCK_ENTRIES) {
            block_first_keys.push(chunk[0].0.clone());
            let raw = DecodedBlock::to_bytes(chunk);
            let mut compressed = if framed {
                memtree_compress::encode_block(&raw)
            } else {
                memtree_compress::compress(&raw)
            };
            compressed.shrink_to_fit();
            blocks.push(compressed);
        }
        Self {
            blocks,
            block_first_keys,
            len: entries.len(),
            framed,
            cache: RefCell::new(ClockCache::new(DEFAULT_CACHE_BLOCKS)),
        }
    }

    /// Test hook: XORs `mask` into one stored byte of block
    /// `block_id` so corruption-detection paths can be exercised. Returns
    /// false when the block or offset is out of range.
    #[doc(hidden)]
    pub fn corrupt_block_byte(&mut self, block_id: usize, offset: usize, mask: u8) -> bool {
        // Drop any cached decode of this block so reads hit the frame.
        self.cache.borrow_mut().invalidate(block_id);
        match self.blocks.get_mut(block_id).and_then(|b| b.get_mut(offset)) {
            Some(byte) => {
                *byte ^= mask;
                mask != 0
            }
            None => false,
        }
    }
}

impl StaticIndex for CompressedBTree {
    fn build(entries: &[(Vec<u8>, Value)]) -> Self {
        Self::build_inner(entries, true)
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        if self.len == 0 {
            return None;
        }
        let b = self.block_for(key);
        self.with_block(b, |blk| {
            let mut lo = 0usize;
            let mut hi = blk.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                match blk.key(mid).cmp(key) {
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                    std::cmp::Ordering::Equal => return Some(blk.vals[mid]),
                }
            }
            None
        })
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        if self.len == 0 {
            return 0;
        }
        let mut b = self.block_for(low);
        let mut taken = 0usize;
        let mut start_lower = Some(low.to_vec());
        while taken < n && b < self.blocks.len() {
            self.with_block(b, |blk| {
                let start = match &start_lower {
                    Some(lowk) => {
                        let mut lo = 0;
                        let mut hi = blk.len();
                        while lo < hi {
                            let mid = (lo + hi) / 2;
                            if blk.key(mid) < lowk.as_slice() {
                                lo = mid + 1;
                            } else {
                                hi = mid;
                            }
                        }
                        lo
                    }
                    None => 0,
                };
                for i in start..blk.len() {
                    if taken == n {
                        break;
                    }
                    out.push(blk.vals[i]);
                    taken += 1;
                }
            });
            start_lower = None;
            b += 1;
        }
        taken
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_usage(&self) -> usize {
        // Compressed payload + separators + resident cache.
        vec_of_bytes(&self.blocks)
            + vec_of_bytes(&self.block_first_keys)
            + self
                .cache
                .borrow()
                .slots
                .iter()
                .map(|(_, b, _)| b.mem_usage())
                .sum::<usize>()
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        for b in 0..self.blocks.len() {
            self.with_block(b, |blk| {
                for i in 0..blk.len() {
                    f(blk.key(i), blk.vals[i]);
                }
            });
        }
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        if self.len == 0 {
            return;
        }
        let mut b = self.block_for(low);
        let mut first = true;
        while b < self.blocks.len() {
            let more = self.with_block(b, |blk| {
                let start = if first {
                    let mut lo = 0;
                    let mut hi = blk.len();
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        if blk.key(mid) < low {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    lo
                } else {
                    0
                };
                for i in start..blk.len() {
                    if !f(blk.key(i), blk.vals[i]) {
                        return false;
                    }
                }
                true
            });
            if !more {
                return;
            }
            first = false;
            b += 1;
        }
    }
}
/// Per-key fallback `multi_get`; no batched descent for this structure.
impl BatchProbe for CompressedBTree {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    fn entries(n: u64) -> Vec<(Vec<u8>, Value)> {
        (0..n).map(|i| (encode_u64(i * 2).to_vec(), i)).collect()
    }

    #[test]
    fn get_hit_miss_roundtrip() {
        let t = CompressedBTree::build(&entries(10_000));
        for i in (0..10_000).step_by(31) {
            assert_eq!(t.get(&encode_u64(i * 2)), Some(i));
            assert_eq!(t.get(&encode_u64(i * 2 + 1)), None);
        }
    }

    #[test]
    fn empty_and_single() {
        let t = CompressedBTree::build(&[]);
        assert_eq!(t.get(b"x"), None);
        let t = CompressedBTree::build(&[(b"k".to_vec(), 7)]);
        assert_eq!(t.get(b"k"), Some(7));
        assert_eq!(t.get(b"j"), None);
        assert_eq!(t.get(b"l"), None);
    }

    #[test]
    fn scan_across_blocks() {
        let t = CompressedBTree::build(&entries(1000));
        let mut out = Vec::new();
        // Start mid-block, cross a block boundary (BLOCK_ENTRIES = 128).
        let got = t.scan(&encode_u64(200), 200, &mut out);
        assert_eq!(got, 200);
        assert_eq!(out, (100..300).collect::<Vec<_>>());
    }

    #[test]
    fn cache_hits_on_repeat_access() {
        let t = CompressedBTree::build(&entries(10_000));
        for _ in 0..100 {
            t.get(&encode_u64(42));
        }
        let (hits, misses) = t.cache_stats();
        assert!(hits >= 99, "hits={hits} misses={misses}");
    }

    #[test]
    fn compresses_sorted_integer_keys() {
        use memtree_common::traits::StaticIndex as _;
        let e = entries(50_000);
        let t = CompressedBTree::build(&e);
        let raw_size: usize = e.iter().map(|(k, _)| k.len() + 8).sum();
        assert!(
            t.mem_usage() < raw_size,
            "compressed {} raw {}",
            t.mem_usage(),
            raw_size
        );
    }

    #[test]
    fn for_each_sorted_matches_input() {
        let e = entries(700);
        let t = CompressedBTree::build(&e);
        let mut got = Vec::new();
        t.for_each_sorted(&mut |k, v| got.push((k.to_vec(), v)));
        assert_eq!(got, e);
    }

    #[test]
    fn corrupt_block_surfaces_as_error_not_wrong_value() {
        let mut t = CompressedBTree::build(&entries(1000));
        assert!(t.verify_blocks().is_ok());
        // Key 0 lives in block 0; flip every byte of that block in turn.
        // (Probe the block length via the test hook: XOR twice is a no-op.)
        let block_len = {
            let mut len = 0;
            while t.corrupt_block_byte(0, len, 1) {
                t.corrupt_block_byte(0, len, 1); // undo
                len += 1;
            }
            len
        };
        assert!(block_len > 16, "block suspiciously small: {block_len}");
        for off in 0..block_len {
            assert!(t.corrupt_block_byte(0, off, 0x40));
            match t.try_get(&encode_u64(0)) {
                Err(memtree_common::error::MemtreeError::Corruption { .. }) => {}
                other => panic!("offset {off}: expected corruption, got {other:?}"),
            }
            assert!(t.verify_blocks().is_err(), "offset {off}");
            assert!(t.corrupt_block_byte(0, off, 0x40)); // restore
        }
        assert_eq!(t.try_get(&encode_u64(0)).unwrap(), Some(0));
        assert!(t.verify_blocks().is_ok());
    }

    #[test]
    fn unframed_baseline_reads_identically() {
        let e = entries(3000);
        let framed = CompressedBTree::build(&e);
        let mut unframed = CompressedBTree::build_unframed(&e);
        unframed.set_cache_blocks(0);
        assert!(unframed.verify_blocks().is_ok());
        for i in (0..3000).step_by(17) {
            assert_eq!(unframed.get(&encode_u64(i * 2)), framed.get(&encode_u64(i * 2)));
            assert_eq!(unframed.get(&encode_u64(i * 2 + 1)), None);
        }
        // The frame costs exactly its header per block.
        assert!(framed.mem_usage() > unframed.mem_usage());
    }

    /// Differential test of the CLOCK cache against a map model:
    /// randomized insert / find / invalidate schedules, with the index ↔
    /// slot bijection asserted after every operation. Capacity 0 must
    /// reject inserts (`Err`) instead of sweeping an empty ring — the old
    /// code indexed out of bounds when called unguarded — and a re-insert
    /// of a cached id must refresh in place, not orphan a duplicate.
    #[test]
    fn randomized_clock_cache_vs_model() {
        fn decoded(tag: u64) -> DecodedBlock {
            DecodedBlock::from_bytes(&DecodedBlock::to_bytes(&[(b"k".to_vec(), tag)]))
        }
        for capacity in [0usize, 1, 2, 3, 7] {
            for seed in 0..12u64 {
                let mut cache = ClockCache::new(capacity);
                let mut newest: HashMap<usize, u64> = HashMap::new();
                let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
                for step in 0..300u64 {
                    let r = memtree_common::hash::splitmix64(&mut state);
                    let id = (r % 9) as usize;
                    match (r >> 8) % 8 {
                        0..=3 => {
                            match cache.insert(id, decoded(step)) {
                                Err(_) => {
                                    assert_eq!(capacity, 0, "only capacity 0 hands back")
                                }
                                Ok(idx) => {
                                    assert_ne!(capacity, 0, "capacity-0 insert must hand back");
                                    assert_eq!(cache.slots[idx].0, id);
                                    assert_eq!(cache.slots[idx].1.vals[0], step);
                                }
                            }
                            newest.insert(id, step);
                        }
                        4..=6 => {
                            if let Some(idx) = cache.find(id) {
                                assert_eq!(cache.slots[idx].0, id);
                                assert_eq!(
                                    cache.slots[idx].1.vals[0],
                                    newest[&id],
                                    "cap {capacity} seed {seed}: stale decode served"
                                );
                            }
                        }
                        _ => cache.invalidate(id),
                    }
                    cache.assert_coherent();
                }
            }
        }
    }

    #[test]
    fn tiny_cache_still_correct() {
        let mut t = CompressedBTree::build(&entries(5000));
        t.set_cache_blocks(1);
        // Ping-pong between far-apart blocks.
        for i in 0..200u64 {
            let k = (i % 2) * 4000;
            assert_eq!(t.get(&encode_u64(k * 2)), Some(k));
        }
        let (hits, misses) = t.cache_stats();
        assert!(misses >= 199, "hits={hits} misses={misses}");
    }
}
