//! SIMD separator search for the Compact B+tree's sampled levels.
//!
//! A separator probe ("how many separators have `key <= target`?") is a
//! partition point over **variable-length byte strings reached through an
//! index indirection** — nothing a vector unit can chew on directly. The
//! trick: every separator level carries a side array of 8-byte big-endian
//! key prefixes (one `u64` per separator, zero-padded). Prefix order is
//! *consistent* with key order — `prefix(a) < prefix(b)` implies `a < b`
//! and vice versa; only prefix *ties* say nothing — so the probe splits
//! into
//!
//! 1. a data-parallel count of prefixes strictly below / at the target
//!    prefix ([`count_lt_le`]: compare + movemask + popcount over the
//!    whole ≤ [`NODE_FANOUT`](crate::compact::NODE_FANOUT)-wide node at
//!    once), and
//! 2. a scalar walk over the (usually empty) run of prefix ties, the only
//!    entries whose full keys must be fetched and compared.
//!
//! Kernel tiers, all exported for the differential tests and the ablation
//! bench: portable scalar, SSE2 (64-bit unsigned compare emulated from
//! 32-bit signed compares), and AVX2 (`vpcmpgtq` after a sign flip).
//! Runtime dispatch is cached per feature and honors the process-wide
//! `MEMTREE_KERNELS` policy ([`memtree_common::dispatch`]), so `scalar`
//! mode pins the portable form.

/// Big-endian, zero-padded 8-byte prefix of `key`.
///
/// Order consistency with lexicographic byte-string order: if the first
/// difference between two keys falls inside the first 8 bytes the prefixes
/// order exactly like the keys; if one key is a ≤ 8-byte prefix of the
/// other, padding zeros keep the shorter one no greater. Prefixes can tie
/// only when the keys agree on their first 8 bytes — never ordering two
/// keys the wrong way around.
#[inline]
pub fn key_prefix8(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

/// `(lt, le)` — how many entries of `prefixes` are `< target` and how many
/// are `<= target` (unsigned). Dispatches AVX2 → SSE2 → scalar.
#[inline]
pub fn count_lt_le(prefixes: &[u64], target: u64) -> (usize, usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if cpu::has_avx2() {
            // SAFETY: AVX2 presence was verified at runtime just above.
            return unsafe { count_lt_le_avx2_impl(prefixes, target) };
        }
        if cpu::has_sse2() {
            // SAFETY: SSE2 presence was verified at runtime just above.
            return unsafe { count_lt_le_sse2_impl(prefixes, target) };
        }
    }
    count_lt_le_scalar(prefixes, target)
}

/// Branchless scalar baseline for the ablation.
#[inline]
pub fn count_lt_le_scalar(prefixes: &[u64], target: u64) -> (usize, usize) {
    let (mut lt, mut le) = (0usize, 0usize);
    for &p in prefixes {
        lt += usize::from(p < target);
        le += usize::from(p <= target);
    }
    (lt, le)
}

/// SSE2 tier, when this CPU has it — `None` otherwise. Ignores the
/// `MEMTREE_KERNELS` policy so differential tests and the ablation bench
/// can cross-check tiers in any mode.
#[cfg(target_arch = "x86_64")]
pub fn count_lt_le_sse2(prefixes: &[u64], target: u64) -> Option<(usize, usize)> {
    if std::arch::is_x86_feature_detected!("sse2") {
        // SAFETY: SSE2 presence was verified at runtime just above.
        Some(unsafe { count_lt_le_sse2_impl(prefixes, target) })
    } else {
        None
    }
}

/// AVX2 tier, when this CPU has it — `None` otherwise.
#[cfg(target_arch = "x86_64")]
pub fn count_lt_le_avx2(prefixes: &[u64], target: u64) -> Option<(usize, usize)> {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence was verified at runtime just above.
        Some(unsafe { count_lt_le_avx2_impl(prefixes, target) })
    } else {
        None
    }
}

/// SSE2 has no 64-bit compare at all, so each 128-bit vector holds two
/// prefixes compared as (hi, lo) 32-bit halves: unsigned `a < t` per
/// 64-bit lane is `hi(a) < hi(t) || (hi(a) == hi(t) && lo(a) < lo(t))`,
/// built from sign-flipped `pcmpgtd` and `pcmpeqd`, then `movmskpd` reads
/// one verdict bit per lane.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
fn count_lt_le_sse2_impl(prefixes: &[u64], target: u64) -> (usize, usize) {
    use core::arch::x86_64::*;
    // SAFETY: every load reads 16 in-bounds bytes (`i + 2 <= len` words).
    unsafe {
        let sign32 = _mm_set1_epi32(i32::MIN);
        let t = _mm_set1_epi64x(target as i64);
        let tx = _mm_xor_si128(t, sign32);
        let (mut lt, mut le) = (0usize, 0usize);
        let mut i = 0usize;
        while i + 2 <= prefixes.len() {
            let a = _mm_loadu_si128(prefixes.as_ptr().add(i) as *const __m128i);
            let ax = _mm_xor_si128(a, sign32);
            // Per-32-bit-lane verdicts (memory lane order: lo, hi, lo, hi).
            let lt32 = _mm_cmpgt_epi32(tx, ax);
            let eq32 = _mm_cmpeq_epi32(a, t);
            // Spread the hi-half verdicts over the full 64-bit lane
            // (lanes 1,1,3,3) and the lo-half ones likewise (0,0,2,2).
            let lt_hi = _mm_shuffle_epi32::<0b11_11_01_01>(lt32);
            let eq_hi = _mm_shuffle_epi32::<0b11_11_01_01>(eq32);
            let lt_lo = _mm_shuffle_epi32::<0b10_10_00_00>(lt32);
            let eq_lo = _mm_shuffle_epi32::<0b10_10_00_00>(eq32);
            let lt64 = _mm_or_si128(lt_hi, _mm_and_si128(eq_hi, lt_lo));
            let eq64 = _mm_and_si128(eq_hi, eq_lo);
            let lt_bits = _mm_movemask_pd(_mm_castsi128_pd(lt64)) as u32;
            let eq_bits = _mm_movemask_pd(_mm_castsi128_pd(eq64)) as u32;
            lt += lt_bits.count_ones() as usize;
            le += (lt_bits | eq_bits).count_ones() as usize;
            i += 2;
        }
        if i < prefixes.len() {
            let p = prefixes[i];
            lt += usize::from(p < target);
            le += usize::from(p <= target);
        }
        (lt, le)
    }
}

/// AVX2 form: four prefixes per vector, `vpcmpgtq` after flipping the sign
/// bit turns the signed compare unsigned, `vmovmskpd` reads one verdict
/// bit per 64-bit lane.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn count_lt_le_avx2_impl(prefixes: &[u64], target: u64) -> (usize, usize) {
    use core::arch::x86_64::*;
    // SAFETY: every load reads 32 in-bounds bytes (`i + 4 <= len` words).
    unsafe {
        let sign = _mm256_set1_epi64x(i64::MIN);
        let t = _mm256_set1_epi64x(target as i64);
        let tx = _mm256_xor_si256(t, sign);
        let (mut lt, mut le) = (0usize, 0usize);
        let mut i = 0usize;
        while i + 4 <= prefixes.len() {
            let a = _mm256_loadu_si256(prefixes.as_ptr().add(i) as *const __m256i);
            let ax = _mm256_xor_si256(a, sign);
            let lt64 = _mm256_cmpgt_epi64(tx, ax);
            let eq64 = _mm256_cmpeq_epi64(a, t);
            let lt_bits = _mm256_movemask_pd(_mm256_castsi256_pd(lt64)) as u32;
            let eq_bits = _mm256_movemask_pd(_mm256_castsi256_pd(eq64)) as u32;
            lt += lt_bits.count_ones() as usize;
            le += (lt_bits | eq_bits).count_ones() as usize;
            i += 4;
        }
        while i < prefixes.len() {
            let p = prefixes[i];
            lt += usize::from(p < target);
            le += usize::from(p <= target);
            i += 1;
        }
        (lt, le)
    }
}

/// Cached runtime CPU-feature detection (same contract as the succinct
/// crate's kernels: first call pays for `cpuid`, later calls are one
/// relaxed atomic load, and the `MEMTREE_KERNELS` policy can pin scalar).
#[cfg(target_arch = "x86_64")]
mod cpu {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNKNOWN: u8 = 0;
    const ABSENT: u8 = 1;
    const PRESENT: u8 = 2;

    macro_rules! cached {
        ($cache:ident, $feature:tt) => {{
            static $cache: AtomicU8 = AtomicU8::new(UNKNOWN);
            match $cache.load(Ordering::Relaxed) {
                UNKNOWN => {
                    let present = memtree_common::dispatch::hardware_allowed()
                        && std::arch::is_x86_feature_detected!($feature);
                    $cache.store(if present { PRESENT } else { ABSENT }, Ordering::Relaxed);
                    present
                }
                state => state == PRESENT,
            }
        }};
    }

    #[inline]
    pub(super) fn has_sse2() -> bool {
        cached!(SSE2, "sse2")
    }

    #[inline]
    pub(super) fn has_avx2() -> bool {
        cached!(AVX2, "avx2")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(prefixes: &[u64], target: u64) -> (usize, usize) {
        (
            prefixes.iter().filter(|&&p| p < target).count(),
            prefixes.iter().filter(|&&p| p <= target).count(),
        )
    }

    #[test]
    fn prefix_order_is_consistent_with_key_order() {
        let mut state = 3u64;
        let mut keys: Vec<Vec<u8>> = (0..500)
            .map(|_| {
                let len = (memtree_common::hash::splitmix64(&mut state) % 12) as usize;
                (0..len)
                    .map(|_| (memtree_common::hash::splitmix64(&mut state) % 4) as u8)
                    .collect()
            })
            .collect();
        keys.sort();
        for w in keys.windows(2) {
            assert!(
                key_prefix8(&w[0]) <= key_prefix8(&w[1]),
                "prefixes out of order for {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        // Boundary widths around the 8-byte cut.
        assert!(key_prefix8(b"abcdefg") < key_prefix8(b"abcdefgh"));
        assert_eq!(key_prefix8(b"abcdefgh"), key_prefix8(b"abcdefghZZZ"));
        assert_eq!(key_prefix8(b""), 0);
    }

    #[test]
    fn every_tier_matches_the_reference() {
        let mut state = 17u64;
        for len in 0..70usize {
            let mut prefixes: Vec<u64> = (0..len)
                .map(|_| {
                    // Cluster values so equality and near-ties are common,
                    // and sprinkle sign-bit-high values to catch a botched
                    // unsigned emulation.
                    let r = memtree_common::hash::splitmix64(&mut state);
                    (r % 16).wrapping_mul(0x2000_0000_0000_0000)
                })
                .collect();
            prefixes.sort_unstable();
            let mut targets: Vec<u64> =
                (0..16).map(|k| (k as u64).wrapping_mul(0x2000_0000_0000_0000)).collect();
            targets.extend([0, 1, u64::MAX, u64::MAX - 1, 1u64 << 63, (1u64 << 63) - 1]);
            for &t in &targets {
                let want = reference(&prefixes, t);
                assert_eq!(count_lt_le_scalar(&prefixes, t), want, "scalar len={len} t={t:#x}");
                assert_eq!(count_lt_le(&prefixes, t), want, "dispatch len={len} t={t:#x}");
                #[cfg(target_arch = "x86_64")]
                {
                    if let Some(got) = count_lt_le_sse2(&prefixes, t) {
                        assert_eq!(got, want, "sse2 len={len} t={t:#x}");
                    }
                    if let Some(got) = count_lt_le_avx2(&prefixes, t) {
                        assert_eq!(got, want, "avx2 len={len} t={t:#x}");
                    }
                }
            }
        }
    }
}
