//! Prefix B+tree (Bayer–Unterauer), used in the HOPE evaluation (Ch. 6).
//!
//! Two classic optimizations over the plain B+tree:
//!
//! * **Leaf prefix truncation** — each leaf stores the common prefix of its
//!   keys once; entries keep only their suffixes.
//! * **Shortest separators** — inner nodes store the shortest string that
//!   separates the adjacent leaves instead of a full key.
//!
//! Deletion removes entries without merging underfull nodes (as real
//! systems such as PostgreSQL's nbtree do); the half-full invariant is
//! maintained by splits only.

use memtree_common::key::common_prefix_len;
use memtree_common::mem::vec_bytes;
use memtree_common::traits::{OrderedIndex, Value};

type NodeId = u32;
const NIL: NodeId = u32::MAX;

/// Max entries per node.
pub const DEFAULT_FANOUT: usize = 32;

#[derive(Debug)]
enum Node {
    Leaf {
        prefix: Vec<u8>,
        suffixes: Vec<Box<[u8]>>,
        vals: Vec<Value>,
        next: NodeId,
    },
    Inner {
        keys: Vec<Box<[u8]>>,
        children: Vec<NodeId>,
    },
}

/// A B+tree with leaf prefix truncation and shortest separators.
#[derive(Debug)]
pub struct PrefixBTree {
    nodes: Vec<Node>,
    root: NodeId,
    len: usize,
    fanout: usize,
}

enum InsertUp {
    Done,
    Duplicate,
    Split(Box<[u8]>, NodeId),
}

impl Default for PrefixBTree {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixBTree {
    /// Creates an empty tree with the default fanout.
    pub fn new() -> Self {
        Self::with_fanout(DEFAULT_FANOUT)
    }

    /// Creates an empty tree with a custom node capacity (min 4).
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout >= 4);
        Self {
            nodes: vec![Node::Leaf {
                prefix: Vec::new(),
                suffixes: Vec::new(),
                vals: Vec::new(),
                next: NIL,
            }],
            root: 0,
            len: 0,
            fanout,
        }
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        (self.nodes.len() - 1) as NodeId
    }

    fn find_leaf(&self, key: &[u8]) -> NodeId {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Leaf { .. } => return id,
                Node::Inner { keys, children } => {
                    let ci = keys.partition_point(|k| k.as_ref() <= key);
                    id = children[ci];
                }
            }
        }
    }

    /// Where `key` sits relative to a leaf's entries:
    /// `Ok(i)` exact match at slot `i`, `Err(i)` insertion slot `i`.
    fn leaf_search(prefix: &[u8], suffixes: &[Box<[u8]>], key: &[u8]) -> Result<usize, usize> {
        let cp = common_prefix_len(key, prefix);
        if cp < prefix.len() {
            // Key diverges from the leaf prefix: all entries compare on the
            // prefix byte.
            return if key.len() == cp || key[cp] < prefix[cp] {
                Err(0)
            } else {
                Err(suffixes.len())
            };
        }
        let ks = &key[prefix.len()..];
        suffixes.binary_search_by(|s| s.as_ref().cmp(ks))
    }

    /// Tightens a leaf's prefix to the common prefix of its current keys.
    fn tighten(prefix: &mut Vec<u8>, suffixes: &mut [Box<[u8]>]) {
        if suffixes.len() < 2 {
            return;
        }
        let first = &suffixes[0];
        let last = &suffixes[suffixes.len() - 1];
        let extra = common_prefix_len(first, last);
        if extra == 0 {
            return;
        }
        prefix.extend_from_slice(&first[..extra]);
        for s in suffixes.iter_mut() {
            *s = s[extra..].into();
        }
    }

    /// Shortest separator `s` with `left_max < s <= right_min`.
    fn shortest_separator(left_max: &[u8], right_min: &[u8]) -> Box<[u8]> {
        let cp = common_prefix_len(left_max, right_min);
        right_min[..(cp + 1).min(right_min.len())].into()
    }

    fn insert_rec(&mut self, id: NodeId, key: &[u8], val: Value) -> InsertUp {
        let child_slot = match &self.nodes[id as usize] {
            Node::Leaf { .. } => None,
            Node::Inner { keys, children } => {
                let ci = keys.partition_point(|k| k.as_ref() <= key);
                Some((ci, children[ci]))
            }
        };
        match child_slot {
            None => {
                let fanout = self.fanout;
                let Node::Leaf {
                    prefix,
                    suffixes,
                    vals,
                    next,
                } = &mut self.nodes[id as usize]
                else {
                    unreachable!()
                };
                // Widen the prefix if the new key diverges from it.
                let cp = common_prefix_len(key, prefix);
                if cp < prefix.len() && !suffixes.is_empty() {
                    let tail: Vec<u8> = prefix[cp..].to_vec();
                    for s in suffixes.iter_mut() {
                        let mut ns = Vec::with_capacity(tail.len() + s.len());
                        ns.extend_from_slice(&tail);
                        ns.extend_from_slice(s);
                        *s = ns.into();
                    }
                    prefix.truncate(cp);
                } else if suffixes.is_empty() {
                    *prefix = key.to_vec();
                    suffixes.push(Box::from(&[][..]));
                    vals.push(val);
                    return InsertUp::Done;
                }
                let pos = match Self::leaf_search(prefix, suffixes, key) {
                    Ok(_) => return InsertUp::Duplicate,
                    Err(p) => p,
                };
                suffixes.insert(pos, key[prefix.len()..].into());
                vals.insert(pos, val);
                if suffixes.len() <= fanout {
                    return InsertUp::Done;
                }
                // Split.
                let mid = suffixes.len() / 2;
                let mut r_suf: Vec<Box<[u8]>> = suffixes.split_off(mid);
                let r_vals: Vec<Value> = vals.split_off(mid);
                let left_max: Vec<u8> = [prefix.as_slice(), &suffixes[suffixes.len() - 1]].concat();
                let right_min: Vec<u8> = [prefix.as_slice(), &r_suf[0]].concat();
                let sep = Self::shortest_separator(&left_max, &right_min);
                let mut r_prefix = prefix.clone();
                Self::tighten(&mut r_prefix, &mut r_suf);
                Self::tighten(prefix, suffixes);
                let old_next = *next;
                let rid = self.alloc(Node::Leaf {
                    prefix: r_prefix,
                    suffixes: r_suf,
                    vals: r_vals,
                    next: old_next,
                });
                let Node::Leaf { next, .. } = &mut self.nodes[id as usize] else {
                    unreachable!()
                };
                *next = rid;
                InsertUp::Split(sep, rid)
            }
            Some((ci, child)) => match self.insert_rec(child, key, val) {
                InsertUp::Done => InsertUp::Done,
                InsertUp::Duplicate => InsertUp::Duplicate,
                InsertUp::Split(sep, new_child) => {
                    let fanout = self.fanout;
                    let Node::Inner { keys, children } = &mut self.nodes[id as usize] else {
                        unreachable!()
                    };
                    keys.insert(ci, sep);
                    children.insert(ci + 1, new_child);
                    if children.len() <= fanout {
                        return InsertUp::Done;
                    }
                    let mid = keys.len() / 2;
                    let up = keys[mid].clone();
                    let r_keys = keys.split_off(mid + 1);
                    keys.pop();
                    let r_children = children.split_off(mid + 1);
                    let rid = self.alloc(Node::Inner {
                        keys: r_keys,
                        children: r_children,
                    });
                    InsertUp::Split(up, rid)
                }
            },
        }
    }

    /// Iterates in order from the first key `>= low` until `f` returns
    /// `false`. Keys are reconstructed into a scratch buffer.
    pub fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        let mut id = self.find_leaf(low);
        let mut first = true;
        let mut scratch = Vec::new();
        loop {
            let Node::Leaf {
                prefix,
                suffixes,
                vals,
                next,
            } = &self.nodes[id as usize]
            else {
                unreachable!()
            };
            let start = if first {
                match Self::leaf_search(prefix, suffixes, low) {
                    Ok(i) => i,
                    Err(i) => i,
                }
            } else {
                0
            };
            first = false;
            for i in start..suffixes.len() {
                scratch.clear();
                scratch.extend_from_slice(prefix);
                scratch.extend_from_slice(&suffixes[i]);
                if !f(&scratch, vals[i]) {
                    return;
                }
            }
            if *next == NIL {
                return;
            }
            id = *next;
        }
    }
}

impl OrderedIndex for PrefixBTree {
    fn insert(&mut self, key: &[u8], value: Value) -> bool {
        match self.insert_rec(self.root, key, value) {
            InsertUp::Done => {
                self.len += 1;
                true
            }
            InsertUp::Duplicate => false,
            InsertUp::Split(sep, rid) => {
                let new_root = self.alloc(Node::Inner {
                    keys: vec![sep],
                    children: vec![self.root, rid],
                });
                self.root = new_root;
                self.len += 1;
                true
            }
        }
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        let leaf = self.find_leaf(key);
        let Node::Leaf {
            prefix,
            suffixes,
            vals,
            ..
        } = &self.nodes[leaf as usize]
        else {
            unreachable!()
        };
        Self::leaf_search(prefix, suffixes, key)
            .ok()
            .map(|i| vals[i])
    }

    fn update(&mut self, key: &[u8], value: Value) -> bool {
        let leaf = self.find_leaf(key);
        let Node::Leaf {
            prefix,
            suffixes,
            vals,
            ..
        } = &mut self.nodes[leaf as usize]
        else {
            unreachable!()
        };
        match Self::leaf_search(prefix, suffixes, key) {
            Ok(i) => {
                vals[i] = value;
                true
            }
            Err(_) => false,
        }
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        let leaf = self.find_leaf(key);
        let Node::Leaf {
            prefix,
            suffixes,
            vals,
            ..
        } = &mut self.nodes[leaf as usize]
        else {
            unreachable!()
        };
        match Self::leaf_search(prefix, suffixes, key) {
            Ok(i) => {
                suffixes.remove(i);
                vals.remove(i);
                self.len -= 1;
                true
            }
            Err(_) => false,
        }
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let before = out.len();
        self.range_from(low, &mut |_k, v| {
            if out.len() - before == n {
                return false;
            }
            out.push(v);
            out.len() - before < n
        });
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_usage(&self) -> usize {
        let mut total = vec_bytes(&self.nodes);
        for node in &self.nodes {
            match node {
                Node::Leaf {
                    prefix,
                    suffixes,
                    vals,
                    ..
                } => {
                    total += vec_bytes(prefix)
                        + vec_bytes(suffixes)
                        + suffixes.iter().map(|s| s.len()).sum::<usize>()
                        + vec_bytes(vals);
                }
                Node::Inner { keys, children } => {
                    total += vec_bytes(keys)
                        + keys.iter().map(|k| k.len()).sum::<usize>()
                        + vec_bytes(children);
                }
            }
        }
        total
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        PrefixBTree::range_from(self, &[], &mut |k, v| {
            f(k, v);
            true
        });
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        PrefixBTree::range_from(self, low, f);
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::Leaf {
            prefix: Vec::new(),
            suffixes: Vec::new(),
            vals: Vec::new(),
            next: NIL,
        });
        self.root = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    #[test]
    fn email_like_keys_roundtrip() {
        let mut t = PrefixBTree::with_fanout(8);
        let mut keys: Vec<Vec<u8>> = (0..2000u64)
            .map(|i| format!("com.example{}@user{:06}", i % 7, i).into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            assert!(t.insert(k, i as u64), "insert {i}");
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "get {i}");
        }
        assert_eq!(t.get(b"com.example0@user999999"), None);
        keys.sort();
        let mut got = Vec::new();
        t.for_each_sorted(&mut |k, _| got.push(k.to_vec()));
        assert_eq!(got, keys);
    }

    #[test]
    fn prefix_truncation_saves_memory() {
        use crate::dynamic::BPlusTree;
        let keys: Vec<Vec<u8>> = (0..20_000u64)
            .map(|i| format!("http://www.example.com/some/long/path/{i:08}").into_bytes())
            .collect();
        let mut plain = BPlusTree::new();
        let mut pfx = PrefixBTree::new();
        for (i, k) in keys.iter().enumerate() {
            plain.insert(k, i as u64);
            pfx.insert(k, i as u64);
        }
        assert!(
            (pfx.mem_usage() as f64) < 0.7 * plain.mem_usage() as f64,
            "prefix {} vs plain {}",
            pfx.mem_usage(),
            plain.mem_usage()
        );
    }

    #[test]
    fn diverging_key_rewidens_prefix() {
        let mut t = PrefixBTree::with_fanout(4);
        assert!(t.insert(b"aaaa1", 1));
        assert!(t.insert(b"aaaa2", 2));
        assert!(t.insert(b"b", 3)); // forces prefix from "aaaa" to ""
        assert_eq!(t.get(b"aaaa1"), Some(1));
        assert_eq!(t.get(b"aaaa2"), Some(2));
        assert_eq!(t.get(b"b"), Some(3));
        assert_eq!(t.get(b"aaaa"), None);
    }

    #[test]
    fn exact_prefix_key_is_storable() {
        let mut t = PrefixBTree::new();
        assert!(t.insert(b"abc", 1));
        assert!(t.insert(b"abcd", 2));
        assert!(t.insert(b"abcde", 3));
        assert_eq!(t.get(b"abc"), Some(1));
        assert_eq!(t.get(b"abcd"), Some(2));
        assert_eq!(t.get(b"ab"), None);
    }

    #[test]
    fn update_remove() {
        let mut t = PrefixBTree::new();
        for i in 0..100u64 {
            t.insert(&encode_u64(i), i);
        }
        assert!(t.update(&encode_u64(5), 500));
        assert_eq!(t.get(&encode_u64(5)), Some(500));
        assert!(t.remove(&encode_u64(5)));
        assert_eq!(t.get(&encode_u64(5)), None);
        assert_eq!(t.len(), 99);
        assert!(!t.remove(&encode_u64(5)));
    }

    #[test]
    fn scan_matches_plain_btree() {
        use crate::dynamic::BPlusTree;
        let mut state = 3u64;
        let keys: Vec<Vec<u8>> = (0..3000)
            .map(|_| {
                let x = memtree_common::hash::splitmix64(&mut state);
                format!("user{:012}", x % 1_000_000).into_bytes()
            })
            .collect();
        let mut a = PrefixBTree::with_fanout(8);
        let mut b = BPlusTree::with_fanout(8);
        for (i, k) in keys.iter().enumerate() {
            let ra = a.insert(k, i as u64);
            let rb = b.insert(k, i as u64);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.len(), b.len());
        for probe in ["user", "user000000500000", "zzz", ""] {
            let (mut oa, mut ob) = (Vec::new(), Vec::new());
            a.scan(probe.as_bytes(), 20, &mut oa);
            b.scan(probe.as_bytes(), 20, &mut ob);
            assert_eq!(oa, ob, "probe {probe}");
        }
    }
}
