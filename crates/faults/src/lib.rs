//! Deterministic fault injection for the memtree workspace.
//!
//! A process-wide registry of **named injection points**. Production code
//! marks its risky transitions with [`fail_point!`] (or [`should_fail`]);
//! tests arm specific points with a seed, a failure probability, and an
//! optional failure budget, then assert that the system degrades instead
//! of corrupting state.
//!
//! Design goals, in order:
//!
//! 1. **Zero cost when disarmed** — a single relaxed atomic load guards
//!    every point; release binaries that never call [`enable`] pay one
//!    branch per point.
//! 2. **Deterministic** — each point owns a SplitMix64 stream seeded from
//!    the global seed and the point's name, so a failing schedule replays
//!    from `(seed, op sequence)` alone, independent of unrelated points.
//! 3. **Thread-safe** — the registry is a `Mutex`-guarded map; points are
//!    armed/tripped atomically.
//!
//! ```
//! use memtree_faults as faults;
//!
//! fn fetch_block() -> memtree_common::error::Result<Vec<u8>> {
//!     faults::fail_point!("doc.fetch");
//!     Ok(vec![1, 2, 3])
//! }
//!
//! let _guard = faults::test_lock(); // serialize fault tests in one binary
//! faults::enable(42);
//! faults::arm("doc.fetch", 1.0, Some(1)); // always fail, once
//! assert!(fetch_block().is_err());
//! assert!(fetch_block().is_ok()); // budget exhausted
//! assert_eq!(faults::trips("doc.fetch"), 1);
//! faults::disable();
//! ```

#![warn(missing_docs)]

use memtree_common::hash::{hash64_seed, splitmix64};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

pub use memtree_common::error::MemtreeError;

/// Fast-path switch: when false, every [`should_fail`] returns false after
/// one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

#[derive(Debug, Default)]
struct PointState {
    /// Probability in [0, 1] that an evaluation trips.
    probability: f64,
    /// Remaining failures allowed (`None` = unlimited).
    budget: Option<u64>,
    /// Per-point deterministic RNG stream.
    rng: u64,
    /// Times this point fired.
    trips: u64,
    /// Times this point was evaluated while armed.
    evals: u64,
}

#[derive(Debug, Default)]
struct Registry {
    seed: u64,
    points: HashMap<String, PointState>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Enables fault injection with a global seed. Clears any previously armed
/// points so each test starts from a clean registry.
pub fn enable(seed: u64) {
    let mut r = lock();
    r.seed = seed;
    r.points.clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables fault injection and clears every armed point. All
/// [`should_fail`] calls return false afterwards.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
    lock().points.clear();
}

/// True while the registry is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms `point` to fail with `probability` (clamped to [0, 1]) and an
/// optional budget of at most `budget` failures. Re-arming resets the
/// point's counters and RNG stream.
pub fn arm(point: &str, probability: f64, budget: Option<u64>) {
    let mut r = lock();
    let rng = r.seed ^ hash64_seed(point.as_bytes(), 0x0FA1_7599);
    r.points.insert(
        point.to_string(),
        PointState {
            probability: probability.clamp(0.0, 1.0),
            budget,
            rng,
            trips: 0,
            evals: 0,
        },
    );
}

/// Disarms a single point, leaving the rest of the registry untouched.
pub fn disarm(point: &str) {
    lock().points.remove(point);
}

/// Evaluates `point`: returns true if the fault should fire now. Counts
/// the evaluation, consumes budget on a trip. Points that were never
/// [`arm`]ed never fire.
pub fn should_fail(point: &str) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    let mut r = lock();
    let Some(s) = r.points.get_mut(point) else {
        return false;
    };
    s.evals += 1;
    if s.budget == Some(0) {
        return false;
    }
    let draw = splitmix64(&mut s.rng) as f64 / u64::MAX as f64;
    if draw >= s.probability {
        return false;
    }
    if let Some(b) = &mut s.budget {
        *b -= 1;
    }
    s.trips += 1;
    true
}

/// Times `point` has fired since it was armed.
pub fn trips(point: &str) -> u64 {
    lock().points.get(point).map_or(0, |s| s.trips)
}

/// Times `point` was evaluated while armed.
pub fn evaluations(point: &str) -> u64 {
    lock().points.get(point).map_or(0, |s| s.evals)
}

/// Bounded-backoff retry policy for transient faults.
///
/// The simulated disk has no asynchronous completion to wait on, so the
/// backoff is a deterministic, exponentially growing busy-wait — enough to
/// model "give the device a moment" without wall-clock nondeterminism.
/// Only [`MemtreeError::is_transient`] failures are retried; corruption,
/// ENOSPC, and injected crash faults propagate immediately so callers keep
/// their typed abort semantics.
#[derive(Debug)]
pub struct Backoff {
    attempts: u32,
    max_attempts: u32,
    spin: u32,
}

impl Backoff {
    /// A policy allowing at most `max_attempts` total attempts (so at most
    /// `max_attempts - 1` retries).
    pub fn new(max_attempts: u32) -> Self {
        Self {
            attempts: 1,
            max_attempts: max_attempts.max(1),
            spin: 32,
        }
    }

    /// Attempts recorded so far (starts at 1: the initial try).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Records a failed attempt. Returns true when the caller should try
    /// again — the error is transient and budget remains — after a bounded
    /// busy-wait. Returns false (no wait) for non-transient errors or an
    /// exhausted budget.
    pub fn retry(&mut self, err: &MemtreeError) -> bool {
        if !err.is_transient() || self.attempts >= self.max_attempts {
            return false;
        }
        self.attempts += 1;
        for _ in 0..self.spin {
            std::hint::spin_loop();
        }
        self.spin = self.spin.saturating_mul(2).min(1 << 14);
        true
    }
}

/// Serializes fault-injection tests within one test binary. The registry
/// is process-global, so concurrently running `#[test]`s would otherwise
/// see each other's armed points. Hold the guard for the whole test.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Marks a fallible injection point. If the point is armed and fires, the
/// enclosing function returns `Err(MemtreeError::Injected { .. })` (or a
/// custom error with the two-argument form).
///
/// Compiles to a single relaxed atomic load plus a never-taken branch when
/// injection is disabled.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        if $crate::should_fail($name) {
            return Err($crate::MemtreeError::Injected {
                point: ($name).to_string(),
            }
            .into());
        }
    };
    ($name:expr, $err:expr) => {
        if $crate::should_fail($name) {
            return Err($err);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_never_fire_and_cost_nothing() {
        let _g = test_lock();
        disable();
        assert!(!should_fail("never.armed"));
        enable(1);
        assert!(!should_fail("never.armed"));
        disable();
    }

    #[test]
    fn probability_one_always_fires_until_budget() {
        let _g = test_lock();
        enable(7);
        arm("t.always", 1.0, Some(3));
        let fired: Vec<bool> = (0..5).map(|_| should_fail("t.always")).collect();
        assert_eq!(fired, [true, true, true, false, false]);
        assert_eq!(trips("t.always"), 3);
        assert_eq!(evaluations("t.always"), 5);
        disable();
    }

    #[test]
    fn seeded_schedules_replay_exactly() {
        let _g = test_lock();
        let run = |seed| {
            enable(seed);
            arm("t.half", 0.5, None);
            let v: Vec<bool> = (0..64).map(|_| should_fail("t.half")).collect();
            disable();
            v
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn points_are_independent_streams() {
        let _g = test_lock();
        enable(5);
        arm("t.a", 0.5, None);
        arm("t.b", 0.5, None);
        let solo: Vec<bool> = (0..32).map(|_| should_fail("t.a")).collect();
        // Re-arm and interleave evaluations of another point: t.a's
        // schedule must not change.
        arm("t.a", 0.5, None);
        let interleaved: Vec<bool> = (0..32)
            .map(|_| {
                should_fail("t.b");
                should_fail("t.a")
            })
            .collect();
        assert_eq!(solo, interleaved);
        disable();
    }

    #[test]
    fn fail_point_macro_returns_typed_error() {
        let _g = test_lock();
        fn op() -> Result<u32, MemtreeError> {
            crate::fail_point!("t.macro");
            Ok(42)
        }
        enable(3);
        arm("t.macro", 1.0, Some(1));
        match op() {
            Err(MemtreeError::Injected { point }) => assert_eq!(point, "t.macro"),
            other => panic!("expected injected error, got {other:?}"),
        }
        assert_eq!(op(), Ok(42));
        disable();
    }

    #[test]
    fn backoff_retries_transient_only_within_budget() {
        let mut b = Backoff::new(3);
        let transient = MemtreeError::TransientIo { context: "t" };
        assert!(b.retry(&transient), "first retry allowed");
        assert!(b.retry(&transient), "second retry allowed");
        assert!(!b.retry(&transient), "budget of 3 attempts exhausted");
        assert_eq!(b.attempts(), 3);

        let mut b = Backoff::new(4);
        let hard = MemtreeError::corruption("t", "bad");
        assert!(!b.retry(&hard), "corruption is never retried");
        let enospc = MemtreeError::Enospc { context: "t", requested: 1 };
        assert!(!b.retry(&enospc), "ENOSPC is never retried");
        assert_eq!(b.attempts(), 1, "non-transient errors consume no budget");
    }

    #[test]
    fn threads_share_the_registry_safely() {
        let _g = test_lock();
        enable(11);
        arm("t.mt", 1.0, Some(1000));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| (0..250).filter(|_| should_fail("t.mt")).count())
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
        assert_eq!(trips("t.mt"), 1000);
        disable();
    }
}
