//! Crit-bit (PATRICIA) trie — the workspace's stand-in for HOT in the
//! HOPE evaluation (Chapter 6; substitution documented in DESIGN.md).
//!
//! Inner nodes store only a *critical bit position* (byte index + bit
//! mask); leaves store full keys. Like HOT, navigation touches only the
//! discriminative bits of the key, so the tree's height depends on key
//! distinctness rather than key length.
//!
//! Out-of-range bytes read as zero (djb semantics): keys that differ only
//! by trailing NUL bytes are not distinguishable — the same NUL-freeness
//! assumption HOPE makes.

#![warn(missing_docs)]

use memtree_common::mem::vec_bytes;
use memtree_common::traits::{OrderedIndex, Value};

#[derive(Debug)]
enum Node {
    Leaf {
        key: Box<[u8]>,
        value: Value,
    },
    Inner {
        /// Byte index of the critical bit.
        byte: u32,
        /// Single-bit mask within that byte (0x80 = most significant).
        mask: u8,
        /// `children[0]`: crit bit clear (smaller keys).
        children: [Box<Node>; 2],
    },
}

/// Bit of `key` at `(byte, mask)`; bytes past the end read as 0.
#[inline]
fn dir(key: &[u8], byte: u32, mask: u8) -> usize {
    let b = key.get(byte as usize).copied().unwrap_or(0);
    usize::from(b & mask != 0)
}

/// Is crit position `(b1, m1)` strictly earlier (more significant) than
/// `(b2, m2)`?
#[inline]
fn crit_lt(b1: u32, m1: u8, b2: u32, m2: u8) -> bool {
    b1 < b2 || (b1 == b2 && m1 > m2)
}

/// First differing bit position between `a` and `b` as `(byte, mask)`;
/// `None` when equal under zero-extension.
fn first_diff(a: &[u8], b: &[u8]) -> Option<(u32, u8)> {
    let n = a.len().max(b.len());
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        if x != y {
            let diff = x ^ y;
            // Highest set bit of the xor.
            let mask = 0x80u8 >> diff.leading_zeros();
            return Some((i as u32, mask));
        }
    }
    None
}

/// A crit-bit trie mapping byte strings to values.
#[derive(Debug, Default)]
pub struct CritBitTrie {
    root: Option<Box<Node>>,
    len: usize,
}

impl CritBitTrie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// The leaf reached by following `key`'s bits (the "best match").
    fn best_leaf<'a>(&'a self, key: &[u8]) -> Option<(&'a [u8], Value)> {
        let mut node = self.root.as_deref()?;
        loop {
            match node {
                Node::Leaf { key: lk, value } => return Some((lk, *value)),
                Node::Inner {
                    byte,
                    mask,
                    children,
                } => node = &children[dir(key, *byte, *mask)],
            }
        }
    }

    fn emit_all(node: &Node, f: &mut dyn FnMut(&[u8], Value) -> bool) -> bool {
        match node {
            Node::Leaf { key, value } => f(key, *value),
            Node::Inner { children, .. } => {
                Self::emit_all(&children[0], f) && Self::emit_all(&children[1], f)
            }
        }
    }

    /// In-order iteration from the first key `>= low`.
    pub fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        let Some(root) = self.root.as_deref() else {
            return;
        };
        if low.is_empty() {
            Self::emit_all(root, f);
            return;
        }
        let (best, _) = self.best_leaf(low).expect("non-empty");
        let diff = first_diff(low, best);
        // Re-descend, collecting the right subtrees of left turns — these
        // are the successor regions, nearest last.
        let mut pending: Vec<&Node> = Vec::new();
        let mut node = root;
        let (c_byte, c_mask) = diff.unwrap_or((u32::MAX, 0));
        while let Node::Inner {
            byte,
            mask,
            children,
        } = node
        {
            if diff.is_some() && !crit_lt(*byte, *mask, c_byte, c_mask) {
                break;
            }
            let d = dir(low, *byte, *mask);
            if d == 0 {
                pending.push(&children[1]);
            }
            node = &children[d];
        }
        // `node` now roots the subtree agreeing with `low` up to the diff.
        let include_subtree = match diff {
            None => true,                              // exact match region
            Some((b, m)) => dir(low, b, m) == 0,       // subtree keys > low
        };
        if include_subtree && !Self::emit_all(node, f) {
            return;
        }
        for sub in pending.into_iter().rev() {
            if !Self::emit_all(sub, f) {
                return;
            }
        }
    }
}

impl OrderedIndex for CritBitTrie {
    fn insert(&mut self, key: &[u8], value: Value) -> bool {
        let Some(_) = self.root.as_deref() else {
            self.root = Some(Box::new(Node::Leaf {
                key: key.into(),
                value,
            }));
            self.len = 1;
            return true;
        };
        let (best, _) = self.best_leaf(key).expect("non-empty");
        let Some((c_byte, c_mask)) = first_diff(key, best) else {
            return false; // duplicate
        };
        let new_dir = dir(key, c_byte, c_mask); // bit of the NEW key
        // Find the insertion point: the first node whose crit position is
        // after (c_byte, c_mask).
        let mut slot = self.root.as_mut().expect("non-empty");
        loop {
            match slot.as_ref() {
                Node::Inner { byte, mask, .. } if crit_lt(*byte, *mask, c_byte, c_mask) => {
                    let (byte, mask) = (*byte, *mask);
                    let Node::Inner { children, .. } = slot.as_mut() else {
                        unreachable!()
                    };
                    let d = dir(key, byte, mask);
                    slot = &mut children[d];
                }
                _ => break,
            }
        }
        let old = std::mem::replace(
            slot,
            Box::new(Node::Leaf {
                key: Box::from(&[][..]),
                value: 0,
            }),
        );
        let new_leaf = Box::new(Node::Leaf {
            key: key.into(),
            value,
        });
        let children = if new_dir == 0 {
            [new_leaf, old]
        } else {
            [old, new_leaf]
        };
        **slot = Node::Inner {
            byte: c_byte,
            mask: c_mask,
            children,
        };
        self.len += 1;
        true
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        let (best, value) = self.best_leaf(key)?;
        (best == key).then_some(value)
    }

    fn update(&mut self, key: &[u8], value: Value) -> bool {
        let mut node = self.root.as_deref_mut();
        while let Some(n) = node {
            match n {
                Node::Leaf { key: lk, value: v } => {
                    if lk.as_ref() == key {
                        *v = value;
                        return true;
                    }
                    return false;
                }
                Node::Inner {
                    byte,
                    mask,
                    children,
                } => {
                    let d = dir(key, *byte, *mask);
                    node = Some(children[d].as_mut());
                }
            }
        }
        false
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        // Walk tracking the parent; on leaf match, replace the parent with
        // the sibling subtree.
        match self.root.as_deref() {
            None => return false,
            Some(Node::Leaf { key: lk, .. }) => {
                if lk.as_ref() == key {
                    self.root = None;
                    self.len = 0;
                    return true;
                }
                return false;
            }
            _ => {}
        }
        // Root is an inner node.
        let root = self.root.as_mut().expect("checked");
        if Self::remove_rec(root, key) {
            self.len -= 1;
            return true;
        }
        false
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let before = out.len();
        self.range_from(low, &mut |_k, v| {
            if out.len() - before == n {
                return false;
            }
            out.push(v);
            out.len() - before < n
        });
        out.len() - before
    }

    fn len(&self) -> usize {
        self.len
    }

    fn mem_usage(&self) -> usize {
        fn node_mem(n: &Node) -> usize {
            match n {
                Node::Leaf { key, .. } => std::mem::size_of::<Node>() + key.len(),
                Node::Inner { children, .. } => {
                    std::mem::size_of::<Node>() + node_mem(&children[0]) + node_mem(&children[1])
                }
            }
        }
        self.root.as_deref().map_or(0, node_mem) + vec_bytes(&Vec::<u8>::new())
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        if let Some(root) = self.root.as_deref() {
            Self::emit_all(root, &mut |k, v| {
                f(k, v);
                true
            });
        }
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        CritBitTrie::range_from(self, low, f);
    }

    fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }
}

impl CritBitTrie {
    /// Removes within an inner subtree; collapses the parent on success.
    fn remove_rec(node: &mut Box<Node>, key: &[u8]) -> bool {
        let Node::Inner {
            byte,
            mask,
            children,
        } = node.as_mut()
        else {
            unreachable!("called on inner nodes only");
        };
        let d = dir(key, *byte, *mask);
        match children[d].as_ref() {
            Node::Leaf { key: lk, .. } => {
                if lk.as_ref() != key {
                    return false;
                }
                // Replace this inner node with the sibling.
                let sibling = std::mem::replace(
                    &mut children[1 - d],
                    Box::new(Node::Leaf {
                        key: Box::from(&[][..]),
                        value: 0,
                    }),
                );
                *node = sibling;
                true
            }
            Node::Inner { .. } => Self::remove_rec(&mut children[d], key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::hash::splitmix64;
    use memtree_common::key::encode_u64;

    #[test]
    fn insert_get_random() {
        let mut t = CritBitTrie::new();
        let mut state = 3u64;
        let mut keys = Vec::new();
        for _ in 0..5000 {
            let k = splitmix64(&mut state) | 1; // avoid all-zero-byte keys
            if t.insert(&encode_u64(k), k) {
                keys.push(k);
            }
        }
        assert_eq!(t.len(), keys.len());
        for &k in &keys {
            assert_eq!(t.get(&encode_u64(k)), Some(k));
        }
        assert!(!t.insert(&encode_u64(keys[0]), 1));
    }

    #[test]
    fn string_keys_with_shared_prefixes() {
        let mut t = CritBitTrie::new();
        let words: Vec<&[u8]> = vec![
            b"romane", b"romanus", b"romulus", b"rubens", b"ruber", b"rubicon", b"rubicundus",
        ];
        for (i, w) in words.iter().enumerate() {
            assert!(t.insert(w, i as u64));
        }
        for (i, w) in words.iter().enumerate() {
            assert_eq!(t.get(w), Some(i as u64));
        }
        assert_eq!(t.get(b"roman"), None);
        assert_eq!(t.get(b"rubiconx"), None);
    }

    #[test]
    fn sorted_iteration() {
        let mut t = CritBitTrie::new();
        let mut state = 9u64;
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for _ in 0..2000 {
            let k = splitmix64(&mut state) % 100_000 + 1;
            let key = format!("user{k:06}").into_bytes();
            if t.insert(&key, k) {
                keys.push(key);
            }
        }
        keys.sort();
        let mut got = Vec::new();
        t.for_each_sorted(&mut |k, _| got.push(k.to_vec()));
        assert_eq!(got, keys);
    }

    #[test]
    fn range_from_matches_reference() {
        let mut t = CritBitTrie::new();
        let mut keys: Vec<Vec<u8>> = (0..1000u64)
            .map(|i| format!("k{:05}", i * 7 + 1).into_bytes())
            .collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64);
        }
        for probe in ["k00000", "k00350", "k00351", "k06994", "k99999", "a", "z"] {
            let expect: Vec<Vec<u8>> = keys
                .iter()
                .filter(|k| k.as_slice() >= probe.as_bytes())
                .take(5)
                .cloned()
                .collect();
            let mut got = Vec::new();
            t.range_from(probe.as_bytes(), &mut |k, _| {
                got.push(k.to_vec());
                got.len() < 5
            });
            assert_eq!(got, expect, "probe {probe}");
        }
    }

    #[test]
    fn update_remove() {
        let mut t = CritBitTrie::new();
        for i in 1..=100u64 {
            t.insert(&encode_u64(i), i);
        }
        assert!(t.update(&encode_u64(50), 999));
        assert_eq!(t.get(&encode_u64(50)), Some(999));
        assert!(t.remove(&encode_u64(50)));
        assert_eq!(t.get(&encode_u64(50)), None);
        assert!(!t.remove(&encode_u64(50)));
        assert_eq!(t.len(), 99);
        for i in 1..=100u64 {
            if i != 50 {
                assert_eq!(t.get(&encode_u64(i)), Some(i), "{i}");
            }
        }
        // Remove everything.
        for i in 1..=100u64 {
            t.remove(&encode_u64(i));
        }
        assert_eq!(t.len(), 0);
        assert!(t.insert(b"fresh", 1));
    }
}
