//! Dictionary training: sampling statistics → interval selection → code
//! assignment (the Symbol Selector + Code Assigner of Figure 6.5).

use crate::codes::{balanced_codes, fixed_codes};
use crate::dict::{Code, Dict};
use crate::{BuildBreakdown, Hope, Scheme};
use memtree_common::key::common_prefix_len;
use std::collections::HashMap;
use std::time::Instant;

/// Longest substring considered by the ALM quantile pass.
const ALM_MAX_SYMBOL: usize = 8;

pub(crate) fn train(scheme: Scheme, sample: &[&[u8]], dict_limit: usize) -> Hope {
    let mut breakdown = BuildBreakdown::default();
    let dict = match scheme {
        Scheme::SingleChar => {
            let t = Instant::now();
            let mut weights = vec![1u64; 256];
            for key in sample {
                for &b in *key {
                    weights[b as usize] += 1;
                }
            }
            breakdown.count = t.elapsed();
            let t = Instant::now();
            let codes = balanced_codes(&weights);
            breakdown.assign_codes = t.elapsed();
            Dict::ByteArray { codes }
        }
        Scheme::DoubleChar => {
            let t = Instant::now();
            let mut weights = vec![1u64; 1 << 16];
            for key in sample {
                // Stride-2 pairs: matches how the encoder consumes bytes.
                let mut i = 0;
                while i < key.len() {
                    let hi = key[i] as usize;
                    let lo = key.get(i + 1).copied().unwrap_or(0) as usize;
                    weights[hi << 8 | lo] += 1;
                    i += 2;
                }
            }
            breakdown.count = t.elapsed();
            let t = Instant::now();
            let codes = balanced_codes(&weights);
            breakdown.assign_codes = t.elapsed();
            Dict::PairArray { codes }
        }
        Scheme::ThreeGrams => gram_dict(sample, 3, dict_limit, &mut breakdown),
        Scheme::FourGrams => gram_dict(sample, 4, dict_limit, &mut breakdown),
        Scheme::Alm => alm_dict(sample, dict_limit, false, &mut breakdown),
        Scheme::AlmImproved => alm_dict(sample, dict_limit, true, &mut breakdown),
    };
    Hope {
        dict,
        scheme,
        breakdown,
    }
}

/// Builds an interval dictionary whose boundaries are the most frequent
/// `n`-grams of the sample (plus their successors and all single bytes so
/// the axis stays covered and symbols stay non-empty).
fn gram_dict(sample: &[&[u8]], n: usize, dict_limit: usize, breakdown: &mut BuildBreakdown) -> Dict {
    let t = Instant::now();
    let mut freq: HashMap<&[u8], u64> = HashMap::new();
    for key in sample {
        for w in key.windows(n) {
            *freq.entry(w).or_insert(0) += 1;
        }
    }
    breakdown.count = t.elapsed();

    let t = Instant::now();
    // Each selected gram contributes up to 2 boundaries (itself + its
    // successor); reserve 256 for the single-byte floor.
    let budget = (dict_limit.saturating_sub(257) / 2).max(1);
    let mut grams: Vec<(&[u8], u64)> = freq.into_iter().collect();
    grams.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    grams.truncate(budget);
    let mut boundaries: Vec<Vec<u8>> = (0u16..256).map(|b| vec![b as u8]).collect();
    for (g, _) in &grams {
        boundaries.push(g.to_vec());
        if let Some(succ) = byte_successor(g) {
            boundaries.push(succ);
        }
    }
    boundaries.sort();
    boundaries.dedup();
    breakdown.select = t.elapsed();

    intervals_from_boundaries(boundaries, sample, true, breakdown)
}

/// ALM: boundaries are equal-probability quantiles of the sample's
/// position substrings, which equalizes interval access probability —
/// dense regions get long shared-prefix symbols (the `len(s)·p(s)`
/// equalization of §6.1.3 realized through quantiles).
fn alm_dict(
    sample: &[&[u8]],
    dict_limit: usize,
    optimal_codes: bool,
    breakdown: &mut BuildBreakdown,
) -> Dict {
    let t = Instant::now();
    let mut subs: Vec<&[u8]> = Vec::new();
    for key in sample {
        for start in 0..key.len() {
            subs.push(&key[start..(start + ALM_MAX_SYMBOL).min(key.len())]);
        }
    }
    subs.sort_unstable();
    breakdown.count = t.elapsed();

    let t = Instant::now();
    let quantiles = dict_limit.saturating_sub(257).max(1);
    let step = (subs.len() / quantiles).max(1);
    let mut boundaries: Vec<Vec<u8>> = (0u16..256).map(|b| vec![b as u8]).collect();
    for sub in subs.iter().step_by(step) {
        boundaries.push(sub.to_vec());
    }
    boundaries.sort();
    boundaries.dedup();
    breakdown.select = t.elapsed();

    intervals_from_boundaries(boundaries, sample, optimal_codes, breakdown)
}

/// Smallest string greater than every string prefixed by `s`
/// (increment-with-carry), or `None` for all-0xFF.
fn byte_successor(s: &[u8]) -> Option<Vec<u8>> {
    memtree_common::key::prefix_successor(s)
}

/// Computes per-interval symbol lengths + codes and assembles the `Dict`.
fn intervals_from_boundaries(
    boundaries: Vec<Vec<u8>>,
    sample: &[&[u8]],
    optimal_codes: bool,
    breakdown: &mut BuildBreakdown,
) -> Dict {
    let t = Instant::now();
    let n = boundaries.len();
    let mut symbol_lens = Vec::with_capacity(n);
    for i in 0..n {
        let lo = &boundaries[i];
        let sym = match boundaries.get(i + 1) {
            Some(hi) => interval_symbol_len(lo, hi),
            None => lo.iter().take_while(|&&b| b == 0xFF).count().max(1),
        };
        debug_assert!(sym >= 1 && sym <= lo.len());
        symbol_lens.push(sym.min(255) as u8);
    }

    // Interval weights: replay the sample through the dictionary geometry
    // (exactly the access probability the encoder will see).
    let mut weights = vec![1u64; n];
    let find = |src: &[u8]| -> usize {
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if boundaries[mid].as_slice() <= src {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo - 1
    };
    for key in sample {
        let mut pos = 0usize;
        while pos < key.len() {
            let i = find(&key[pos..]);
            weights[i] += 1;
            pos += (symbol_lens[i] as usize).min(key.len() - pos).max(1);
        }
    }
    breakdown.build_dict += t.elapsed();

    let t = Instant::now();
    let codes: Vec<Code> = if optimal_codes {
        balanced_codes(&weights)
    } else {
        fixed_codes(n)
    };
    breakdown.assign_codes += t.elapsed();

    let t = Instant::now();
    let mut bound_bytes = Vec::new();
    let mut bound_offsets = Vec::with_capacity(n + 1);
    for b in &boundaries {
        bound_offsets.push(bound_bytes.len() as u32);
        bound_bytes.extend_from_slice(b);
    }
    bound_offsets.push(bound_bytes.len() as u32);
    breakdown.build_dict += t.elapsed();

    Dict::Intervals {
        bound_bytes,
        bound_offsets,
        symbol_lens,
        codes,
    }
}

/// Length of the longest prefix shared by every string in `[lo, hi)`.
fn interval_symbol_len(lo: &[u8], hi: &[u8]) -> usize {
    // sup{s : s < hi}: drop a trailing 0x00, or decrement the last byte
    // and extend with infinite 0xFF.
    let mut h = hi.to_vec();
    // `extended` records whether h is followed by conceptual 0xFF...
    let extended = if h.last() == Some(&0) {
        h.pop();
        false
    } else {
        *h.last_mut().expect("boundaries are non-empty") -= 1;
        true
    };
    let c = common_prefix_len(lo, &h);
    let mut sym = c;
    if extended && c == h.len() {
        sym += lo[c..].iter().take_while(|&&b| b == 0xFF).count();
    }
    sym.min(lo.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_len_cases() {
        assert_eq!(interval_symbol_len(b"abc", b"abd"), 3); // [abc, abd) share "abc"
        assert_eq!(interval_symbol_len(b"abc", b"abf"), 2); // abc..abe share "ab"
        assert_eq!(interval_symbol_len(b"a", b"b"), 1);
        assert_eq!(interval_symbol_len(b"a", b"aaa"), 1);
        assert_eq!(interval_symbol_len(b"ab", b"ac"), 2); // ab, abz... share "ab"
        assert_eq!(interval_symbol_len(b"ab", b"ab\x00"), 2); // only "ab" itself
        assert_eq!(interval_symbol_len(b"a\xff", b"b"), 2); // a\xff..a\xff\xff
        assert_eq!(interval_symbol_len(b"ab", b"ab\x01"), 2);
    }

    #[test]
    fn gram_boundaries_cover_axis() {
        let keys: Vec<&[u8]> = vec![b"sion", b"sing", b"tion", b"site"];
        let mut bd = BuildBreakdown::default();
        let dict = gram_dict(&keys, 3, 1024, &mut bd);
        // Every possible first byte has an interval.
        for b in 0..=255u8 {
            let (_, consume) = dict.lookup(&[b, b]);
            assert!(consume >= 1);
        }
    }
}
