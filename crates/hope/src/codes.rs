//! Order-preserving prefix-code assignment.
//!
//! * [`fixed_codes`] — `ceil(log2 n)`-bit identity codes (the VIFC column).
//! * [`balanced_codes`] — optimal-class alphabetic codes by recursive
//!   weight-balanced splitting. This substitutes for Hu–Tucker (see
//!   DESIGN.md): it is exactly order-preserving and its expected length is
//!   within 2 bits of the source entropy (Horibe's bound), which the test
//!   suite asserts.

use crate::dict::Code;

/// Identity codes of uniform width `ceil(log2 n)` (min 1 bit).
pub fn fixed_codes(n: usize) -> Vec<Code> {
    let len = (usize::BITS - (n - 1).max(1).leading_zeros()).max(1) as u8;
    (0..n)
        .map(|i| Code {
            bits: i as u64,
            len,
        })
        .collect()
}

/// Weight-balanced alphabetic prefix codes: codes are monotonically
/// increasing bit strings; frequent symbols get short codes.
pub fn balanced_codes(weights: &[u64]) -> Vec<Code> {
    let n = weights.len();
    assert!(n >= 1);
    let mut prefix: Vec<u128> = Vec::with_capacity(n + 1);
    let mut acc = 0u128;
    prefix.push(0);
    for &w in weights {
        acc += u128::from(w.max(1)); // zero weights would break the split search
        prefix.push(acc);
    }
    let mut codes = vec![Code { bits: 0, len: 1 }; n];
    split(&prefix, 0, n, 0, 0, &mut codes);
    codes
}

/// Assigns codes for symbols `[lo, hi)` under the code prefix
/// `(bits, len)`.
fn split(prefix: &[u128], lo: usize, hi: usize, bits: u64, len: u8, codes: &mut [Code]) {
    let count = hi - lo;
    if count == 1 {
        codes[lo] = Code {
            bits,
            len: len.max(1),
        };
        return;
    }
    // Depth guard: if the balanced recursion could exceed 64 bits, finish
    // with fixed-width suffixes (keeps codes valid for any weight skew).
    let need = (usize::BITS - (count - 1).leading_zeros()) as u8;
    if len + need >= 63 {
        for (j, slot) in codes[lo..hi].iter_mut().enumerate() {
            *slot = Code {
                bits: (bits << need) | j as u64,
                len: len + need,
            };
        }
        return;
    }
    // Split point minimizing |left - right| weight: binary search for the
    // midpoint of the cumulative weights.
    let total_lo = prefix[lo];
    let total_hi = prefix[hi];
    let mid_weight = (total_lo + total_hi) / 2;
    let mut cut = prefix[lo..=hi].partition_point(|&p| p <= mid_weight) + lo;
    // partition gives first prefix > mid; candidates cut-1 and cut.
    if cut > lo + 1 {
        let before = mid_weight.abs_diff(prefix[cut - 1]);
        let after = if cut <= hi {
            mid_weight.abs_diff(prefix[cut.min(hi)])
        } else {
            u128::MAX
        };
        if before <= after {
            cut -= 1;
        }
    }
    let cut = cut.clamp(lo + 1, hi - 1);
    split(prefix, lo, cut, bits << 1, len + 1, codes);
    split(prefix, cut, hi, (bits << 1) | 1, len + 1, codes);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid_alphabetic(codes: &[Code]) {
        // Monotone as bit strings and prefix-free.
        for w in codes.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(
                a.left_aligned() < b.left_aligned()
                    || (a.left_aligned() == b.left_aligned() && a.len < b.len),
                "not monotone: {a:?} {b:?}"
            );
        }
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                if i != j && a.len <= b.len {
                    assert_ne!(
                        a.bits,
                        b.bits >> (b.len - a.len),
                        "{a:?} is a prefix of {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_codes_shape() {
        let c = fixed_codes(256);
        assert!(c.iter().all(|c| c.len == 8));
        assert_valid_alphabetic(&c);
        assert_eq!(fixed_codes(2)[1].len, 1);
        assert_eq!(fixed_codes(1000)[0].len, 10);
    }

    #[test]
    fn balanced_codes_valid_and_entropy_aware() {
        // Heavily skewed weights: heavy symbols must get short codes.
        let mut weights = vec![1u64; 64];
        weights[10] = 10_000;
        weights[42] = 5_000;
        let codes = balanced_codes(&weights);
        assert_valid_alphabetic(&codes);
        assert!(codes[10].len <= 3, "heavy symbol code {:?}", codes[10]);
        assert!(codes[42].len <= 4);
        let max = codes.iter().map(|c| c.len).max().unwrap();
        assert!(max <= 16, "max len {max}");
    }

    #[test]
    fn uniform_weights_approach_log_n() {
        let codes = balanced_codes(&vec![5u64; 256]);
        assert_valid_alphabetic(&codes);
        assert!(codes.iter().all(|c| c.len == 8));
    }

    #[test]
    fn pathological_exponential_weights_stay_bounded() {
        // Exponentially increasing weights drive maximal imbalance.
        let weights: Vec<u64> = (0..128).map(|i| 1u64 << (i / 2)).collect();
        let codes = balanced_codes(&weights);
        assert_valid_alphabetic(&codes);
        assert!(codes.iter().all(|c| c.len <= 64));
    }

    #[test]
    fn single_symbol() {
        let codes = balanced_codes(&[7]);
        assert_eq!(codes.len(), 1);
        assert!(codes[0].len >= 1);
    }

    #[test]
    fn two_symbols() {
        let codes = balanced_codes(&[1, 100]);
        assert_valid_alphabetic(&codes);
        assert_eq!(codes[0].len, 1);
        assert_eq!(codes[1].len, 1);
    }
}
