//! The encoder: key bytes → concatenated prefix codes (MSB-first bit
//! stream), plus batch encoding and the test-support decoder.

use crate::dict::Dict;

/// MSB-first bit buffer with a 64-bit accumulator (whole bytes are flushed
/// in one shot — the encoder's hot path).
#[derive(Debug, Default, Clone)]
struct BitWriter {
    bytes: Vec<u8>,
    /// Pending bits, right-aligned; always fewer than 8.
    acc: u64,
    acc_bits: u32,
}

impl BitWriter {
    fn clear(&mut self) {
        self.bytes.clear();
        self.acc = 0;
        self.acc_bits = 0;
    }

    #[inline]
    fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.acc_bits as usize
    }

    /// Appends the low `len` bits of `bits`, MSB first.
    #[inline]
    fn put(&mut self, bits: u64, len: u8) {
        let mut len = len as u32;
        let mut bits = bits;
        // With acc_bits < 8, up to 56 bits fit in one accumulate round.
        if len > 56 {
            let hi = len - 56;
            self.put_small(bits >> 56, hi);
            bits &= (1u64 << 56) - 1;
            len = 56;
        }
        self.put_small(bits, len);
    }

    #[inline]
    fn put_small(&mut self, bits: u64, len: u32) {
        debug_assert!(self.acc_bits < 8 && len <= 56);
        // acc_bits <= 7 and len <= 56, so everything fits in one u64.
        let mask = (1u64 << len) - 1;
        let mut acc = (self.acc << len) | (bits & mask);
        let mut total = self.acc_bits + len;
        while total >= 8 {
            self.bytes.push((acc >> (total - 8)) as u8);
            total -= 8;
        }
        acc &= (1u64 << total) - 1;
        self.acc = acc;
        self.acc_bits = total;
    }

    /// Zero-pads the final partial byte into `bytes` (ending a key).
    fn finish(&mut self) -> usize {
        let bit_len = self.bit_len();
        if self.acc_bits > 0 {
            self.bytes.push((self.acc << (8 - self.acc_bits)) as u8);
            self.acc = 0;
            self.acc_bits = 0;
        }
        bit_len
    }

    /// Truncates to `bit_len` bits (batch-encoder backtracking). The
    /// partial byte moves back into the accumulator.
    fn truncate(&mut self, bit_len: usize) {
        debug_assert!(bit_len <= self.bit_len());
        let keep_bytes = bit_len / 8;
        let tail = (bit_len % 8) as u32;
        if tail == 0 {
            self.bytes.truncate(keep_bytes);
            self.acc = 0;
            self.acc_bits = 0;
        } else {
            let have = self.bytes.get(keep_bytes).copied().unwrap_or_else(|| {
                // The bits live in the accumulator (never flushed).
                (self.acc << (8 - self.acc_bits)) as u8
            });
            self.bytes.truncate(keep_bytes);
            self.acc = (have >> (8 - tail)) as u64;
            self.acc_bits = tail;
        }
    }
}

/// Encodes `key`, returning zero-padded bytes and the exact bit length.
pub(crate) fn encode(dict: &Dict, key: &[u8]) -> (Vec<u8>, usize) {
    let mut out = Vec::with_capacity(key.len());
    let bits = encode_into(dict, key, &mut out);
    (out, bits)
}

/// Allocation-free encode into a caller buffer (cleared first); returns the
/// exact bit length.
pub(crate) fn encode_into(dict: &Dict, key: &[u8], out: &mut Vec<u8>) -> usize {
    out.clear();
    let mut w = BitWriter {
        bytes: std::mem::take(out),
        acc: 0,
        acc_bits: 0,
    };
    let mut pos = 0usize;
    while pos < key.len() {
        let (code, consume) = dict.lookup(&key[pos..]);
        w.put(code.bits, code.len);
        pos += consume;
    }
    let bits = w.finish();
    *out = w.bytes;
    bits
}

/// Batch encoder for sorted inputs (§6.4.4): remembers the previous key's
/// symbol checkpoints and restarts encoding after the shared prefix.
#[derive(Debug)]
pub struct BatchEncoder<'d> {
    dict: &'d Dict,
    prev_key: Vec<u8>,
    /// `(source bytes consumed, bit length)` after each emitted code.
    checkpoints: Vec<(usize, usize)>,
    writer: BitWriter,
}

impl<'d> BatchEncoder<'d> {
    pub(crate) fn new(dict: &'d Dict) -> Self {
        Self {
            dict,
            prev_key: Vec::new(),
            checkpoints: Vec::new(),
            writer: BitWriter::default(),
        }
    }

    /// Encodes the next key; fastest when keys arrive in sorted order with
    /// long shared prefixes.
    pub fn encode(&mut self, key: &[u8]) -> (Vec<u8>, usize) {
        let shared = memtree_common::key::common_prefix_len(&self.prev_key, key);
        // Interval selection peeks up to `lookahead` bytes past the cursor
        // (boundary comparisons), so a checkpoint is only reusable when
        // that window stayed inside the shared prefix.
        let safe = shared.saturating_sub(self.dict.lookahead());
        let keep = self.checkpoints.partition_point(|&(consumed, _)| consumed <= safe);
        self.checkpoints.truncate(keep);
        let (mut pos, bit_len) = self.checkpoints.last().copied().unwrap_or((0, 0));
        self.writer.truncate(bit_len);
        while pos < key.len() {
            let (code, consume) = self.dict.lookup(&key[pos..]);
            self.writer.put(code.bits, code.len);
            pos += consume;
            self.checkpoints.push((pos, self.writer.bit_len()));
        }
        self.prev_key.clear();
        self.prev_key.extend_from_slice(key);
        // Emit padded bytes without disturbing the accumulator state.
        let bits = self.writer.bit_len();
        let mut bytes = self.writer.bytes.clone();
        if self.writer.acc_bits > 0 {
            bytes.push((self.writer.acc << (8 - self.writer.acc_bits)) as u8);
        }
        (bytes, bits)
    }

    /// Resets the shared-prefix state (e.g. between sorted runs).
    pub fn reset(&mut self) {
        self.prev_key.clear();
        self.checkpoints.clear();
        self.writer.clear();
    }
}

/// Decodes an exact-bit-length code stream back to the source key.
///
/// Test support only — tree operations never decode (§6.2). For the
/// Double-Char scheme a single zero pad byte may be appended by encoding;
/// trailing NULs are stripped (keys are assumed NUL-free, see crate docs).
pub(crate) fn decode(dict: &Dict, bytes: &[u8], bit_len: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let mut pos = 0usize; // bit position
    let read_window = |pos: usize| -> u64 {
        // 64 bits starting at bit `pos`, left-aligned, zero-padded: gather
        // 9 bytes (72 bits) and drop the `pos % 8` leading slack.
        let first = pos / 8;
        let mut v: u128 = 0;
        for i in 0..9usize {
            v = (v << 8) | bytes.get(first + i).copied().unwrap_or(0) as u128;
        }
        ((v >> (8 - pos % 8)) & u64::MAX as u128) as u64
    };
    while pos < bit_len {
        let window = read_window(pos);
        // Codes are monotone bit strings: last code whose left-aligned
        // value is <= window is the match (verify prefix).
        let n = dict.len();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if dict.code(mid).left_aligned() <= window {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let i = lo.saturating_sub(1);
        let code = dict.code(i);
        debug_assert_eq!(
            window >> (64 - code.len as u32),
            code.bits,
            "decode desync at bit {pos}"
        );
        out.extend_from_slice(&dict.symbol(i));
        pos += code.len as usize;
    }
    while out.last() == Some(&0) {
        out.pop(); // Double-Char zero pad (NUL-free key assumption)
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwriter_packs_msb_first() {
        let mut w = BitWriter::default();
        w.put(0b101, 3);
        w.put(0b01, 2);
        w.put(0b11111111, 8);
        assert_eq!(w.bit_len(), 13);
        w.finish();
        assert_eq!(w.bytes, vec![0b10101111, 0b11111000]);
    }

    #[test]
    fn bitwriter_truncate_clears_tail() {
        let mut w = BitWriter::default();
        w.put(0xFFFF, 16);
        w.truncate(5);
        w.put(0b111, 3);
        w.finish();
        assert_eq!(w.bytes, vec![0b11111111]);
    }

    #[test]
    fn long_codes_cross_word_boundaries() {
        let mut w = BitWriter::default();
        w.put((1u64 << 40) - 1, 41); // 0 followed by 40 ones
        w.put(0b1, 1);
        assert_eq!(w.bit_len(), 42);
        w.finish();
        assert_eq!(w.bytes[0], 0b01111111);
        assert_eq!(w.bytes[5], 0b11000000);
    }

    #[test]
    fn full_64_bit_code() {
        let mut w = BitWriter::default();
        w.put(u64::MAX, 64);
        w.put(0, 2);
        assert_eq!(w.bit_len(), 66);
        w.finish();
        assert_eq!(w.bytes, vec![0xFF; 8].into_iter().chain([0u8]).collect::<Vec<_>>());
    }
}
