//! Dictionary structures (§6.2.2).
//!
//! The char schemes use direct arrays (a 256-entry and a 65536-entry code
//! table — O(1) lookup, no search). The variable-interval schemes store
//! sorted interval boundaries searched by binary search.
//!
//! *Substitution note:* the reference implementation uses a 256-bit
//! bitmap-trie (Fig. 6.6) for the gram dictionaries; we use binary search
//! over the boundary array — same interval semantics, logarithmic instead
//! of constant probes (documented in DESIGN.md).

use memtree_common::mem::vec_bytes;

/// One order-preserving prefix code: the low `len` bits of `bits`,
/// emitted MSB-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Code {
    /// Right-aligned code bits.
    pub bits: u64,
    /// Code length in bits (1..=64).
    pub len: u8,
}

impl Code {
    /// The code left-aligned in a u64 (for bit-string comparisons).
    #[inline]
    pub fn left_aligned(&self) -> u64 {
        self.bits << (64 - self.len as u32)
    }
}

/// A complete, order-preserving dictionary over the string axis.
#[derive(Debug)]
pub enum Dict {
    /// 256 single-byte intervals (Single-Char).
    ByteArray {
        /// `codes[b]` encodes byte `b`.
        codes: Vec<Code>,
    },
    /// 65536 two-byte intervals (Double-Char). Odd tails consume one byte
    /// with a zero-padded pair lookup.
    PairArray {
        /// `codes[hi << 8 | lo]`.
        codes: Vec<Code>,
    },
    /// Variable-length intervals: sorted boundaries with per-interval
    /// symbol lengths (3-Grams/4-Grams/ALM/ALM-Improved).
    Intervals {
        /// Concatenated boundary bytes.
        bound_bytes: Vec<u8>,
        /// `bound_offsets[i]..bound_offsets[i+1]` is boundary `i`.
        bound_offsets: Vec<u32>,
        /// Bytes consumed when encoding in interval `i`.
        symbol_lens: Vec<u8>,
        /// Monotonically increasing prefix codes.
        codes: Vec<Code>,
    },
}

impl Dict {
    /// Number of intervals.
    pub fn len(&self) -> usize {
        match self {
            Dict::ByteArray { codes } | Dict::PairArray { codes } => codes.len(),
            Dict::Intervals { codes, .. } => codes.len(),
        }
    }

    /// True for a degenerate empty dictionary (never produced by training).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes past the cursor that interval selection may inspect: batch
    /// encoding may only reuse work whose lookahead window is unchanged.
    pub fn lookahead(&self) -> usize {
        match self {
            Dict::ByteArray { .. } => 1,
            Dict::PairArray { .. } => 2,
            Dict::Intervals { bound_offsets, .. } => bound_offsets
                .windows(2)
                .map(|w| (w[1] - w[0]) as usize)
                .max()
                .unwrap_or(1)
                + 1,
        }
    }

    /// Heap bytes.
    pub fn mem_usage(&self) -> usize {
        match self {
            Dict::ByteArray { codes } | Dict::PairArray { codes } => vec_bytes(codes),
            Dict::Intervals {
                bound_bytes,
                bound_offsets,
                symbol_lens,
                codes,
            } => {
                vec_bytes(bound_bytes)
                    + vec_bytes(bound_offsets)
                    + vec_bytes(symbol_lens)
                    + vec_bytes(codes)
            }
        }
    }

    /// Boundary `i` of an interval dictionary.
    #[inline]
    pub(crate) fn boundary(&self, i: usize) -> &[u8] {
        match self {
            Dict::Intervals {
                bound_bytes,
                bound_offsets,
                ..
            } => &bound_bytes[bound_offsets[i] as usize..bound_offsets[i + 1] as usize],
            _ => unreachable!("boundary() on array dictionary"),
        }
    }

    /// Looks up the interval containing `src` (non-empty); returns the code
    /// and the number of source bytes consumed.
    #[inline]
    pub fn lookup(&self, src: &[u8]) -> (Code, usize) {
        debug_assert!(!src.is_empty());
        match self {
            Dict::ByteArray { codes } => (codes[src[0] as usize], 1),
            Dict::PairArray { codes } => {
                let hi = src[0] as usize;
                let lo = src.get(1).copied().unwrap_or(0) as usize;
                (codes[hi << 8 | lo], src.len().min(2))
            }
            Dict::Intervals {
                symbol_lens, codes, ..
            } => {
                // Last boundary <= src.
                let mut lo = 0usize;
                let mut hi = codes.len();
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if self.boundary(mid) <= src {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                let i = lo - 1; // boundary 0 is [0x00], <= any non-empty src
                (codes[i], (symbol_lens[i] as usize).min(src.len()))
            }
        }
    }

    /// The symbol bytes of interval `i` (for decoding).
    pub(crate) fn symbol(&self, i: usize) -> Vec<u8> {
        match self {
            Dict::ByteArray { .. } => vec![i as u8],
            Dict::PairArray { .. } => vec![(i >> 8) as u8, (i & 0xFF) as u8],
            Dict::Intervals { symbol_lens, .. } => {
                self.boundary(i)[..symbol_lens[i] as usize].to_vec()
            }
        }
    }

    /// Code of interval `i`.
    pub(crate) fn code(&self, i: usize) -> Code {
        match self {
            Dict::ByteArray { codes } | Dict::PairArray { codes } => codes[i],
            Dict::Intervals { codes, .. } => codes[i],
        }
    }

    /// Test helper: the code assigned to a 1-byte symbol (ByteArray only).
    pub fn code_for_test(&self, symbol: &[u8]) -> Code {
        match self {
            Dict::ByteArray { codes } => codes[symbol[0] as usize],
            _ => panic!("code_for_test on non-byte dictionary"),
        }
    }
}
