//! Search-tree integration (§6.3): wrap any [`OrderedIndex`] so all keys
//! pass through a trained HOPE encoder.
//!
//! Because the encoding is order-preserving, range bounds are translated
//! by simply encoding them; queries operate entirely in encoded space and
//! never decode (§6.2's key insight — only encode speed matters).

use crate::Hope;
use memtree_common::traits::{OrderedIndex, Value};
use std::cell::RefCell;

/// An index whose keys are transparently HOPE-encoded.
#[derive(Debug)]
pub struct HopeIndex<I: OrderedIndex> {
    inner: I,
    hope: Hope,
    /// Reusable encode buffer: queries encode without allocating.
    scratch: RefCell<Vec<u8>>,
}

impl<I: OrderedIndex> HopeIndex<I> {
    /// Wraps `inner` (must be empty) with a trained encoder.
    pub fn new(inner: I, hope: Hope) -> Self {
        debug_assert!(inner.is_empty(), "wrap an empty index");
        Self {
            inner,
            hope,
            scratch: RefCell::new(Vec::with_capacity(64)),
        }
    }

    /// The trained encoder.
    pub fn hope(&self) -> &Hope {
        &self.hope
    }

    /// The wrapped index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Inserts with key encoding.
    pub fn insert(&mut self, key: &[u8], value: Value) -> bool {
        let mut enc = self.scratch.borrow_mut();
        self.hope.encode_into(key, &mut enc);
        self.inner.insert(&enc, value)
    }

    /// Point lookup with key encoding.
    pub fn get(&self, key: &[u8]) -> Option<Value> {
        let mut enc = self.scratch.borrow_mut();
        self.hope.encode_into(key, &mut enc);
        self.inner.get(&enc)
    }

    /// In-place update with key encoding.
    pub fn update(&mut self, key: &[u8], value: Value) -> bool {
        let mut enc = self.scratch.borrow_mut();
        self.hope.encode_into(key, &mut enc);
        self.inner.update(&enc, value)
    }

    /// Removal with key encoding.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        let mut enc = self.scratch.borrow_mut();
        self.hope.encode_into(key, &mut enc);
        self.inner.remove(&enc)
    }

    /// Range scan: the encoded lower bound preserves the scan's semantics
    /// because encoding is monotone.
    pub fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let mut enc = self.scratch.borrow_mut();
        self.hope.encode_into(low, &mut enc);
        self.inner.scan(&enc, n, out)
    }

    /// Entries stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Index + dictionary memory.
    pub fn mem_usage(&self) -> usize {
        self.inner.mem_usage() + self.hope.dict_mem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheme;
    use memtree_btree::BPlusTree;

    fn urls(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("http://www.example{:02}.com/page/{i:06}", i % 10).into_bytes())
            .collect()
    }

    #[test]
    fn wrapped_btree_matches_plain() {
        let keys = urls(3000);
        let hope = Hope::train_keys(Scheme::ThreeGrams, &keys[..500].to_vec(), 8192);
        let mut wrapped = HopeIndex::new(BPlusTree::new(), hope);
        let mut plain = BPlusTree::new();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(wrapped.insert(k, i as u64), plain.insert(k, i as u64));
        }
        for (i, k) in keys.iter().enumerate().step_by(7) {
            assert_eq!(wrapped.get(k), Some(i as u64), "get {i}");
        }
        assert_eq!(wrapped.get(b"http://nope"), None);
        // Scans agree (values identical because ordering is preserved).
        for low in ["http://www.example05", "http://www.example09.com/page/002", "z"] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            wrapped.scan(low.as_bytes(), 12, &mut a);
            plain.scan(low.as_bytes(), 12, &mut b);
            assert_eq!(a, b, "scan from {low}");
        }
        // Compression shrinks the tree.
        assert!(
            wrapped.mem_usage() < plain.mem_usage(),
            "wrapped {} plain {}",
            wrapped.mem_usage(),
            plain.mem_usage()
        );
    }

    #[test]
    fn update_remove_through_encoding() {
        let keys = urls(500);
        let hope = Hope::train_keys(Scheme::DoubleChar, &keys, 65536);
        let mut idx = HopeIndex::new(BPlusTree::new(), hope);
        for (i, k) in keys.iter().enumerate() {
            idx.insert(k, i as u64);
        }
        assert!(idx.update(&keys[42], 999));
        assert_eq!(idx.get(&keys[42]), Some(999));
        assert!(idx.remove(&keys[42]));
        assert_eq!(idx.get(&keys[42]), None);
        assert_eq!(idx.len(), 499);
    }
}
