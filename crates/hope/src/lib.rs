//! HOPE — the High-speed Order-Preserving Encoder (Chapter 6).
//!
//! HOPE models order-preserving dictionary compression with the **string
//! axis** (§6.1): the key space is partitioned into consecutive intervals,
//! each mapped to a common-prefix *symbol* and a monotonically increasing
//! prefix *code*. Completeness (the intervals cover the axis) makes
//! arbitrary keys encodable; monotone codes preserve order.
//!
//! Six schemes trade compression rate against encoding speed (Fig. 6.3/6.4):
//!
//! | scheme | intervals | codes |
//! |---|---|---|
//! | [`Scheme::SingleChar`] | 256 fixed 1-byte | optimal (FIVC) |
//! | [`Scheme::DoubleChar`] | 65536 fixed 2-byte | optimal (FIVC) |
//! | [`Scheme::Alm`] | variable, weight-equalized | fixed length (VIFC) |
//! | [`Scheme::ThreeGrams`] | frequent 3-grams + gaps | optimal (VIVC) |
//! | [`Scheme::FourGrams`] | frequent 4-grams + gaps | optimal (VIVC) |
//! | [`Scheme::AlmImproved`] | variable, weight-equalized | optimal (VIVC) |
//!
//! "Optimal" order-preserving codes are produced by recursive
//! weight-balanced alphabetic splitting — a documented substitution for
//! Hu–Tucker (DESIGN.md): it preserves order exactly and is within the
//! classic ≤ 2-bit Horibe bound of entropy, verified by tests.
//!
//! ## Caveat (shared with the reference implementation)
//!
//! Keys must not rely on NUL-only distinctions: a key whose suffix encodes
//! to all-zero bits can collide with its own prefix after byte padding.
//! Avoid 0x00 bytes in keys (ASCII workloads always do).

#![warn(missing_docs)]

mod build;
mod codes;
mod dict;
mod encode;
pub mod integrate;

pub use dict::{Code, Dict};
pub use encode::BatchEncoder;
pub use integrate::HopeIndex;

use std::time::Duration;

/// The six compression schemes of Table 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// FIVC: 256 single-byte intervals, optimal codes (Hu-Tucker class).
    SingleChar,
    /// FIVC: 65536 two-byte intervals, optimal codes.
    DoubleChar,
    /// VIFC: ALM — variable-length intervals equalizing `len(s)·p(s)`,
    /// fixed-length codes.
    Alm,
    /// VIVC: frequent 3-grams as intervals, optimal codes.
    ThreeGrams,
    /// VIVC: frequent 4-grams as intervals, optimal codes.
    FourGrams,
    /// VIVC: ALM intervals with optimal codes.
    AlmImproved,
}

impl Scheme {
    /// All six schemes, in the paper's order.
    pub fn all() -> [Scheme; 6] {
        [
            Scheme::SingleChar,
            Scheme::DoubleChar,
            Scheme::Alm,
            Scheme::ThreeGrams,
            Scheme::FourGrams,
            Scheme::AlmImproved,
        ]
    }

    /// Display name matching the thesis figures.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::SingleChar => "Single-Char",
            Scheme::DoubleChar => "Double-Char",
            Scheme::Alm => "ALM",
            Scheme::ThreeGrams => "3-Grams",
            Scheme::FourGrams => "4-Grams",
            Scheme::AlmImproved => "ALM-Improved",
        }
    }
}

/// Timing breakdown of dictionary construction (Figure 6.12's phases).
#[derive(Debug, Default, Clone, Copy)]
pub struct BuildBreakdown {
    /// Symbol frequency counting over the sample.
    pub count: Duration,
    /// Interval/symbol selection.
    pub select: Duration,
    /// Code assignment (fixed or optimal).
    pub assign_codes: Duration,
    /// Final dictionary structure build.
    pub build_dict: Duration,
}

impl BuildBreakdown {
    /// Total build time.
    pub fn total(&self) -> Duration {
        self.count + self.select + self.assign_codes + self.build_dict
    }
}

/// A trained HOPE encoder.
#[derive(Debug)]
pub struct Hope {
    pub(crate) dict: Dict,
    scheme: Scheme,
    breakdown: BuildBreakdown,
}

impl Hope {
    /// Trains a dictionary of at most `dict_limit` intervals on a sample of
    /// keys (the thesis samples ~1 % of the bulk-load; 2^16 limit default).
    pub fn train(scheme: Scheme, sample: &[&[u8]], dict_limit: usize) -> Self {
        build::train(scheme, sample, dict_limit)
    }

    /// Convenience: train from owned keys.
    pub fn train_keys(scheme: Scheme, sample: &[Vec<u8>], dict_limit: usize) -> Self {
        let refs: Vec<&[u8]> = sample.iter().map(|k| k.as_slice()).collect();
        Self::train(scheme, &refs, dict_limit)
    }

    /// The scheme this encoder was trained as.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Build-phase timing breakdown.
    pub fn breakdown(&self) -> BuildBreakdown {
        self.breakdown
    }

    /// Dictionary memory in bytes.
    pub fn dict_mem(&self) -> usize {
        self.dict.mem_usage()
    }

    /// Number of dictionary intervals.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Encodes `key` into zero-padded bytes plus the exact bit length.
    pub fn encode(&self, key: &[u8]) -> (Vec<u8>, usize) {
        encode::encode(&self.dict, key)
    }

    /// Encodes to padded bytes only (the form stored in search trees).
    pub fn encode_bytes(&self, key: &[u8]) -> Vec<u8> {
        self.encode(key).0
    }

    /// Allocation-free encode into a caller-owned buffer (cleared first);
    /// returns the exact bit length. The hot path for query-side encoding.
    pub fn encode_into(&self, key: &[u8], out: &mut Vec<u8>) -> usize {
        encode::encode_into(&self.dict, key, out)
    }

    /// Decodes an exact-bit-length encoding back to the key (test support;
    /// search-tree queries never decode, §6.2).
    pub fn decode(&self, bytes: &[u8], bit_len: usize) -> Vec<u8> {
        encode::decode(&self.dict, bytes, bit_len)
    }

    /// Batch encoder that reuses shared-prefix work on sorted inputs
    /// (§6.4.4).
    pub fn batch_encoder(&self) -> BatchEncoder<'_> {
        BatchEncoder::new(&self.dict)
    }

    /// Compression rate `Σ len(key) / Σ len(encoded)` over `keys` (CPR as
    /// reported in Figure 6.9; bytes before / bytes after).
    pub fn cpr(&self, keys: &[&[u8]]) -> f64 {
        let mut orig = 0usize;
        let mut enc = 0usize;
        for k in keys {
            orig += k.len();
            enc += self.encode(k).0.len();
        }
        orig as f64 / enc.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::hash::splitmix64;

    pub(crate) fn email_sample(n: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed;
        let domains = ["com.gmail", "com.yahoo", "com.hotmail", "org.apache", "edu.cmu.cs"];
        let names = ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"];
        (0..n)
            .map(|_| {
                let d = domains[(splitmix64(&mut state) % domains.len() as u64) as usize];
                let u = names[(splitmix64(&mut state) % names.len() as u64) as usize];
                let num = splitmix64(&mut state) % 10_000;
                format!("{d}@{u}{num}").into_bytes()
            })
            .collect()
    }

    fn check_order_and_roundtrip(scheme: Scheme, limit: usize) {
        let sample = email_sample(2000, 7);
        let hope = Hope::train_keys(scheme, &sample, limit);
        let mut keys = email_sample(3000, 99);
        keys.sort();
        keys.dedup();
        let mut prev: Option<(Vec<u8>, usize)> = None;
        for k in &keys {
            let (bytes, bits) = hope.encode(k);
            // Unique decodability.
            assert_eq!(
                hope.decode(&bytes, bits),
                *k,
                "roundtrip {:?} under {scheme:?}",
                String::from_utf8_lossy(k)
            );
            // Order preservation, including on the padded byte form.
            if let Some((pb, _)) = &prev {
                assert!(
                    pb < &bytes,
                    "order violated under {scheme:?}: {:?} then {:?}",
                    pb,
                    bytes
                );
            }
            prev = Some((bytes, bits));
        }
    }

    #[test]
    fn all_schemes_order_preserving_and_decodable() {
        for scheme in Scheme::all() {
            let limit = match scheme {
                Scheme::SingleChar => 256,
                Scheme::DoubleChar => 65536,
                _ => 4096,
            };
            check_order_and_roundtrip(scheme, limit);
        }
    }

    #[test]
    fn compression_beats_raw_on_emails() {
        let sample = email_sample(3000, 1);
        let keys = email_sample(5000, 2);
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for scheme in Scheme::all() {
            let limit = if scheme == Scheme::SingleChar { 256 } else { 65536 };
            let hope = Hope::train_keys(scheme, &sample, limit);
            let cpr = hope.cpr(&refs);
            assert!(cpr > 1.2, "{scheme:?} CPR {cpr:.2} too low");
        }
    }

    #[test]
    fn higher_order_schemes_compress_better() {
        let sample = email_sample(5000, 3);
        let keys = email_sample(5000, 4);
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let single = Hope::train_keys(Scheme::SingleChar, &sample, 256).cpr(&refs);
        let double = Hope::train_keys(Scheme::DoubleChar, &sample, 65536).cpr(&refs);
        let grams3 = Hope::train_keys(Scheme::ThreeGrams, &sample, 65536).cpr(&refs);
        assert!(double > single * 0.99, "double {double:.2} vs single {single:.2}");
        assert!(grams3 > single, "3grams {grams3:.2} vs single {single:.2}");
    }

    #[test]
    fn arbitrary_bytes_encodable() {
        // Completeness: keys with bytes never seen in the sample.
        let sample = email_sample(500, 5);
        for scheme in Scheme::all() {
            let hope = Hope::train_keys(scheme, &sample, 1024.max(256));
            for key in [
                &[0x01u8, 0x02, 0x03][..],
                b"ZZZZZZZZ",
                &[0xFE, 0xFD, 0x10],
                b"completely unseen bytes 12345!@#",
                &[0xFF, 0xFF],
            ] {
                let (bytes, bits) = hope.encode(key);
                assert_eq!(hope.decode(&bytes, bits), key, "{scheme:?} {key:?}");
            }
        }
    }

    #[test]
    fn empty_key() {
        let sample = email_sample(100, 6);
        let hope = Hope::train_keys(Scheme::SingleChar, &sample, 256);
        let (bytes, bits) = hope.encode(b"");
        assert_eq!(bits, 0);
        assert!(bytes.is_empty());
    }

    #[test]
    fn optimal_codes_within_entropy_bound() {
        // Single-Char optimal codes: average code length must be within
        // 2 bits of the byte entropy of the sample (Horibe bound for
        // weight-balanced alphabetic codes).
        let sample = email_sample(5000, 8);
        let hope = Hope::train_keys(Scheme::SingleChar, &sample, 256);
        let mut freq = [0u64; 256];
        let mut total = 0u64;
        for k in &sample {
            for &b in k {
                freq[b as usize] += 1;
                total += 1;
            }
        }
        let entropy: f64 = freq
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        let mut weighted_len = 0f64;
        for k in &sample {
            for &b in k {
                weighted_len += hope.dict.code_for_test(&[b]).len as f64;
            }
        }
        let avg = weighted_len / total as f64;
        assert!(
            avg <= entropy + 2.0,
            "avg code length {avg:.2} vs entropy {entropy:.2}"
        );
    }

    #[test]
    fn batch_encoding_matches_single() {
        let sample = email_sample(2000, 10);
        let mut keys = email_sample(2000, 11);
        keys.sort();
        keys.dedup();
        for scheme in [Scheme::ThreeGrams, Scheme::DoubleChar, Scheme::AlmImproved] {
            let hope = Hope::train_keys(scheme, &sample, 8192);
            let mut batch = hope.batch_encoder();
            for k in &keys {
                let single = hope.encode(k);
                let batched = batch.encode(k);
                assert_eq!(single.0, batched.0, "{scheme:?} {:?}", String::from_utf8_lossy(k));
                assert_eq!(single.1, batched.1);
            }
        }
    }
}
