//! Property tests for HOPE's two load-bearing guarantees (§6.1.1): every
//! scheme's dictionary is *complete* (any NUL-free key encodes) and
//! *order-preserving*, and encodings are uniquely decodable.

use memtree_common::check::{prop_check, Gen};
use memtree_common::{check, check_eq};
use memtree_hope::{Hope, Scheme};

fn nul_free_key(g: &mut Gen) -> Vec<u8> {
    let n = g.range(0..24);
    (0..n).map(|_| (g.u64() % 255) as u8 + 1).collect()
}

fn ascii_key(g: &mut Gen) -> Vec<u8> {
    g.bytes_from(b"abc.@", 0..20)
}

fn train(scheme: Scheme, seed: u64) -> Hope {
    // A fixed, representative training sample; queries may contain bytes
    // the sample never saw (completeness must still hold).
    let sample: Vec<Vec<u8>> = (0..500u64)
        .map(|i| format!("com.test{}@user{}", (i * seed) % 17, i).into_bytes())
        .collect();
    let limit = if scheme == Scheme::SingleChar { 256 } else { 4096 };
    Hope::train_keys(scheme, &sample, limit)
}

#[test]
fn encode_is_order_preserving() {
    prop_check("encode_is_order_preserving", 24, |g: &mut Gen| {
        let n = g.range(2..40);
        let mut keys: Vec<Vec<u8>> = (0..n).map(|_| ascii_key(g)).collect();
        keys.sort();
        keys.dedup();
        for scheme in Scheme::all() {
            let hope = train(scheme, 7);
            let encoded: Vec<Vec<u8>> = keys.iter().map(|k| hope.encode_bytes(k)).collect();
            for w in encoded.windows(2) {
                check!(w[0] <= w[1], "{:?} broke order", scheme);
            }
        }
        Ok(())
    });
}

#[test]
fn encode_decode_roundtrip_arbitrary_bytes() {
    prop_check("encode_decode_roundtrip_arbitrary_bytes", 24, |g: &mut Gen| {
        let key = nul_free_key(g);
        for scheme in Scheme::all() {
            let hope = train(scheme, 3);
            let (bytes, bits) = hope.encode(&key);
            check_eq!(hope.decode(&bytes, bits), key, "{:?} failed roundtrip", scheme);
        }
        Ok(())
    });
}

#[test]
fn distinct_keys_distinct_encodings() {
    prop_check("distinct_keys_distinct_encodings", 24, |g: &mut Gen| {
        let a = ascii_key(g);
        let b = ascii_key(g);
        if a == b {
            return Ok(()); // vacuous case (proptest's prop_assume!)
        }
        for scheme in Scheme::all() {
            let hope = train(scheme, 11);
            let ea = hope.encode(&a);
            let eb = hope.encode(&b);
            check!(ea != eb, "{:?} collided {:?} vs {:?}", scheme, &a, &b);
        }
        Ok(())
    });
}

#[test]
fn batch_encoder_agrees_with_single() {
    prop_check("batch_encoder_agrees_with_single", 24, |g: &mut Gen| {
        let n = g.range(1..40);
        let mut keys: Vec<Vec<u8>> = (0..n).map(|_| ascii_key(g)).collect();
        keys.sort();
        keys.dedup();
        for scheme in [Scheme::DoubleChar, Scheme::ThreeGrams, Scheme::AlmImproved] {
            let hope = train(scheme, 5);
            let mut batch = hope.batch_encoder();
            for k in &keys {
                check_eq!(hope.encode(k), batch.encode(k), "{:?} {:?}", scheme, k);
            }
        }
        Ok(())
    });
}
