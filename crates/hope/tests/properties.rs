//! Property tests for HOPE's two load-bearing guarantees (§6.1.1): every
//! scheme's dictionary is *complete* (any NUL-free key encodes) and
//! *order-preserving*, and encodings are uniquely decodable.

use memtree_hope::{Hope, Scheme};
use proptest::prelude::*;

fn nul_free_key() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(1u8..=255, 0..24)
}

fn ascii_key() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'.'), Just(b'@')],
        0..20,
    )
}

fn train(scheme: Scheme, seed: u64) -> Hope {
    // A fixed, representative training sample; queries may contain bytes
    // the sample never saw (completeness must still hold).
    let sample: Vec<Vec<u8>> = (0..500u64)
        .map(|i| format!("com.test{}@user{}", (i * seed) % 17, i).into_bytes())
        .collect();
    let limit = if scheme == Scheme::SingleChar { 256 } else { 4096 };
    Hope::train_keys(scheme, &sample, limit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn encode_is_order_preserving(mut keys in proptest::collection::vec(ascii_key(), 2..40)) {
        keys.sort();
        keys.dedup();
        for scheme in Scheme::all() {
            let hope = train(scheme, 7);
            let encoded: Vec<Vec<u8>> = keys.iter().map(|k| hope.encode_bytes(k)).collect();
            for w in encoded.windows(2) {
                prop_assert!(
                    w[0] <= w[1],
                    "{scheme:?} broke order"
                );
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_arbitrary_bytes(key in nul_free_key()) {
        for scheme in Scheme::all() {
            let hope = train(scheme, 3);
            let (bytes, bits) = hope.encode(&key);
            prop_assert_eq!(
                hope.decode(&bytes, bits),
                key.clone(),
                "{:?} failed roundtrip",
                scheme
            );
        }
    }

    #[test]
    fn distinct_keys_distinct_encodings(a in ascii_key(), b in ascii_key()) {
        prop_assume!(a != b);
        for scheme in Scheme::all() {
            let hope = train(scheme, 11);
            let ea = hope.encode(&a);
            let eb = hope.encode(&b);
            prop_assert_ne!(ea, eb, "{:?} collided {:?} vs {:?}", scheme, &a, &b);
        }
    }

    #[test]
    fn batch_encoder_agrees_with_single(mut keys in proptest::collection::vec(ascii_key(), 1..40)) {
        keys.sort();
        keys.dedup();
        for scheme in [Scheme::DoubleChar, Scheme::ThreeGrams, Scheme::AlmImproved] {
            let hope = train(scheme, 5);
            let mut batch = hope.batch_encoder();
            for k in &keys {
                prop_assert_eq!(hope.encode(k), batch.encode(k), "{:?} {:?}", scheme, k);
            }
        }
    }
}
