//! YCSB core workloads (§2.5, §5.3.1): A (50/50 read/update), B (95/5
//! read/update), C (read-only), E (95/5 scan/insert), plus the
//! insert-only load phase. Key selection is Zipfian (the YCSB default) or
//! uniform, per [`Dist`].

use crate::zipf::Zipfian;
use memtree_common::hash::splitmix64;

/// The YCSB workload mixes used throughout the thesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Insert-only (the load phase measured as its own workload).
    InsertOnly,
    /// Workload A: 50 % reads, 50 % updates.
    A,
    /// Workload B: 95 % reads, 5 % updates (the read-heavy serving mix).
    B,
    /// Workload C: 100 % reads.
    C,
    /// Workload E: 95 % short scans, 5 % inserts.
    E,
}

impl Mix {
    /// Thesis-order list of the mixes the thesis experiments run (B is
    /// serving-bench only and deliberately not included).
    pub fn all() -> [Mix; 4] {
        [Mix::InsertOnly, Mix::C, Mix::A, Mix::E]
    }

    /// Figure-label name.
    pub fn name(&self) -> &'static str {
        match self {
            Mix::InsertOnly => "insert-only",
            Mix::A => "read/write",
            Mix::B => "read-heavy",
            Mix::C => "read-only",
            Mix::E => "scan/insert",
        }
    }
}

/// Key-selection distribution for a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dist {
    /// YCSB-default Zipfian skew (s ≈ 0.99) over the loaded key set.
    #[default]
    Zipfian,
    /// Uniform over the loaded key set.
    Uniform,
}

/// One generated operation. Key indexes refer to the loaded key set;
/// `Insert` carries an index into the *reserve* key set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point read of loaded key `i`.
    Read(usize),
    /// Value update of loaded key `i`.
    Update(usize),
    /// Insert of reserve key `i`.
    Insert(usize),
    /// Scan starting at loaded key `i` for `len` items.
    Scan(usize, usize),
}

/// Generates the operation stream for a mix over `loaded` keys with
/// Zipfian access skew (YCSB default) or uniform selection.
#[derive(Debug)]
pub struct OpGenerator {
    mix: Mix,
    dist: Dist,
    loaded: usize,
    zipf: Zipfian,
    state: u64,
    inserted: usize,
}

impl OpGenerator {
    /// Creates a generator over `loaded` keys (Zipfian-skewed).
    pub fn new(mix: Mix, loaded: usize, seed: u64) -> Self {
        Self::with_dist(mix, loaded, seed, Dist::Zipfian)
    }

    /// Creates a generator with an explicit key-selection distribution.
    pub fn with_dist(mix: Mix, loaded: usize, seed: u64, dist: Dist) -> Self {
        Self {
            mix,
            dist,
            loaded: loaded.max(1),
            zipf: Zipfian::new(loaded.max(1), seed),
            state: seed ^ 0xdead_beef,
            inserted: 0,
        }
    }

    fn pick(&mut self) -> usize {
        match self.dist {
            Dist::Zipfian => self.zipf.next_scrambled(),
            Dist::Uniform => (splitmix64(&mut self.state) % self.loaded as u64) as usize,
        }
    }

    /// Next operation. (Deliberately not an `Iterator`: the stream is
    /// infinite and callers drive it by count.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Op {
        let pick = self.pick();
        match self.mix {
            Mix::InsertOnly => {
                let i = self.inserted;
                self.inserted += 1;
                Op::Insert(i)
            }
            Mix::C => Op::Read(pick),
            Mix::A | Mix::B => {
                let update_pct = if self.mix == Mix::A { 50 } else { 5 };
                if splitmix64(&mut self.state) % 100 < update_pct {
                    Op::Update(pick)
                } else {
                    Op::Read(pick)
                }
            }
            Mix::E => {
                if splitmix64(&mut self.state) % 100 < 5 {
                    let i = self.inserted;
                    self.inserted += 1;
                    Op::Insert(i)
                } else {
                    // YCSB-E scans 50–100 items.
                    let len = 50 + (splitmix64(&mut self.state) % 51) as usize;
                    Op::Scan(pick, len)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_have_expected_ratios() {
        let count = |mix: Mix| {
            let mut g = OpGenerator::new(mix, 1000, 42);
            let mut reads = 0;
            let mut updates = 0;
            let mut inserts = 0;
            let mut scans = 0;
            for _ in 0..10_000 {
                match g.next() {
                    Op::Read(_) => reads += 1,
                    Op::Update(_) => updates += 1,
                    Op::Insert(_) => inserts += 1,
                    Op::Scan(..) => scans += 1,
                }
            }
            (reads, updates, inserts, scans)
        };
        let (r, u, i, s) = count(Mix::C);
        assert_eq!((r, u, i, s), (10_000, 0, 0, 0));
        let (r, u, _, _) = count(Mix::A);
        assert!((4000..6000).contains(&r) && (4000..6000).contains(&u));
        let (r, u, i, s) = count(Mix::B);
        assert!((9200..9800).contains(&r), "B reads {r}");
        assert!((200..800).contains(&u), "B updates {u}");
        assert_eq!((i, s), (0, 0));
        let (_, _, i, s) = count(Mix::E);
        assert!((300..800).contains(&i), "inserts {i}");
        assert!(s > 9000);
        let (_, _, i, _) = count(Mix::InsertOnly);
        assert_eq!(i, 10_000);
    }

    #[test]
    fn insert_indexes_are_sequential() {
        let mut g = OpGenerator::new(Mix::InsertOnly, 10, 1);
        for expect in 0..100 {
            assert_eq!(g.next(), Op::Insert(expect));
        }
    }

    #[test]
    fn scan_lengths_in_ycsb_range() {
        let mut g = OpGenerator::new(Mix::E, 1000, 5);
        for _ in 0..1000 {
            if let Op::Scan(_, len) = g.next() {
                assert!((50..=100).contains(&len));
            }
        }
    }
}
