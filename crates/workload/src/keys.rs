//! Key-set generators for the thesis's three key types plus the Chapter 6
//! string corpora and the SuRF worst-case dataset.

use memtree_common::hash::splitmix64;
use memtree_common::key::encode_u64;

/// `n` distinct random 64-bit integer keys, big-endian encoded, in
/// generation order (not sorted).
pub fn rand_u64_keys(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed;
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let k = splitmix64(&mut state);
        if seen.insert(k) {
            keys.push(encode_u64(k).to_vec());
        }
    }
    keys
}

/// `n` monotonically increasing 64-bit integer keys.
pub fn mono_u64_keys(n: usize) -> Vec<Vec<u8>> {
    (0..n as u64).map(|i| encode_u64(i).to_vec()).collect()
}

const DOMAINS: &[&str] = &[
    "com.gmail",
    "com.yahoo",
    "com.hotmail",
    "com.outlook",
    "com.aol",
    "com.icloud",
    "com.qq.mail",
    "org.apache",
    "org.mozilla",
    "edu.cmu.cs",
    "edu.mit",
    "net.comcast",
    "de.web",
    "co.uk.btinternet",
    "fr.orange",
    "com.example.corp.mail",
];

const NAME_PARTS: &[&str] = &[
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael", "linda", "wei", "li",
    "maria", "mohammed", "anna", "jose", "ivan", "yuki", "chen", "kumar", "fatima", "olga",
];

/// `n` distinct host-reversed email keys ("com.domain@user"), average
/// length ≈ 22–30 bytes, dense shared prefixes — matching the statistics
/// of the thesis's real email corpus (DESIGN.md substitution #2).
pub fn email_keys(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed;
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        // Zipf-ish domain choice: square a uniform so low indexes dominate.
        let u = (splitmix64(&mut state) % 256) as usize;
        let d = DOMAINS[(u * u / 4096).min(DOMAINS.len() - 1)];
        let name = NAME_PARTS[(splitmix64(&mut state) % NAME_PARTS.len() as u64) as usize];
        let email = match splitmix64(&mut state) % 4 {
            0 => format!("{d}@{name}{}", splitmix64(&mut state) % 10_000),
            1 => {
                let name2 =
                    NAME_PARTS[(splitmix64(&mut state) % NAME_PARTS.len() as u64) as usize];
                format!("{d}@{name}.{name2}")
            }
            2 => format!("{d}@{name}_{}", splitmix64(&mut state) % 100_000),
            _ => format!("{d}@{}{name}", splitmix64(&mut state) % 100),
        };
        if seen.insert(email.clone()) {
            keys.push(email.into_bytes());
        }
    }
    keys
}

const WORDS: &[&str] = &[
    "history", "list", "of", "the", "united", "states", "world", "war", "film", "album", "season",
    "county", "river", "station", "church", "school", "university", "football", "national",
    "david", "john", "battle", "house", "island", "railway", "museum", "lake", "north", "south",
    "new", "grand", "royal", "saint", "music", "art", "science",
];

/// `n` distinct wiki-title-like keys: capitalized word concatenations with
/// underscores (mean length ≈ 20 bytes, moderate prefix sharing).
pub fn wiki_keys(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed;
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let words = 2 + (splitmix64(&mut state) % 3) as usize;
        let mut title = String::new();
        for w in 0..words {
            if w > 0 {
                title.push('_');
            }
            let word = WORDS[(splitmix64(&mut state) % WORDS.len() as u64) as usize];
            let mut chars = word.chars();
            if w == 0 {
                title.extend(chars.next().map(|c| c.to_ascii_uppercase()));
            }
            title.extend(chars);
        }
        if splitmix64(&mut state).is_multiple_of(3) {
            title.push_str(&format!("_({})", 1800 + splitmix64(&mut state) % 225));
        }
        if seen.insert(title.clone()) {
            keys.push(title.into_bytes());
        }
    }
    keys
}

/// `n` distinct URL keys sharing long scheme/host prefixes (mean length ≈
/// 50 bytes — the thesis's URL corpus shape).
pub fn url_keys(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed;
    let hosts = [
        "http://www.wikipedia.org",
        "http://www.youtube.com",
        "https://www.google.com",
        "http://news.bbc.co.uk",
        "https://github.com",
        "http://www.amazon.com/products",
    ];
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let h = hosts[(splitmix64(&mut state) % hosts.len() as u64) as usize];
        let word = WORDS[(splitmix64(&mut state) % WORDS.len() as u64) as usize];
        let url = format!(
            "{h}/{word}/{:08x}/page-{}.html",
            splitmix64(&mut state) & 0xFFFF_FFFF,
            splitmix64(&mut state) % 1000
        );
        if seen.insert(url.clone()) {
            keys.push(url.into_bytes());
        }
    }
    keys
}

/// The SuRF worst-case dataset of Figure 4.10, scaled: every `prefix_len`-
/// character combination over a 4-letter alphabet appears twice, followed
/// by a long shared random run, with the final byte distinguishing the
/// pair. Maximizes trie height and minimizes node sharing.
pub fn surf_worst_case(prefix_len: usize, run_len: usize, seed: u64) -> Vec<Vec<u8>> {
    let alphabet = b"abcd";
    let mut state = seed;
    let count = alphabet.len().pow(prefix_len as u32);
    let mut keys = Vec::with_capacity(count * 2);
    for i in 0..count {
        let mut prefix = Vec::with_capacity(prefix_len + run_len + 1);
        let mut x = i;
        for _ in 0..prefix_len {
            prefix.push(alphabet[x % alphabet.len()]);
            x /= alphabet.len();
        }
        let run: Vec<u8> = (0..run_len)
            .map(|_| b'a' + (splitmix64(&mut state) % 26) as u8)
            .collect();
        for last in [b'x', b'y'] {
            let mut key = prefix.clone();
            key.extend_from_slice(&run);
            key.push(last);
            keys.push(key);
        }
    }
    keys
}

/// Sorts + dedups a key set in place (bulk-load preparation).
pub fn sorted_unique(mut keys: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    keys.sort();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_distinct_keys() {
        for keys in [
            rand_u64_keys(5000, 1),
            email_keys(5000, 2),
            wiki_keys(5000, 3),
            url_keys(5000, 4),
        ] {
            assert_eq!(keys.len(), 5000);
            let unique = sorted_unique(keys);
            assert_eq!(unique.len(), 5000);
        }
    }

    #[test]
    fn email_statistics_match_paper() {
        let keys = email_keys(20_000, 7);
        let avg: f64 =
            keys.iter().map(|k| k.len()).sum::<usize>() as f64 / keys.len() as f64;
        assert!((15.0..35.0).contains(&avg), "avg email length {avg:.1}");
        // Host-reversed form shares dense prefixes.
        let with_com = keys.iter().filter(|k| k.starts_with(b"com.")).count();
        assert!(with_com > keys.len() / 2);
    }

    #[test]
    fn url_keys_share_long_prefixes() {
        let keys = sorted_unique(url_keys(1000, 5));
        let mut total_lcp = 0usize;
        for w in keys.windows(2) {
            total_lcp += memtree_common::key::common_prefix_len(&w[0], &w[1]);
        }
        let avg_lcp = total_lcp as f64 / (keys.len() - 1) as f64;
        assert!(avg_lcp > 10.0, "avg neighbor LCP {avg_lcp:.1}");
    }

    #[test]
    fn worst_case_shape() {
        let keys = surf_worst_case(3, 20, 9);
        assert_eq!(keys.len(), 4usize.pow(3) * 2);
        for pair in keys.chunks(2) {
            assert_eq!(pair[0].len(), 24);
            // Pairs share everything but the final byte.
            let k0 = &pair[0];
            let k1 = &pair[1];
            assert_eq!(&k0[..k0.len() - 1], &k1[..k1.len() - 1]);
            assert_ne!(k0.last(), k1.last());
        }
    }

    #[test]
    fn mono_keys_sorted() {
        let keys = mono_u64_keys(1000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
