//! Workload generation for every experiment in the thesis.
//!
//! * [`zipf`] — YCSB's Zipfian / scrambled-Zipfian request distributions.
//! * [`ycsb`] — workloads A (50/50 read/update), C (read-only) and
//!   E (95/5 scan/insert) over a loaded key set.
//! * [`keys`] — the thesis's key sets: 64-bit random and mono-inc
//!   integers, host-reversed emails, wiki-title-like and URL-like strings,
//!   and the SuRF worst-case dataset of Figure 4.10. Real corpora are
//!   substituted with generators matching their reported statistics
//!   (DESIGN.md §2).
//! * [`timeseries`] — the Poisson sensor-event stream of §4.4.

#![warn(missing_docs)]

pub mod keys;
pub mod timeseries;
pub mod ycsb;
pub mod zipf;
