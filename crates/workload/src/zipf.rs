//! Request distributions: uniform, Zipfian (YCSB's incremental generator,
//! Gray et al.), and scrambled Zipfian (hot items spread over the key
//! space, as YCSB uses for its default workloads).

use memtree_common::hash::{fmix64, splitmix64};

/// YCSB's default Zipfian constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Picks items `0..n` with a Zipfian distribution (item 0 hottest).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
    state: u64,
}

impl Zipfian {
    /// Creates a generator over `n` items with the default skew.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_theta(n, ZIPFIAN_CONSTANT, seed)
    }

    /// Creates a generator with explicit skew `theta` in (0, 1).
    pub fn with_theta(n: usize, theta: f64, seed: u64) -> Self {
        assert!(n > 0);
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
            state: seed,
        }
    }

    fn zeta(n: usize, theta: f64) -> f64 {
        // Exact for small n; sampled + extrapolated for large n (the
        // harmonic-like sum converges slowly but smoothly).
        if n <= 1_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let base: f64 = (1..=1_000_000)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            // ∫ x^-theta dx from 1e6 to n.
            base + ((n as f64).powf(1.0 - theta) - 1_000_000f64.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Next sample in `0..n` (0 is the hottest item). (Deliberately not
    /// an `Iterator`: the stream is infinite and callers drive it by count.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> usize {
        let u = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        idx.min(self.n - 1)
    }

    /// Zipfian rank scrambled over the item space with a 64-bit mixer —
    /// YCSB's `ScrambledZipfianGenerator`.
    pub fn next_scrambled(&mut self) -> usize {
        (fmix64(self.next() as u64) % self.n as u64) as usize
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Unused-field silencer with meaning: zeta(2,θ) participates in eta.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// Uniform picks over `0..n`.
#[derive(Debug, Clone)]
pub struct Uniform {
    n: usize,
    state: u64,
}

impl Uniform {
    /// Creates a generator over `n` items.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0);
        Self { n, state: seed }
    }

    /// Next sample. (Deliberately not an `Iterator`; see [`Zipfian::next`].)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> usize {
        (splitmix64(&mut self.state) % self.n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_skewed_toward_zero() {
        let mut z = Zipfian::new(10_000, 7);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..100_000 {
            counts[z.next()] += 1;
        }
        // Item 0 should absorb a large share; the tail should be thin.
        assert!(counts[0] > 5_000, "head {}", counts[0]);
        assert!(counts[0] > counts[100] * 10);
        let tail: u32 = counts[5000..].iter().sum();
        assert!(tail < 20_000, "tail {tail}");
    }

    #[test]
    fn scrambled_spreads_hot_items() {
        let mut z = Zipfian::new(10_000, 13);
        let mut hits = std::collections::HashSet::new();
        for _ in 0..1000 {
            hits.insert(z.next_scrambled());
        }
        // Scrambling should place hot items across the space.
        let min = *hits.iter().min().unwrap();
        let max = *hits.iter().max().unwrap();
        assert!(max - min > 5000, "range {min}..{max}");
    }

    #[test]
    fn samples_in_range() {
        let mut z = Zipfian::new(100, 1);
        let mut u = Uniform::new(100, 2);
        for _ in 0..10_000 {
            assert!(z.next() < 100);
            assert!(z.next_scrambled() < 100);
            assert!(u.next() < 100);
        }
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let mut u = Uniform::new(64, 3);
        let mut counts = vec![0u32; 64];
        for _ in 0..64_000 {
            counts[u.next()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700 && c < 1300));
    }
}
