//! The §4.4 time-series dataset: distributed sensors emitting Poisson
//! events. Each record key is a 128-bit value — 64-bit timestamp followed
//! by 64-bit sensor id — so keys sort by time.

use memtree_common::hash::splitmix64;

/// One sensor event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanosecond timestamp.
    pub timestamp: u64,
    /// Sensor identifier.
    pub sensor: u64,
}

impl Event {
    /// The 16-byte key: big-endian timestamp ++ big-endian sensor id.
    pub fn key(&self) -> [u8; 16] {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&self.timestamp.to_be_bytes());
        k[8..].copy_from_slice(&self.sensor.to_be_bytes());
        k
    }
}

/// Generates `sensors` Poisson processes with expected inter-arrival
/// `lambda_ns`, each running for `duration_ns`, merged into one
/// time-sorted event stream. Start offsets are randomized within one
/// expected period, as in the thesis setup.
pub fn sensor_events(sensors: u64, lambda_ns: u64, duration_ns: u64, seed: u64) -> Vec<Event> {
    let mut state = seed;
    let mut events = Vec::new();
    for sensor in 0..sensors {
        let mut t = splitmix64(&mut state) % lambda_ns.max(1);
        while t < duration_ns {
            events.push(Event {
                timestamp: t,
                sensor,
            });
            // Exponential inter-arrival: -ln(U) * lambda.
            let u = ((splitmix64(&mut state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            let gap = (-u.ln() * lambda_ns as f64).ceil() as u64;
            t += gap.max(1);
        }
    }
    events.sort_unstable_by_key(|e| (e.timestamp, e.sensor));
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sorted_and_keys_order_preserving() {
        let events = sensor_events(20, 100_000, 10_000_000, 7);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
            assert!(w[0].key() < w[1].key() || w[0] == w[1]);
        }
    }

    #[test]
    fn poisson_rate_approximately_correct() {
        // Expected events per sensor = duration / lambda.
        let events = sensor_events(10, 200_000, 100_000_000, 3);
        let expect = 10.0 * (100_000_000.0 / 200_000.0);
        let got = events.len() as f64;
        assert!(
            (got - expect).abs() < expect * 0.25,
            "got {got} expected ~{expect}"
        );
    }

    #[test]
    fn empty_interval_probability_matches_exponential() {
        // P(no event in interval R) ≈ e^{-R/λ} for a single sensor.
        let events = sensor_events(1, 100_000, 1_000_000_000, 11);
        let r = 69_310u64; // ln(2) * lambda: ~50% empty
        let mut empty = 0;
        let trials = 1000;
        let mut state = 5u64;
        for _ in 0..trials {
            let start = splitmix64(&mut state) % (1_000_000_000 - r);
            let i = events.partition_point(|e| e.timestamp < start);
            let has = i < events.len() && events[i].timestamp < start + r;
            if !has {
                empty += 1;
            }
        }
        let frac = empty as f64 / trials as f64;
        assert!((0.35..0.65).contains(&frac), "empty fraction {frac}");
    }
}
