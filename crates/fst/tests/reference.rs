//! Randomized cross-checks of FST navigation against a sorted-vector
//! reference model, across all encoding configurations.

use memtree_common::hash::splitmix64;
use memtree_common::traits::{StaticIndex, Value};
use memtree_fst::{Fst, LoudsTrie, TrieOpts};

fn random_keys(n: usize, seed: u64, alpha: u64, max_len: u64) -> Vec<Vec<u8>> {
    let mut state = seed;
    let mut keys: Vec<Vec<u8>> = (0..n)
        .map(|_| {
            let len = (splitmix64(&mut state) % max_len) as usize;
            (0..len)
                .map(|_| (splitmix64(&mut state) % alpha) as u8 + b'a')
                .collect()
        })
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

fn configs() -> Vec<TrieOpts> {
    vec![
        TrieOpts::default(),
        TrieOpts::baseline(),
        TrieOpts {
            r_ratio: Some(0),
            ..TrieOpts::default()
        },
        TrieOpts {
            r_ratio: Some(4),
            simd_labels: false,
            ..TrieOpts::default()
        },
        TrieOpts {
            r_ratio: None,
            select_opt: false,
            ..TrieOpts::default()
        },
    ]
}

#[test]
fn lower_bound_iteration_matches_reference() {
    let keys = random_keys(4000, 99, 3, 14); // small alphabet => prefix keys abound
    let entries: Vec<(Vec<u8>, Value)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i as Value))
        .collect();
    let mut probes = random_keys(300, 7, 3, 14);
    probes.extend(keys.iter().step_by(41).cloned()); // exact hits too
    for opts in configs() {
        let f = Fst::build_with(&entries, opts);
        for probe in &probes {
            let expect: Vec<Value> = entries
                .iter()
                .filter(|(k, _)| k >= probe)
                .take(8)
                .map(|(_, v)| *v)
                .collect();
            let mut got = Vec::new();
            f.scan(probe, 8, &mut got);
            assert_eq!(got, expect, "probe {probe:?} opts {opts:?}");
        }
    }
}

#[test]
fn count_before_matches_reference() {
    let keys = random_keys(3000, 123, 4, 12);
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let probes = random_keys(200, 55, 4, 12);
    for opts in configs() {
        let trie = LoudsTrie::build(&refs, opts);
        for probe in probes.iter().chain(keys.iter().step_by(31)) {
            let it = trie.lower_bound(probe);
            let expect = keys.partition_point(|k| k < probe);
            let got = trie.count_before(&it);
            assert_eq!(got, expect, "probe {probe:?} opts {opts:?}");
        }
        // End-of-trie iterator counts everything.
        let mut it = trie.lower_bound(keys.last().unwrap());
        it.next();
        assert!(!it.valid());
        assert_eq!(trie.count_before(&it), keys.len());
    }
}

#[test]
fn full_iteration_every_config() {
    let keys = random_keys(2500, 31, 5, 10);
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    for opts in configs() {
        let trie = LoudsTrie::build(&refs, opts);
        let mut it = trie.lower_bound(&[]);
        let mut got = Vec::new();
        while it.valid() {
            got.push(it.key().to_vec());
            it.next();
        }
        assert_eq!(got, keys, "opts {opts:?}");
    }
}

#[test]
fn truncated_trie_has_no_false_negatives() {
    let keys = random_keys(3000, 77, 6, 16);
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let trie = LoudsTrie::build(
        &refs,
        TrieOpts {
            truncate: true,
            ..TrieOpts::default()
        },
    );
    // Every stored key must be reported found (candidates allowed for
    // non-members, never misses for members).
    for k in &keys {
        assert!(
            matches!(trie.lookup(k), memtree_fst::LookupResult::Found { .. }),
            "false negative for {k:?}"
        );
    }
}

#[test]
fn truncated_lower_bound_never_overshoots() {
    // The truncated trie's lower_bound must return a key position at or
    // before the true lower bound (one-sided error for range queries).
    let keys = random_keys(2000, 13, 4, 12);
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let trie = LoudsTrie::build(
        &refs,
        TrieOpts {
            truncate: true,
            ..TrieOpts::default()
        },
    );
    let probes = random_keys(300, 17, 4, 12);
    for probe in &probes {
        let it = trie.lower_bound(probe);
        let true_lb = keys.partition_point(|k| k < probe);
        if it.valid() {
            let got = trie.count_before(&it);
            assert!(
                got <= true_lb,
                "lower_bound overshot: got index {got}, true {true_lb}, probe {probe:?}"
            );
        } else {
            // Saying "nothing >= probe" must be correct.
            assert_eq!(true_lb, keys.len(), "false empty for {probe:?}");
        }
    }
}

#[test]
fn fst_count_range_is_exact() {
    let keys = random_keys(3000, 41, 4, 12);
    let entries: Vec<(Vec<u8>, Value)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i as Value))
        .collect();
    let f = Fst::build(&entries);
    let probes = random_keys(120, 5, 4, 12);
    for a in probes.iter().step_by(3) {
        for b in probes.iter().step_by(7) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let truth = keys.partition_point(|k| k < hi) - keys.partition_point(|k| k < lo);
            assert_eq!(f.count_range(lo, hi), truth, "[{lo:?}, {hi:?})");
        }
    }
    assert_eq!(f.count_range(b"zzz", b"a"), 0);
}
