//! Per-level-cursor iterator over a [`LoudsTrie`] (§3.4).
//!
//! The iterator records a root-to-leaf trace of label positions. Because
//! LOUDS-DS lays levels out in level order, each cursor only moves
//! sequentially; `next()` never recomputes rank/select for untouched
//! levels, which is what makes FST range queries competitive with
//! pointer-based tries.

use crate::louds::LoudsTrie;

/// One level of the iterator's trace.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    /// Label position: absolute bit position in `D-Labels` (dense) or index
    /// into `S-Labels` (sparse). For dense prefix-key frames this is
    /// `node * 256`.
    pub(crate) pos: usize,
    /// The frame denotes the node's prefix-key slot, not a label.
    pub(crate) is_prefix: bool,
    /// Whether the frame lives in the dense region.
    pub(crate) dense: bool,
    /// Node bounds: dense = `node * 256`; sparse = first label position.
    pub(crate) node_start: usize,
    /// Dense = `node * 256 + 256`; sparse = one past the last label.
    pub(crate) node_end: usize,
}

/// A forward iterator over the keys of a [`LoudsTrie`].
#[derive(Debug)]
pub struct TrieIter<'a> {
    t: &'a LoudsTrie,
    frames: Vec<Frame>,
    key: Vec<u8>,
    valid: bool,
    at_empty: bool,
    fp_prefix: bool,
    /// Per-level cursor memo: (sparse-local node id, its end position).
    /// In-order traversal visits each level's nodes in level order, so the
    /// *next* node at a level usually starts where the previous one ended —
    /// this turns most `select` calls into a cached add (§3.4: "each
    /// level-cursor only moves sequentially").
    cursors: Vec<Option<(usize, usize)>>,
}

/// A node cursor during descent.
#[derive(Debug, Clone, Copy)]
enum NodeRef {
    Dense(usize),
    /// (label range start, end)
    Sparse(usize, usize),
}

impl<'a> TrieIter<'a> {
    fn invalid(t: &'a LoudsTrie) -> Self {
        Self {
            t,
            frames: Vec::new(),
            key: Vec::new(),
            valid: false,
            at_empty: false,
            fp_prefix: false,
            cursors: vec![None; t.height()],
        }
    }

    /// Is the iterator at a stored key?
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// The current key (the stored prefix, in truncated tries).
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// True when `lower_bound(low)` stopped at a truncated key that is a
    /// strict prefix of `low` (SuRF's `fp_flag`).
    pub fn fp_flag(&self) -> bool {
        self.fp_prefix
    }

    /// Whether the iterator points at the stored empty key.
    pub fn at_empty_key(&self) -> bool {
        self.valid && self.at_empty
    }

    pub(crate) fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Level-ordered value slot of the current key.
    pub fn value_idx(&self) -> usize {
        debug_assert!(self.valid);
        if self.at_empty {
            return 0;
        }
        let f = self.frames.last().expect("valid iterator has frames");
        match (f.dense, f.is_prefix) {
            (true, true) => self.t.d_prefix_value_idx(f.pos / 256),
            (true, false) => self.t.d_value_idx(f.pos),
            (false, _) => self.t.s_value_idx(f.pos),
        }
    }

    /// Resolves a node at `level`, reusing the per-level cursor when the
    /// node immediately follows the previously visited one.
    fn node_ref(&mut self, global_node: usize, level: usize) -> NodeRef {
        if global_node < self.t.dense_node_count {
            return NodeRef::Dense(global_node);
        }
        let local = global_node - self.t.dense_node_count;
        let start = match self.cursors.get(level).copied().flatten() {
            Some((prev_local, prev_end)) if prev_local + 1 == local => prev_end,
            _ => self.t.s_node_start(local),
        };
        let end = self.t.s_node_end(start);
        if let Some(slot) = self.cursors.get_mut(level) {
            *slot = Some((local, end));
        }
        NodeRef::Sparse(start, end)
    }

    /// Pushes the frame for a concrete label position; returns the global
    /// child node if the label continues.
    fn push_label_frame(&mut self, nref: NodeRef, pos: usize) -> Option<usize> {
        match nref {
            NodeRef::Dense(n) => {
                self.frames.push(Frame {
                    pos,
                    is_prefix: false,
                    dense: true,
                    node_start: n * 256,
                    node_end: n * 256 + 256,
                });
                self.key.push((pos - n * 256) as u8);
                self.t
                    .d_has_child
                    .get(pos)
                    .then(|| self.t.d_child_node(pos))
            }
            NodeRef::Sparse(start, end) => {
                self.frames.push(Frame {
                    pos,
                    is_prefix: false,
                    dense: false,
                    node_start: start,
                    node_end: end,
                });
                self.key.push(self.t.s_labels[pos]);
                self.t
                    .s_has_child
                    .get(pos)
                    .then(|| self.t.s_child_node(pos))
            }
        }
    }

    /// Descends to the smallest key in the subtree rooted at `global_node`.
    fn descend_leftmost(&mut self, mut global_node: usize) {
        loop {
            let nref = self.node_ref(global_node, self.frames.len());
            match nref {
                NodeRef::Dense(n) => {
                    if self.t.d_is_prefix.get(n) {
                        self.frames.push(Frame {
                            pos: n * 256,
                            is_prefix: true,
                            dense: true,
                            node_start: n * 256,
                            node_end: n * 256 + 256,
                        });
                        self.valid = true;
                        return;
                    }
                    let pos = self
                        .t
                        .d_find_label_ge(n, 0)
                        .expect("dense node has at least one label");
                    match self.push_label_frame(nref, pos) {
                        Some(child) => global_node = child,
                        None => {
                            self.valid = true;
                            return;
                        }
                    }
                }
                NodeRef::Sparse(start, _end) => {
                    if self.t.s_is_special(start) {
                        self.frames.push(Frame {
                            pos: start,
                            is_prefix: true,
                            dense: false,
                            node_start: start,
                            node_end: _end,
                        });
                        self.valid = true;
                        return;
                    }
                    match self.push_label_frame(nref, start) {
                        Some(child) => global_node = child,
                        None => {
                            self.valid = true;
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Advances to the next key in order; clears `valid` at the end.
    pub fn next(&mut self) {
        debug_assert!(self.valid);
        self.fp_prefix = false;
        if self.at_empty {
            self.at_empty = false;
            if self.t.num_nodes > 0 {
                self.descend_leftmost(0);
            } else {
                self.valid = false;
            }
            return;
        }
        self.next_from_branch();
    }

    /// Positions the iterator at the smallest key `>= low`. In truncated
    /// tries, a stored key that is a strict prefix of `low` is returned
    /// with [`Self::fp_flag`] set (SuRF's `moveToNext` semantics).
    pub(crate) fn lower_bound(t: &'a LoudsTrie, low: &[u8]) -> Self {
        let mut it = Self::invalid(t);
        if t.num_values == 0 {
            return it;
        }
        if low.is_empty() {
            if t.empty_key {
                it.valid = true;
                it.at_empty = true;
            } else {
                it.descend_leftmost(0);
            }
            return it;
        }
        if t.num_nodes == 0 {
            return it; // only the empty key, which is < low
        }
        let mut global_node = 0usize;
        let mut level = 0usize;
        loop {
            let nref = it.node_ref(global_node, level);
            if level == low.len() {
                // low exhausted: everything under this node qualifies.
                it.descend_leftmost(global_node);
                return it;
            }
            let b = low[level];
            // Exact label first.
            let exact = match nref {
                NodeRef::Dense(n) => {
                    let pos = n * 256 + b as usize;
                    t.d_labels.get(pos).then_some(pos)
                }
                NodeRef::Sparse(start, end) => t.s_find_label(start, end, b),
            };
            if let Some(pos) = exact {
                let has_child = match nref {
                    NodeRef::Dense(_) => t.d_has_child.get(pos),
                    NodeRef::Sparse(..) => t.s_has_child.get(pos),
                };
                if has_child {
                    let child = it.push_label_frame(nref, pos).expect("has child");
                    global_node = child;
                    level += 1;
                    continue;
                }
                // Terminal at the exact byte.
                it.push_label_frame(nref, pos);
                it.valid = true;
                if low.len() == level + 1 {
                    return it; // stored key starts with low; >= low
                }
                if t.opts.truncate {
                    // Stored (truncated) key is a strict prefix of low.
                    it.fp_prefix = true;
                    return it;
                }
                // Full trie: stored key < low; move on.
                it.next();
                return it;
            }
            // Smallest label > b.
            let after = match nref {
                NodeRef::Dense(n) => t.d_find_label_ge(n, b as u16 + 1),
                NodeRef::Sparse(start, end) => {
                    t.s_find_label_ge(start, end, b.saturating_add(1))
                        .filter(|_| b < 0xFF)
                }
            };
            if let Some(pos) = after {
                match it.push_label_frame(nref, pos) {
                    Some(child) => it.descend_leftmost(child),
                    None => it.valid = true,
                }
                return it;
            }
            // Dead end: backtrack — pop the branch stack and advance to the
            // next key after the exhausted subtree ("smallest key > path").
            if it.frames.is_empty() {
                return it; // nothing >= low
            }
            it.valid = true;
            it.next_from_branch();
            return it;
        }
    }

    /// Pops the top frame and advances to the next label/key after it.
    fn next_from_branch(&mut self) {
        loop {
            let Some(f) = self.frames.pop() else {
                self.valid = false;
                return;
            };
            if !f.is_prefix {
                self.key.pop();
            }
            let next_pos = if f.dense {
                let n = f.node_start / 256;
                let from = if f.is_prefix {
                    0
                } else {
                    (f.pos - f.node_start + 1) as u16
                };
                self.t.d_find_label_ge(n, from)
            } else {
                let from = f.pos + 1;
                (from < f.node_end).then_some(from)
            };
            let Some(pos) = next_pos else {
                continue;
            };
            let nref = if f.dense {
                NodeRef::Dense(f.node_start / 256)
            } else {
                NodeRef::Sparse(f.node_start, f.node_end)
            };
            match self.push_label_frame(nref, pos) {
                Some(child) => {
                    self.descend_leftmost(child);
                    return;
                }
                None => {
                    self.valid = true;
                    return;
                }
            }
        }
    }
}
