//! Succinct-trie baselines for the Figure 3.5 comparison.
//!
//! * [`TxTrie`] — a plain LOUDS-Sparse trie with none of FST's §3.6
//!   optimizations (Poppy-style 512-bit rank blocks, select by binary
//!   search, per-byte label scan, no LOUDS-Dense levels). This re-creates
//!   the open-source *tx-trie* design the thesis benchmarks against.
//! * [`PdtLite`] — a path-decomposed trie in the spirit of *PDT*
//!   (Grossi & Ottaviano): every node stores a whole root-relative path,
//!   and children hang off (position, label) pairs along it, which
//!   re-balances deep tries (long keys) at the cost of per-node indirection.
//!   Encoded with flat arrays rather than DFUDS; we document this
//!   substitution in DESIGN.md.

use crate::louds::{LookupResult, LoudsTrie, TrieOpts};
use memtree_common::key::common_prefix_len;
use memtree_common::mem::vec_bytes;
use memtree_common::traits::{StaticIndex, Value};

/// LOUDS-Sparse-only trie without FST's optimizations.
#[derive(Debug)]
pub struct TxTrie {
    trie: LoudsTrie,
    values: Vec<Value>,
}

impl StaticIndex for TxTrie {
    fn build(entries: &[(Vec<u8>, Value)]) -> Self {
        let keys: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
        let trie = LoudsTrie::build(&keys, TrieOpts::baseline());
        let mut values = vec![0; entries.len()];
        for (value_idx, &key_idx) in trie.leaf_key_order().iter().enumerate() {
            values[value_idx] = entries[key_idx as usize].1;
        }
        Self { trie, values }
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        match self.trie.lookup(key) {
            LookupResult::Found { value_idx, .. } => Some(self.values[value_idx]),
            LookupResult::NotFound => None,
        }
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let mut it = self.trie.lower_bound(low);
        let mut taken = 0;
        while taken < n && it.valid() {
            out.push(self.values[it.value_idx()]);
            taken += 1;
            it.next();
        }
        taken
    }

    fn len(&self) -> usize {
        self.values.len()
    }

    fn mem_usage(&self) -> usize {
        self.trie.mem_usage() + vec_bytes(&self.values)
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        let mut it = self.trie.lower_bound(&[]);
        while it.valid() {
            f(it.key(), self.values[it.value_idx()]);
            it.next();
        }
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        let mut it = self.trie.lower_bound(low);
        while it.valid() {
            if !f(it.key(), self.values[it.value_idx()]) {
                return;
            }
            it.next();
        }
    }
}

/// Path-decomposed trie baseline (leftmost-path decomposition, flat-array
/// encoded). Point queries only — Figure 3.5 compares point performance.
#[derive(Debug)]
pub struct PdtLite {
    /// Concatenated path bytes; node `i`'s path is
    /// `path_bytes[path_offsets[i]..path_offsets[i+1]]`.
    path_bytes: Vec<u8>,
    path_offsets: Vec<u32>,
    /// Node `i`'s value (each node's path terminates one key).
    vals: Vec<Value>,
    /// Branch arrays; node `i`'s branches are
    /// `branch_*[branch_offsets[i]..branch_offsets[i+1]]`, sorted by
    /// (position, label).
    branch_offsets: Vec<u32>,
    branch_pos: Vec<u16>,
    branch_label: Vec<u8>,
    branch_child: Vec<u32>,
}

impl PdtLite {
    /// Recursively builds the node for `entries` (sorted, sharing `depth`
    /// key bytes); returns its node id.
    fn build_node(&mut self, entries: &[(Vec<u8>, Value)], depth: usize) -> u32 {
        // Reserve this node's id; fill arrays after children (offsets must
        // be contiguous per node, so collect first).
        let (path, value) = (&entries[0].0[depth..], entries[0].1);
        let mut branches: Vec<(u16, u8, u32)> = Vec::new();
        let rest = &entries[1..];
        let mut i = 0usize;
        while i < rest.len() {
            let cp = common_prefix_len(&rest[i].0[depth..], path);
            let label = rest[i].0[depth + cp];
            let mut j = i + 1;
            while j < rest.len() {
                let cp2 = common_prefix_len(&rest[j].0[depth..], path);
                if cp2 == cp && rest[j].0[depth + cp2] == label {
                    j += 1;
                } else {
                    break;
                }
            }
            let child = self.build_node(&rest[i..j], depth + cp + 1);
            branches.push((cp as u16, label, child));
            i = j;
        }
        let id = self.vals.len() as u32;
        self.path_bytes.extend_from_slice(path);
        self.path_offsets.push(self.path_bytes.len() as u32);
        self.vals.push(value);
        for (p, l, c) in branches {
            self.branch_pos.push(p);
            self.branch_label.push(l);
            self.branch_child.push(c);
        }
        self.branch_offsets.push(self.branch_pos.len() as u32);
        id
    }

    fn path(&self, node: usize) -> &[u8] {
        let s = if node == 0 {
            0
        } else {
            self.path_offsets[node - 1] as usize
        };
        &self.path_bytes[s..self.path_offsets[node] as usize]
    }

    fn branches(&self, node: usize) -> std::ops::Range<usize> {
        let s = if node == 0 {
            0
        } else {
            self.branch_offsets[node - 1] as usize
        };
        s..self.branch_offsets[node] as usize
    }
}

impl StaticIndex for PdtLite {
    fn build(entries: &[(Vec<u8>, Value)]) -> Self {
        let mut t = Self {
            path_bytes: Vec::new(),
            path_offsets: Vec::new(),
            vals: Vec::new(),
            branch_offsets: Vec::new(),
            branch_pos: Vec::new(),
            branch_label: Vec::new(),
            branch_child: Vec::new(),
        };
        if !entries.is_empty() {
            t.build_node(entries, 0);
        }
        t
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        if self.vals.is_empty() {
            return None;
        }
        // The root is the *last* node built (post-order); its id is the one
        // returned by build_node for the full range — which is not 0.
        // Track it: the root path starts at offset... we rebuilt bottom-up,
        // so the root is the node whose build call was outermost; since
        // build_node assigns ids after children, the root id is
        // `vals.len() - 1`.
        let mut node = self.vals.len() - 1;
        let mut depth = 0usize;
        loop {
            let path = self.path(node);
            let rest = &key[depth..];
            let cp = common_prefix_len(rest, path);
            if cp == rest.len() {
                return (cp == path.len()).then(|| self.vals[node]);
            }
            // Key diverges (or extends past the path): follow a branch at
            // (cp, key byte).
            let label = rest[cp];
            let range = self.branches(node);
            let mut found = None;
            for b in range {
                if self.branch_pos[b] as usize == cp && self.branch_label[b] == label {
                    found = Some(self.branch_child[b] as usize);
                    break;
                }
            }
            node = found?;
            depth += cp + 1;
        }
    }

    fn scan(&self, _low: &[u8], _n: usize, _out: &mut Vec<Value>) -> usize {
        unimplemented!("PdtLite is a point-query baseline (Figure 3.5)")
    }

    fn len(&self) -> usize {
        self.vals.len()
    }

    fn mem_usage(&self) -> usize {
        vec_bytes(&self.path_bytes)
            + vec_bytes(&self.path_offsets)
            + vec_bytes(&self.vals)
            + vec_bytes(&self.branch_offsets)
            + vec_bytes(&self.branch_pos)
            + vec_bytes(&self.branch_label)
            + vec_bytes(&self.branch_child)
    }

    fn for_each_sorted(&self, _f: &mut dyn FnMut(&[u8], Value)) {
        unimplemented!("PdtLite is a point-query baseline (Figure 3.5)")
    }

    fn range_from(&self, _low: &[u8], _f: &mut dyn FnMut(&[u8], Value) -> bool) {
        unimplemented!("PdtLite is a point-query baseline (Figure 3.5)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    fn entries(n: u64) -> Vec<(Vec<u8>, Value)> {
        let mut state = 42u64;
        let mut keys: Vec<u64> = (0..n)
            .map(|_| memtree_common::hash::splitmix64(&mut state))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter()
            .map(|k| (encode_u64(k).to_vec(), k))
            .collect()
    }

    #[test]
    fn txtrie_matches_fst() {
        let e = entries(5000);
        let t = TxTrie::build(&e);
        for (k, v) in e.iter().step_by(7) {
            assert_eq!(t.get(k), Some(*v));
        }
        assert_eq!(t.get(&encode_u64(12345)), None);
    }

    #[test]
    fn pdt_point_queries() {
        let e = entries(5000);
        let t = PdtLite::build(&e);
        assert_eq!(t.len(), e.len());
        for (k, v) in &e {
            assert_eq!(t.get(k), Some(*v));
        }
        assert_eq!(t.get(&encode_u64(999)), None);
    }

    #[test]
    fn pdt_string_keys_with_prefixes() {
        let mut e: Vec<(Vec<u8>, Value)> = vec![
            (b"a".to_vec(), 1),
            (b"ab".to_vec(), 2),
            (b"abc".to_vec(), 3),
            (b"abd".to_vec(), 4),
            (b"b".to_vec(), 5),
            (b"ba".to_vec(), 6),
        ];
        e.sort();
        let t = PdtLite::build(&e);
        for (k, v) in &e {
            assert_eq!(t.get(k), Some(*v), "{k:?}");
        }
        assert_eq!(t.get(b"ac"), None);
        assert_eq!(t.get(b"abcd"), None);
        assert_eq!(t.get(b""), None);
    }

    #[test]
    fn pdt_is_shallow_for_long_keys() {
        // Long shared-prefix keys: PDT's whole-path nodes keep lookups to
        // few node hops.
        let e: Vec<(Vec<u8>, Value)> = (0..100u64)
            .map(|i| (format!("http://www.example.com/deep/path/{i:03}").into_bytes(), i))
            .collect();
        let t = PdtLite::build(&e);
        for (k, v) in &e {
            assert_eq!(t.get(k), Some(*v));
        }
    }
}
