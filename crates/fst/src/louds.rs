//! The LOUDS-DS encoding engine: builder, point lookup, and the navigation
//! primitives shared by the iterator and SuRF.

use memtree_common::error::{MemtreeError, Result};
use memtree_common::mem::vec_bytes;
use memtree_succinct::kernels::{find_byte, prefetch_read};
use memtree_succinct::{BitVector, RankSupport, SelectSupport};

/// Options controlling the encoding and the §3.6 optimizations; each knob
/// exists so Figure 3.6/3.7 can ablate it.
#[derive(Debug, Clone, Copy)]
pub struct TrieOpts {
    /// SuRF-style truncation: cut each single-key subtree at its first
    /// distinguishing byte instead of storing the whole key.
    pub truncate: bool,
    /// Dense/sparse size ratio `R` (§3.4). `None` = all LOUDS-Sparse;
    /// `Some(0)` = all LOUDS-Dense; `Some(64)` is the thesis default.
    pub r_ratio: Option<usize>,
    /// Dense rank LUT with B = 64 (one popcount per rank); `false` falls
    /// back to B = 512 everywhere (the Poppy-style baseline).
    pub rank_opt: bool,
    /// Sampled select LUT (S = 64); `false` uses binary search over the
    /// rank LUT.
    pub select_opt: bool,
    /// 8-byte-SWAR label comparison in LOUDS-Sparse nodes ("SIMD" in the
    /// thesis); `false` compares byte-by-byte.
    pub simd_labels: bool,
    /// Prefetch the corresponding positions of sibling sequences once a
    /// search position is known (§3.6). No-op on non-x86_64 targets.
    pub prefetch: bool,
}

impl Default for TrieOpts {
    fn default() -> Self {
        Self {
            truncate: false,
            r_ratio: Some(64),
            rank_opt: true,
            select_opt: true,
            simd_labels: true,
            prefetch: true,
        }
    }
}

impl TrieOpts {
    /// The unoptimized baseline of Figure 3.6: LOUDS-Sparse only, 512-bit
    /// rank blocks, select via rank binary search, per-byte label search.
    pub fn baseline() -> Self {
        Self {
            truncate: false,
            r_ratio: None,
            rank_opt: false,
            select_opt: false,
            simd_labels: false,
            prefetch: false,
        }
    }

    /// SuRF's defaults: truncation on, all FST optimizations on.
    pub fn surf() -> Self {
        Self {
            truncate: true,
            ..Self::default()
        }
    }
}

/// Issues a best-effort cache-line prefetch (x86_64 only).
#[inline(always)]
fn prefetch_ptr<T>(p: *const T) {
    prefetch_read(p);
}

/// Per-key cursor used by [`LoudsTrie::lookup_batch`]: where one key of
/// the batch currently sits in its level-synchronous descent.
#[derive(Clone, Copy)]
enum BatchCursor {
    /// Descending the LOUDS-Dense levels at this global node id.
    Dense {
        /// Global dense node id.
        node: usize,
    },
    /// Descending the LOUDS-Sparse levels at this local sparse node id.
    Sparse {
        /// Sparse node id (global id minus `dense_node_count`).
        node: usize,
    },
    /// Resolved; carries the final answer.
    Done(LookupResult),
}

/// Result of a point lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The key (or, in truncated tries, a candidate) was found.
    Found {
        /// Level-ordered value slot.
        value_idx: usize,
        /// Number of key bytes the trie consumed (the stored prefix
        /// length) — SuRF extracts suffix bits from this offset.
        depth: usize,
    },
    /// Definitely absent.
    NotFound,
}

// ---------------------------------------------------------------------------
// Intermediate (build-time) trie
// ---------------------------------------------------------------------------

enum Branch {
    /// Terminal branch: value slot for key `key_idx`.
    Terminal(u32),
    /// Branch continues into the node queued at BFS order `child_seq`.
    Child,
}

struct BuildNode {
    /// Key index whose key ends exactly at this node.
    prefix_key: Option<u32>,
    branches: Vec<(u8, Branch)>,
}

// ---------------------------------------------------------------------------
// LoudsTrie
// ---------------------------------------------------------------------------

/// A trie encoded with LOUDS-Dense (upper levels) + LOUDS-Sparse (lower
/// levels). Stores no values itself — lookups return level-ordered value
/// slots that `Fst`/`SuRF` index into their own arrays.
#[derive(Debug)]
pub struct LoudsTrie {
    pub(crate) opts: TrieOpts,

    // ---- LOUDS-Dense ----
    pub(crate) d_labels: BitVector,
    pub(crate) d_has_child: BitVector,
    pub(crate) d_is_prefix: BitVector,
    pub(crate) d_labels_rank: RankSupport,
    pub(crate) d_has_child_rank: RankSupport,
    pub(crate) d_is_prefix_rank: RankSupport,
    /// Number of levels encoded densely.
    pub(crate) dense_levels: usize,
    pub(crate) dense_node_count: usize,
    pub(crate) dense_child_count: usize,
    pub(crate) dense_value_count: usize,

    // ---- LOUDS-Sparse ----
    pub(crate) s_labels: Vec<u8>,
    pub(crate) s_has_child: BitVector,
    pub(crate) s_louds: BitVector,
    pub(crate) s_has_child_rank: RankSupport,
    pub(crate) s_louds_rank: RankSupport,
    pub(crate) s_louds_select: SelectSupport,

    // ---- metadata ----
    /// Value slot of the empty key, if stored (always slot 0).
    pub(crate) empty_key: bool,
    /// Per-level start boundary: for dense levels the first node id, for
    /// sparse levels the first `s_labels` position. `level_node_starts[l]`
    /// = first global node id at level `l`; one extra sentinel at the end.
    pub(crate) level_node_starts: Vec<usize>,
    pub(crate) height: usize,
    pub(crate) num_nodes: usize,
    pub(crate) num_values: usize,
    /// `leaf_key_order[value_idx] = key index` in the build input.
    leaf_key_order: Vec<u32>,
}

impl LoudsTrie {
    /// Builds the trie over sorted, duplicate-free keys.
    pub fn build(keys: &[&[u8]], opts: TrieOpts) -> Self {
        Builder::new(keys, opts).finish()
    }

    /// Mapping from level-ordered value slots to input key indexes.
    pub fn leaf_key_order(&self) -> &[u32] {
        &self.leaf_key_order
    }

    /// Total trie nodes (including dense levels).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total value slots.
    pub fn num_values(&self) -> usize {
        self.num_values
    }

    /// Trie height (number of levels).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Heap bytes of the encoding (bit vectors, LUTs, labels).
    pub fn mem_usage(&self) -> usize {
        self.d_labels.mem_usage()
            + self.d_has_child.mem_usage()
            + self.d_is_prefix.mem_usage()
            + self.d_labels_rank.mem_usage()
            + self.d_has_child_rank.mem_usage()
            + self.d_is_prefix_rank.mem_usage()
            + vec_bytes(&self.s_labels)
            + self.s_has_child.mem_usage()
            + self.s_louds.mem_usage()
            + self.s_has_child_rank.mem_usage()
            + self.s_louds_rank.mem_usage()
            + self.s_louds_select.mem_usage()
            + vec_bytes(&self.level_node_starts)
    }

    // ------------------------------------------------------------------
    // Rank helpers (inclusive & exclusive)
    // ------------------------------------------------------------------

    /// Terminal-value slots strictly before dense position `pos`, plus
    /// prefix-key slots of nodes before `node(pos)`; `include_own_prefix`
    /// additionally counts `node(pos)`'s prefix slot (which sits before all
    /// of its labels).
    #[inline]
    fn d_values_before(&self, pos: usize, include_own_prefix: bool) -> usize {
        let node = pos / 256;
        let labels = self.d_labels_rank.rank1_excl(&self.d_labels, pos);
        let children = self.d_has_child_rank.rank1_excl(&self.d_has_child, pos);
        let prefixes = if include_own_prefix && node < self.dense_node_count {
            self.d_is_prefix_rank.rank1(&self.d_is_prefix, node)
        } else {
            self.d_is_prefix_rank.rank1_excl(&self.d_is_prefix, node)
        };
        labels - children + prefixes
    }

    /// Value slots strictly before sparse position `pos` (global slot id).
    #[inline]
    fn s_values_before(&self, pos: usize) -> usize {
        self.dense_value_count + pos - self.s_has_child_rank.rank1_excl(&self.s_has_child, pos)
    }

    /// Value slot of the terminal branch at dense position `pos`.
    #[inline]
    pub(crate) fn d_value_idx(&self, pos: usize) -> usize {
        self.value_offset() + self.d_values_before(pos, true)
    }

    /// Value slot of the prefix key of dense node `node`.
    #[inline]
    pub(crate) fn d_prefix_value_idx(&self, node: usize) -> usize {
        self.value_offset() + self.d_values_before(node * 256, false)
    }

    /// Value slot of the value (terminal or 0xFF special) at sparse `pos`.
    #[inline]
    pub(crate) fn s_value_idx(&self, pos: usize) -> usize {
        self.value_offset() + self.s_values_before(pos)
    }

    #[inline]
    fn value_offset(&self) -> usize {
        usize::from(self.empty_key)
    }

    // ------------------------------------------------------------------
    // Navigation
    // ------------------------------------------------------------------

    /// Global child node id of the branch at dense position `pos`
    /// (requires `d_has_child[pos]`).
    #[inline]
    pub(crate) fn d_child_node(&self, pos: usize) -> usize {
        self.d_has_child_rank.rank1(&self.d_has_child, pos)
    }

    /// Global child node id of the branch at sparse position `pos`.
    #[inline]
    pub(crate) fn s_child_node(&self, pos: usize) -> usize {
        self.dense_child_count + self.s_has_child_rank.rank1(&self.s_has_child, pos)
    }

    /// First `s_labels` position of sparse-local node `k` (0-based).
    #[inline]
    pub(crate) fn s_node_start(&self, k: usize) -> usize {
        if self.opts.select_opt {
            self.s_louds_select.select1(&self.s_louds, k + 1)
        } else {
            SelectSupport::select1_via_rank(&self.s_louds, &self.s_louds_rank, k + 1)
        }
    }

    /// One-past-the-last `s_labels` position of the node starting at
    /// `start`.
    #[inline]
    pub(crate) fn s_node_end(&self, start: usize) -> usize {
        let words = self.s_louds.words();
        let mut pos = start + 1;
        while pos < self.s_louds.len() {
            let w = words[pos / 64] >> (pos % 64);
            if w != 0 {
                return (pos + w.trailing_zeros() as usize).min(self.s_louds.len());
            }
            pos = (pos / 64 + 1) * 64;
        }
        self.s_louds.len()
    }

    /// Is the sparse position a 0xFF *prefix-key marker* (as opposed to a
    /// real 0xFF label)? Special iff it starts a node that has more labels.
    #[inline]
    pub(crate) fn s_is_special(&self, pos: usize) -> bool {
        self.s_labels[pos] == 0xFF
            && !self.s_has_child.get(pos)
            && self.s_louds.get(pos)
            && pos + 1 < self.s_louds.len()
            && !self.s_louds.get(pos + 1)
    }

    /// Searches the sparse node `[start, end)` for `byte`; returns its
    /// position. Skips the 0xFF special at `start` if present.
    #[inline]
    pub(crate) fn s_find_label(&self, start: usize, end: usize, byte: u8) -> Option<usize> {
        let mut s = start;
        if self.s_is_special(s) {
            s += 1;
        }
        if self.opts.simd_labels {
            // Word-parallel label compare: SSE2 (16 labels/cmp) when the
            // CPU has it, 8-byte SWAR otherwise; `find_byte` itself routes
            // small nodes (>90% of them, §3.6) through the plain loop where
            // the vector setup wouldn't pay off.
            find_byte(&self.s_labels[s..end], byte).map(|i| s + i)
        } else {
            (s..end).find(|&p| self.s_labels[p] == byte)
        }
    }

    /// Position of the smallest label `>= byte` in the sparse node
    /// `[start, end)` (skipping the special marker).
    #[inline]
    pub(crate) fn s_find_label_ge(&self, start: usize, end: usize, byte: u8) -> Option<usize> {
        let mut s = start;
        if self.s_is_special(s) {
            s += 1;
        }
        (s..end).find(|&p| self.s_labels[p] >= byte)
    }

    /// First set label position in dense node `node` at or after label
    /// `from`.
    #[inline]
    pub(crate) fn d_find_label_ge(&self, node: usize, from: u16) -> Option<usize> {
        if from > 255 {
            return None;
        }
        let base = node * 256;
        let words = self.d_labels.words();
        let mut pos = base + from as usize;
        let limit = base + 256;
        while pos < limit {
            let w = words[pos / 64] >> (pos % 64);
            if w != 0 {
                let cand = pos + w.trailing_zeros() as usize;
                return (cand < limit).then_some(cand);
            }
            pos = (pos / 64 + 1) * 64;
        }
        None
    }

    // ------------------------------------------------------------------
    // Point lookup (Algorithm 1)
    // ------------------------------------------------------------------

    /// Point query. In truncated (SuRF) tries, reaching a terminal branch
    /// is a *candidate* match — callers verify with suffix bits.
    pub fn lookup(&self, key: &[u8]) -> LookupResult {
        if self.num_values == 0 {
            return LookupResult::NotFound;
        }
        if key.is_empty() {
            return if self.empty_key {
                LookupResult::Found {
                    value_idx: 0,
                    depth: 0,
                }
            } else {
                LookupResult::NotFound
            };
        }
        if self.num_nodes == 0 {
            return LookupResult::NotFound;
        }
        let mut level = 0usize;
        let mut node = 0usize; // global node id
        // ---- dense levels ----
        while level < self.dense_levels {
            if level == key.len() {
                return if self.d_is_prefix.get(node) {
                    LookupResult::Found {
                        value_idx: self.d_prefix_value_idx(node),
                        depth: level,
                    }
                } else {
                    LookupResult::NotFound
                };
            }
            let pos = node * 256 + key[level] as usize;
            if self.opts.prefetch {
                prefetch_ptr(unsafe { self.d_has_child.words().as_ptr().add(pos / 64) });
            }
            if !self.d_labels.get(pos) {
                return LookupResult::NotFound;
            }
            if !self.d_has_child.get(pos) {
                // Terminal: exact in full tries, candidate in truncated.
                return if self.opts.truncate || key.len() == level + 1 {
                    LookupResult::Found {
                        value_idx: self.d_value_idx(pos),
                        depth: level + 1,
                    }
                } else {
                    LookupResult::NotFound
                };
            }
            node = self.d_child_node(pos);
            level += 1;
            if node >= self.dense_node_count {
                break;
            }
        }
        // ---- sparse levels ----
        let mut sparse_node = node - self.dense_node_count;
        loop {
            let start = self.s_node_start(sparse_node);
            if self.opts.prefetch {
                // The label bytes and the matching S-HasChild word will be
                // touched next; their positions correspond (§3.6).
                prefetch_ptr(unsafe { self.s_labels.as_ptr().add(start) });
                prefetch_ptr(unsafe { self.s_has_child.words().as_ptr().add(start / 64) });
            }
            let end = self.s_node_end(start);
            if level == key.len() {
                return if self.s_is_special(start) {
                    LookupResult::Found {
                        value_idx: self.s_value_idx(start),
                        depth: level,
                    }
                } else {
                    LookupResult::NotFound
                };
            }
            // A real 0xFF label can only be the last in a node; the search
            // helper skips the special first slot.
            let Some(pos) = self.s_find_label(start, end, key[level]) else {
                return LookupResult::NotFound;
            };
            if !self.s_has_child.get(pos) {
                return if self.opts.truncate || key.len() == level + 1 {
                    LookupResult::Found {
                        value_idx: self.s_value_idx(pos),
                        depth: level + 1,
                    }
                } else {
                    LookupResult::NotFound
                };
            }
            sparse_node = self.s_child_node(pos) - self.dense_node_count;
            level += 1;
        }
    }

    /// Batched point lookup: all keys descend the trie level-synchronously
    /// and each round prefetches the lines the next pass will touch before
    /// any of them is dereferenced, overlapping the cache misses of up to
    /// `keys.len()` independent probes (the §3.6 prefetch idea applied
    /// *across* queries instead of within one).
    ///
    /// Appends exactly one [`LookupResult`] per key, in input order, each
    /// identical to what [`LoudsTrie::lookup`] returns for that key.
    pub fn lookup_batch(&self, keys: &[&[u8]], out: &mut Vec<LookupResult>) {
        // Seed per-key cursors, resolving the trivial cases inline.
        let mut states: Vec<BatchCursor> = keys
            .iter()
            .map(|key| {
                if self.num_values == 0 || (self.num_nodes == 0 && !key.is_empty()) {
                    BatchCursor::Done(LookupResult::NotFound)
                } else if key.is_empty() {
                    BatchCursor::Done(if self.empty_key {
                        LookupResult::Found {
                            value_idx: 0,
                            depth: 0,
                        }
                    } else {
                        LookupResult::NotFound
                    })
                } else if self.dense_levels == 0 {
                    BatchCursor::Sparse { node: 0 }
                } else {
                    BatchCursor::Dense { node: 0 }
                }
            })
            .collect();
        let mut scratch_starts = vec![0usize; keys.len()];
        let mut level = 0usize;
        let mut active = states.iter().any(|s| !matches!(s, BatchCursor::Done(_)));
        while active {
            active = false;
            // ---- pass 1: issue prefetches for everything pass 2 reads ----
            if self.opts.prefetch {
                for (key, st) in keys.iter().zip(states.iter()) {
                    if let BatchCursor::Dense { node } = *st {
                        // SAFETY: prefetch is a hint; the offsets stay within
                        // (or harmlessly at the edge of) the word arrays.
                        if level < key.len() {
                            let pos = node * 256 + key[level] as usize;
                            prefetch_ptr(unsafe {
                                self.d_labels.words().as_ptr().add(pos / 64)
                            });
                            prefetch_ptr(unsafe {
                                self.d_has_child.words().as_ptr().add(pos / 64)
                            });
                        } else {
                            prefetch_ptr(unsafe {
                                self.d_is_prefix.words().as_ptr().add(node / 64)
                            });
                        }
                    }
                }
            }
            for (i, st) in states.iter().enumerate() {
                if let BatchCursor::Sparse { node } = *st {
                    let start = self.s_node_start(node);
                    scratch_starts[i] = start;
                    if self.opts.prefetch {
                        // SAFETY: as above — `start` indexes live label and
                        // bitmap storage of this trie.
                        prefetch_ptr(unsafe { self.s_labels.as_ptr().add(start) });
                        prefetch_ptr(unsafe {
                            self.s_has_child.words().as_ptr().add(start / 64)
                        });
                        prefetch_ptr(unsafe { self.s_louds.words().as_ptr().add(start / 64) });
                    }
                }
            }
            // ---- pass 2: advance every live cursor by one level ----
            for (i, st) in states.iter_mut().enumerate() {
                let key = keys[i];
                match *st {
                    BatchCursor::Done(_) => {}
                    BatchCursor::Dense { node } => {
                        if level == key.len() {
                            *st = BatchCursor::Done(if self.d_is_prefix.get(node) {
                                LookupResult::Found {
                                    value_idx: self.d_prefix_value_idx(node),
                                    depth: level,
                                }
                            } else {
                                LookupResult::NotFound
                            });
                            continue;
                        }
                        let pos = node * 256 + key[level] as usize;
                        if !self.d_labels.get(pos) {
                            *st = BatchCursor::Done(LookupResult::NotFound);
                        } else if !self.d_has_child.get(pos) {
                            *st = BatchCursor::Done(
                                if self.opts.truncate || key.len() == level + 1 {
                                    LookupResult::Found {
                                        value_idx: self.d_value_idx(pos),
                                        depth: level + 1,
                                    }
                                } else {
                                    LookupResult::NotFound
                                },
                            );
                        } else {
                            let child = self.d_child_node(pos);
                            *st = if child >= self.dense_node_count {
                                BatchCursor::Sparse {
                                    node: child - self.dense_node_count,
                                }
                            } else {
                                BatchCursor::Dense { node: child }
                            };
                            active = true;
                        }
                    }
                    BatchCursor::Sparse { .. } => {
                        let start = scratch_starts[i];
                        let end = self.s_node_end(start);
                        if level == key.len() {
                            *st = BatchCursor::Done(if self.s_is_special(start) {
                                LookupResult::Found {
                                    value_idx: self.s_value_idx(start),
                                    depth: level,
                                }
                            } else {
                                LookupResult::NotFound
                            });
                        } else if let Some(pos) = self.s_find_label(start, end, key[level]) {
                            if !self.s_has_child.get(pos) {
                                *st = BatchCursor::Done(
                                    if self.opts.truncate || key.len() == level + 1 {
                                        LookupResult::Found {
                                            value_idx: self.s_value_idx(pos),
                                            depth: level + 1,
                                        }
                                    } else {
                                        LookupResult::NotFound
                                    },
                                );
                            } else {
                                *st = BatchCursor::Sparse {
                                    node: self.s_child_node(pos) - self.dense_node_count,
                                };
                                active = true;
                            }
                        } else {
                            *st = BatchCursor::Done(LookupResult::NotFound);
                        }
                    }
                }
            }
            level += 1;
        }
        out.extend(states.iter().map(|s| match s {
            BatchCursor::Done(r) => *r,
            // The loop only exits once every cursor is Done.
            _ => unreachable!("live cursor after batch drain"),
        }));
    }

    /// Number of stored values whose key is strictly smaller than the key
    /// at `it`. Invalid iterators count as "past the end". Runs in
    /// O(height) rank operations — the engine behind SuRF's `count`
    /// (§4.1.5).
    pub fn count_before(&self, it: &crate::iter::TrieIter<'_>) -> usize {
        if !it.valid() {
            return self.num_values;
        }
        if it.at_empty_key() {
            return 0;
        }
        let mut total = usize::from(self.empty_key);
        let frames = it.frames();
        // Chain of global node ids bounding the path below the iterator's
        // depth: the first node whose parent branch is at/after the
        // boundary position of the level above.
        let mut boundary_node = 0usize;
        for level in 0..self.height {
            let (values_before, children_before);
            if level < frames.len() {
                let pos = frames[level].pos;
                if level < self.dense_levels {
                    values_before = self.d_values_before(pos, !frames[level].is_prefix);
                    children_before =
                        self.d_has_child_rank.rank1_excl(&self.d_has_child, pos);
                } else {
                    values_before = self.s_values_before(pos);
                    children_before = self.dense_child_count
                        + self.s_has_child_rank.rank1_excl(&self.s_has_child, pos);
                }
            } else {
                // Below the iterator's depth: clamp the boundary into this
                // level's node range.
                let node = boundary_node
                    .min(self.level_node_starts[level + 1])
                    .max(self.level_node_starts[level]);
                if level < self.dense_levels {
                    let pos = node * 256;
                    values_before = self.d_values_before(pos, false);
                    children_before =
                        self.d_has_child_rank.rank1_excl(&self.d_has_child, pos);
                } else {
                    let local = node - self.dense_node_count;
                    let pos = if local >= self.sparse_node_count() {
                        self.s_labels.len()
                    } else {
                        self.s_node_start(local)
                    };
                    values_before = self.s_values_before(pos);
                    children_before = self.dense_child_count
                        + self.s_has_child_rank.rank1_excl(&self.s_has_child, pos);
                }
            }
            total += values_before - self.values_at_level_start(level);
            boundary_node = children_before + 1;
        }
        total
    }

    /// Number of sparse-encoded nodes.
    #[inline]
    pub(crate) fn sparse_node_count(&self) -> usize {
        self.num_nodes - self.dense_node_count
    }

    /// Cumulative value slots (dense + sparse, no empty-key offset) before
    /// level `level` starts.
    fn values_at_level_start(&self, level: usize) -> usize {
        let node = self.level_node_starts[level];
        if level < self.dense_levels {
            self.d_values_before(node * 256, false)
        } else {
            let local = node - self.dense_node_count;
            let pos = if local >= self.sparse_node_count() {
                self.s_labels.len()
            } else {
                self.s_node_start(local)
            };
            self.s_values_before(pos)
        }
    }

    /// Iterator positioned at the smallest key `>= low`.
    pub fn lower_bound(&self, low: &[u8]) -> crate::iter::TrieIter<'_> {
        crate::iter::TrieIter::lower_bound(self, low)
    }

    // ------------------------------------------------------------------
    // Serialized image
    // ------------------------------------------------------------------

    /// Appends this trie's raw image to `out`: opts flags, the counts, the
    /// five LOUDS-DS bit vectors as `(len, words)`, the sparse labels, the
    /// per-level node boundaries, and the leaf→key mapping. Rank/select
    /// support structures are *not* stored — [`LoudsTrie::deserialize`]
    /// rebuilds them exactly as the builder does, so an image holds only
    /// the data that cannot be recomputed from itself.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        let mut flags = 0u8;
        for (bit, on) in [
            self.opts.truncate,
            self.opts.rank_opt,
            self.opts.select_opt,
            self.opts.simd_labels,
            self.opts.prefetch,
            self.opts.r_ratio.is_some(),
            self.empty_key,
        ]
        .into_iter()
        .enumerate()
        {
            if on {
                flags |= 1 << bit;
            }
        }
        out.push(flags);
        if let Some(r) = self.opts.r_ratio {
            put_u64(out, r as u64);
        }
        for v in [
            self.dense_levels,
            self.dense_node_count,
            self.dense_child_count,
            self.dense_value_count,
            self.height,
            self.num_nodes,
            self.num_values,
        ] {
            put_u64(out, v as u64);
        }
        for bv in [
            &self.d_labels,
            &self.d_has_child,
            &self.d_is_prefix,
            &self.s_has_child,
            &self.s_louds,
        ] {
            put_bitvec(out, bv);
        }
        put_u64(out, self.s_labels.len() as u64);
        out.extend_from_slice(&self.s_labels);
        put_u64(out, self.level_node_starts.len() as u64);
        for &v in &self.level_node_starts {
            put_u64(out, v as u64);
        }
        put_u64(out, self.leaf_key_order.len() as u64);
        for &v in &self.leaf_key_order {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Rebuilds a trie from a [`LoudsTrie::serialize`] image, recomputing
    /// the rank/select supports with the same parameters the builder uses.
    /// Every structural invariant the builder guarantees is re-validated;
    /// any mismatch (truncated body, inconsistent counts, bit vectors that
    /// disagree with each other) is a typed `Corruption` error — callers
    /// fall back to rebuilding from keys, they never get a trie that could
    /// answer wrongly or index out of bounds.
    pub fn deserialize(buf: &[u8]) -> Result<Self> {
        const CTX: &str = "louds-image";
        let bad = |what: &str| MemtreeError::corruption(CTX, what.to_string());
        let mut r = ImgReader { buf, at: 0 };
        let flags = r.u8()?;
        if flags >> 7 != 0 {
            return Err(bad("unknown flag bits"));
        }
        let opts = TrieOpts {
            truncate: flags & 1 != 0,
            rank_opt: flags & 2 != 0,
            select_opt: flags & 4 != 0,
            simd_labels: flags & 8 != 0,
            prefetch: flags & 16 != 0,
            r_ratio: if flags & 32 != 0 { Some(r.u64()? as usize) } else { None },
        };
        let empty_key = flags & 64 != 0;
        let dense_levels = r.u64()? as usize;
        let dense_node_count = r.u64()? as usize;
        let dense_child_count = r.u64()? as usize;
        let dense_value_count = r.u64()? as usize;
        let height = r.u64()? as usize;
        let num_nodes = r.u64()? as usize;
        let num_values = r.u64()? as usize;
        let d_labels = r.bitvec()?;
        let d_has_child = r.bitvec()?;
        let d_is_prefix = r.bitvec()?;
        let s_has_child = r.bitvec()?;
        let s_louds = r.bitvec()?;
        let s_labels = r.bytes()?;
        let starts_len = r.u64()? as usize;
        if starts_len != height + 1 {
            return Err(bad("level boundary count disagrees with height"));
        }
        let mut level_node_starts = Vec::with_capacity(starts_len);
        for _ in 0..starts_len {
            level_node_starts.push(r.u64()? as usize);
        }
        let leaf_len = r.u64()? as usize;
        if leaf_len != num_values {
            return Err(bad("leaf order length disagrees with value count"));
        }
        let mut leaf_key_order = Vec::with_capacity(leaf_len);
        for _ in 0..leaf_len {
            leaf_key_order.push(r.u32()?);
        }
        r.done()?;

        // Structural cross-checks: everything `finish()` guarantees and the
        // navigation code relies on for in-bounds indexing.
        let padded = |n: usize| n.max(1); // `ensure` pads empties to one bit
        if d_labels.len() != padded(dense_node_count * 256)
            || d_has_child.len() != d_labels.len()
            || d_is_prefix.len() != padded(dense_node_count)
            || s_has_child.len() != padded(s_labels.len())
            || s_louds.len() != s_has_child.len()
        {
            return Err(bad("bit vector lengths disagree with node counts"));
        }
        if dense_child_count != d_has_child.count_ones()
            || num_nodes < dense_node_count
            || dense_levels > height
            || dense_value_count > num_values
        {
            return Err(bad("counts disagree with bit vector contents"));
        }
        // A padded-empty vector holds one false bit, so `count_ones` is
        // exact in all of these regardless of padding.
        let sparse_nodes = num_nodes - dense_node_count;
        if s_louds.count_ones() != sparse_nodes {
            return Err(bad("LOUDS bits disagree with sparse node count"));
        }
        if level_node_starts.last() != Some(&num_nodes)
            || !level_node_starts.windows(2).all(|w| w[0] <= w[1])
        {
            return Err(bad("level boundaries out of order"));
        }
        if d_labels.count_ones() < dense_child_count || s_has_child.count_ones() > s_labels.len() {
            return Err(bad("child bits exceed label bits"));
        }
        let stored_values = usize::from(empty_key)
            + (d_labels.count_ones() - dense_child_count)
            + d_is_prefix.count_ones()
            + (s_labels.len() - s_has_child.count_ones());
        if num_values != stored_values {
            return Err(bad("value count disagrees with terminal bits"));
        }

        let dense_rank_block = if opts.rank_opt { 64 } else { 512 };
        let d_labels_rank = RankSupport::new(&d_labels, dense_rank_block);
        let d_has_child_rank = RankSupport::new(&d_has_child, dense_rank_block);
        let d_is_prefix_rank = RankSupport::new(&d_is_prefix, dense_rank_block);
        let s_has_child_rank = RankSupport::new(&s_has_child, 512);
        let s_louds_rank = RankSupport::new(&s_louds, 512);
        let s_louds_select = SelectSupport::new(&s_louds, 64);
        Ok(LoudsTrie {
            opts,
            d_labels,
            d_has_child,
            d_is_prefix,
            d_labels_rank,
            d_has_child_rank,
            d_is_prefix_rank,
            dense_levels,
            dense_node_count,
            dense_child_count,
            dense_value_count,
            s_labels,
            s_has_child,
            s_louds,
            s_has_child_rank,
            s_louds_rank,
            s_louds_select,
            empty_key,
            level_node_starts,
            height,
            num_nodes,
            num_values,
            leaf_key_order,
        })
    }
}

// ---------------------------------------------------------------------------
// Image codec helpers
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bitvec(out: &mut Vec<u8>, bv: &BitVector) {
    put_u64(out, bv.len() as u64);
    for &w in bv.words() {
        put_u64(out, w);
    }
}

/// Bounds-checked little-endian cursor over an image body. Every read past
/// the end is a typed error, so a semantically truncated body (valid CRC
/// frame, short payload) surfaces as `Corruption` — never a panic.
struct ImgReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl ImgReader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.buf.len() - self.at < n {
            return Err(MemtreeError::corruption(
                "louds-image",
                format!("truncated body: need {n} bytes at {}", self.at),
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length-prefixed run of words reassembled via
    /// [`BitVector::from_words`], which re-validates word count and
    /// padding bits.
    fn bitvec(&mut self) -> Result<BitVector> {
        let len = self.u64()? as usize;
        if len > self.buf.len().saturating_sub(self.at) * 64 {
            return Err(MemtreeError::corruption(
                "louds-image",
                format!("bit vector length {len} exceeds remaining body"),
            ));
        }
        let mut words = Vec::with_capacity(len.div_ceil(64));
        for _ in 0..len.div_ceil(64) {
            words.push(self.u64()?);
        }
        BitVector::from_words(words, len).ok_or_else(|| {
            MemtreeError::corruption("louds-image", "bit vector padding bits set".to_string())
        })
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn done(&mut self) -> Result<()> {
        if self.at != self.buf.len() {
            return Err(MemtreeError::corruption(
                "louds-image",
                format!("{} trailing bytes after image body", self.buf.len() - self.at),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

struct Builder<'k> {
    keys: &'k [&'k [u8]],
    opts: TrieOpts,
    /// `levels[l]` = nodes at level `l` in level order.
    levels: Vec<Vec<BuildNode>>,
    empty_key: bool,
}

impl<'k> Builder<'k> {
    fn new(keys: &'k [&'k [u8]], opts: TrieOpts) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted+unique");
        let mut b = Self {
            keys,
            opts,
            levels: Vec::new(),
            empty_key: false,
        };
        b.build_levels();
        b
    }

    fn build_levels(&mut self) {
        let mut keys = self.keys;
        if let Some(first) = keys.first() {
            if first.is_empty() {
                self.empty_key = true;
                keys = &keys[1..];
            }
        }
        if keys.is_empty() {
            return;
        }
        let base = usize::from(self.empty_key);
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((0usize, keys.len(), 0usize));
        while let Some((start, end, depth)) = queue.pop_front() {
            if self.levels.len() == depth {
                self.levels.push(Vec::new());
            }
            let mut node = BuildNode {
                prefix_key: None,
                branches: Vec::new(),
            };
            let mut i = start;
            if keys[i].len() == depth {
                node.prefix_key = Some((base + i) as u32);
                i += 1;
            }
            while i < end {
                let b = keys[i][depth];
                let mut j = i + 1;
                while j < end && keys[j][depth] == b {
                    j += 1;
                }
                let single = j - i == 1;
                if single && (self.opts.truncate || keys[i].len() == depth + 1) {
                    node.branches.push((b, Branch::Terminal((base + i) as u32)));
                } else {
                    node.branches.push((b, Branch::Child));
                    queue.push_back((i, j, depth + 1));
                }
                i = j;
            }
            self.levels[depth].push(node);
        }
    }

    /// Picks the dense/sparse cutoff level per §3.4.
    fn cutoff(&self) -> usize {
        let h = self.levels.len();
        match self.opts.r_ratio {
            None => 0,
            Some(0) => h,
            Some(r) => {
                // dense_size(l): bits for levels < l encoded densely.
                // sparse_size(l): bits for levels >= l encoded sparsely.
                let mut dense_bits = vec![0u64; h + 1];
                let mut sparse_bits = vec![0u64; h + 1];
                for l in 0..h {
                    let nodes = self.levels[l].len() as u64;
                    let labels: u64 = self.levels[l]
                        .iter()
                        .map(|n| n.branches.len() as u64 + u64::from(n.prefix_key.is_some()))
                        .sum();
                    dense_bits[l + 1] = dense_bits[l] + nodes * 513;
                    sparse_bits[l + 1] = labels * 10; // temp: per-level
                }
                // suffix-sum the sparse sizes.
                let mut suffix = vec![0u64; h + 1];
                for l in (0..h).rev() {
                    suffix[l] = suffix[l + 1] + sparse_bits[l + 1];
                }
                let mut best = 0;
                for l in 0..=h {
                    if dense_bits[l] * r as u64 <= suffix[l] {
                        best = l;
                    }
                }
                best
            }
        }
    }

    fn finish(self) -> LoudsTrie {
        let opts = self.opts;
        let h = self.levels.len();
        let cut = self.cutoff();

        let mut d_labels = BitVector::new();
        let mut d_has_child = BitVector::new();
        let mut d_is_prefix = BitVector::new();
        let mut s_labels: Vec<u8> = Vec::new();
        let mut s_has_child = BitVector::new();
        let mut s_louds = BitVector::new();
        let mut leaf_key_order: Vec<u32> = Vec::new();
        if self.empty_key {
            leaf_key_order.push(0);
        }

        let empty_offset = usize::from(self.empty_key);
        let mut level_node_starts = Vec::with_capacity(h + 1);
        let mut node_id = 0usize;
        let mut dense_node_count = 0usize;
        let mut dense_value_count = 0usize;

        for (l, level) in self.levels.iter().enumerate() {
            level_node_starts.push(node_id);
            for node in level {
                if l < cut {
                    // ---- dense ----
                    let base = d_labels.len();
                    d_labels.push_n(false, 256);
                    d_has_child.push_n(false, 256);
                    d_is_prefix.push(node.prefix_key.is_some());
                    if let Some(k) = node.prefix_key {
                        leaf_key_order.push(k);
                    }
                    // Values of terminal branches follow in label order —
                    // but the slot order must match d_values_before, which
                    // counts prefix first, then terminals by label. Emit
                    // accordingly.
                    for (b, br) in &node.branches {
                        d_labels.set(base + *b as usize);
                        match br {
                            Branch::Terminal(k) => leaf_key_order.push(*k),
                            Branch::Child => d_has_child.set(base + *b as usize),
                        }
                    }
                } else {
                    // ---- sparse ----
                    let mut first = true;
                    if let Some(k) = node.prefix_key {
                        s_labels.push(0xFF);
                        s_has_child.push(false);
                        s_louds.push(true);
                        first = false;
                        leaf_key_order.push(k);
                    }
                    for (b, br) in &node.branches {
                        s_labels.push(*b);
                        s_louds.push(first);
                        first = false;
                        match br {
                            Branch::Terminal(k) => {
                                s_has_child.push(false);
                                leaf_key_order.push(*k);
                            }
                            Branch::Child => s_has_child.push(true),
                        }
                    }
                    debug_assert!(
                        !first,
                        "sparse node with neither prefix key nor branches"
                    );
                }
                node_id += 1;
            }
            if l + 1 == cut {
                dense_node_count = node_id;
                dense_value_count = leaf_key_order.len() - empty_offset;
            }
        }
        if cut == 0 {
            dense_node_count = 0;
            dense_value_count = 0;
        } else if cut >= h {
            dense_node_count = node_id;
            dense_value_count = leaf_key_order.len() - empty_offset;
        }
        level_node_starts.push(node_id);

        let dense_child_count = d_has_child.count_ones();
        // Drop growth slack: the structure is immutable from here on.
        s_labels.shrink_to_fit();
        for bv in [
            &mut d_labels,
            &mut d_has_child,
            &mut d_is_prefix,
            &mut s_has_child,
            &mut s_louds,
        ] {
            bv.shrink_to_fit();
        }
        leaf_key_order.shrink_to_fit();
        // Keep rank/select LUT construction happy on empty vectors.
        let ensure = |bv: &mut BitVector| {
            if bv.is_empty() {
                bv.push(false);
            }
        };
        ensure(&mut d_labels);
        ensure(&mut d_has_child);
        ensure(&mut d_is_prefix);
        ensure(&mut s_has_child);
        ensure(&mut s_louds);

        let dense_rank_block = if opts.rank_opt { 64 } else { 512 };
        let d_labels_rank = RankSupport::new(&d_labels, dense_rank_block);
        let d_has_child_rank = RankSupport::new(&d_has_child, dense_rank_block);
        let d_is_prefix_rank = RankSupport::new(&d_is_prefix, dense_rank_block);
        let s_has_child_rank = RankSupport::new(&s_has_child, 512);
        let s_louds_rank = RankSupport::new(&s_louds, 512);
        let s_louds_select = SelectSupport::new(&s_louds, 64);

        LoudsTrie {
            opts,
            d_labels,
            d_has_child,
            d_is_prefix,
            d_labels_rank,
            d_has_child_rank,
            d_is_prefix_rank,
            dense_levels: cut,
            dense_node_count,
            dense_child_count,
            dense_value_count,
            s_labels,
            s_has_child,
            s_louds,
            s_has_child_rank,
            s_louds_rank,
            s_louds_select,
            empty_key: self.empty_key,
            level_node_starts,
            height: h,
            num_nodes: node_id,
            num_values: leaf_key_order.len(),
            leaf_key_order,
        }
    }
}
