//! Fast Succinct Trie (FST) — Chapter 3.
//!
//! FST encodes a 256-fanout trie with two cooperating schemes:
//!
//! * **LOUDS-Dense** (§3.2) for the hot upper levels: per node, a 256-bit
//!   `D-Labels` bitmap, a 256-bit `D-HasChild` bitmap, and one
//!   `D-IsPrefixKey` bit. A child search is a single bitmap probe.
//! * **LOUDS-Sparse** (§3.3) for the cold majority: a byte sequence
//!   `S-Labels` plus bit sequences `S-HasChild` and `S-LOUDS`, 10 bits per
//!   node — within 6 % of the information-theoretic lower bound.
//!
//! The dividing level is governed by the size ratio `R` (§3.4, default 64:
//! LOUDS-Dense is kept under ~2 % of the trie). Rank/select use the
//! customized single-level LUTs of §3.6 (`B = 64` dense, `B = 512` sparse,
//! select sampling `S = 64`), and sparse label search uses an 8-byte-SWAR
//! "SIMD" comparison. Every optimization can be disabled through
//! [`TrieOpts`] for the Figure 3.6 ablation.
//!
//! [`Fst`] is the user-facing map (complete keys, [`StaticIndex`]);
//! [`LoudsTrie`] is the encoding engine shared with SuRF (which builds a
//! *truncated* trie — see `memtree-surf`).

#![warn(missing_docs)]

pub mod baselines;
pub mod iter;
pub mod louds;

pub use baselines::{PdtLite, TxTrie};
pub use iter::TrieIter;
pub use louds::{LookupResult, LoudsTrie, TrieOpts};

use memtree_common::traits::{BatchProbe, StaticIndex, Value};

/// The Fast Succinct Trie as an ordered static map over complete keys.
#[derive(Debug)]
pub struct Fst {
    trie: LoudsTrie,
    /// `values[value_idx]` where `value_idx` is the trie's level-ordered
    /// value slot for the key.
    values: Vec<Value>,
}

impl Fst {
    /// Builds with non-default options (ablation / tuning).
    pub fn build_with(entries: &[(Vec<u8>, Value)], opts: TrieOpts) -> Self {
        let keys: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
        let trie = LoudsTrie::build(&keys, opts);
        // value_idx -> original key index mapping re-orders the values.
        let mut values = vec![0; entries.len()];
        for (value_idx, &key_idx) in trie.leaf_key_order().iter().enumerate() {
            values[value_idx] = entries[key_idx as usize].1;
        }
        Self { trie, values }
    }

    /// Access to the underlying encoding (for inspection and benches).
    pub fn trie(&self) -> &LoudsTrie {
        &self.trie
    }

    /// Iterator positioned at the first key `>= low`.
    pub fn iter_from(&self, low: &[u8]) -> TrieIter<'_> {
        self.trie.lower_bound(low)
    }

    /// Batched point lookup via the trie's level-synchronous descent
    /// ([`LoudsTrie::lookup_batch`]): the whole batch advances one trie
    /// level per round with prefetches issued ahead of each round's
    /// probes, so the cache misses of independent keys overlap.
    pub fn get_batch(&self, keys: &[&[u8]], out: &mut Vec<Option<Value>>) {
        let mut results = Vec::with_capacity(keys.len());
        self.trie.lookup_batch(keys, &mut results);
        out.extend(results.iter().map(|r| match *r {
            LookupResult::Found { value_idx, .. } => Some(self.values[value_idx]),
            LookupResult::NotFound => None,
        }));
    }

    /// Exact number of keys in `[low, high)`, in O(height) rank operations
    /// per bound (the machinery behind SuRF's approximate `count`; exact
    /// here because the trie stores complete keys).
    pub fn count_range(&self, low: &[u8], high: &[u8]) -> usize {
        if low >= high {
            return 0;
        }
        let lo = self.trie.lower_bound(low);
        let hi = self.trie.lower_bound(high);
        self.trie.count_before(&hi) - self.trie.count_before(&lo)
    }
}

impl StaticIndex for Fst {
    fn build(entries: &[(Vec<u8>, Value)]) -> Self {
        Self::build_with(entries, TrieOpts::default())
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        match self.trie.lookup(key) {
            LookupResult::Found { value_idx, .. } => Some(self.values[value_idx]),
            LookupResult::NotFound => None,
        }
    }

    fn scan(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        let mut it = self.trie.lower_bound(low);
        let mut taken = 0;
        while taken < n && it.valid() {
            out.push(self.values[it.value_idx()]);
            taken += 1;
            it.next();
        }
        taken
    }

    fn len(&self) -> usize {
        self.values.len()
    }

    fn mem_usage(&self) -> usize {
        self.trie.mem_usage() + memtree_common::mem::vec_bytes(&self.values)
    }

    fn for_each_sorted(&self, f: &mut dyn FnMut(&[u8], Value)) {
        let mut it = self.trie.lower_bound(&[]);
        while it.valid() {
            f(it.key(), self.values[it.value_idx()]);
            it.next();
        }
    }

    fn range_from(&self, low: &[u8], f: &mut dyn FnMut(&[u8], Value) -> bool) {
        let mut it = self.trie.lower_bound(low);
        while it.valid() {
            if !f(it.key(), self.values[it.value_idx()]) {
                return;
            }
            it.next();
        }
    }
}

impl BatchProbe for Fst {
    fn probe_one(&self, key: &[u8]) -> Option<Value> {
        self.get(key)
    }

    fn multi_get(&self, keys: &[&[u8]], out: &mut Vec<Option<Value>>) {
        self.get_batch(keys, out);
    }

    fn scan_one(&self, low: &[u8], n: usize, out: &mut Vec<Value>) -> usize {
        self.scan(low, n, out)
    }

    /// Merged-traversal multi-scan: range starts are visited in sorted
    /// order, and ranges whose windows overlap share one trie cursor — the
    /// per-range `lower_bound` descent (the expensive part of a short scan)
    /// is paid once per *cluster* of nearby ranges instead of once per
    /// range.
    fn multi_scan(&self, ranges: &[(&[u8], usize)], out: &mut Vec<Vec<Value>>) {
        memtree_common::traits::multi_scan_merged(
            &|low, f| self.range_from(low, f),
            ranges,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_common::key::encode_u64;

    fn entries_from(keys: &[&[u8]]) -> Vec<(Vec<u8>, Value)> {
        let mut v: Vec<(Vec<u8>, Value)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.to_vec(), i as Value))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn figure_3_2_trie() {
        // The example keys of Figure 3.2: f, far, fas, fast, fat, s, top,
        // toy, trie, trip, try ("f" and "fas" are prefix keys).
        let entries = entries_from(&[
            b"f", b"far", b"fas", b"fast", b"fat", b"s", b"top", b"toy", b"trie", b"trip", b"try",
        ]);
        for r in [None, Some(0), Some(64)] {
            let opts = TrieOpts {
                r_ratio: r,
                ..TrieOpts::default()
            };
            let f = Fst::build_with(&entries, opts);
            for (k, v) in &entries {
                assert_eq!(f.get(k), Some(*v), "key {:?} r={r:?}", String::from_utf8_lossy(k));
            }
            for miss in [&b"fa"[..], b"fase", b"t", b"to", b"tor", b"z", b""] {
                assert_eq!(f.get(miss), None, "miss {:?} r={r:?}", String::from_utf8_lossy(miss));
            }
        }
    }

    #[test]
    fn random_u64_keys_all_configs() {
        let mut state = 3u64;
        let mut keys: Vec<u64> = (0..20_000)
            .map(|_| memtree_common::hash::splitmix64(&mut state))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let entries: Vec<(Vec<u8>, Value)> =
            keys.iter().map(|&k| (encode_u64(k).to_vec(), k)).collect();
        for opts in [
            TrieOpts::default(),
            TrieOpts::baseline(),
            TrieOpts {
                r_ratio: Some(0),
                ..TrieOpts::default()
            },
        ] {
            let f = Fst::build_with(&entries, opts);
            for &k in keys.iter().step_by(37) {
                assert_eq!(f.get(&encode_u64(k)), Some(k));
                assert_eq!(f.get(&encode_u64(k ^ 0x8000_0001)), None);
            }
        }
    }

    #[test]
    fn trie_image_roundtrip_across_opts_and_shapes() {
        let mut state = 17u64;
        let mut keys: Vec<Vec<u8>> = (0..4000)
            .map(|_| {
                let len = 1 + (memtree_common::hash::splitmix64(&mut state) % 10) as usize;
                (0..len)
                    .map(|_| (memtree_common::hash::splitmix64(&mut state) % 6) as u8 + b'a')
                    .collect()
            })
            .collect();
        keys.push(Vec::new()); // empty key exercises the slot-0 path
        keys.sort();
        keys.dedup();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for opts in [TrieOpts::default(), TrieOpts::baseline(), TrieOpts::surf()] {
            let t = LoudsTrie::build(&refs, opts);
            let mut img = Vec::new();
            t.serialize(&mut img);
            let d = LoudsTrie::deserialize(&img).unwrap();
            assert_eq!(d.num_nodes(), t.num_nodes());
            assert_eq!(d.num_values(), t.num_values());
            assert_eq!(d.height(), t.height());
            assert_eq!(d.leaf_key_order(), t.leaf_key_order());
            // Heap usage tracks Vec capacities, which differ by allocator
            // slack between push-built and exact-sized vectors; the stored
            // data is identical, so sizes agree within that slack.
            let (dm, tm) = (d.mem_usage() as f64, t.mem_usage() as f64);
            assert!((dm - tm).abs() <= tm * 0.01 + 64.0, "mem {dm} vs {tm}");
            let mut probes: Vec<Vec<u8>> = keys.clone();
            for k in keys.iter().step_by(3) {
                let mut q = k.clone();
                q.push(b'z');
                probes.push(q);
            }
            let probe_refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            for k in &probe_refs {
                assert_eq!(d.lookup(k), t.lookup(k), "lookup {k:?}");
            }
            let (mut a, mut b) = (Vec::new(), Vec::new());
            t.lookup_batch(&probe_refs, &mut a);
            d.lookup_batch(&probe_refs, &mut b);
            assert_eq!(a, b, "batch lookup diverged after round-trip");
            // Iterator machinery (lower_bound + count_before) survives.
            for k in keys.iter().step_by(41) {
                let ti = t.lower_bound(k);
                let di = d.lower_bound(k);
                assert_eq!(t.count_before(&ti), d.count_before(&di), "count at {k:?}");
            }
            // Every truncation of the image is a typed error, never a panic.
            for cut in (0..img.len()).step_by(13) {
                assert!(LoudsTrie::deserialize(&img[..cut]).is_err(), "cut {cut}");
            }
        }
        // Degenerate images: empty key set and empty-key-only.
        for keyset in [&[][..], &[&b""[..]][..]] {
            let t = LoudsTrie::build(keyset, TrieOpts::surf());
            let mut img = Vec::new();
            t.serialize(&mut img);
            let d = LoudsTrie::deserialize(&img).unwrap();
            assert_eq!(d.lookup(b""), t.lookup(b""));
            assert_eq!(d.lookup(b"x"), t.lookup(b"x"));
        }
    }

    #[test]
    fn scan_matches_sorted_reference() {
        let entries = entries_from(&[
            b"aaa", b"aab", b"ab", b"abc", b"b", b"ba", b"bb", b"bba", b"bbb", b"c",
        ]);
        let f = Fst::build(&entries);
        for low in [&b""[..], b"a", b"ab", b"abz", b"bb", b"zzz", b"b"] {
            let expect: Vec<Value> = entries
                .iter()
                .filter(|(k, _)| k.as_slice() >= low)
                .take(4)
                .map(|(_, v)| *v)
                .collect();
            let mut got = Vec::new();
            f.scan(low, 4, &mut got);
            assert_eq!(got, expect, "low {:?}", String::from_utf8_lossy(low));
        }
    }

    #[test]
    fn for_each_sorted_roundtrip() {
        let mut state = 5u64;
        let mut keys: Vec<Vec<u8>> = (0..3000)
            .map(|_| {
                let len = 1 + (memtree_common::hash::splitmix64(&mut state) % 12) as usize;
                (0..len)
                    .map(|_| (memtree_common::hash::splitmix64(&mut state) % 4) as u8 + b'a')
                    .collect()
            })
            .collect();
        keys.sort();
        keys.dedup();
        let entries: Vec<(Vec<u8>, Value)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as Value))
            .collect();
        let f = Fst::build(&entries);
        assert_eq!(f.len(), entries.len());
        let mut got = Vec::new();
        f.for_each_sorted(&mut |k, v| got.push((k.to_vec(), v)));
        assert_eq!(got, entries);
    }

    #[test]
    fn ten_bits_per_node_space() {
        // LOUDS-Sparse should sit near 10 bits per trie node.
        let mut state = 11u64;
        let mut keys: Vec<u64> = (0..50_000)
            .map(|_| memtree_common::hash::splitmix64(&mut state))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let entries: Vec<(Vec<u8>, Value)> =
            keys.iter().map(|&k| (encode_u64(k).to_vec(), k)).collect();
        let f = Fst::build(&entries);
        let nodes = f.trie().num_nodes();
        let bits = (f.trie().mem_usage() * 8) as f64;
        let bits_per_node = bits / nodes as f64;
        assert!(
            bits_per_node < 16.0,
            "bits per node too high: {bits_per_node:.1} ({nodes} nodes)"
        );
    }

    #[test]
    fn empty_and_single() {
        let f = Fst::build(&[]);
        assert_eq!(f.get(b"x"), None);
        let f = Fst::build(&[(b"lonely".to_vec(), 7)]);
        assert_eq!(f.get(b"lonely"), Some(7));
        assert_eq!(f.get(b"lonel"), None);
        assert_eq!(f.get(b"lonelyx"), None);
        let mut out = Vec::new();
        f.scan(b"", 10, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn multi_get_matches_per_key_loop() {
        let mut state = 17u64;
        let mut keys: Vec<Vec<u8>> = (0..6000)
            .map(|_| {
                let len = 1 + (memtree_common::hash::splitmix64(&mut state) % 14) as usize;
                (0..len)
                    .map(|_| (memtree_common::hash::splitmix64(&mut state) % 5) as u8 + b'a')
                    .collect()
            })
            .collect();
        keys.push(Vec::new()); // exercise the empty-key cursor
        keys.sort();
        keys.dedup();
        let entries: Vec<(Vec<u8>, Value)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as Value))
            .collect();
        for opts in [TrieOpts::default(), TrieOpts::baseline()] {
            let f = Fst::build_with(&entries, opts);
            // Batch mixes hits, misses, prefixes-of-keys, and duplicates.
            let mut probes: Vec<Vec<u8>> = Vec::new();
            for (i, k) in keys.iter().enumerate() {
                probes.push(k.clone());
                if i % 3 == 0 {
                    let mut miss = k.clone();
                    miss.push(b'z');
                    probes.push(miss);
                }
                if i % 5 == 0 && !k.is_empty() {
                    probes.push(k[..k.len() - 1].to_vec());
                }
                if i % 7 == 0 {
                    probes.push(k.clone()); // duplicate
                }
            }
            probes.push(Vec::new());
            let refs: Vec<&[u8]> = probes.iter().map(|k| k.as_slice()).collect();
            let expect: Vec<Option<Value>> = refs.iter().map(|k| f.get(k)).collect();
            // Exercise several batch sizes including odd tails.
            for chunk in [1usize, 7, 16, 64, 333, refs.len()] {
                let mut got = Vec::new();
                for c in refs.chunks(chunk) {
                    f.multi_get(c, &mut got);
                }
                assert_eq!(got, expect, "chunk {chunk}");
            }
        }
        // Empty trie still answers positionally.
        let f = Fst::build(&[]);
        assert_eq!(f.multi_get_vec(&[b"a".as_slice(), b""]), vec![None, None]);
    }

    #[test]
    fn multi_scan_matches_per_range_loop() {
        let mut state = 43u64;
        let mut keys: Vec<Vec<u8>> = (0..4000)
            .map(|_| {
                let len = 1 + (memtree_common::hash::splitmix64(&mut state) % 10) as usize;
                (0..len)
                    .map(|_| (memtree_common::hash::splitmix64(&mut state) % 6) as u8 + b'a')
                    .collect()
            })
            .collect();
        keys.sort();
        keys.dedup();
        let entries: Vec<(Vec<u8>, Value)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as Value))
            .collect();
        for subset in [0usize, 1, entries.len()] {
            let f = Fst::build(&entries[..subset]);
            // Clustered, overlapping, duplicate, and past-the-end starts.
            let mut lows: Vec<Vec<u8>> = keys.iter().step_by(17).cloned().collect();
            for low in lows.clone() {
                let mut ext = low.clone();
                ext.push(b'c');
                lows.push(ext); // in-gap start
                lows.push(low); // duplicate start
            }
            lows.push(Vec::new());
            lows.push(b"zzzzzz".to_vec());
            let ranges: Vec<(&[u8], usize)> = lows
                .iter()
                .enumerate()
                .map(|(i, low)| (low.as_slice(), [0usize, 1, 13, 4000][i % 4]))
                .collect();
            let expect: Vec<Vec<Value>> = ranges
                .iter()
                .map(|&(low, cnt)| {
                    let mut one = Vec::new();
                    f.scan(low, cnt, &mut one);
                    one
                })
                .collect();
            assert_eq!(f.multi_scan_vec(&ranges), expect, "subset={subset}");
        }
    }

    #[test]
    fn ff_byte_keys() {
        // 0xFF is both a real label and the sparse prefix-key marker; make
        // sure the disambiguation rules hold.
        let entries = entries_from(&[
            &b"ab"[..],
            b"ab\xff",
            b"ab\xff\xff",
            b"ab\xffz",
            b"\xff",
            b"\xff\xff",
        ]);
        let f = Fst::build_with(
            &entries,
            TrieOpts {
                r_ratio: None, // force everything into LOUDS-Sparse
                ..TrieOpts::default()
            },
        );
        for (k, v) in &entries {
            assert_eq!(f.get(k), Some(*v), "key {k:?}");
        }
        assert_eq!(f.get(b"ab\xffq"), None);
        assert_eq!(f.get(b"a"), None);
        let mut got = Vec::new();
        f.for_each_sorted(&mut |k, v| got.push((k.to_vec(), v)));
        assert_eq!(got, entries);
    }
}
