//! Differential oracle for the sharded serving layer.
//!
//! Three suites, all against a single-threaded `BTreeMap` model:
//!
//! 1. **Seeded differential storm** (32 seeds): a writer drives a random
//!    put/delete stream through `ShardedDb` and the model while reader
//!    threads hammer the snapshot path concurrently — tiny memtables
//!    force flushes and compactions *under* those readers. Every seed
//!    quiesces with a barrier and checks full get/scan equality, then
//!    either closes gracefully or crashes (torn unsynced state) and
//!    checks again after recovery: acknowledged writes are durable by
//!    construction (acks follow the group-commit sync), so recovery must
//!    reproduce the model exactly.
//! 2. **Reader invariants**: concurrent readers only ever observe values
//!    the writer actually wrote for that key, and per-key versions never
//!    move backwards within one reader (snapshot epochs are monotone).
//! 3. **Fault isolation**: `Enospc` on one shard fails the originating
//!    requests with the typed error and nothing else — the sibling shard
//!    keeps accepting durable writes, the starved shard keeps serving
//!    reads and recovers as soon as capacity lifts; transient read
//!    faults heal inside the snapshot read path on every shard.

use memtree_common::error::MemtreeError;
use memtree_common::hash::splitmix64;
use memtree_lsm::DbOptions;
use memtree_serve::{ServeOptions, ShardedDb};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const KEYS: usize = 64;

fn key(seed: u64, ki: usize) -> Vec<u8> {
    format!("s{seed}-key-{ki:03}").into_bytes()
}

fn value(seed: u64, ki: usize, ver: u64) -> Vec<u8> {
    format!("{seed}:{ki}:{ver}").into_bytes()
}

/// Parses a value written by this test back into `(seed, ki, ver)`.
fn parse_value(v: &[u8]) -> (u64, usize, u64) {
    let s = std::str::from_utf8(v).expect("utf8 value");
    let mut it = s.split(':');
    let seed = it.next().unwrap().parse().unwrap();
    let ki = it.next().unwrap().parse().unwrap();
    let ver = it.next().unwrap().parse().unwrap();
    (seed, ki, ver)
}

fn small_opts(shards: usize) -> ServeOptions {
    ServeOptions {
        shards,
        db: DbOptions {
            memtable_bytes: 2 << 10, // many flushes + compactions per seed
            ..DbOptions::default()
        },
        ..ServeOptions::default()
    }
}

/// One seed of the storm: random put/delete stream vs the model with
/// readers attached, quiesce, equality, then close-or-crash + reopen and
/// equality again.
fn run_seed(seed: u64, crash: bool) {
    let sdb = Arc::new(ShardedDb::new(small_opts(2 + (seed % 3) as usize)));
    let model_after = {
        let stop = Arc::new(AtomicBool::new(false));
        // The highest version the writer has *started* writing, per key,
        // packed into one atomic word each. Readers must never see a
        // version above it (values come only from the writer) and must
        // never see a key's version go backwards.
        let written: Arc<Vec<AtomicU64>> =
            Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let sdb = Arc::clone(&sdb);
                let stop = Arc::clone(&stop);
                let written = Arc::clone(&written);
                std::thread::spawn(move || {
                    let mut state = seed ^ (r as u64).wrapping_mul(0x9e37_79b9);
                    let mut last_seen = vec![0u64; KEYS];
                    while !stop.load(Ordering::Relaxed) {
                        let ki = (splitmix64(&mut state) % KEYS as u64) as usize;
                        if let Some(v) = sdb.get(&key(seed, ki)) {
                            let (vs, vk, ver) = parse_value(&v);
                            assert_eq!((vs, vk), (seed, ki), "foreign value for key {ki}");
                            let max = written[ki].load(Ordering::Acquire);
                            assert!(ver <= max, "reader saw unwritten version {ver} > {max}");
                            assert!(
                                ver >= last_seen[ki],
                                "key {ki} went backwards: {ver} < {}",
                                last_seen[ki]
                            );
                            last_seen[ki] = ver;
                        }
                    }
                })
            })
            .collect();

        let mut model: BTreeMap<usize, Option<u64>> = BTreeMap::new();
        let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
        let mut next_ver = 1u64;
        for _ in 0..250 {
            let ki = (splitmix64(&mut state) % KEYS as u64) as usize;
            if splitmix64(&mut state).is_multiple_of(5) {
                sdb.delete(&key(seed, ki)).unwrap();
                model.insert(ki, None);
            } else {
                let ver = next_ver;
                next_ver += 1;
                written[ki].store(ver, Ordering::Release);
                sdb.put(&key(seed, ki), &value(seed, ki, ver)).unwrap();
                model.insert(ki, Some(ver));
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        model
    };

    let sdb = Arc::try_unwrap(sdb).ok().expect("readers joined");
    sdb.barrier().unwrap();
    check_equal(&sdb, seed, &model_after, "post-quiesce");

    let disk = if crash {
        sdb.crash(Some(seed))
    } else {
        sdb.close().unwrap()
    };
    let reopened = ShardedDb::open(disk, small_opts(9)).expect("reopen");
    assert_eq!(reopened.shards(), 2 + (seed % 3) as usize, "persisted shard count");
    check_equal(&reopened, seed, &model_after, if crash { "post-crash" } else { "post-close" });
    reopened.close().unwrap();
}

/// Every acknowledged write is durable (acks follow the committer's
/// sync), so both graceful close and crash recovery must reproduce the
/// model exactly: point gets per key, and the merged scan against the
/// model's live entries.
fn check_equal(sdb: &ShardedDb, seed: u64, model: &BTreeMap<usize, Option<u64>>, when: &str) {
    for ki in 0..KEYS {
        let want = model.get(&ki).cloned().flatten().map(|ver| value(seed, ki, ver));
        assert_eq!(sdb.get(&key(seed, ki)), want, "{when}: seed {seed} key {ki}");
    }
    let lo = format!("s{seed}-key-").into_bytes();
    let hi = format!("s{seed}-key-~").into_bytes();
    let got = sdb.scan(&lo, Some(&hi), 10_000);
    let want: Vec<(Vec<u8>, Vec<u8>)> = model
        .iter()
        .filter_map(|(&ki, v)| v.map(|ver| (key(seed, ki), value(seed, ki, ver))))
        .collect();
    assert_eq!(got, want, "{when}: seed {seed} scan mismatch");
}

#[test]
fn differential_storm_close_and_crash_32_seeds() {
    for seed in 0..32u64 {
        // Even seeds close gracefully; odd seeds crash with a torn tail.
        run_seed(seed, seed % 2 == 1);
    }
}

/// Finds a key owned by `shard` with the given tag.
fn key_on_shard(sdb: &ShardedDb, shard: usize, tag: &str) -> Vec<u8> {
    (0..10_000u32)
        .map(|i| format!("{tag}-{i}").into_bytes())
        .find(|k| sdb.shard_of(k) == shard)
        .expect("no key hashes to shard")
}

#[test]
fn enospc_on_one_shard_is_isolated_and_recoverable() {
    let sdb = ShardedDb::new(small_opts(2));
    let disk = sdb.disk_handle();
    let victim_keys: Vec<Vec<u8>> =
        (0..64).map(|i| key_on_shard(&sdb, 0, &format!("victim{i}"))).collect();
    let healthy_keys: Vec<Vec<u8>> =
        (0..8).map(|i| key_on_shard(&sdb, 1, &format!("healthy{i}"))).collect();

    // Fill shard 0 close to its flush threshold (incompressible values,
    // so the flushed blocks cannot shrink under the clamp), then cap
    // capacity so the triggered flush cannot fit while the small WAL
    // appends leading up to it still can.
    let fat: Vec<u8> = {
        let mut state = 0xfa7u64;
        (0..96).map(|_| splitmix64(&mut state) as u8).collect()
    };
    for k in victim_keys.iter().take(16) {
        sdb.put(k, &fat).unwrap();
    }
    disk.set_capacity_bytes(Some(disk.used_bytes() + 1024));

    // Keep writing to shard 0 until its triggered flush hits the wall.
    // The failing request gets the *typed* error; the worker survives.
    let mut typed = false;
    let mut acked_victims: Vec<usize> = Vec::new();
    'outer: for round in 0..64 {
        for (i, k) in victim_keys.iter().enumerate() {
            match sdb.put(k, &fat) {
                Ok(_) => acked_victims.push(i),
                Err(MemtreeError::Enospc { .. }) => {
                    typed = true;
                    break 'outer;
                }
                Err(e) => panic!("round {round}: expected Enospc, got {e:?}"),
            }
        }
    }
    assert!(typed, "capacity clamp never produced a typed Enospc");

    // The starved shard still answers reads (worker not wedged) ...
    assert_eq!(
        sdb.get_fresh(&victim_keys[*acked_victims.last().unwrap()]).unwrap().as_deref(),
        Some(fat.as_slice())
    );
    // ... and the sibling shard still takes durable writes.
    for k in &healthy_keys {
        sdb.put(k, b"alive").unwrap();
    }

    // Lift the limit: the victim shard recovers without a reopen.
    disk.set_capacity_bytes(None);
    for k in victim_keys.iter().take(8) {
        sdb.put(k, b"recovered").unwrap();
    }
    sdb.flush_all().unwrap();
    sdb.barrier().unwrap();

    // Oracle: everything acknowledged (on either shard) is present.
    for k in victim_keys.iter().take(8) {
        assert_eq!(sdb.get(k).as_deref(), Some(&b"recovered"[..]));
    }
    for k in &healthy_keys {
        assert_eq!(sdb.get(k).as_deref(), Some(&b"alive"[..]));
    }
    // And it all survives a reopen.
    let reopened = ShardedDb::open(sdb.close().unwrap(), small_opts(2)).unwrap();
    for k in &healthy_keys {
        assert_eq!(reopened.get(k).as_deref(), Some(&b"alive"[..]));
    }
    reopened.close().unwrap();
}

#[test]
fn transient_read_faults_heal_on_every_shard() {
    let _guard = memtree_faults::test_lock();
    memtree_faults::enable(7);
    let sdb = ShardedDb::new(ServeOptions {
        shards: 2,
        db: DbOptions {
            memtable_bytes: 1 << 10,
            cache_blocks: 0, // every snapshot read goes to the disk
            ..DbOptions::default()
        },
        ..ServeOptions::default()
    });
    let mut keys = Vec::new();
    for i in 0..200u32 {
        let k = format!("tr-{i:04}").into_bytes();
        sdb.put(&k, format!("v{i}").as_bytes()).unwrap();
        keys.push(k);
    }
    sdb.flush_all().unwrap();
    sdb.barrier().unwrap();

    // Every third disk read fails transiently; the snapshot read path
    // retries with backoff and must still produce every value on both
    // shards, without wedging either worker.
    memtree_faults::arm("lsm.disk.read_transient", 0.34, None);
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(
            sdb.get(k).as_deref(),
            Some(format!("v{i}").as_bytes()),
            "transient faults must heal for key {i}"
        );
    }
    memtree_faults::disarm("lsm.disk.read_transient");
    memtree_faults::disable();
    sdb.close().unwrap();
}
